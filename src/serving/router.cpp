#include "serving/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"
#include "serialize/artifact.hpp"

namespace willump::serving {

namespace {

/// Ring point of one virtual node: a stable hash of (shard, vnode) so the
/// ring — and therefore every model's placement — is identical across
/// runs, builds, and processes.
std::uint64_t vnode_point(std::size_t shard, std::size_t vnode) {
  return common::hash_combine(common::hash_u64(shard + 1),
                              common::hash_u64(vnode + 0x9E3779B9ULL));
}

}  // namespace

Router::Router(RouterConfig cfg) : cfg_(cfg) {
  const std::size_t n = std::max<std::size_t>(1, cfg_.num_shards);
  const std::size_t vnodes = std::max<std::size_t>(1, cfg_.virtual_nodes);
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Server>(cfg_.shard));
  }
  ring_.reserve(n * vnodes);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      ring_.emplace_back(vnode_point(s, v), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

Router::~Router() { shutdown(); }

std::size_t Router::shard_of(std::string_view model) const {
  // First ring point clockwise of the name's hash; wrap to the start. The
  // splitmix finalizer on top of FNV-1a matters: similar short names
  // ("model-1", "model-2") share their FNV high bits and would otherwise
  // all land in one ring gap — the finalizer avalanches them over the
  // whole ring.
  const std::uint64_t h = common::hash_u64(common::fnv1a(model));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::size_t>& p, std::uint64_t key) {
        return p.first < key;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

void Router::register_model(std::string name,
                            const core::OptimizedPipeline* pipeline,
                            ModelConfig cfg) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Router::register_model: null pipeline");
  }
  register_model(std::move(name),
                 std::shared_ptr<const core::OptimizedPipeline>(
                     pipeline, [](const core::OptimizedPipeline*) {}),
                 cfg);
}

void Router::register_model(
    std::string name, std::shared_ptr<const core::OptimizedPipeline> pipeline,
    ModelConfig cfg) {
  const std::size_t shard = shard_of(name);
  std::lock_guard<std::mutex> lock(placement_mu_);
  if (routed_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Router::register_model: routing has started; register every model "
        "before the first request");
  }
  if (placement_.count(name) != 0) {
    throw std::invalid_argument("Router::register_model: duplicate model \"" +
                                name + "\"");
  }
  // The shard registers first: its validation (null pipeline, bad SLO
  // class) runs before the placement table is touched, so a rejected
  // registration leaves the router exactly as it was.
  shards_[shard]->register_model(name, std::move(pipeline), cfg);
  placement_.emplace(name, shard);
  names_.push_back(std::move(name));
}

void Router::load_model(std::string name, const std::string& artifact_path,
                        ModelConfig cfg) {
  // Deserialize before touching any table: artifact failures surface as
  // serialize::SerializeError with the fleet untouched.
  auto pipeline = std::make_shared<const core::OptimizedPipeline>(
      serialize::load_pipeline(artifact_path));
  register_model(std::move(name), std::move(pipeline), cfg);
}

void Router::add_replica(
    std::string_view model,
    std::shared_ptr<const core::OptimizedPipeline> pipeline) {
  owner(model).add_replica(model, std::move(pipeline));
}

void Router::add_replica(std::string_view model,
                         const std::string& artifact_path) {
  owner(model).add_replica(model, artifact_path);
}

void Router::add_replica(std::string_view model) {
  owner(model).add_replica(model);
}

void Router::retire_replica(std::string_view model) {
  owner(model).retire_replica(model);
}

std::size_t Router::replica_count(std::string_view model) const {
  return owner(model).replica_count(model);
}

std::size_t Router::draining_replicas(std::string_view model) const {
  return owner(model).draining_replicas(model);
}

void Router::swap_model(std::string_view model,
                        const std::string& artifact_path) {
  owner(model).swap_model(model, artifact_path);
}

void Router::swap_model(
    std::string_view model,
    std::shared_ptr<const core::OptimizedPipeline> pipeline) {
  owner(model).swap_model(model, std::move(pipeline));
}

void Router::swap_replica(std::string_view model, std::size_t replica,
                          const std::string& artifact_path) {
  owner(model).swap_replica(model, replica, artifact_path);
}

void Router::swap_replica(
    std::string_view model, std::size_t replica,
    std::shared_ptr<const core::OptimizedPipeline> pipeline) {
  owner(model).swap_replica(model, replica, std::move(pipeline));
}

std::vector<std::string> Router::model_names() const {
  std::lock_guard<std::mutex> lock(placement_mu_);
  return names_;
}

bool Router::has_model(std::string_view model) const {
  std::lock_guard<std::mutex> lock(placement_mu_);
  return placement_.find(model) != placement_.end();
}

Server& Router::owner(std::string_view model) const {
  // Same freeze discipline as Server's name table: once routing has
  // started the placement table is immutable, so the request path reads
  // it without a lock — and without materializing a std::string (the
  // placement map uses the transparent NameHash).
  auto lookup = [&]() -> const std::size_t* {
    auto it = placement_.find(model);
    return it == placement_.end() ? nullptr : &it->second;
  };
  const std::size_t* shard = nullptr;
  if (routed_.load(std::memory_order_acquire)) {
    shard = lookup();
  } else {
    std::lock_guard<std::mutex> lock(placement_mu_);
    shard = lookup();
  }
  if (shard == nullptr) {
    throw std::invalid_argument("Router: unknown model \"" +
                                std::string(model) + "\"");
  }
  return *shards_[*shard];
}

void Router::freeze_routing() {
  // Publish the frozen placement table before any lock-free owner()
  // lookup can observe routed_ == true (mirrors Server::start_serving).
  if (routed_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(placement_mu_);
  routed_.store(true, std::memory_order_release);
}

std::future<double> Router::submit(std::string_view model, data::Batch row) {
  freeze_routing();
  Server& s = owner(model);
  auto future = s.submit(model, std::move(row));
  // Counted only after the shard accepted it: a rejected request (engine
  // shut down, malformed row) is not routed work, and routed_queries
  // stays reconcilable with the shards' own query counters.
  routed_queries_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void Router::submit(std::string_view model, data::Batch row,
                    Server::Callback done) {
  if (!done) {
    throw std::invalid_argument("Router::submit: empty completion callback");
  }
  freeze_routing();
  Server& s = owner(model);
  // Forwarded completion: the shard worker that executed the batch invokes
  // this wrapper, which accounts the hop and hands the result to the
  // client callback — the client never learns which shard served it.
  s.submit(model, std::move(row),
           [this, done = std::move(done)](double prediction,
                                          std::exception_ptr error) {
             forwarded_completions_.fetch_add(1, std::memory_order_relaxed);
             if (error != nullptr) {
               forwarded_errors_.fetch_add(1, std::memory_order_relaxed);
               // Typed overload rejections are accounted separately so a
               // fleet dashboard can tell shed load from broken models.
               try {
                 std::rethrow_exception(error);
               } catch (const RejectedError&) {
                 forwarded_rejections_.fetch_add(1, std::memory_order_relaxed);
               } catch (...) {
               }
             }
             done(prediction, error);
           });
  // After the shard accepted it (a rejecting submit throws before any
  // completion can fire, so the counters stay consistent).
  routed_queries_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<double> Router::predict_batch(std::string_view model,
                                          const data::Batch& batch) {
  // Every routed request path freezes the placement table, including the
  // synchronous one (unlike Server::predict_batch, which leaves its
  // registry open for ClipperSim: a router-fronted fleet has no
  // register-between-batches client to support).
  freeze_routing();
  Server& s = owner(model);
  auto preds = s.predict_batch(model, batch);
  routed_queries_.fetch_add(batch.num_rows(), std::memory_order_relaxed);
  return preds;
}

std::vector<double> Router::predict_rows(std::string_view model,
                                         const data::Batch& batch) {
  freeze_routing();
  Server& s = owner(model);
  auto preds = s.predict_rows(model, batch);
  routed_queries_.fetch_add(batch.num_rows(), std::memory_order_relaxed);
  return preds;
}

std::size_t Router::recommended_replicas(std::string_view model) const {
  return owner(model).recommended_replicas(model);
}

ModelStats Router::stats(std::string_view model) const {
  return owner(model).stats(model);
}

RouterStats Router::stats() const {
  RouterStats out;
  out.shards = shards_.size();
  out.routed_queries = routed_queries_.load(std::memory_order_relaxed);
  out.forwarded_completions =
      forwarded_completions_.load(std::memory_order_relaxed);
  out.forwarded_errors = forwarded_errors_.load(std::memory_order_relaxed);
  out.forwarded_rejections =
      forwarded_rejections_.load(std::memory_order_relaxed);
  // Per-shard latency distributions stay per-shard (Summary objects do not
  // merge); out.serving.latency is left zeroed — read shard(i).stats() for
  // distribution detail.
  for (const auto& s : shards_) {
    const ServerStats ss = s->stats();
    out.models += ss.models;
    out.serving.models += ss.models;
    out.serving.queries += ss.queries;
    out.serving.cache_hits += ss.cache_hits;
    out.serving.batches += ss.batches;
    out.serving.rows += ss.rows;
    out.serving.largest_batch =
        std::max(out.serving.largest_batch, ss.largest_batch);
    out.serving.stolen_batches += ss.stolen_batches;
    out.serving.deadline_hits += ss.deadline_hits;
    out.serving.completions += ss.completions;
    out.serving.expired += ss.expired;
    out.serving.shed += ss.shed;
    out.serving.scale_ups += ss.scale_ups;
    out.serving.scale_downs += ss.scale_downs;
    out.serving.draining += ss.draining;
    out.serving.inference_seconds += ss.inference_seconds;
    out.serving.latency_samples += ss.latency_samples;
  }
  return out;
}

void Router::reset_stats() {
  routed_queries_.store(0, std::memory_order_relaxed);
  forwarded_completions_.store(0, std::memory_order_relaxed);
  forwarded_errors_.store(0, std::memory_order_relaxed);
  forwarded_rejections_.store(0, std::memory_order_relaxed);
  for (const auto& s : shards_) s->reset_stats();
}

void Router::shutdown() {
  for (const auto& s : shards_) s->shutdown();
}

}  // namespace willump::serving
