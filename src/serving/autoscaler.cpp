#include "serving/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/stats.hpp"
#include "serving/server.hpp"

namespace willump::serving {

namespace {

std::chrono::steady_clock::duration micros_duration(double micros) {
  return std::chrono::microseconds(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(micros)));
}

}  // namespace

double steady_state_attainment(const LoadSnapshot& snap, std::size_t replicas) {
  const double k = static_cast<double>(std::max<std::size_t>(replicas, 1));
  const double s = snap.service_seconds_per_row;
  if (s <= 0.0) return 1.0;  // nothing measured executes instantly
  const double rho = snap.arrival_qps * s / k;
  if (rho >= 1.0) return 0.0;  // saturated: the queue grows without bound
  const double sojourn = s + s * rho / (k * (1.0 - rho));
  if (!(sojourn > 0.0)) return 1.0;
  return 1.0 - std::exp(-snap.deadline_seconds / sojourn);
}

AutoscaleAction AutoscalePolicy::evaluate(
    const LoadSnapshot& snap, std::size_t current_replicas,
    std::chrono::steady_clock::time_point now) {
  // Cold-start guard: before min_observations the estimators' CI is
  // meaninglessly wide and the EWMAs may be zero — never resize, and carry
  // no failing-streak evidence out of the cold phase.
  if (snap.batches < cfg_.min_observations ||
      snap.service_seconds_per_row <= 0.0 || snap.arrival_qps <= 0.0) {
    streak_ = 0;
    return AutoscaleAction::kHold;
  }

  const std::size_t n = std::max<std::size_t>(snap.rows, 1);
  const double att = steady_state_attainment(snap, current_replicas);
  const double half = common::binomial_ci95_half_width(att, n);

  // Hysteresis leg 1 (scale-up evidence): the streak accumulates on every
  // evaluation whose CI *upper* bound fails the target — even during a
  // cooldown, which defers the action, not the evidence — and any passing
  // evaluation resets it.
  if (att + half < snap.target_attainment) {
    ++streak_;
  } else {
    streak_ = 0;
  }

  if (resized_ && now - last_resize_ < micros_duration(cfg_.cooldown_micros)) {
    return AutoscaleAction::kHold;
  }

  if (streak_ >= cfg_.scale_up_streak && current_replicas < cfg_.max_replicas) {
    streak_ = 0;
    resized_ = true;
    last_resize_ = now;
    return AutoscaleAction::kGrow;
  }

  // Hysteresis leg 2 (scale-down): shrink only when the CI *lower* bound of
  // the predicted attainment at one FEWER replica still clears the target —
  // the smaller group would confidently pass, so the slot is provably idle
  // capacity. Between the two bounds the policy holds; that band is what
  // makes a stationary trace's resize sequence eventually constant (a shrink
  // to k-1 implies the upper bound at k-1 also passes, so it can never
  // trigger an immediate re-grow).
  if (current_replicas > cfg_.min_replicas) {
    const double att_down =
        steady_state_attainment(snap, current_replicas - 1);
    const double lower =
        att_down - common::binomial_ci95_half_width(att_down, n);
    if (lower >= snap.target_attainment) {
      streak_ = 0;
      resized_ = true;
      last_resize_ = now;
      return AutoscaleAction::kShrink;
    }
  }
  return AutoscaleAction::kHold;
}

Autoscaler::Autoscaler(Server& server, AutoscaleConfig cfg)
    : server_(server), cfg_(cfg) {}

Autoscaler::~Autoscaler() { stop(); }

void Autoscaler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable() || stop_) return;
  thread_ = std::thread([this] { loop(); });
}

void Autoscaler::stop() {
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    joinable = std::move(thread_);
  }
  cv_.notify_all();
  if (joinable.joinable()) joinable.join();
}

void Autoscaler::loop() {
  const auto interval = micros_duration(std::max(1.0, cfg_.interval_micros));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    evaluate_once(std::chrono::steady_clock::now());
    lock.lock();
  }
}

void Autoscaler::evaluate_once(std::chrono::steady_clock::time_point now) {
  for (const auto& name : server_.model_names()) {
    AutoscalePolicy& policy =
        policies_.try_emplace(name, cfg_).first->second;
    const LoadSnapshot snap = server_.load_snapshot(name);
    const std::size_t current = server_.replica_count(name);
    switch (policy.evaluate(snap, current, now)) {
      case AutoscaleAction::kGrow:
        try {
          server_.add_replica(name);
        } catch (...) {
          // A missing/corrupt artifact or a racing shutdown must not kill
          // the controller; the cooldown the policy already armed keeps a
          // persistent failure from being retried every tick.
        }
        break;
      case AutoscaleAction::kShrink:
        try {
          server_.retire_replica(name);
        } catch (...) {
        }
        break;
      case AutoscaleAction::kHold:
        break;
    }
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Autoscaler::evaluations() const {
  return evaluations_.load(std::memory_order_relaxed);
}

}  // namespace willump::serving
