#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "core/optimizer.hpp"
#include "runtime/request_queue.hpp"
#include "serving/aimd.hpp"
#include "serving/autoscaler.hpp"
#include "serving/e2e_cache.hpp"
#include "serving/load_control.hpp"
#include "serving/slo.hpp"

namespace willump::serving {

/// Heterogeneous string hashing for the name tables of the serving layer:
/// lookups by std::string_view materialize no per-request std::string on
/// the submit hot paths (Server's registry and Router's placement table).
struct NameHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Per-model policy of a registry entry: its SLO class, queue bound,
/// batching policy (fixed cap or AIMD-tuned), end-to-end cache, replica
/// count, and worker-shard weight.
///
/// A ModelConfig is copied at registration; later mutation of the caller's
/// copy has no effect on the registered model.
struct ModelConfig {
  /// Latency objective + scheduling class (see slo.hpp). Drives the
  /// cross-model dequeue order under `ServerConfig::slo_scheduling` and,
  /// when `aimd.slo_micros` is 0, the derived AIMD batch-latency target.
  /// `deadline_micros` must be positive (registration rejects otherwise).
  SloClass slo;
  /// Batch cap the adaptive micro-batching starts from. With AIMD enabled
  /// this is only the initial value; otherwise it is the fixed cap.
  std::size_t max_batch = 16;
  /// Flush a partially filled batch once this much time has elapsed since
  /// its first query was accepted. 0 = drain-only (no added idle latency).
  double max_delay_micros = 0.0;
  /// Per-model request-queue bound; 0 = unbounded. Submits against a full
  /// queue never block: they wait at most `load_control.submit_wait_micros`
  /// for space, then resolve the request with a typed kQueueFull rejection
  /// through its future/callback (see serving/load_control.hpp).
  std::size_t queue_capacity = 0;
  /// Clipper-style end-to-end prediction cache, checked before enqueue.
  bool enable_e2e_cache = false;
  std::size_t e2e_cache_capacity = 0;
  /// How many of the engine's workers call this model home (shard weight).
  /// Workers are dealt round-robin over a list where each model appears
  /// `workers` times; an idle worker steals from other models regardless.
  std::size_t workers = 1;
  /// Initial replica-group size: how many execution slots the model starts
  /// with, all sharing the registered pipeline (min 1). Each replica runs
  /// one batch at a time — the Clipper model-container execution model —
  /// so N replicas admit N concurrent batch executions. add_replica()
  /// appends further replicas (at any point in the serving lifecycle) and
  /// retire_replica() drains one away; the autoscaler drives both when
  /// ServerConfig::autoscale is enabled.
  ///
  /// NOTE: this bounds the model's execution concurrency. The default of
  /// 1 serializes the model's queued batches even under many workers
  /// (larger batches coalesce while the slot is busy — usually the higher
  /// throughput regime); a model that wants N-way concurrent pipeline
  /// execution of *queued* traffic sets `replicas` (e.g. to num_workers).
  /// The synchronous predict_batch path is not gated by the slots.
  std::size_t replicas = 1;
  /// Artifact this model can cold-start additional replicas from:
  /// `add_replica(model)` — the autoscaler's scale-up path — deserializes
  /// this artifact, and falls back to cloning the live pipeline's Parts
  /// when empty. load_model() fills it with the path it loaded from when
  /// the caller left it empty.
  std::string artifact_path;
  /// Online AIMD tuning of `max_batch` (Clipper's controller). Disabled by
  /// default: the cap stays fixed.
  AimdConfig aimd;
  /// Statistical load control: admission (predicted-miss + best-effort
  /// shedding), the workers' expired-request drop, and the bounded submit
  /// wait on a full queue. Estimators always run (recommended_replicas
  /// works regardless); decisions require `load_control.enabled`.
  LoadControlConfig load_control;
};

/// Engine-wide threading and scheduling policy of the serving registry.
struct ServerConfig {
  /// Worker threads shared by all registered models, sharded by
  /// ModelConfig::workers weights. 0 = synchronous-only: no threads are
  /// spawned and submit() executes inline on the caller (no coalescing) —
  /// the right mode for a batch-at-a-time frontend embedding the engine.
  std::size_t num_workers = 1;
  /// Let a worker whose home queue is idle drain other models' queues, so
  /// a hot model borrows an idle model's workers. With stealing disabled,
  /// every worker serves only its home model (strict shard isolation) and
  /// start-up rejects configurations that would strand a model with no
  /// home worker.
  bool work_stealing = true;
  /// SLO-aware cross-queue dequeue order (requires `work_stealing`): a
  /// worker picks the next model by (class priority descending, earliest
  /// head deadline first) over every queue with a free replica, instead
  /// of home-queue-first FIFO with an idle-steal sweep. Disable to get
  /// the legacy FIFO/steal scheduler — the baseline the SLO-attainment
  /// bench compares against.
  bool slo_scheduling = true;
  /// How long an idle worker waits on its home queue's condition variable
  /// before re-scanning the other queues (one non-blocking sweep in the
  /// legacy scheduler; a priority re-scan in the SLO scheduler). This is
  /// a CV wait, not a spin: an idle engine costs one wakeup per worker
  /// per quantum.
  double steal_quantum_micros = 500.0;
  /// Background replica autoscaling (serving/autoscaler.hpp): when enabled,
  /// start_serving() spawns a controller thread that periodically evaluates
  /// every model's LoadController snapshot through an AutoscalePolicy and
  /// grows (add_replica from ModelConfig::artifact_path or a Parts clone)
  /// or shrinks (retire_replica, drain-then-free) its group. Requires
  /// num_workers > 0 — the synchronous-only mode has no background threads
  /// by contract, and inline callers gain nothing from extra slots.
  AutoscaleConfig autoscale;
};

/// Per-model serving counters (snapshot; see Server::stats(model)).
struct ModelStats {
  std::string model;
  std::size_t queries = 0;       // pointwise queries offered via submit()
  std::size_t cache_hits = 0;    // answered from the e2e cache, never enqueued
  std::size_t batches = 0;       // pipeline executions (coalesced or client batches)
  std::size_t rows = 0;          // rows through the pipeline
  std::size_t largest_batch = 0; // biggest single pipeline execution
  std::size_t stolen_batches = 0;  // batches executed by a non-home worker
  double inference_seconds = 0.0;
  common::Summary latency;       // submit()-to-completion seconds per query
  std::size_t latency_samples = 0;
  /// Queries completed within the model's SLO-class deadline (of those
  /// with a recorded latency; cache hits count as within-deadline).
  std::size_t deadline_hits = 0;
  /// Per-outcome rows of the overload pipeline (admission → shed →
  /// expire; see serving/load_control.hpp). Every offered query lands in
  /// exactly one outcome: a completion with a prediction (`completions`,
  /// cached or executed — the cached path increments the same row, so
  /// attainment() denominators stay consistent across both), an expiry
  /// drop, one of the typed sheds, or an execution error.
  std::size_t completions = 0;
  std::size_t expired = 0;             // kExpired drops (counted as misses)
  std::size_t shed_queue_full = 0;     // kQueueFull rejections
  std::size_t shed_best_effort = 0;    // kShedBestEffort rejections
  std::size_t shed_predicted_miss = 0; // kPredictedMiss rejections
  /// AIMD controller state: the live cap and how it got there.
  std::size_t current_max_batch = 0;
  std::size_t aimd_increases = 0;
  std::size_t aimd_backoffs = 0;
  /// Replica group: live slot count and rows executed per slot (least-
  /// outstanding balancing should spread saturating load across slots).
  /// `replica_rows` is indexed by all-time slot index — retired slots keep
  /// their row totals — so it can be longer than `replicas`.
  std::size_t replicas = 0;
  std::vector<std::size_t> replica_rows;
  /// Resize counters: replicas added / retired after serving started
  /// (operator- or autoscaler-driven), and how many retired replicas are
  /// still draining (falls to 0 once their outstanding work completes).
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  std::size_t draining = 0;

  double mean_batch_rows() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(rows) / static_cast<double>(batches);
  }
  /// Fraction of completed queries that met the class deadline.
  double deadline_attainment() const {
    return latency_samples == 0 ? 0.0
                                : static_cast<double>(deadline_hits) /
                                      static_cast<double>(latency_samples);
  }
  /// Outcome-row attainment: hits over everything that reached a terminal
  /// deadline verdict — completions (cached or executed) plus expiry
  /// drops, each of which is a miss counted exactly once. Typed admission
  /// sheds are excluded: a request the engine refused to run was never
  /// given a deadline to meet.
  double attainment() const {
    const std::size_t den = completions + expired;
    return den == 0 ? 0.0
                    : static_cast<double>(deadline_hits) /
                          static_cast<double>(den);
  }
  std::size_t total_shed() const {
    return shed_queue_full + shed_best_effort + shed_predicted_miss;
  }
};

/// Aggregate serving counters over every registered model.
struct ServerStats {
  std::size_t models = 0;
  std::size_t queries = 0;
  std::size_t cache_hits = 0;
  std::size_t batches = 0;
  std::size_t rows = 0;
  std::size_t largest_batch = 0;
  std::size_t stolen_batches = 0;
  double inference_seconds = 0.0;
  common::Summary latency;
  std::size_t latency_samples = 0;
  std::size_t deadline_hits = 0;
  /// Fleet totals of the overload outcome rows (see ModelStats).
  std::size_t completions = 0;
  std::size_t expired = 0;
  std::size_t shed = 0;  // all typed admission rejections
  /// Fleet totals of the resize counters (see ModelStats): replicas added /
  /// retired at runtime and retired replicas still draining.
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  std::size_t draining = 0;

  double mean_batch_rows() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(rows) / static_cast<double>(batches);
  }
};

/// A multi-model, SLO-aware request-level serving engine: the registry
/// frontend the paper's Table 6 deployment (Willump behind Clipper)
/// presupposes, grown to production scheduling semantics.
///
/// `Server` hosts N named models. Each registered model owns:
///
/// - an **SLO class** (`SloClass`: per-query deadline + priority) that
///   orders the cross-model dequeue — workers serve the highest-priority
///   queue first, breaking ties by earliest absolute head deadline
///   (accept time + deadline), so a latency-critical model is never stuck
///   behind a saturating batch model's backlog;
/// - a **replica group**: one or more execution slots behind the model's
///   name. A replica runs one batch at a time (the Clipper model-container
///   execution model); batches are balanced over replicas by
///   least-outstanding-requests, so N replicas give N-way concurrent
///   execution and each replica is independently hot-swappable
///   (`swap_replica`) and cold-startable from an artifact (`add_replica`).
///   The group is **runtime-mutable**: `add_replica` grows it under live
///   traffic and `retire_replica` shrinks it by draining — the retired
///   slot stops receiving batches immediately and is freed only after its
///   outstanding work completes, so no request is dropped or resolved
///   twice. With `ServerConfig::autoscale` enabled a background controller
///   (serving/autoscaler.hpp) drives both from predicted attainment;
/// - a bounded MPMC `runtime::RequestQueue`, a batching policy whose
///   `max_batch` can be tuned online by an AIMD controller whose
///   batch-latency target derives from the class deadline (Clipper,
///   NSDI 2017 §4.3), and an optional end-to-end prediction cache
///   consulted before enqueue.
///
/// Completion is delivered either through a `std::future` or — the
/// open-loop-friendly async path — through a callback invoked on the worker
/// that executed the batch. Every submitted request resolves exactly once:
/// a prediction, a typed overload rejection (`RejectedError`; see
/// serving/load_control.hpp), or an expiry. Shutdown closes the queues to
/// new work but drains accepted requests first. By default deadlines are
/// objectives, not admission control: a request that misses its deadline
/// still completes (and is counted in `ModelStats::deadline_hits`'
/// complement). With `LoadControlConfig::enabled` the engine turns them
/// into operational decisions — admission control sheds requests that are
/// statistically predicted to miss (best-effort classes first), and
/// workers drop dead-on-arrival requests instead of wasting a replica slot
/// on them. Submits never block on a full queue in either mode.
///
/// Thread safety: every public method is safe to call concurrently once
/// serving has started, except the registration family (`register_model`,
/// `load_model`), which must finish before the first request and throws
/// std::logic_error afterwards. `swap_model` / `swap_replica` /
/// `add_replica` / `retire_replica` are safe at any point in the serving
/// lifecycle — the replica group is published RCU-style (workers take a
/// per-batch snapshot of an immutable group vector), so resizes never
/// invalidate an in-flight batch.
class Server {
 public:
  /// Completion callback of the async path: exactly one of `prediction`
  /// (with `error == nullptr`) or `error` is meaningful. Invoked on a
  /// worker thread (or inline on the caller for cache hits and the
  /// synchronous-only mode); must not throw — escaped exceptions are
  /// swallowed to protect the workers.
  using Callback = std::function<void(double prediction, std::exception_ptr error)>;

  /// An empty registry; call register_model() before submitting.
  explicit Server(ServerConfig cfg = {});

  /// Single-model convenience: registers `pipeline` under the name
  /// "default" with `model_cfg` and starts serving immediately.
  Server(const core::OptimizedPipeline* pipeline, ServerConfig cfg,
         ModelConfig model_cfg = {});

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register a named pipeline. Throws std::invalid_argument on a duplicate
  /// name, a null pipeline, or a non-positive SLO deadline, and
  /// std::logic_error once serving has started (first submit) or after
  /// shutdown. The borrowed pointer must outlive the server.
  void register_model(std::string name, const core::OptimizedPipeline* pipeline,
                      ModelConfig cfg = {});

  /// Owning registration: the registry keeps the pipeline alive. This is
  /// what load_model/swap_model use internally.
  void register_model(std::string name,
                      std::shared_ptr<const core::OptimizedPipeline> pipeline,
                      ModelConfig cfg = {});

  /// Cold-start path: deserialize a trained pipeline artifact
  /// (serialize::load_pipeline) and register it under `name`. Same
  /// registration rules as register_model; artifact failures surface as
  /// serialize::SerializeError and leave the registry untouched.
  void load_model(std::string name, const std::string& artifact_path,
                  ModelConfig cfg = {});

  /// Append one replica to `model`'s group, serving the given pipeline
  /// instance — legal at any point in the serving lifecycle (the group is
  /// published RCU-style; in-flight batches are untouched). Throws
  /// std::invalid_argument for an unknown model or null pipeline and
  /// std::logic_error after shutdown. Replicas share the model's queue,
  /// cache, batching policy, and counters; batches are balanced across
  /// them by least outstanding requests. Post-start additions count in
  /// ModelStats::scale_ups.
  void add_replica(std::string_view model,
                   std::shared_ptr<const core::OptimizedPipeline> pipeline);
  /// Cold-start replica: deserialize `artifact_path` and append it. A
  /// corrupt artifact throws serialize::SerializeError and leaves the
  /// group unchanged.
  void add_replica(std::string_view model, const std::string& artifact_path);
  /// The autoscaler's scale-up path: cold-start one replica from the
  /// model's registered `ModelConfig::artifact_path`, or — when no
  /// artifact is registered — clone the live pipeline's Parts (sharing the
  /// fitted state, owning fresh runtime state).
  void add_replica(std::string_view model);

  /// Retire one replica (the newest slot) from `model`'s group: mark it
  /// draining, unpublish it so no further batch routes to it, and free it
  /// once its outstanding work completes — zero dropped or double-resolved
  /// requests. Throws std::logic_error when the group holds a single
  /// replica (a group never drains to zero). Counts in
  /// ModelStats::scale_downs; the slot appears in ModelStats::draining
  /// until its last in-flight batch finishes.
  void retire_replica(std::string_view model);

  /// Live (routable) replicas of `model`.
  std::size_t replica_count(std::string_view model) const;
  /// Retired replicas still finishing outstanding work (0 once drained).
  std::size_t draining_replicas(std::string_view model) const;

  /// One coherent snapshot of the model's online load estimators — the
  /// autoscaler's (and a test's) window into the LoadController.
  LoadSnapshot load_snapshot(std::string_view model) const;

  /// Hot-reload every replica of `model` to one pipeline (a full rollout),
  /// at any point in the serving lifecycle. In-flight batches finish on
  /// the pipeline version they started with (each batch holds a snapshot);
  /// batches picked up afterwards run the new one — no request is dropped.
  /// The model's end-to-end cache is invalidated (its entries were the old
  /// version's predictions). Queue, batching policy, AIMD state, and
  /// counters carry over.
  void swap_model(std::string_view model, const std::string& artifact_path);
  void swap_model(std::string_view model,
                  std::shared_ptr<const core::OptimizedPipeline> pipeline);

  /// Hot-reload a single replica (a rolling rollout: swap replicas one at
  /// a time while the rest keep serving). Throws std::invalid_argument for
  /// an unknown model or a replica index out of range. The model's e2e
  /// cache is invalidated — during a rolling upgrade two versions serve
  /// side by side, so version-tagged cached predictions cannot be reused.
  void swap_replica(std::string_view model, std::size_t replica,
                    const std::string& artifact_path);
  void swap_replica(std::string_view model, std::size_t replica,
                    std::shared_ptr<const core::OptimizedPipeline> pipeline);

  /// Registered model names, in registration order.
  std::vector<std::string> model_names() const;
  bool has_model(std::string_view model) const;

  /// Submit one pointwise query (a single-row batch) to `model`. Returns a
  /// future for its prediction. Never blocks on a full queue: after at most
  /// `LoadControlConfig::submit_wait_micros`, the future delivers a typed
  /// `RejectedError{kQueueFull}` instead (overload rejections — including
  /// kShedBestEffort / kPredictedMiss / kExpired — always arrive through
  /// the future, not as exceptions from this call). Throws
  /// std::invalid_argument for an unknown model and
  /// runtime::QueueClosedError after shutdown().
  std::future<double> submit(std::string_view model, data::Batch row);

  /// Async completion path: like submit(model, row) but delivers the
  /// prediction (or error) through `done` instead of a future, so an
  /// open-loop driver needs no thread or future per in-flight request.
  void submit(std::string_view model, data::Batch row, Callback done);

  /// Synchronous pre-batched entry: run a whole client batch through the
  /// model's e2e cache and pipeline on the calling thread. This is the path
  /// a batch-at-a-time frontend (ClipperSim) uses; it shares the cache and
  /// accounting with submit() but bypasses the queue — and the replica
  /// capacity gate: it snapshots the least-loaded replica's pipeline and
  /// runs concurrently with queued batches — so the client's batch
  /// composition is preserved exactly.
  std::vector<double> predict_batch(std::string_view model,
                                    const data::Batch& batch);

  /// Submit every row of `batch` as pointwise queries to `model` and wait
  /// for all of them (closed-loop convenience; rows coalesce with any other
  /// queued traffic).
  std::vector<double> predict_rows(std::string_view model,
                                   const data::Batch& batch);

  /// Single-model conveniences: route to the first registered model (the
  /// one the single-model constructor registers as "default").
  std::future<double> submit(data::Batch row);
  void submit(data::Batch row, Callback done);
  std::vector<double> predict_batch(const data::Batch& batch);
  std::vector<double> predict_rows(const data::Batch& batch);

  /// Stop accepting queries, drain everything accepted, join the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  ModelStats stats(std::string_view model) const;
  ServerStats stats() const;
  void reset_stats();

  /// The live (possibly AIMD-tuned) batch cap of `model`.
  std::size_t current_max_batch(std::string_view model) const;

  /// Predictive replica sizing: the smallest replica count whose
  /// steady-state predicted attainment passes the 95%-CI criterion against
  /// the model's `LoadControlConfig::target_attainment`, from the online
  /// EWMA service-time/arrival-rate model (see LoadController). Returns
  /// the current replica count while the estimators are cold. Advisory:
  /// an operator reads this and acts via add_replica/retire_replica; the
  /// background autoscaler applies the same model's CI bounds with
  /// hysteresis instead of this point recommendation.
  std::size_t recommended_replicas(std::string_view model) const;

  EndToEndCache& cache(std::string_view model);
  EndToEndCache& cache();  // first registered model
  /// The model's live pipeline (replica 0). With concurrent swaps prefer
  /// pipeline_snapshot(): the reference returned here is only safe while no
  /// swap retires the pipeline it points at.
  const core::OptimizedPipeline& pipeline(std::string_view model) const;
  /// Shared ownership of a replica's current pipeline (stable across
  /// swaps). The default reads replica 0.
  std::shared_ptr<const core::OptimizedPipeline> pipeline_snapshot(
      std::string_view model, std::size_t replica = 0) const;
  const ServerConfig& config() const { return cfg_; }

 private:
  struct Request {
    data::Batch row;
    std::promise<double> promise;  // used when `done` is empty
    Callback done;                 // async path when non-empty
    std::uint64_t cache_key = 0;
    std::chrono::steady_clock::time_point accepted;
  };

  /// One execution slot of a model's replica group. The pipeline pointer
  /// is swappable at runtime (hot-reload): workers take a snapshot per
  /// batch under pipeline_mu — a mutex-guarded shared_ptr copy,
  /// microseconds against a milliseconds-scale inference — so a swap never
  /// frees a pipeline mid-predict. exec_mu serializes batch execution on
  /// the slot (one batch at a time per replica); inflight_rows is the
  /// least-outstanding balancing signal. `draining` is the retire-on-drain
  /// flag: a draining replica takes no new batches (acquire and the sync
  /// path skip it) and is destroyed — via shared_ptr refcount — when the
  /// last group snapshot or in-flight batch holding it lets go.
  struct Replica {
    std::size_t index = 0;  // all-time slot index (replica_rows key)
    std::shared_ptr<const core::OptimizedPipeline> pipeline;
    mutable std::mutex pipeline_mu;
    std::mutex exec_mu;
    std::atomic<std::size_t> inflight_rows{0};
    std::atomic<bool> draining{false};

    Replica(std::size_t i, std::shared_ptr<const core::OptimizedPipeline> p)
        : index(i), pipeline(std::move(p)) {}

    std::shared_ptr<const core::OptimizedPipeline> snapshot() const {
      std::lock_guard<std::mutex> lock(pipeline_mu);
      return pipeline;
    }
  };

  /// An immutable published generation of a model's replica group. Resizes
  /// never mutate a published vector: add/retire build a new vector and
  /// swap the pointer under group_mu (RCU-style), so a worker's per-batch
  /// group snapshot stays valid — and keeps every replica in it alive —
  /// for as long as the worker holds it.
  using ReplicaGroup = std::vector<std::shared_ptr<Replica>>;

  struct ModelEntry {
    std::string name;
    ModelConfig cfg;
    /// Published replica group (see ReplicaGroup); read via
    /// snapshot_group(), swapped by add_replica/retire_replica under
    /// group_mu. Never empty.
    std::shared_ptr<const ReplicaGroup> group;
    mutable std::mutex group_mu;
    /// Lock-free mirror of group->size() for the scheduler's hot paths
    /// (capacity gate, admission, pressure scan).
    std::atomic<std::size_t> live_replicas{0};
    /// All-time slot counter: replica indices grow monotonically so
    /// replica_rows rows are never reused across retire/add. Under
    /// group_mu.
    std::size_t next_replica_index = 0;
    /// Retired replicas still referenced by in-flight work; weak_ptrs so
    /// drain completion is observable (they expire when the last batch
    /// reference drops). Pruned on read, under group_mu.
    mutable std::vector<std::weak_ptr<Replica>> drain_list;
    /// Replicas currently executing a batch; the scheduler's capacity
    /// gate (a model with every replica busy is skipped, not blocked on).
    std::atomic<std::size_t> busy_replicas{0};
    /// Rotates the replica scan start so equally idle replicas share work
    /// round-robin instead of slot 0 taking everything.
    std::atomic<std::uint64_t> replica_ticket{0};
    /// Pipeline version counter, bumped by every swap (full or rolling).
    /// E2e cache keys are salted with the generation observed at submit
    /// time, so an in-flight batch that started on a retired version
    /// writes its predictions into that version's (now unreachable) key
    /// space instead of re-polluting the cache after the swap's clear().
    std::atomic<std::uint64_t> generation{0};
    EndToEndCache cache;
    runtime::RequestQueue<Request> queue;
    AimdBatchController aimd;
    /// Online latency/queue model behind admission control and
    /// recommended_replicas. Always fed (estimates are cheap); decisions
    /// gated by cfg.load_control.enabled.
    LoadController load;

    mutable std::mutex stats_mu;
    std::size_t queries = 0;
    std::size_t cache_hits = 0;
    std::size_t batches = 0;
    std::size_t rows = 0;
    std::size_t largest_batch = 0;
    std::size_t stolen_batches = 0;
    std::size_t deadline_hits = 0;
    /// Overload outcome rows (see ModelStats): every offered query ends in
    /// exactly one of completion / expiry / typed shed / error.
    std::size_t completions = 0;
    std::size_t expired = 0;
    std::size_t shed_queue_full = 0;
    std::size_t shed_best_effort = 0;
    std::size_t shed_predicted_miss = 0;
    /// Post-start resizes of the replica group (operator or autoscaler).
    std::size_t scale_ups = 0;
    std::size_t scale_downs = 0;
    double inference_seconds = 0.0;
    /// Rows executed per all-time slot index (grow-only; retired slots
    /// keep their totals).
    std::vector<std::size_t> replica_rows;
    common::LatencyRecorder latencies;

    ModelEntry(std::string model_name,
               std::shared_ptr<const core::OptimizedPipeline> p, ModelConfig c);

    std::chrono::steady_clock::duration deadline_duration() const;
    /// The current group generation (a mutex-guarded shared_ptr copy —
    /// same idiom and cost as Replica::snapshot()).
    std::shared_ptr<const ReplicaGroup> snapshot_group() const;
    /// Unexpired drain_list entries (prunes expired ones in place).
    std::size_t draining_count() const;
  };

  /// Lookup that throws std::invalid_argument for unknown names. The
  /// registry is append-only and frozen once serving starts, so lookups
  /// from serving threads need no lock (see start_serving).
  ModelEntry& find_model(std::string_view model) const;
  ModelEntry& first_model() const;

  /// Spawn the workers on the first request (freezes the registry).
  void start_serving();
  /// Shared enqueue path behind both submit overloads.
  void submit_request(ModelEntry& m, data::Batch row, Callback done,
                      std::promise<double>* inline_promise);
  void worker_loop(std::size_t worker_index);
  /// SLO-aware pick: the schedulable model (non-empty queue, free replica)
  /// whose head request is most urgent by (priority, earliest deadline);
  /// nullptr when nothing is schedulable right now.
  ModelEntry* pick_model_slo() const;
  /// Claim an execution slot: the least-outstanding free live replica
  /// (rotating ties; draining replicas are skipped), or — if a racing
  /// worker took the last free slot — a blocking wait on the least-loaded
  /// live one. Returns with exec_mu held; the shared_ptr keeps the replica
  /// alive even if it is retired mid-batch.
  std::shared_ptr<Replica> acquire_replica(ModelEntry& m);
  void release_replica(ModelEntry& m, Replica& rep);
  /// Acquire a replica, coalesce up to the model's live cap starting from
  /// `first` (after the replica is held, so the batch fills with whatever
  /// queued during the wait), execute, and fulfill completions.
  void run_batch(ModelEntry& m, Request first, bool stolen);
  void execute(ModelEntry& m, Replica& rep, std::vector<Request>& reqs,
               bool stolen);
  /// Resolve `req` with a typed overload rejection and bump the matching
  /// shed counter. Never throws into the submit path.
  void reject(ModelEntry& m, Request& req, RejectReason reason);
  /// Complete a dead-on-arrival request with kExpired, counting the miss
  /// exactly once in the attainment accounting.
  void expire(ModelEntry& m, Request& req);
  /// True when any model of a strictly higher SLO class than `m` reports
  /// overload: its AIMD controller is backing off or its load model
  /// statistically predicts missed attainment at steady state. This is
  /// the shed-best-effort-first signal.
  bool higher_class_pressure(const ModelEntry& m) const;
  /// True once shutdown started and every model queue is empty.
  bool drained_after_close() const;
  static void complete(Request& req, double prediction);
  static void complete_error(Request& req, const std::exception_ptr& err);

  const ServerConfig cfg_;

  mutable std::mutex registry_mu_;  // guards registration & start
  std::vector<std::unique_ptr<ModelEntry>> models_;  // registration order
  std::unordered_map<std::string, ModelEntry*, NameHash, std::equal_to<>>
      by_name_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::vector<ModelEntry*> shards_;  // worker i's home model
  std::vector<std::thread> workers_;
  bool joined_ = false;
  std::mutex shutdown_mu_;
  /// Background replica controller (cfg_.autoscale.enabled); created in
  /// start_serving under registry_mu_, stopped first in shutdown.
  std::unique_ptr<Autoscaler> autoscaler_;
};

}  // namespace willump::serving
