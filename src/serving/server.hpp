#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "core/optimizer.hpp"
#include "runtime/request_queue.hpp"
#include "serving/e2e_cache.hpp"

namespace willump::serving {

/// Threading and batching policy of the request-level serving engine.
struct ServerConfig {
  /// Worker threads draining the request queue. 0 = synchronous-only: no
  /// threads are spawned, submit() executes inline on the caller (no
  /// coalescing) — the right mode when only predict_batch() is used, e.g.
  /// by a batch-at-a-time frontend embedding the engine.
  std::size_t num_workers = 1;
  /// Adaptive micro-batching (the Clipper policy, NSDI 2017 §4.3): a worker
  /// coalesces up to `max_batch` queued pointwise queries into one pipeline
  /// execution...
  std::size_t max_batch = 16;
  /// ...and flushes a partially filled batch once `max_delay_micros` has
  /// elapsed since its first query was accepted. 0 = drain-only: execute
  /// whatever is queued without waiting, so an idle engine adds no latency.
  double max_delay_micros = 0.0;
  /// Request-queue bound; pushes beyond it block (back-pressure). 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// Clipper-style end-to-end prediction cache, checked before enqueue.
  bool enable_e2e_cache = false;
  std::size_t e2e_cache_capacity = 0;
};

/// Aggregate serving counters (snapshot; see Server::stats()).
struct ServerStats {
  std::size_t queries = 0;       // pointwise queries accepted via submit()
  std::size_t cache_hits = 0;    // answered from the e2e cache, never enqueued
  std::size_t batches = 0;       // pipeline executions (coalesced or client batches)
  std::size_t rows = 0;          // rows through the pipeline
  std::size_t largest_batch = 0; // biggest single pipeline execution
  double inference_seconds = 0.0;
  common::Summary latency;       // submit()-to-completion seconds per query
  std::size_t latency_samples = 0;

  double mean_batch_rows() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(rows) / static_cast<double>(batches);
  }
};

/// A concurrent request-level serving engine over one optimized pipeline.
///
/// This is the frontend the paper's Table 6 experiment presupposes: clients
/// submit pointwise queries from any number of threads; N workers drain a
/// bounded MPMC queue and amortize fixed per-query overheads by coalescing
/// queued queries into micro-batches (Clipper's adaptive batching), executed
/// through core::OptimizedPipeline — whose predict path is thread-safe for
/// exactly this sharing. An optional Clipper-style end-to-end cache answers
/// repeat queries before they are enqueued.
///
/// Every future returned by submit() is eventually satisfied: shutdown
/// closes the queue to new work but drains accepted requests first.
class Server {
 public:
  Server(const core::OptimizedPipeline* pipeline, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one pointwise query (a single-row batch). Returns a future for
  /// its prediction; blocks only when the request queue is full. Throws
  /// runtime::QueueClosedError after shutdown().
  std::future<double> submit(data::Batch row);

  /// Synchronous pre-batched entry: run a whole client batch through the
  /// e2e cache and the pipeline on the calling thread. This is the path a
  /// batch-at-a-time frontend (ClipperSim) uses; it shares the cache and
  /// accounting with submit() but bypasses the queue, so the client's batch
  /// composition is preserved exactly.
  std::vector<double> predict_batch(const data::Batch& batch);

  /// Submit every row of `batch` as pointwise queries and wait for all of
  /// them (closed-loop convenience; rows coalesce with any other queued
  /// traffic).
  std::vector<double> predict_rows(const data::Batch& batch);

  /// Stop accepting queries, drain everything accepted, join the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  ServerStats stats() const;
  void reset_stats();

  EndToEndCache& cache() { return cache_; }
  const ServerConfig& config() const { return cfg_; }
  const core::OptimizedPipeline& pipeline() const { return *pipeline_; }

 private:
  struct Request {
    data::Batch row;
    std::promise<double> promise;
    std::uint64_t cache_key = 0;
    std::chrono::steady_clock::time_point accepted;
  };

  void worker_loop();
  /// Execute one coalesced batch and fulfill its promises.
  void execute(std::vector<Request>& reqs);
  void record_latencies(const std::vector<Request>& reqs,
                        std::chrono::steady_clock::time_point completed);

  const core::OptimizedPipeline* pipeline_;
  const ServerConfig cfg_;
  EndToEndCache cache_;
  runtime::RequestQueue<Request> queue_;
  std::vector<std::thread> workers_;
  bool joined_ = false;
  std::mutex shutdown_mu_;

  mutable std::mutex stats_mu_;
  std::size_t queries_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t batches_ = 0;
  std::size_t rows_ = 0;
  std::size_t largest_batch_ = 0;
  double inference_seconds_ = 0.0;
  common::LatencyRecorder latencies_;
};

}  // namespace willump::serving
