#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serving/server.hpp"

namespace willump::serving {

/// Shape of a router frontend: how many shard registries it runs and how
/// they are configured.
struct RouterConfig {
  /// Shard registries behind the router (min 1). Each shard is a full
  /// `serving::Server` — its own workers, queues, caches, and scheduler —
  /// so shards are isolation domains: a saturated shard cannot consume
  /// another shard's workers.
  std::size_t num_shards = 2;
  /// Engine config applied to every shard (workers per shard, scheduling
  /// mode, steal quantum).
  ServerConfig shard;
  /// Virtual nodes per shard on the consistent-hash ring. More vnodes
  /// smooth the placement distribution; the default is ample for the
  /// shard counts a single process hosts.
  std::size_t virtual_nodes = 64;
};

/// Aggregate counters over every shard (see Router::stats()).
struct RouterStats {
  std::size_t shards = 0;
  std::size_t models = 0;
  /// Requests the router routed to a shard (both completion paths).
  std::size_t routed_queries = 0;
  /// Async completions the router forwarded back to client callbacks, and
  /// how many of them delivered an error.
  std::size_t forwarded_completions = 0;
  std::size_t forwarded_errors = 0;
  /// Subset of forwarded_errors that were typed overload rejections
  /// (`RejectedError`: queue-full, shed, predicted-miss, or expired) from
  /// the owning shard — shed load passing back through the router, not
  /// execution failures. Future-path rejections travel inside the future
  /// and are counted by the shard's own ModelStats, not here.
  std::size_t forwarded_rejections = 0;
  /// Sum of the shards' aggregate ServerStats.
  ServerStats serving;
};

/// A process-level serving frontend that shards a model fleet across
/// several independent registries — the horizontal step past one
/// `serving::Server`: one engine's worker pool, queues, and stats mutexes
/// stop scaling at some model count, and one OS process is one fault /
/// upgrade domain. `Router` owns N `Server` shards and places every model
/// on exactly one of them by **consistent hashing** of the model name
/// (a fixed ring of `virtual_nodes` points per shard, FNV-1a hashed, so
/// placement is stable across runs and processes and adding a shard moves
/// only ~1/N of the names).
///
/// The router is a thin, lock-free-on-the-hot-path forwarder: `submit`
/// resolves the model's shard from a placement table frozen at
/// registration time and forwards the request; async completions fire on
/// the owning shard's worker and are **forwarded** through the router's
/// accounting wrapper to the client callback — the client cannot tell
/// which shard served it. Registration (`register_model`, `load_model`,
/// `add_replica`) and rollouts (`swap_model`, `swap_replica`) forward to
/// the placed shard under the same rules as `Server`.
///
/// Thread safety: mirror of `Server` — registration must finish before
/// the first request (std::logic_error afterwards); everything else is
/// safe to call concurrently. `shutdown()` stops every shard and is run
/// by the destructor.
class Router {
 public:
  explicit Router(RouterConfig cfg = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Consistent-hash placement of `model` (pure function of the name and
  /// ring; usable before registration, e.g. to pre-copy artifacts near
  /// their shard).
  std::size_t shard_of(std::string_view model) const;

  std::size_t num_shards() const { return shards_.size(); }
  /// Direct access to one shard registry (e.g. for per-shard stats).
  Server& shard(std::size_t i) { return *shards_.at(i); }
  const Server& shard(std::size_t i) const { return *shards_.at(i); }

  /// Register `pipeline` on the model's consistent-hash shard. Same
  /// contract as Server::register_model (duplicate names rejected
  /// fleet-wide, registration frozen once any shard starts serving).
  void register_model(std::string name, const core::OptimizedPipeline* pipeline,
                      ModelConfig cfg = {});
  void register_model(std::string name,
                      std::shared_ptr<const core::OptimizedPipeline> pipeline,
                      ModelConfig cfg = {});
  /// Cold-start a model from an artifact on its placed shard.
  void load_model(std::string name, const std::string& artifact_path,
                  ModelConfig cfg = {});

  /// Replica-group and rollout operations, forwarded to the owning shard;
  /// same semantics and error contracts as the Server methods. add_replica
  /// and retire_replica are legal under live traffic (runtime resizes);
  /// the per-shard autoscalers (RouterConfig::shard.autoscale, forwarded
  /// into every shard's Server) drive the same paths automatically.
  void add_replica(std::string_view model,
                   std::shared_ptr<const core::OptimizedPipeline> pipeline);
  void add_replica(std::string_view model, const std::string& artifact_path);
  /// Cold-start one replica from the model's registered artifact path
  /// (ModelConfig::artifact_path), falling back to a Parts clone — the
  /// autoscaler's scale-up path, forwarded.
  void add_replica(std::string_view model);
  /// Drain one replica away (see Server::retire_replica).
  void retire_replica(std::string_view model);
  std::size_t replica_count(std::string_view model) const;
  /// Retired replicas of `model` still finishing outstanding work.
  std::size_t draining_replicas(std::string_view model) const;
  void swap_model(std::string_view model, const std::string& artifact_path);
  void swap_model(std::string_view model,
                  std::shared_ptr<const core::OptimizedPipeline> pipeline);
  void swap_replica(std::string_view model, std::size_t replica,
                    const std::string& artifact_path);
  void swap_replica(std::string_view model, std::size_t replica,
                    std::shared_ptr<const core::OptimizedPipeline> pipeline);

  /// Registered model names in registration order (across all shards).
  std::vector<std::string> model_names() const;
  bool has_model(std::string_view model) const;

  /// Route one pointwise query to the model's shard; future-based
  /// completion. Throws std::invalid_argument for an unknown model and
  /// runtime::QueueClosedError after shutdown().
  std::future<double> submit(std::string_view model, data::Batch row);
  /// Async path with a forwarded completion: `done` is invoked on the
  /// owning shard's worker (or inline for cache hits), wrapped so the
  /// router's forwarding counters observe every completion. Must not
  /// throw (same contract as Server::Callback).
  void submit(std::string_view model, data::Batch row, Server::Callback done);

  /// Synchronous conveniences, forwarded to the owning shard.
  std::vector<double> predict_batch(std::string_view model,
                                    const data::Batch& batch);
  std::vector<double> predict_rows(std::string_view model,
                                   const data::Batch& batch);

  /// Predictive replica sizing from the owning shard's online load model
  /// (see Server::recommended_replicas).
  std::size_t recommended_replicas(std::string_view model) const;

  /// Per-model counters from the owning shard.
  ModelStats stats(std::string_view model) const;
  /// Fleet aggregate plus router-level forwarding counters.
  RouterStats stats() const;
  void reset_stats();

  /// Stop every shard: close queues, drain accepted work, join workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

 private:
  Server& owner(std::string_view model) const;
  /// Freeze the placement table on the first routed request (publishes
  /// routed_ under placement_mu_ so lock-free lookups are safe).
  void freeze_routing();

  RouterConfig cfg_;
  std::vector<std::unique_ptr<Server>> shards_;
  /// Consistent-hash ring: (point, shard), sorted by point.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  /// Placement table frozen at registration: model -> shard. Reads on the
  /// request path take no lock (same freeze discipline as Server's name
  /// table) and no per-request std::string (transparent NameHash).
  mutable std::mutex placement_mu_;
  std::unordered_map<std::string, std::size_t, NameHash, std::equal_to<>>
      placement_;
  std::vector<std::string> names_;  // registration order
  std::atomic<bool> routed_{false};  // set by the first submit

  mutable std::atomic<std::size_t> routed_queries_{0};
  mutable std::atomic<std::size_t> forwarded_completions_{0};
  mutable std::atomic<std::size_t> forwarded_errors_{0};
  mutable std::atomic<std::size_t> forwarded_rejections_{0};
};

}  // namespace willump::serving
