#include "serving/e2e_cache.hpp"

#include <bit>

#include "common/hash.hpp"

namespace willump::serving {

std::uint64_t EndToEndCache::key_of(const data::Batch& row) {
  std::uint64_t h = 0xE2E;
  for (const auto& name : row.names()) {
    h = common::hash_combine(h, common::fnv1a(name));
    const auto& col = row.get(name);
    switch (col.type()) {
      case data::ColumnType::Int:
        h = common::hash_combine(
            h, common::hash_u64(static_cast<std::uint64_t>(col.ints()[0])));
        break;
      case data::ColumnType::Double:
        h = common::hash_combine(
            h, common::hash_u64(std::bit_cast<std::uint64_t>(col.doubles()[0])));
        break;
      case data::ColumnType::String:
        h = common::hash_combine(h, common::fnv1a(col.strings()[0]));
        break;
    }
  }
  return h;
}

}  // namespace willump::serving
