#include "serving/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"
#include "common/timer.hpp"
#include "serialize/artifact.hpp"

namespace willump::serving {

namespace {

constexpr const char* kDefaultModelName = "default";

std::chrono::steady_clock::duration micros_duration(double micros) {
  return std::chrono::microseconds(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(micros)));
}

/// Resolve the 0 = derive-from-deadline convention (see AimdConfig) before
/// the controller is constructed: the batch-latency target defaults to a
/// fraction of the model's per-query deadline.
AimdConfig resolve_aimd(const ModelConfig& cfg) {
  AimdConfig a = cfg.aimd;
  if (a.enabled && a.slo_micros <= 0.0) a.slo_micros = cfg.slo.batch_slo_micros();
  return a;
}

}  // namespace

Server::ModelEntry::ModelEntry(std::string model_name,
                               std::shared_ptr<const core::OptimizedPipeline> p,
                               ModelConfig c)
    : name(std::move(model_name)),
      cfg(c),
      cache(c.e2e_cache_capacity),
      queue(c.queue_capacity),
      aimd(c.max_batch, resolve_aimd(c)),
      load(c.load_control, c.slo.deadline_micros) {
  // The initial replica group shares the registered pipeline instance
  // (execution slots); add_replica() appends slots with their own.
  const std::size_t n = std::max<std::size_t>(1, c.replicas);
  auto g = std::make_shared<ReplicaGroup>();
  g->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    g->push_back(std::make_shared<Replica>(i, p));
  }
  group = std::move(g);
  live_replicas.store(n, std::memory_order_release);
  next_replica_index = n;
  replica_rows.assign(n, 0);
}

std::shared_ptr<const Server::ReplicaGroup> Server::ModelEntry::snapshot_group()
    const {
  std::lock_guard<std::mutex> lock(group_mu);
  return group;
}

std::size_t Server::ModelEntry::draining_count() const {
  std::lock_guard<std::mutex> lock(group_mu);
  drain_list.erase(std::remove_if(drain_list.begin(), drain_list.end(),
                                  [](const std::weak_ptr<Replica>& w) {
                                    return w.expired();
                                  }),
                   drain_list.end());
  return drain_list.size();
}

std::chrono::steady_clock::duration Server::ModelEntry::deadline_duration()
    const {
  return micros_duration(cfg.slo.deadline_micros);
}

Server::Server(ServerConfig cfg) : cfg_(cfg) {}

Server::Server(const core::OptimizedPipeline* pipeline, ServerConfig cfg,
               ModelConfig model_cfg)
    : cfg_(cfg) {
  register_model(kDefaultModelName, pipeline, model_cfg);
  start_serving();
}

Server::~Server() { shutdown(); }

void Server::register_model(std::string name,
                            const core::OptimizedPipeline* pipeline,
                            ModelConfig cfg) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Server::register_model: null pipeline");
  }
  // Borrowed registration: alias a no-op deleter so ownership stays with
  // the caller, as it always has for this overload.
  register_model(std::move(name),
                 std::shared_ptr<const core::OptimizedPipeline>(
                     pipeline, [](const core::OptimizedPipeline*) {}),
                 cfg);
}

void Server::register_model(
    std::string name, std::shared_ptr<const core::OptimizedPipeline> pipeline,
    ModelConfig cfg) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Server::register_model: null pipeline");
  }
  if (cfg.slo.deadline_micros <= 0.0) {
    throw std::invalid_argument("Server::register_model: model \"" + name +
                                "\" has a non-positive SLO deadline");
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Server::register_model: the engine is shut down");
  }
  if (started_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Server::register_model: serving has started; register every model "
        "before the first request");
  }
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("Server::register_model: duplicate model \"" +
                                name + "\"");
  }
  auto entry = std::make_unique<ModelEntry>(name, std::move(pipeline), cfg);
  by_name_.emplace(entry->name, entry.get());
  models_.push_back(std::move(entry));
}

void Server::load_model(std::string name, const std::string& artifact_path,
                        ModelConfig cfg) {
  // Load before touching the registry: a corrupt artifact throws
  // SerializeError and the registry is exactly as it was.
  auto pipeline = std::make_shared<const core::OptimizedPipeline>(
      serialize::load_pipeline(artifact_path));
  // Remember where this model came from: add_replica(model) — the
  // autoscaler's scale-up — cold-starts further replicas from the same
  // artifact unless the caller registered a different one.
  if (cfg.artifact_path.empty()) cfg.artifact_path = artifact_path;
  register_model(std::move(name), std::move(pipeline), cfg);
}

void Server::add_replica(
    std::string_view model,
    std::shared_ptr<const core::OptimizedPipeline> pipeline) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Server::add_replica: null pipeline");
  }
  ModelEntry& m = find_model(model);
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::logic_error("Server::add_replica: the engine is shut down");
  }
  // Post-start additions are resizes (the autoscaler's scale-up or an
  // operator grow); pre-start additions just build the initial group.
  const bool resize = started_.load(std::memory_order_acquire);
  {
    // Publish a new group generation: copy, append, swap. In-flight
    // batches keep their old snapshot; the next acquire sees the new slot.
    std::lock_guard<std::mutex> lock(m.group_mu);
    auto next = std::make_shared<ReplicaGroup>(*m.group);
    next->push_back(
        std::make_shared<Replica>(m.next_replica_index++, std::move(pipeline)));
    {
      std::lock_guard<std::mutex> stats_lock(m.stats_mu);
      m.replica_rows.resize(m.next_replica_index, 0);
      if (resize) ++m.scale_ups;
    }
    m.live_replicas.store(next->size(), std::memory_order_release);
    m.group = std::move(next);
  }
}

void Server::add_replica(std::string_view model,
                         const std::string& artifact_path) {
  add_replica(model, std::make_shared<const core::OptimizedPipeline>(
                         serialize::load_pipeline(artifact_path)));
}

void Server::add_replica(std::string_view model) {
  ModelEntry& m = find_model(model);
  if (!m.cfg.artifact_path.empty()) {
    add_replica(model, m.cfg.artifact_path);
    return;
  }
  // No registered artifact: clone the live pipeline's Parts. The clone
  // shares the fitted state (executor, cascade models — the same sharing
  // the intern pool gives artifact loads) and owns fresh runtime state
  // (feature cache, counters).
  const auto live = m.snapshot_group()->front()->snapshot();
  core::OptimizedPipeline::Parts parts;
  parts.executor = live->executor_ptr();
  parts.cascade = live->cascade();
  parts.use_cascades = live->use_cascades();
  parts.topk = live->topk_config();
  parts.feature_cache = live->cache() != nullptr;
  parts.cache_capacity = live->cache_capacity_per_ifv();
  parts.parallel_threads = live->parallel_threads();
  parts.autotune = live->autotune_report();
  add_replica(model, std::make_shared<const core::OptimizedPipeline>(
                         std::move(parts)));
}

void Server::retire_replica(std::string_view model) {
  ModelEntry& m = find_model(model);
  {
    std::lock_guard<std::mutex> lock(m.group_mu);
    if (m.group->size() <= 1) {
      throw std::logic_error("Server::retire_replica: model \"" +
                             std::string(model) +
                             "\" has a single replica; a group never drains "
                             "to zero");
    }
    // Retire the newest slot (LIFO): slot 0 — the originally registered
    // pipeline — serves for the group's lifetime. Mark it draining before
    // publishing the shrunk group, so even a worker holding the old
    // generation stops routing new batches to it; the batch it may be
    // executing right now finishes normally (the worker's shared_ptr keeps
    // it alive), after which the refcount frees it and its drain_list
    // entry expires.
    std::shared_ptr<Replica> victim = m.group->back();
    victim->draining.store(true, std::memory_order_release);
    auto next = std::make_shared<ReplicaGroup>(m.group->begin(),
                                               m.group->end() - 1);
    m.live_replicas.store(next->size(), std::memory_order_release);
    m.group = std::move(next);
    m.drain_list.emplace_back(victim);
  }
  std::lock_guard<std::mutex> stats_lock(m.stats_mu);
  ++m.scale_downs;
}

std::size_t Server::replica_count(std::string_view model) const {
  return find_model(model).snapshot_group()->size();
}

std::size_t Server::draining_replicas(std::string_view model) const {
  return find_model(model).draining_count();
}

LoadSnapshot Server::load_snapshot(std::string_view model) const {
  return find_model(model).load.snapshot();
}

void Server::swap_model(std::string_view model,
                        const std::string& artifact_path) {
  swap_model(model, std::make_shared<const core::OptimizedPipeline>(
                        serialize::load_pipeline(artifact_path)));
}

void Server::swap_model(
    std::string_view model,
    std::shared_ptr<const core::OptimizedPipeline> pipeline) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Server::swap_model: null pipeline");
  }
  ModelEntry& m = find_model(model);
  {
    // One group snapshot covers the rollout; a replica added concurrently
    // with the swap keeps the pipeline it was added with (the caller
    // chooses which version new capacity serves).
    const auto group = m.snapshot_group();
    for (const auto& rep : *group) {
      std::lock_guard<std::mutex> lock(rep->pipeline_mu);
      rep->pipeline = pipeline;
    }
  }
  // Cached predictions belong to the retired pipeline. Bumping the
  // generation retires the old key space (requests already past submit
  // keep their old-generation salt, so their late puts are unreachable,
  // never served as the new version's answers); the clear reclaims the
  // memory behind the retired keys.
  m.generation.fetch_add(1, std::memory_order_release);
  m.cache.clear();
}

void Server::swap_replica(std::string_view model, std::size_t replica,
                          const std::string& artifact_path) {
  swap_replica(model, replica,
               std::make_shared<const core::OptimizedPipeline>(
                   serialize::load_pipeline(artifact_path)));
}

void Server::swap_replica(
    std::string_view model, std::size_t replica,
    std::shared_ptr<const core::OptimizedPipeline> pipeline) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Server::swap_replica: null pipeline");
  }
  ModelEntry& m = find_model(model);
  {
    // `replica` indexes the current live group (position, not all-time
    // slot index): a rolling rollout walks 0..replica_count()-1.
    const auto group = m.snapshot_group();
    if (replica >= group->size()) {
      throw std::invalid_argument("Server::swap_replica: model \"" +
                                  std::string(model) + "\" has no replica " +
                                  std::to_string(replica));
    }
    std::lock_guard<std::mutex> lock((*group)[replica]->pipeline_mu);
    (*group)[replica]->pipeline = std::move(pipeline);
  }
  // A rolling upgrade serves two versions side by side; cached predictions
  // cannot be attributed to the surviving version, so the whole key space
  // is retired exactly as in a full swap.
  m.generation.fetch_add(1, std::memory_order_release);
  m.cache.clear();
}

std::vector<std::string> Server::model_names() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& m : models_) names.push_back(m->name);
  return names;
}

bool Server::has_model(std::string_view model) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return by_name_.find(model) != by_name_.end();
}

Server::ModelEntry& Server::find_model(std::string_view model) const {
  // Once serving has started the registry is frozen, so lookups from the
  // request path take no lock. Entries are heap-allocated and stable, so a
  // reference obtained under the pre-start lock stays valid regardless of
  // later (rejected) registration attempts.
  auto lookup = [&]() -> ModelEntry* {
    auto it = by_name_.find(model);
    return it == by_name_.end() ? nullptr : it->second;
  };
  ModelEntry* entry = nullptr;
  if (started_.load(std::memory_order_acquire)) {
    entry = lookup();
  } else {
    std::lock_guard<std::mutex> lock(registry_mu_);
    entry = lookup();
  }
  if (entry == nullptr) {
    throw std::invalid_argument("Server: unknown model \"" +
                                std::string(model) + "\"");
  }
  return *entry;
}

Server::ModelEntry& Server::first_model() const {
  if (!started_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (models_.empty()) {
      throw std::logic_error("Server: no models registered");
    }
    return *models_.front();
  }
  return *models_.front();
}

void Server::start_serving() {
  if (started_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  // A submit racing shutdown() must not spawn workers after the join ran:
  // they would exit unjoined and ~Server would std::terminate.
  if (stopping_.load(std::memory_order_acquire)) {
    throw runtime::QueueClosedError();
  }
  if (models_.empty()) {
    throw std::logic_error("Server: no models registered");
  }
  if (cfg_.num_workers > 0) {
    // Shard workers over the models by ModelConfig::workers weight: deal
    // worker i the i-th slot of a ring where each model appears `workers`
    // times, so a weight-2 model gets twice the dedicated drain capacity.
    std::vector<ModelEntry*> ring;
    for (const auto& m : models_) {
      const std::size_t w = std::max<std::size_t>(1, m->cfg.workers);
      for (std::size_t i = 0; i < w; ++i) ring.push_back(m.get());
    }
    if (!cfg_.work_stealing) {
      // Without stealing, a model whose every ring slot falls outside the
      // first num_workers positions would never be drained and its submits
      // would block forever — an invalid configuration, not a runtime
      // condition. (Models occupy consecutive ring slots, so checking each
      // model's first slot is exact.) Validated before shards_ is built so
      // a failed start leaves no partial state behind.
      std::size_t first_slot = 0;
      for (const auto& m : models_) {
        if (first_slot >= cfg_.num_workers) {
          throw std::logic_error(
              "Server: work_stealing is disabled and model \"" + m->name +
              "\" has no home worker; raise num_workers or enable stealing");
        }
        first_slot += std::max<std::size_t>(1, m->cfg.workers);
      }
    }
    shards_.reserve(cfg_.num_workers);
    for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
      shards_.push_back(ring[i % ring.size()]);
    }
  }
  // Publish the frozen registry before any worker (or lock-free lookup)
  // can observe started_ == true.
  started_.store(true, std::memory_order_release);
  workers_.reserve(cfg_.num_workers);
  for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (cfg_.autoscale.enabled && cfg_.num_workers > 0) {
    // The controller starts only with a worker pool: the synchronous-only
    // mode spawns no background threads by contract.
    autoscaler_ = std::make_unique<Autoscaler>(*this, cfg_.autoscale);
    autoscaler_->start();
  }
}

void Server::shutdown() {
  stopping_.store(true, std::memory_order_release);
  Autoscaler* scaler = nullptr;
  {
    // Close under the registry lock so a racing register_model either
    // observes stopping_ or has its queue closed here. The autoscaler
    // pointer is read under the same lock (start_serving sets it there)
    // but stopped outside it: the controller thread takes registry_mu_
    // through the public API it drives.
    std::lock_guard<std::mutex> lock(registry_mu_);
    scaler = autoscaler_.get();
    for (const auto& m : models_) m->queue.close();
  }
  if (scaler != nullptr) scaler->stop();
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (joined_) return;
  for (auto& w : workers_) w.join();
  joined_ = true;
}

void Server::complete(Request& req, double prediction) {
  if (req.done) {
    try {
      req.done(prediction, nullptr);
    } catch (...) {
      // Completion callbacks must not throw; swallowing here protects the
      // worker (and the other requests of the batch) from a client bug.
    }
  } else {
    req.promise.set_value(prediction);
  }
}

void Server::complete_error(Request& req, const std::exception_ptr& err) {
  if (req.done) {
    try {
      req.done(0.0, err);
    } catch (...) {
    }
  } else {
    req.promise.set_exception(err);
  }
}

std::future<double> Server::submit(std::string_view model, data::Batch row) {
  ModelEntry& m = find_model(model);
  std::promise<double> promise;
  auto future = promise.get_future();
  submit_request(m, std::move(row), Callback{}, &promise);
  return future;
}

void Server::submit(std::string_view model, data::Batch row, Callback done) {
  if (!done) {
    throw std::invalid_argument("Server::submit: empty completion callback");
  }
  ModelEntry& m = find_model(model);
  submit_request(m, std::move(row), std::move(done), nullptr);
}

std::future<double> Server::submit(data::Batch row) {
  ModelEntry& m = first_model();
  std::promise<double> promise;
  auto future = promise.get_future();
  submit_request(m, std::move(row), Callback{}, &promise);
  return future;
}

void Server::submit(data::Batch row, Callback done) {
  if (!done) {
    throw std::invalid_argument("Server::submit: empty completion callback");
  }
  ModelEntry& m = first_model();
  submit_request(m, std::move(row), std::move(done), nullptr);
}

void Server::submit_request(ModelEntry& m, data::Batch row, Callback done,
                            std::promise<double>* inline_promise) {
  if (row.num_rows() != 1) {
    throw std::invalid_argument("Server::submit: expects a single-row batch");
  }
  // Reject before counting or consulting the cache: a rejected request is
  // not a served query. (A close racing past this check is still caught by
  // the failed push below.)
  if (stopping_.load(std::memory_order_acquire)) {
    throw runtime::QueueClosedError();
  }
  start_serving();
  {
    std::lock_guard<std::mutex> lock(m.stats_mu);
    ++m.queries;
  }

  Request req;
  req.accepted = std::chrono::steady_clock::now();
  req.done = std::move(done);
  if (inline_promise != nullptr) req.promise = std::move(*inline_promise);

  if (m.cfg.enable_e2e_cache) {
    req.cache_key = common::hash_combine(
        EndToEndCache::key_of(row), m.generation.load(std::memory_order_acquire));
    if (auto hit = m.cache.get(req.cache_key)) {
      // Answered before enqueue: the whole pipeline is skipped, which is
      // the point of end-to-end caching (paper §4.5).
      {
        std::lock_guard<std::mutex> lock(m.stats_mu);
        ++m.cache_hits;
        // Zero-latency completions meet any deadline — and must land in
        // the same outcome rows as executed completions, so attainment()
        // keeps one denominator across the cached and executed paths.
        ++m.deadline_hits;
        ++m.completions;
        m.latencies.record(0.0);
      }
      complete(req, *hit);
      return;
    }
  }
  req.row = std::move(row);

  // The load model sees every request that will consume execution capacity
  // (cache hits never reach here), so its arrival-rate EWMA reflects the
  // work the replicas actually face.
  m.load.on_arrival(req.accepted);

  // Admission control (admission → shed → expire pipeline, stage one).
  // Rejections resolve the request through its future/callback — submit
  // itself never throws for overload — shedding best-effort classes first.
  if (m.cfg.load_control.enabled) {
    if (m.cfg.slo.is_best_effort() && higher_class_pressure(m)) {
      reject(m, req, RejectReason::kShedBestEffort);
      return;
    }
    if (!m.load.admit(m.queue.size(),
                      m.live_replicas.load(std::memory_order_acquire))) {
      reject(m, req, RejectReason::kPredictedMiss);
      return;
    }
  }

  if (cfg_.num_workers == 0) {
    // Synchronous-only configuration: execute the lone request inline on
    // the caller's thread. No queue, no coalescing; concurrent inline
    // callers serialize per replica like worker batches do.
    std::vector<Request> reqs;
    reqs.push_back(std::move(req));
    const auto rep = acquire_replica(m);
    execute(m, *rep, reqs, /*stolen=*/false);
    release_replica(m, *rep);
    return;
  }

  // Never block the producer against a saturated model: wait at most the
  // configured bound for space, then shed with a typed kQueueFull. The old
  // blocking push() could deadlock a submitting thread forever behind a
  // model whose workers were themselves wedged.
  switch (m.queue.try_push_for(
      req, micros_duration(m.cfg.load_control.submit_wait_micros))) {
    case runtime::PushResult::kPushed:
      return;
    case runtime::PushResult::kClosed:
      throw runtime::QueueClosedError();
    case runtime::PushResult::kFull:
      reject(m, req, RejectReason::kQueueFull);
      return;
  }
}

void Server::reject(ModelEntry& m, Request& req, RejectReason reason) {
  {
    std::lock_guard<std::mutex> lock(m.stats_mu);
    switch (reason) {
      case RejectReason::kQueueFull:
        ++m.shed_queue_full;
        break;
      case RejectReason::kShedBestEffort:
        ++m.shed_best_effort;
        break;
      case RejectReason::kPredictedMiss:
        ++m.shed_predicted_miss;
        break;
      case RejectReason::kExpired:
        // Expiries go through expire(): they carry attainment accounting.
        break;
    }
  }
  complete_error(req, std::make_exception_ptr(RejectedError(m.name, reason)));
}

void Server::expire(ModelEntry& m, Request& req) {
  const auto waited = std::chrono::steady_clock::now() - req.accepted;
  {
    std::lock_guard<std::mutex> lock(m.stats_mu);
    ++m.expired;
    // The miss is counted exactly once, here: the request never reaches
    // execute(), so recording its wait as a (necessarily over-deadline)
    // latency keeps deadline_attainment() honest without double counting.
    m.latencies.record(std::chrono::duration<double>(waited).count());
  }
  complete_error(req, std::make_exception_ptr(
                          RejectedError(m.name, RejectReason::kExpired)));
  // Drop the worker's shared-state reference now rather than when the
  // dequeue loop later overwrites this Request: while the submitter still
  // holds its future, the final release of the state — and of the rethrown
  // exception inside it — then happens on the consumer's thread.
  { auto fulfilled = std::move(req.promise); }
}

bool Server::higher_class_pressure(const ModelEntry& m) const {
  // One pass over the frozen registry: a strictly higher class is "under
  // pressure" when its AIMD controller reports a violation streak (it is
  // backing off, not probing) or its load model statistically predicts
  // missed attainment at steady state. Either signal means capacity that
  // best-effort work would consume is about to be needed.
  for (const auto& other : models_) {
    if (other.get() == &m) continue;
    if (other->cfg.slo.priority <= m.cfg.slo.priority) continue;
    if (other->aimd.under_pressure()) return true;
    if (other->load.overloaded(
            other->live_replicas.load(std::memory_order_acquire))) {
      return true;
    }
  }
  return false;
}

Server::ModelEntry* Server::pick_model_slo() const {
  // One pass over the (frozen) registry: among models with queued work and
  // a free replica, take the one whose head request is most urgent by
  // (class priority, earliest absolute deadline). Peeking each head costs
  // one queue lock and no element move. Models with every replica busy are
  // skipped — not blocked on — so a saturated batch model cannot absorb
  // workers a latency-critical arrival will need; the workers executing
  // its batches re-scan the moment they finish.
  ModelEntry* best = nullptr;
  ScheduleKey best_key;
  for (const auto& m : models_) {
    // busy >= live is conservative during a shrink: a draining replica
    // finishing its last batch still counts busy, so the model is skipped
    // until that batch completes — a transient, never a stall.
    if (m->busy_replicas.load(std::memory_order_acquire) >=
        m->live_replicas.load(std::memory_order_acquire)) {
      continue;
    }
    const auto accepted = m->queue.peek_front(
        [](const Request& r) { return r.accepted; });
    if (!accepted) continue;
    const ScheduleKey key{m->cfg.slo.priority, *accepted + m->deadline_duration()};
    if (best == nullptr || before(key, best_key)) {
      best = m.get();
      best_key = key;
    }
  }
  return best;
}

void Server::worker_loop(std::size_t worker_index) {
  ModelEntry* home = shards_[worker_index];
  const auto quantum = micros_duration(std::max(1.0, cfg_.steal_quantum_micros));
  // Rotating sweep start so concurrently idle workers don't all gang up on
  // the same victim queue (legacy scheduler only).
  std::size_t sweep_start = worker_index + 1;
  const bool single_queue = models_.size() == 1;
  // SLO-aware scheduling replaces home-first FIFO only when cross-queue
  // dequeue is allowed at all (work stealing on, several queues). With
  // stealing off the shards are strict isolation domains; with one model
  // there is nothing to order.
  const bool slo_sched =
      cfg_.slo_scheduling && cfg_.work_stealing && !single_queue;

  for (;;) {
    if (slo_sched) {
      if (ModelEntry* m = pick_model_slo()) {
        if (auto first = m->queue.try_pop()) {
          run_batch(*m, std::move(*first), m != home);
        }
        // Lost the pop race: the item went to another worker; re-scan.
        continue;
      }
      if (drained_after_close()) return;
      // Nothing schedulable. If the home queue holds work that is only
      // capacity-gated (all home replicas busy), popping it would block
      // this worker on a replica another class may need — sleep a quantum
      // instead and let the executing workers pick the backlog up as
      // their replicas free. (Ditto once the queue is closed, where a CV
      // wait would return immediately and spin.) Otherwise park on the
      // home queue's CV.
      if (!home->queue.empty() || home->queue.closed()) {
        std::this_thread::sleep_for(quantum);
        continue;
      }
      if (auto first =
              home->queue.pop_until(std::chrono::steady_clock::now() + quantum)) {
        run_batch(*home, std::move(*first), /*stolen=*/false);
      }
      continue;
    }

    // Legacy scheduler: home-queue FIFO with an idle-steal sweep — the
    // baseline the SLO-attainment benchmark compares against.
    std::optional<Request> first =
        single_queue
            ? home->queue.pop()
            : home->queue.pop_until(std::chrono::steady_clock::now() + quantum);
    ModelEntry* owner = home;

    if (!first && !single_queue &&
        (cfg_.work_stealing || stopping_.load(std::memory_order_acquire))) {
      // One non-blocking sweep over the other models' queues. During
      // shutdown the sweep runs even with stealing disabled: the drain
      // guarantee outranks the sharding preference.
      for (std::size_t k = 0; k < models_.size() && !first; ++k) {
        ModelEntry* cand = models_[(sweep_start + k) % models_.size()].get();
        if (cand == home) continue;
        first = cand->queue.try_pop();
        if (first) owner = cand;
      }
      ++sweep_start;
    }

    if (!first) {
      if (drained_after_close()) return;
      continue;
    }
    run_batch(*owner, std::move(*first), owner != home);
  }
}

bool Server::drained_after_close() const {
  if (!stopping_.load(std::memory_order_acquire)) return false;
  for (const auto& m : models_) {
    if (m->queue.size() != 0) return false;
  }
  return true;
}

std::shared_ptr<Server::Replica> Server::acquire_replica(ModelEntry& m) {
  for (;;) {
    // One group snapshot per acquisition (a mutex-guarded shared_ptr copy);
    // the returned replica is kept alive by the caller's shared_ptr even if
    // a concurrent retire unpublishes it mid-batch.
    const auto group = m.snapshot_group();
    const std::size_t n = group->size();
    // Least-outstanding-requests balancing. With one batch at a time per
    // replica, a free slot has no in-flight rows, so "least-outstanding
    // free replica" reduces to "first free non-draining slot in rotated
    // order" — the rotating ticket is what spreads work round-robin over
    // equally idle slots. No allocation on this per-batch hot path beyond
    // the snapshot itself.
    const std::size_t start =
        m.replica_ticket.fetch_add(1, std::memory_order_relaxed) % n;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& cand = (*group)[(start + i) % n];
      if (cand->draining.load(std::memory_order_acquire)) continue;
      if (cand->exec_mu.try_lock()) {
        m.busy_replicas.fetch_add(1, std::memory_order_acq_rel);
        return cand;
      }
    }
    // Every live slot was claimed between the scheduler's capacity check
    // and now (or the caller bypassed the gate, e.g. the legacy scheduler
    // / inline mode): wait on the live slot with the fewest in-flight
    // rows. If every slot of this snapshot began draining meanwhile (a
    // stale generation), re-read the group — the published one always
    // holds a live replica.
    std::shared_ptr<Replica> least;
    for (const auto& rep : *group) {
      if (rep->draining.load(std::memory_order_acquire)) continue;
      if (least == nullptr ||
          rep->inflight_rows.load(std::memory_order_relaxed) <
              least->inflight_rows.load(std::memory_order_relaxed)) {
        least = rep;
      }
    }
    if (least == nullptr) continue;
    least->exec_mu.lock();
    m.busy_replicas.fetch_add(1, std::memory_order_acq_rel);
    return least;
  }
}

void Server::release_replica(ModelEntry& m, Replica& rep) {
  m.busy_replicas.fetch_sub(1, std::memory_order_acq_rel);
  rep.exec_mu.unlock();
}

void Server::run_batch(ModelEntry& m, Request first, bool stolen) {
  const bool drop_expired = m.cfg.load_control.enabled;
  const auto deadline = m.deadline_duration();

  // Expiry drop (admission → shed → expire pipeline, final stage): a
  // dequeued request whose deadline has already passed is completed with
  // kExpired *before* a replica is claimed — under overload, running
  // dead-on-arrival work is exactly the capacity the live requests need.
  // Without load control, deadlines stay pure objectives and the request
  // runs regardless (legacy semantics).
  if (drop_expired) {
    while (std::chrono::steady_clock::now() - first.accepted > deadline) {
      expire(m, first);
      auto next = m.queue.try_pop();
      if (!next) return;
      first = std::move(*next);
    }
  }

  // Claim the execution slot before coalescing: if the group is momentarily
  // saturated, everything that queues while we wait for a replica joins
  // this batch, so the wait buys amortization instead of being dead time.
  const auto rep_ptr = acquire_replica(m);
  Replica& rep = *rep_ptr;

  std::vector<Request> reqs;
  reqs.push_back(std::move(first));

  // Adaptive micro-batching (Clipper policy): coalesce queued queries up to
  // the model's live cap — AIMD-tuned when enabled — or until max_delay has
  // elapsed since the *first* query of this batch was accepted. The bulk
  // drain takes everything already queued in one lock acquisition; the
  // pop_until loop then waits out the remainder of the flush window. With
  // max_delay 0 the deadline is already past and the wait degrades to a
  // non-blocking drain.
  const std::size_t cap = std::max<std::size_t>(1, m.aimd.cap());
  if (reqs.size() < cap) {
    m.queue.drain(reqs, cap - reqs.size());
    const auto deadline =
        reqs.front().accepted + micros_duration(m.cfg.max_delay_micros);
    while (reqs.size() < cap) {
      auto next = m.queue.pop_until(deadline);
      if (!next) break;
      reqs.push_back(std::move(*next));
      if (reqs.size() < cap) m.queue.drain(reqs, cap - reqs.size());
    }
  }
  if (drop_expired) {
    // Requests that expired while queued behind the batch head (or during
    // the replica wait / flush window) are dropped from the coalesced
    // batch the same way, so they never occupy batch rows either.
    const auto now = std::chrono::steady_clock::now();
    std::vector<Request> live;
    live.reserve(reqs.size());
    for (auto& r : reqs) {
      if (now - r.accepted > deadline) {
        expire(m, r);
      } else {
        live.push_back(std::move(r));
      }
    }
    reqs = std::move(live);
    if (reqs.empty()) {
      release_replica(m, rep);
      return;
    }
  }
  execute(m, rep, reqs, stolen);
  release_replica(m, rep);
}

void Server::execute(ModelEntry& m, Replica& rep, std::vector<Request>& reqs,
                     bool stolen) {
  common::Timer timer;
  // Per-worker result buffer, reused across batches: the batch predict path
  // is allocation-free down through the model kernels. Safe across the
  // error-isolation recursion below — the outer frame never reads its preds
  // after re-executing requests one by one.
  thread_local std::vector<double> preds;
  // One snapshot per batch: a concurrent swap cannot retire this pipeline
  // until the batch finishes, and every row of the batch runs on the same
  // pipeline version (of this replica; a rolling upgrade may have other
  // replicas on a newer one).
  const auto pipeline = rep.snapshot();
  rep.inflight_rows.fetch_add(reqs.size(), std::memory_order_relaxed);
  try {
    // Combining inside the try keeps a malformed row (e.g. a schema that
    // does not match the model's) from escaping on the worker thread: the
    // whole batch is failed through its completions instead.
    data::Batch combined = reqs.front().row;
    for (std::size_t i = 1; i < reqs.size(); ++i) {
      combined.append_rows(reqs[i].row);
    }
    preds.resize(combined.num_rows());
    pipeline->predict_into(combined, preds);
  } catch (...) {
    rep.inflight_rows.fetch_sub(reqs.size(), std::memory_order_relaxed);
    if (reqs.size() == 1) {
      complete_error(reqs.front(), std::current_exception());
      return;
    }
    // Isolate the failure: one malformed request must not fail the
    // well-formed queries that happened to coalesce with it. Re-execute
    // each request as its own batch on the already-held replica — only the
    // offending one(s) see the error. Failures are the rare path, so the
    // lost amortization is noise.
    for (auto& r : reqs) {
      std::vector<Request> one;
      one.push_back(std::move(r));
      execute(m, rep, one, stolen);
    }
    return;
  }
  rep.inflight_rows.fetch_sub(reqs.size(), std::memory_order_relaxed);
  const double secs = timer.elapsed_seconds();
  const auto completed = std::chrono::steady_clock::now();

  // Feed the controllers before the next batch is coalesced so the cap —
  // and the admission model's service-time estimate — reflect this batch's
  // observed latency.
  m.aimd.on_batch(reqs.size(), secs);
  m.load.on_batch(reqs.size(), secs);

  // Record stats before fulfilling any completion: a client observing its
  // future ready must also observe the counters for its own batch.
  {
    const auto deadline = m.deadline_duration();
    std::lock_guard<std::mutex> lock(m.stats_mu);
    ++m.batches;
    m.rows += reqs.size();
    m.largest_batch = std::max(m.largest_batch, reqs.size());
    if (stolen) ++m.stolen_batches;
    m.inference_seconds += secs;
    m.replica_rows[rep.index] += reqs.size();
    m.completions += reqs.size();
    for (const auto& r : reqs) {
      const auto waited = completed - r.accepted;
      if (waited <= deadline) ++m.deadline_hits;
      m.latencies.record(std::chrono::duration<double>(waited).count());
    }
  }

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (m.cfg.enable_e2e_cache) {
      m.cache.put(reqs[i].cache_key, preds[i]);
    }
    complete(reqs[i], preds[i]);
  }
}

std::vector<double> Server::predict_batch(std::string_view model,
                                          const data::Batch& batch) {
  ModelEntry& m = find_model(model);
  // The synchronous pre-batched path bypasses the queue and the replica
  // capacity gate (it never blocks behind queued batches); it snapshots
  // the least-loaded live replica's pipeline so a frontend's client
  // batches still spread over the group. The group snapshot keeps the
  // picked slot alive across a concurrent retire.
  const auto group = m.snapshot_group();
  std::shared_ptr<Replica> least;
  {
    // Rotated scan start: the sync path does not mark its own rows
    // in-flight, so without rotation every all-idle tie would fall to
    // slot 0 and concurrent client batches would pile onto one replica.
    const std::size_t n = group->size();
    const std::size_t start =
        m.replica_ticket.fetch_add(1, std::memory_order_relaxed) % n;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& cand = (*group)[(start + i) % n];
      if (cand->draining.load(std::memory_order_acquire)) continue;
      if (least == nullptr ||
          cand->inflight_rows.load(std::memory_order_relaxed) <
              least->inflight_rows.load(std::memory_order_relaxed)) {
        least = cand;
      }
    }
    // Stale snapshot whose every slot is draining: any slot still serves
    // correctly (its pipeline lives until the last reference drops).
    if (least == nullptr) least = (*group)[start];
  }
  const auto pipeline = least->snapshot();  // whole client batch on one version
  const std::size_t n = batch.num_rows();
  std::vector<double> preds(n, 0.0);
  std::size_t batch_hits = 0;
  std::size_t executed_rows = 0;  // rows the pipeline actually saw
  double secs = 0.0;

  if (m.cfg.enable_e2e_cache) {
    const std::uint64_t gen = m.generation.load(std::memory_order_acquire);
    std::vector<std::size_t> missing;
    std::vector<std::uint64_t> keys(n);
    for (std::size_t r = 0; r < n; ++r) {
      const data::Batch row = batch.row(r);
      keys[r] = common::hash_combine(EndToEndCache::key_of(row), gen);
      if (auto hit = m.cache.get(keys[r])) {
        preds[r] = *hit;
        ++batch_hits;
      } else {
        missing.push_back(r);
      }
    }
    if (!missing.empty()) {
      common::Timer timer;
      const auto missing_preds =
          pipeline->predict(batch.select_rows(missing));
      secs = timer.elapsed_seconds();
      executed_rows = missing.size();
      for (std::size_t i = 0; i < missing.size(); ++i) {
        preds[missing[i]] = missing_preds[i];
        m.cache.put(keys[missing[i]], missing_preds[i]);
      }
    }
  } else {
    common::Timer timer;
    preds = pipeline->predict(batch);
    secs = timer.elapsed_seconds();
    executed_rows = n;
  }

  std::lock_guard<std::mutex> lock(m.stats_mu);
  m.queries += n;
  m.cache_hits += batch_hits;
  if (executed_rows > 0) {
    // batches counts pipeline executions; a fully cached call runs none.
    ++m.batches;
    m.rows += executed_rows;
    m.largest_batch = std::max(m.largest_batch, executed_rows);
    m.inference_seconds += secs;
    m.replica_rows[least->index] += executed_rows;
  }
  return preds;
}

std::vector<double> Server::predict_rows(std::string_view model,
                                         const data::Batch& batch) {
  std::vector<std::future<double>> futures;
  futures.reserve(batch.num_rows());
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    futures.push_back(submit(model, batch.row(r)));
  }
  std::vector<double> preds;
  preds.reserve(futures.size());
  for (auto& f : futures) preds.push_back(f.get());
  return preds;
}

std::vector<double> Server::predict_batch(const data::Batch& batch) {
  return predict_batch(first_model().name, batch);
}

std::vector<double> Server::predict_rows(const data::Batch& batch) {
  return predict_rows(first_model().name, batch);
}

ModelStats Server::stats(std::string_view model) const {
  const ModelEntry& m = find_model(model);
  ModelStats s;
  const AimdCounters aimd = m.aimd.counters();
  // Group state before stats_mu: lock order is group_mu -> stats_mu
  // everywhere (add_replica nests them that way).
  s.replicas = m.live_replicas.load(std::memory_order_acquire);
  s.draining = m.draining_count();
  std::lock_guard<std::mutex> lock(m.stats_mu);
  s.model = m.name;
  s.queries = m.queries;
  s.cache_hits = m.cache_hits;
  s.batches = m.batches;
  s.rows = m.rows;
  s.largest_batch = m.largest_batch;
  s.stolen_batches = m.stolen_batches;
  s.deadline_hits = m.deadline_hits;
  s.completions = m.completions;
  s.expired = m.expired;
  s.shed_queue_full = m.shed_queue_full;
  s.shed_best_effort = m.shed_best_effort;
  s.shed_predicted_miss = m.shed_predicted_miss;
  s.inference_seconds = m.inference_seconds;
  s.latency = m.latencies.summary();
  s.latency_samples = m.latencies.count();
  s.current_max_batch = aimd.current_max_batch;
  s.aimd_increases = aimd.increases;
  s.aimd_backoffs = aimd.backoffs;
  s.replica_rows = m.replica_rows;
  s.scale_ups = m.scale_ups;
  s.scale_downs = m.scale_downs;
  return s;
}

ServerStats Server::stats() const {
  // Pre-start, the registry can still be mutating: hold the lock for the
  // snapshot. Post-start it is frozen and per-model locks suffice.
  std::unique_lock<std::mutex> registry_lock(registry_mu_, std::defer_lock);
  if (!started_.load(std::memory_order_acquire)) registry_lock.lock();

  ServerStats s;
  common::LatencyRecorder merged;
  s.models = models_.size();
  for (const auto& m : models_) {
    s.draining += m->draining_count();  // group_mu before stats_mu
    std::lock_guard<std::mutex> lock(m->stats_mu);
    s.queries += m->queries;
    s.cache_hits += m->cache_hits;
    s.batches += m->batches;
    s.rows += m->rows;
    s.largest_batch = std::max(s.largest_batch, m->largest_batch);
    s.stolen_batches += m->stolen_batches;
    s.deadline_hits += m->deadline_hits;
    s.completions += m->completions;
    s.expired += m->expired;
    s.shed += m->shed_queue_full + m->shed_best_effort + m->shed_predicted_miss;
    s.scale_ups += m->scale_ups;
    s.scale_downs += m->scale_downs;
    s.inference_seconds += m->inference_seconds;
    merged.merge(m->latencies);
  }
  s.latency = merged.summary();
  s.latency_samples = merged.count();
  return s;
}

void Server::reset_stats() {
  std::unique_lock<std::mutex> registry_lock(registry_mu_, std::defer_lock);
  if (!started_.load(std::memory_order_acquire)) registry_lock.lock();
  for (const auto& m : models_) {
    std::lock_guard<std::mutex> lock(m->stats_mu);
    m->queries = 0;
    m->cache_hits = 0;
    m->batches = 0;
    m->rows = 0;
    m->largest_batch = 0;
    m->stolen_batches = 0;
    m->deadline_hits = 0;
    m->completions = 0;
    m->expired = 0;
    m->shed_queue_full = 0;
    m->shed_best_effort = 0;
    m->shed_predicted_miss = 0;
    m->scale_ups = 0;
    m->scale_downs = 0;
    m->inference_seconds = 0.0;
    std::fill(m->replica_rows.begin(), m->replica_rows.end(), 0);
    m->latencies.clear();
    m->aimd.reset_counters();
  }
}

std::size_t Server::current_max_batch(std::string_view model) const {
  return find_model(model).aimd.cap();
}

std::size_t Server::recommended_replicas(std::string_view model) const {
  ModelEntry& m = find_model(model);
  return m.load.recommended_replicas(
      m.live_replicas.load(std::memory_order_acquire));
}

EndToEndCache& Server::cache(std::string_view model) {
  return find_model(model).cache;
}

EndToEndCache& Server::cache() { return first_model().cache; }

const core::OptimizedPipeline& Server::pipeline(std::string_view model) const {
  return *pipeline_snapshot(model, 0);
}

std::shared_ptr<const core::OptimizedPipeline> Server::pipeline_snapshot(
    std::string_view model, std::size_t replica) const {
  ModelEntry& m = find_model(model);
  const auto group = m.snapshot_group();
  if (replica >= group->size()) {
    throw std::invalid_argument("Server::pipeline_snapshot: model \"" +
                                std::string(model) + "\" has no replica " +
                                std::to_string(replica));
  }
  return (*group)[replica]->snapshot();
}

}  // namespace willump::serving
