#include "serving/server.hpp"

#include <stdexcept>
#include <utility>

#include "common/timer.hpp"

namespace willump::serving {

Server::Server(const core::OptimizedPipeline* pipeline, ServerConfig cfg)
    : pipeline_(pipeline),
      cfg_(cfg),
      cache_(cfg.e2e_cache_capacity),
      queue_(cfg.queue_capacity) {
  workers_.reserve(cfg_.num_workers);
  for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  queue_.close();
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (joined_) return;
  for (auto& w : workers_) w.join();
  joined_ = true;
}

std::future<double> Server::submit(data::Batch row) {
  if (row.num_rows() != 1) {
    throw std::invalid_argument("Server::submit: expects a single-row batch");
  }
  // Reject before counting or consulting the cache: a rejected request is
  // not a served query. (A close racing past this check is still caught by
  // the failed push below.)
  if (queue_.closed()) throw runtime::QueueClosedError();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++queries_;
  }

  Request req;
  req.accepted = std::chrono::steady_clock::now();
  if (cfg_.enable_e2e_cache) {
    req.cache_key = EndToEndCache::key_of(row);
    if (auto hit = cache_.get(req.cache_key)) {
      // Answered before enqueue: the whole pipeline is skipped, which is
      // the point of end-to-end caching (paper §4.5).
      std::promise<double> ready;
      auto future = ready.get_future();
      ready.set_value(*hit);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++cache_hits_;
      latencies_.record(0.0);
      return future;
    }
  }
  req.row = std::move(row);
  auto future = req.promise.get_future();
  if (workers_.empty()) {
    // Synchronous-only configuration (num_workers = 0): execute the lone
    // request inline on the caller's thread. No queue, no coalescing.
    std::vector<Request> reqs;
    reqs.push_back(std::move(req));
    execute(reqs);
    return future;
  }
  if (!queue_.push(std::move(req))) {
    throw runtime::QueueClosedError();
  }
  return future;
}

void Server::worker_loop() {
  // Drain until the queue is closed AND empty (shutdown drains accepted work).
  while (auto first = queue_.pop()) {
    std::vector<Request> reqs;
    reqs.push_back(std::move(*first));

    // Adaptive micro-batching (Clipper policy): coalesce queued queries up
    // to max_batch, or until max_delay has elapsed since the *first* query
    // of this batch was accepted. With max_delay 0 the deadline is already
    // past and pop_until degrades to a non-blocking drain.
    const auto deadline =
        reqs.front().accepted +
        std::chrono::microseconds(
            static_cast<std::int64_t>(cfg_.max_delay_micros));
    while (reqs.size() < cfg_.max_batch) {
      auto next = queue_.pop_until(deadline);
      if (!next) break;
      reqs.push_back(std::move(*next));
    }
    execute(reqs);
  }
}

void Server::execute(std::vector<Request>& reqs) {
  data::Batch combined = reqs.front().row;
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    combined.append_rows(reqs[i].row);
  }

  common::Timer timer;
  std::vector<double> preds;
  try {
    preds = pipeline_->predict(combined);
  } catch (...) {
    const auto err = std::current_exception();
    for (auto& r : reqs) r.promise.set_exception(err);
    return;
  }
  const double secs = timer.elapsed_seconds();
  const auto completed = std::chrono::steady_clock::now();

  // Record stats before fulfilling any promise: a client observing its
  // future ready must also observe the counters for its own batch.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++batches_;
    rows_ += reqs.size();
    largest_batch_ = std::max(largest_batch_, reqs.size());
    inference_seconds_ += secs;
    for (const auto& r : reqs) {
      latencies_.record(
          std::chrono::duration<double>(completed - r.accepted).count());
    }
  }

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (cfg_.enable_e2e_cache) {
      cache_.put(reqs[i].cache_key, preds[i]);
    }
    reqs[i].promise.set_value(preds[i]);
  }
}

std::vector<double> Server::predict_batch(const data::Batch& batch) {
  const std::size_t n = batch.num_rows();
  std::vector<double> preds(n, 0.0);
  std::size_t batch_hits = 0;
  std::size_t executed_rows = 0;  // rows the pipeline actually saw
  double secs = 0.0;

  if (cfg_.enable_e2e_cache) {
    std::vector<std::size_t> missing;
    std::vector<std::uint64_t> keys(n);
    for (std::size_t r = 0; r < n; ++r) {
      const data::Batch row = batch.row(r);
      keys[r] = EndToEndCache::key_of(row);
      if (auto hit = cache_.get(keys[r])) {
        preds[r] = *hit;
        ++batch_hits;
      } else {
        missing.push_back(r);
      }
    }
    if (!missing.empty()) {
      common::Timer timer;
      const auto missing_preds = pipeline_->predict(batch.select_rows(missing));
      secs = timer.elapsed_seconds();
      executed_rows = missing.size();
      for (std::size_t i = 0; i < missing.size(); ++i) {
        preds[missing[i]] = missing_preds[i];
        cache_.put(keys[missing[i]], missing_preds[i]);
      }
    }
  } else {
    common::Timer timer;
    preds = pipeline_->predict(batch);
    secs = timer.elapsed_seconds();
    executed_rows = n;
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  queries_ += n;
  cache_hits_ += batch_hits;
  if (executed_rows > 0) {
    // batches counts pipeline executions; a fully cached call runs none.
    ++batches_;
    rows_ += executed_rows;
    largest_batch_ = std::max(largest_batch_, executed_rows);
    inference_seconds_ += secs;
  }
  return preds;
}

std::vector<double> Server::predict_rows(const data::Batch& batch) {
  std::vector<std::future<double>> futures;
  futures.reserve(batch.num_rows());
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    futures.push_back(submit(batch.row(r)));
  }
  std::vector<double> preds;
  preds.reserve(futures.size());
  for (auto& f : futures) preds.push_back(f.get());
  return preds;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats s;
  s.queries = queries_;
  s.cache_hits = cache_hits_;
  s.batches = batches_;
  s.rows = rows_;
  s.largest_batch = largest_batch_;
  s.inference_seconds = inference_seconds_;
  s.latency = latencies_.summary();
  s.latency_samples = latencies_.count();
  return s;
}

void Server::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  queries_ = 0;
  cache_hits_ = 0;
  batches_ = 0;
  rows_ = 0;
  largest_batch_ = 0;
  inference_seconds_ = 0.0;
  latencies_.clear();
}

}  // namespace willump::serving
