#include "serving/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"
#include "common/timer.hpp"
#include "serialize/artifact.hpp"

namespace willump::serving {

namespace {

constexpr const char* kDefaultModelName = "default";

std::chrono::steady_clock::duration micros_duration(double micros) {
  return std::chrono::microseconds(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(micros)));
}

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(cfg) {}

Server::Server(const core::OptimizedPipeline* pipeline, ServerConfig cfg,
               ModelConfig model_cfg)
    : cfg_(cfg) {
  register_model(kDefaultModelName, pipeline, model_cfg);
  start_serving();
}

Server::~Server() { shutdown(); }

void Server::register_model(std::string name,
                            const core::OptimizedPipeline* pipeline,
                            ModelConfig cfg) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Server::register_model: null pipeline");
  }
  // Borrowed registration: alias a no-op deleter so ownership stays with
  // the caller, as it always has for this overload.
  register_model(std::move(name),
                 std::shared_ptr<const core::OptimizedPipeline>(
                     pipeline, [](const core::OptimizedPipeline*) {}),
                 cfg);
}

void Server::register_model(
    std::string name, std::shared_ptr<const core::OptimizedPipeline> pipeline,
    ModelConfig cfg) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Server::register_model: null pipeline");
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Server::register_model: the engine is shut down");
  }
  if (started_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Server::register_model: serving has started; register every model "
        "before the first request");
  }
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("Server::register_model: duplicate model \"" +
                                name + "\"");
  }
  auto entry = std::make_unique<ModelEntry>(name, std::move(pipeline), cfg);
  by_name_.emplace(entry->name, entry.get());
  models_.push_back(std::move(entry));
}

void Server::load_model(std::string name, const std::string& artifact_path,
                        ModelConfig cfg) {
  // Load before touching the registry: a corrupt artifact throws
  // SerializeError and the registry is exactly as it was.
  auto pipeline = std::make_shared<const core::OptimizedPipeline>(
      serialize::load_pipeline(artifact_path));
  register_model(std::move(name), std::move(pipeline), cfg);
}

void Server::swap_model(std::string_view model,
                        const std::string& artifact_path) {
  swap_model(model, std::make_shared<const core::OptimizedPipeline>(
                        serialize::load_pipeline(artifact_path)));
}

void Server::swap_model(
    std::string_view model,
    std::shared_ptr<const core::OptimizedPipeline> pipeline) {
  if (pipeline == nullptr) {
    throw std::invalid_argument("Server::swap_model: null pipeline");
  }
  ModelEntry& m = find_model(model);
  {
    std::lock_guard<std::mutex> lock(m.pipeline_mu);
    m.pipeline = std::move(pipeline);
  }
  // Cached predictions belong to the retired pipeline. Bumping the
  // generation retires the old key space (requests already past submit
  // keep their old-generation salt, so their late puts are unreachable,
  // never served as the new version's answers); the clear reclaims the
  // memory behind the retired keys.
  m.generation.fetch_add(1, std::memory_order_release);
  m.cache.clear();
}

std::vector<std::string> Server::model_names() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& m : models_) names.push_back(m->name);
  return names;
}

bool Server::has_model(std::string_view model) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return by_name_.find(model) != by_name_.end();
}

Server::ModelEntry& Server::find_model(std::string_view model) const {
  // Once serving has started the registry is frozen, so lookups from the
  // request path take no lock. Entries are heap-allocated and stable, so a
  // reference obtained under the pre-start lock stays valid regardless of
  // later (rejected) registration attempts.
  auto lookup = [&]() -> ModelEntry* {
    auto it = by_name_.find(model);
    return it == by_name_.end() ? nullptr : it->second;
  };
  ModelEntry* entry = nullptr;
  if (started_.load(std::memory_order_acquire)) {
    entry = lookup();
  } else {
    std::lock_guard<std::mutex> lock(registry_mu_);
    entry = lookup();
  }
  if (entry == nullptr) {
    throw std::invalid_argument("Server: unknown model \"" +
                                std::string(model) + "\"");
  }
  return *entry;
}

Server::ModelEntry& Server::first_model() const {
  if (!started_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (models_.empty()) {
      throw std::logic_error("Server: no models registered");
    }
    return *models_.front();
  }
  return *models_.front();
}

void Server::start_serving() {
  if (started_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  // A submit racing shutdown() must not spawn workers after the join ran:
  // they would exit unjoined and ~Server would std::terminate.
  if (stopping_.load(std::memory_order_acquire)) {
    throw runtime::QueueClosedError();
  }
  if (models_.empty()) {
    throw std::logic_error("Server: no models registered");
  }
  if (cfg_.num_workers > 0) {
    // Shard workers over the models by ModelConfig::workers weight: deal
    // worker i the i-th slot of a ring where each model appears `workers`
    // times, so a weight-2 model gets twice the dedicated drain capacity.
    std::vector<ModelEntry*> ring;
    for (const auto& m : models_) {
      const std::size_t w = std::max<std::size_t>(1, m->cfg.workers);
      for (std::size_t i = 0; i < w; ++i) ring.push_back(m.get());
    }
    if (!cfg_.work_stealing) {
      // Without stealing, a model whose every ring slot falls outside the
      // first num_workers positions would never be drained and its submits
      // would block forever — an invalid configuration, not a runtime
      // condition. (Models occupy consecutive ring slots, so checking each
      // model's first slot is exact.) Validated before shards_ is built so
      // a failed start leaves no partial state behind.
      std::size_t first_slot = 0;
      for (const auto& m : models_) {
        if (first_slot >= cfg_.num_workers) {
          throw std::logic_error(
              "Server: work_stealing is disabled and model \"" + m->name +
              "\" has no home worker; raise num_workers or enable stealing");
        }
        first_slot += std::max<std::size_t>(1, m->cfg.workers);
      }
    }
    shards_.reserve(cfg_.num_workers);
    for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
      shards_.push_back(ring[i % ring.size()]);
    }
  }
  // Publish the frozen registry before any worker (or lock-free lookup)
  // can observe started_ == true.
  started_.store(true, std::memory_order_release);
  workers_.reserve(cfg_.num_workers);
  for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Server::shutdown() {
  stopping_.store(true, std::memory_order_release);
  {
    // Close under the registry lock so a racing register_model either
    // observes stopping_ or has its queue closed here.
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& m : models_) m->queue.close();
  }
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (joined_) return;
  for (auto& w : workers_) w.join();
  joined_ = true;
}

void Server::complete(Request& req, double prediction) {
  if (req.done) {
    try {
      req.done(prediction, nullptr);
    } catch (...) {
      // Completion callbacks must not throw; swallowing here protects the
      // worker (and the other requests of the batch) from a client bug.
    }
  } else {
    req.promise.set_value(prediction);
  }
}

void Server::complete_error(Request& req, const std::exception_ptr& err) {
  if (req.done) {
    try {
      req.done(0.0, err);
    } catch (...) {
    }
  } else {
    req.promise.set_exception(err);
  }
}

std::future<double> Server::submit(std::string_view model, data::Batch row) {
  ModelEntry& m = find_model(model);
  std::promise<double> promise;
  auto future = promise.get_future();
  submit_request(m, std::move(row), Callback{}, &promise);
  return future;
}

void Server::submit(std::string_view model, data::Batch row, Callback done) {
  if (!done) {
    throw std::invalid_argument("Server::submit: empty completion callback");
  }
  ModelEntry& m = find_model(model);
  submit_request(m, std::move(row), std::move(done), nullptr);
}

std::future<double> Server::submit(data::Batch row) {
  ModelEntry& m = first_model();
  std::promise<double> promise;
  auto future = promise.get_future();
  submit_request(m, std::move(row), Callback{}, &promise);
  return future;
}

void Server::submit(data::Batch row, Callback done) {
  if (!done) {
    throw std::invalid_argument("Server::submit: empty completion callback");
  }
  ModelEntry& m = first_model();
  submit_request(m, std::move(row), std::move(done), nullptr);
}

void Server::submit_request(ModelEntry& m, data::Batch row, Callback done,
                            std::promise<double>* inline_promise) {
  if (row.num_rows() != 1) {
    throw std::invalid_argument("Server::submit: expects a single-row batch");
  }
  // Reject before counting or consulting the cache: a rejected request is
  // not a served query. (A close racing past this check is still caught by
  // the failed push below.)
  if (stopping_.load(std::memory_order_acquire)) {
    throw runtime::QueueClosedError();
  }
  start_serving();
  {
    std::lock_guard<std::mutex> lock(m.stats_mu);
    ++m.queries;
  }

  Request req;
  req.accepted = std::chrono::steady_clock::now();
  req.done = std::move(done);
  if (inline_promise != nullptr) req.promise = std::move(*inline_promise);

  if (m.cfg.enable_e2e_cache) {
    req.cache_key = common::hash_combine(
        EndToEndCache::key_of(row), m.generation.load(std::memory_order_acquire));
    if (auto hit = m.cache.get(req.cache_key)) {
      // Answered before enqueue: the whole pipeline is skipped, which is
      // the point of end-to-end caching (paper §4.5).
      {
        std::lock_guard<std::mutex> lock(m.stats_mu);
        ++m.cache_hits;
        m.latencies.record(0.0);
      }
      complete(req, *hit);
      return;
    }
  }
  req.row = std::move(row);
  if (cfg_.num_workers == 0) {
    // Synchronous-only configuration: execute the lone request inline on
    // the caller's thread. No queue, no coalescing.
    std::vector<Request> reqs;
    reqs.push_back(std::move(req));
    execute(m, reqs, /*stolen=*/false);
    return;
  }
  if (!m.queue.push(std::move(req))) {
    throw runtime::QueueClosedError();
  }
}

void Server::worker_loop(std::size_t worker_index) {
  ModelEntry* home = shards_[worker_index];
  const auto quantum = micros_duration(std::max(1.0, cfg_.steal_quantum_micros));
  // Rotating sweep start so concurrently idle workers don't all gang up on
  // the same victim queue.
  std::size_t sweep_start = worker_index + 1;
  const bool single_queue = models_.size() == 1;

  for (;;) {
    // Idle policy: a condition-variable wait on the home queue, bounded by
    // one steal quantum — not a spin. With a single queue the wait is
    // unbounded (nothing to steal; close() wakes it for shutdown).
    std::optional<Request> first =
        single_queue
            ? home->queue.pop()
            : home->queue.pop_until(std::chrono::steady_clock::now() + quantum);
    ModelEntry* owner = home;

    if (!first && !single_queue &&
        (cfg_.work_stealing || stopping_.load(std::memory_order_acquire))) {
      // One non-blocking sweep over the other models' queues. During
      // shutdown the sweep runs even with stealing disabled: the drain
      // guarantee outranks the sharding preference.
      for (std::size_t k = 0; k < models_.size() && !first; ++k) {
        ModelEntry* cand = models_[(sweep_start + k) % models_.size()].get();
        if (cand == home) continue;
        first = cand->queue.try_pop();
        if (first) owner = cand;
      }
      ++sweep_start;
    }

    if (!first) {
      if (drained_after_close()) return;
      continue;
    }
    run_batch(*owner, std::move(*first), owner != home);
  }
}

bool Server::drained_after_close() const {
  if (!stopping_.load(std::memory_order_acquire)) return false;
  for (const auto& m : models_) {
    if (m->queue.size() != 0) return false;
  }
  return true;
}

void Server::run_batch(ModelEntry& m, Request first, bool stolen) {
  std::vector<Request> reqs;
  reqs.push_back(std::move(first));

  // Adaptive micro-batching (Clipper policy): coalesce queued queries up to
  // the model's live cap — AIMD-tuned when enabled — or until max_delay has
  // elapsed since the *first* query of this batch was accepted. The bulk
  // drain takes everything already queued in one lock acquisition; the
  // pop_until loop then waits out the remainder of the flush window. With
  // max_delay 0 the deadline is already past and the wait degrades to a
  // non-blocking drain.
  const std::size_t cap = std::max<std::size_t>(1, m.aimd.cap());
  if (reqs.size() < cap) {
    m.queue.drain(reqs, cap - reqs.size());
    const auto deadline =
        reqs.front().accepted + micros_duration(m.cfg.max_delay_micros);
    while (reqs.size() < cap) {
      auto next = m.queue.pop_until(deadline);
      if (!next) break;
      reqs.push_back(std::move(*next));
      if (reqs.size() < cap) m.queue.drain(reqs, cap - reqs.size());
    }
  }
  execute(m, reqs, stolen);
}

void Server::execute(ModelEntry& m, std::vector<Request>& reqs, bool stolen) {
  common::Timer timer;
  std::vector<double> preds;
  // One snapshot per batch: a concurrent swap_model cannot retire this
  // pipeline until the batch finishes, and every row of the batch runs on
  // the same pipeline version.
  const auto pipeline = m.snapshot();
  try {
    // Combining inside the try keeps a malformed row (e.g. a schema that
    // does not match the model's) from escaping on the worker thread: the
    // whole batch is failed through its completions instead.
    data::Batch combined = reqs.front().row;
    for (std::size_t i = 1; i < reqs.size(); ++i) {
      combined.append_rows(reqs[i].row);
    }
    preds = pipeline->predict(combined);
  } catch (...) {
    if (reqs.size() == 1) {
      complete_error(reqs.front(), std::current_exception());
      return;
    }
    // Isolate the failure: one malformed request must not fail the
    // well-formed queries that happened to coalesce with it. Re-execute
    // each request as its own batch — only the offending one(s) see the
    // error. Failures are the rare path, so the lost amortization is noise.
    for (auto& r : reqs) {
      std::vector<Request> one;
      one.push_back(std::move(r));
      execute(m, one, stolen);
    }
    return;
  }
  const double secs = timer.elapsed_seconds();
  const auto completed = std::chrono::steady_clock::now();

  // Feed the controller before the next batch is coalesced so the cap
  // reflects this batch's observed latency.
  m.aimd.on_batch(reqs.size(), secs);

  // Record stats before fulfilling any completion: a client observing its
  // future ready must also observe the counters for its own batch.
  {
    std::lock_guard<std::mutex> lock(m.stats_mu);
    ++m.batches;
    m.rows += reqs.size();
    m.largest_batch = std::max(m.largest_batch, reqs.size());
    if (stolen) ++m.stolen_batches;
    m.inference_seconds += secs;
    for (const auto& r : reqs) {
      m.latencies.record(
          std::chrono::duration<double>(completed - r.accepted).count());
    }
  }

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (m.cfg.enable_e2e_cache) {
      m.cache.put(reqs[i].cache_key, preds[i]);
    }
    complete(reqs[i], preds[i]);
  }
}

std::vector<double> Server::predict_batch(std::string_view model,
                                          const data::Batch& batch) {
  ModelEntry& m = find_model(model);
  const auto pipeline = m.snapshot();  // whole client batch on one version
  const std::size_t n = batch.num_rows();
  std::vector<double> preds(n, 0.0);
  std::size_t batch_hits = 0;
  std::size_t executed_rows = 0;  // rows the pipeline actually saw
  double secs = 0.0;

  if (m.cfg.enable_e2e_cache) {
    const std::uint64_t gen = m.generation.load(std::memory_order_acquire);
    std::vector<std::size_t> missing;
    std::vector<std::uint64_t> keys(n);
    for (std::size_t r = 0; r < n; ++r) {
      const data::Batch row = batch.row(r);
      keys[r] = common::hash_combine(EndToEndCache::key_of(row), gen);
      if (auto hit = m.cache.get(keys[r])) {
        preds[r] = *hit;
        ++batch_hits;
      } else {
        missing.push_back(r);
      }
    }
    if (!missing.empty()) {
      common::Timer timer;
      const auto missing_preds =
          pipeline->predict(batch.select_rows(missing));
      secs = timer.elapsed_seconds();
      executed_rows = missing.size();
      for (std::size_t i = 0; i < missing.size(); ++i) {
        preds[missing[i]] = missing_preds[i];
        m.cache.put(keys[missing[i]], missing_preds[i]);
      }
    }
  } else {
    common::Timer timer;
    preds = pipeline->predict(batch);
    secs = timer.elapsed_seconds();
    executed_rows = n;
  }

  std::lock_guard<std::mutex> lock(m.stats_mu);
  m.queries += n;
  m.cache_hits += batch_hits;
  if (executed_rows > 0) {
    // batches counts pipeline executions; a fully cached call runs none.
    ++m.batches;
    m.rows += executed_rows;
    m.largest_batch = std::max(m.largest_batch, executed_rows);
    m.inference_seconds += secs;
  }
  return preds;
}

std::vector<double> Server::predict_rows(std::string_view model,
                                         const data::Batch& batch) {
  std::vector<std::future<double>> futures;
  futures.reserve(batch.num_rows());
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    futures.push_back(submit(model, batch.row(r)));
  }
  std::vector<double> preds;
  preds.reserve(futures.size());
  for (auto& f : futures) preds.push_back(f.get());
  return preds;
}

std::vector<double> Server::predict_batch(const data::Batch& batch) {
  return predict_batch(first_model().name, batch);
}

std::vector<double> Server::predict_rows(const data::Batch& batch) {
  return predict_rows(first_model().name, batch);
}

ModelStats Server::stats(std::string_view model) const {
  const ModelEntry& m = find_model(model);
  ModelStats s;
  const AimdCounters aimd = m.aimd.counters();
  std::lock_guard<std::mutex> lock(m.stats_mu);
  s.model = m.name;
  s.queries = m.queries;
  s.cache_hits = m.cache_hits;
  s.batches = m.batches;
  s.rows = m.rows;
  s.largest_batch = m.largest_batch;
  s.stolen_batches = m.stolen_batches;
  s.inference_seconds = m.inference_seconds;
  s.latency = m.latencies.summary();
  s.latency_samples = m.latencies.count();
  s.current_max_batch = aimd.current_max_batch;
  s.aimd_increases = aimd.increases;
  s.aimd_backoffs = aimd.backoffs;
  return s;
}

ServerStats Server::stats() const {
  // Pre-start, the registry can still be mutating: hold the lock for the
  // snapshot. Post-start it is frozen and per-model locks suffice.
  std::unique_lock<std::mutex> registry_lock(registry_mu_, std::defer_lock);
  if (!started_.load(std::memory_order_acquire)) registry_lock.lock();

  ServerStats s;
  common::LatencyRecorder merged;
  s.models = models_.size();
  for (const auto& m : models_) {
    std::lock_guard<std::mutex> lock(m->stats_mu);
    s.queries += m->queries;
    s.cache_hits += m->cache_hits;
    s.batches += m->batches;
    s.rows += m->rows;
    s.largest_batch = std::max(s.largest_batch, m->largest_batch);
    s.stolen_batches += m->stolen_batches;
    s.inference_seconds += m->inference_seconds;
    merged.merge(m->latencies);
  }
  s.latency = merged.summary();
  s.latency_samples = merged.count();
  return s;
}

void Server::reset_stats() {
  std::unique_lock<std::mutex> registry_lock(registry_mu_, std::defer_lock);
  if (!started_.load(std::memory_order_acquire)) registry_lock.lock();
  for (const auto& m : models_) {
    std::lock_guard<std::mutex> lock(m->stats_mu);
    m->queries = 0;
    m->cache_hits = 0;
    m->batches = 0;
    m->rows = 0;
    m->largest_batch = 0;
    m->stolen_batches = 0;
    m->inference_seconds = 0.0;
    m->latencies.clear();
    m->aimd.reset_counters();
  }
}

std::size_t Server::current_max_batch(std::string_view model) const {
  return find_model(model).aimd.cap();
}

EndToEndCache& Server::cache(std::string_view model) {
  return find_model(model).cache;
}

EndToEndCache& Server::cache() { return first_model().cache; }

const core::OptimizedPipeline& Server::pipeline(std::string_view model) const {
  return *find_model(model).snapshot();
}

std::shared_ptr<const core::OptimizedPipeline> Server::pipeline_snapshot(
    std::string_view model) const {
  return find_model(model).snapshot();
}

}  // namespace willump::serving
