#include "serving/load_control.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.hpp"

namespace willump::serving {

std::string_view to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kShedBestEffort:
      return "shed-best-effort";
    case RejectReason::kPredictedMiss:
      return "predicted-miss";
    case RejectReason::kExpired:
      return "expired";
  }
  return "unknown";
}

RejectedError::RejectedError(std::string model, RejectReason reason)
    : std::runtime_error("request to model \"" + model + "\" rejected: " +
                         std::string(to_string(reason))),
      model_(std::move(model)),
      reason_(reason) {}

LoadController::LoadController(LoadControlConfig cfg, double deadline_micros)
    : cfg_(cfg), deadline_seconds_(std::max(deadline_micros, 1.0) * 1e-6) {}

void LoadController::on_arrival(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (have_arrival_) {
    const double gap =
        std::chrono::duration<double>(now - last_arrival_).count();
    if (gap > 0.0) {
      const double rate = 1.0 / gap;
      const double a = std::clamp(cfg_.ewma_alpha, 1e-3, 1.0);
      rate_ewma_ = rate_ewma_ == 0.0 ? rate : (1.0 - a) * rate_ewma_ + a * rate;
    }
  }
  last_arrival_ = now;
  have_arrival_ = true;
}

void LoadController::on_batch(std::size_t rows, double seconds) {
  if (rows == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const double per_row = std::max(seconds, 0.0) / static_cast<double>(rows);
  const double a = std::clamp(cfg_.ewma_alpha, 1e-3, 1.0);
  service_ewma_ =
      service_ewma_ == 0.0 ? per_row : (1.0 - a) * service_ewma_ + a * per_row;
  ++batches_;
  rows_ += rows;
}

double LoadController::service_seconds_per_row() const {
  std::lock_guard<std::mutex> lock(mu_);
  return service_ewma_;
}

double LoadController::arrival_qps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_ewma_;
}

std::size_t LoadController::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

LoadSnapshot LoadController::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  LoadSnapshot s;
  s.service_seconds_per_row = service_ewma_;
  s.arrival_qps = rate_ewma_;
  s.batches = batches_;
  s.rows = rows_;
  s.deadline_seconds = deadline_seconds_;
  s.target_attainment = cfg_.target_attainment;
  return s;
}

bool LoadController::warmed_up() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_ >= cfg_.min_observations && service_ewma_ > 0.0;
}

double LoadController::sojourn_locked(std::size_t queue_depth,
                                      std::size_t replicas) const {
  // This request drains after the queue_depth requests ahead of it, spread
  // over the replica group, then takes one service time itself.
  const double k = static_cast<double>(std::max<std::size_t>(replicas, 1));
  return service_ewma_ * (static_cast<double>(queue_depth) + 1.0) / k +
         service_ewma_;
}

double LoadController::steady_sojourn_locked(std::size_t replicas) const {
  const double k = static_cast<double>(std::max<std::size_t>(replicas, 1));
  const double rho = rate_ewma_ * service_ewma_ / k;
  if (rho >= 1.0) {
    // Saturated: the queue grows without bound; report an effectively
    // infinite sojourn so attainment goes to zero.
    return std::numeric_limits<double>::infinity();
  }
  return service_ewma_ + service_ewma_ * rho / (k * (1.0 - rho));
}

double LoadController::attainment_of_sojourn(double sojourn_seconds) const {
  if (!(sojourn_seconds > 0.0)) return 1.0;
  if (std::isinf(sojourn_seconds)) return 0.0;
  return 1.0 - std::exp(-deadline_seconds_ / sojourn_seconds);
}

bool LoadController::passes_target_locked(double attainment) const {
  // Statistical acceptance, not a hard threshold: an attainment below the
  // target still passes while it is within the 95% binomial CI at the
  // observed sample size (paper §6.3 criterion).
  return attainment >= cfg_.target_attainment ||
         common::accuracy_within_ci95(attainment, cfg_.target_attainment,
                                      std::max<std::size_t>(rows_, 1));
}

double LoadController::predicted_sojourn_seconds(std::size_t queue_depth,
                                                 std::size_t replicas) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sojourn_locked(queue_depth, replicas);
}

double LoadController::predicted_attainment(std::size_t queue_depth,
                                            std::size_t replicas) const {
  std::lock_guard<std::mutex> lock(mu_);
  return attainment_of_sojourn(sojourn_locked(queue_depth, replicas));
}

double LoadController::steady_state_attainment(std::size_t replicas) const {
  std::lock_guard<std::mutex> lock(mu_);
  return attainment_of_sojourn(steady_sojourn_locked(replicas));
}

bool LoadController::admit(std::size_t queue_depth,
                           std::size_t replicas) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (batches_ < cfg_.min_observations || service_ewma_ <= 0.0) return true;
  return passes_target_locked(
      attainment_of_sojourn(sojourn_locked(queue_depth, replicas)));
}

bool LoadController::overloaded(std::size_t replicas) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (batches_ < cfg_.min_observations || service_ewma_ <= 0.0) return false;
  return !passes_target_locked(
      attainment_of_sojourn(steady_sojourn_locked(replicas)));
}

std::size_t LoadController::recommended_replicas(std::size_t current) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t floor = std::max<std::size_t>(current, 1);
  if (batches_ < cfg_.min_observations || service_ewma_ <= 0.0 ||
      rate_ewma_ <= 0.0) {
    return floor;
  }
  const std::size_t cap = std::max(cfg_.max_replicas, floor);
  for (std::size_t k = 1; k <= cap; ++k) {
    if (passes_target_locked(
            attainment_of_sojourn(steady_sojourn_locked(k)))) {
      return k;
    }
  }
  return cap;
}

}  // namespace willump::serving
