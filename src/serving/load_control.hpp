#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace willump::serving {

/// Why a submitted request was resolved without a prediction. Delivered as
/// a `RejectedError` through the request's future or callback — never as an
/// exception thrown from submit() itself — so overload keeps the engine's
/// exactly-once completion contract: every submit resolves exactly once,
/// as a prediction, a typed rejection, or an expiry.
enum class RejectReason {
  /// The model's bounded queue stayed full for the configured submit wait.
  /// This replaces the old behavior of blocking the producer indefinitely.
  kQueueFull,
  /// The request belongs to a best-effort class and a higher-priority
  /// class's controller is under pressure; the engine sheds it to protect
  /// the higher class's deadline attainment (shed-lowest-class-first).
  kShedBestEffort,
  /// The per-model latency/queue model predicts this request would miss
  /// its deadline anyway (attainment below target beyond the 95% CI);
  /// executing it would waste a replica slot on a doomed request.
  kPredictedMiss,
  /// The request's deadline had already passed when a worker dequeued it;
  /// it was dropped before claiming a replica (dead on arrival).
  kExpired,
};

/// Stable lowercase name of a rejection reason (for logs and bench tables).
std::string_view to_string(RejectReason reason);

/// Typed overload rejection: the error a shed, rejected, or expired
/// request's future/callback delivers. Carries the model name and the
/// RejectReason so drivers can account shed and expired rates separately
/// from real execution errors.
class RejectedError : public std::runtime_error {
 public:
  RejectedError(std::string model, RejectReason reason);

  RejectReason reason() const noexcept { return reason_; }
  const std::string& model() const noexcept { return model_; }

 private:
  std::string model_;
  RejectReason reason_;
};

/// Per-model load-control policy (part of ModelConfig).
///
/// The estimators behind it (LoadController) always run — they are a few
/// EWMA updates per submit/batch — so `Server::recommended_replicas` works
/// for every model. `enabled` gates only the *decisions*: admission
/// rejection (kShedBestEffort / kPredictedMiss) and the workers' expiry
/// drop (kExpired). With it off, deadlines remain pure objectives and
/// every admitted request completes, exactly the legacy semantics.
///
/// Queue-full handling is NOT gated here: submit paths never block on a
/// full queue regardless of this config (see RequestQueue::try_push_for);
/// `submit_wait_micros` only bounds how long a submit may wait for space
/// before the typed kQueueFull rejection.
struct LoadControlConfig {
  /// Turn on admission control (predicted-miss + best-effort shedding) and
  /// the workers' expired-request drop.
  bool enabled = false;
  /// EWMA smoothing factor of the service-time and arrival-rate
  /// estimators, in (0, 1]; larger adapts faster, smaller is steadier.
  double ewma_alpha = 0.2;
  /// Bounded wait for space on a full queue before kQueueFull is returned.
  /// 0 (default) = non-blocking try. Keep this far under a second: the
  /// whole point is that no submit ever blocks behind a saturated model.
  double submit_wait_micros = 0.0;
  /// Deadline-attainment objective the predictions are judged against.
  /// Decisions use the paper's §6.3 statistical criterion — predicted
  /// attainment must fall below this target by more than the 95% binomial
  /// CI at the observed sample size — not a hard threshold.
  double target_attainment = 0.99;
  /// Batches the estimators must observe before predictions act; until
  /// then every request is admitted (cold models never self-shed).
  std::size_t min_observations = 5;
  /// Upper bound of the recommended_replicas search.
  std::size_t max_replicas = 8;
};

/// One coherent read of a LoadController's estimator state (all fields
/// sampled under the same lock). This is the autoscaler's input: the pure
/// AutoscalePolicy (serving/autoscaler.hpp) re-evaluates the steady-state
/// attainment model from a snapshot at hypothetical replica counts, and
/// tests fabricate snapshots directly to pin every decision edge.
struct LoadSnapshot {
  /// Smoothed per-row service time, seconds (0 while cold).
  double service_seconds_per_row = 0.0;
  /// Smoothed arrival rate, rows/second (0 before two arrivals).
  double arrival_qps = 0.0;
  /// Batches the estimators have observed (the cold-start guard's input).
  std::size_t batches = 0;
  /// Rows observed — the CI sample size of the statistical criterion.
  std::size_t rows = 0;
  /// The model's per-query deadline, seconds.
  double deadline_seconds = 0.0;
  /// Attainment objective predictions are judged against.
  double target_attainment = 0.99;
};

/// Online per-model latency/queue model: EWMA service-time and
/// arrival-rate estimators (fed from the same observations that populate
/// ModelStats/LatencyRecorder) turned into deadline-attainment predictions.
///
/// The queueing model is deliberately simple — the statistical-modeling
/// approach for inference serving (Ray et al.; see PAPERS.md), not a full
/// simulator. With per-row service time `s` (seconds), arrival rate
/// `lambda` (rows/s) and `k` replicas:
///
/// - a request arriving with `d` requests queued ahead of it waits
///   roughly `s * (d + 1) / k` for its turn plus `s` to execute;
/// - the steady-state sojourn uses the utilization `rho = lambda * s / k`
///   (an M/M/k-flavored approximation): `W = s + s * rho / (k * (1 - rho))`,
///   diverging as rho -> 1 exactly as a saturated queue does;
/// - attainment is the probability an exponentially distributed sojourn
///   with mean W beats the deadline: `P = 1 - exp(-deadline / W)`.
///
/// Decisions never compare P against the target directly: they ask whether
/// P is statistically below it, via common::accuracy_within_ci95 at the
/// number of rows observed so far — the same CI criterion the paper's §6.3
/// uses for accuracy acceptance. A cold estimator (wide CI) admits
/// everything; confidence, not a constant, is what arms the shed path.
///
/// Thread safety: every method serializes on an internal mutex; updates
/// are a handful of arithmetic ops, far below the cost of the inference
/// they observe.
class LoadController {
 public:
  LoadController(LoadControlConfig cfg, double deadline_micros);

  /// Record one submit arrival (feeds the arrival-rate EWMA).
  void on_arrival(std::chrono::steady_clock::time_point now);

  /// Record one executed batch of `rows` rows taking `seconds` (feeds the
  /// per-row service-time EWMA).
  void on_batch(std::size_t rows, double seconds);

  /// Smoothed per-row service time, seconds (0 before any batch).
  double service_seconds_per_row() const;
  /// Smoothed arrival rate, rows/second (0 before two arrivals).
  double arrival_qps() const;
  /// Batches observed so far.
  std::size_t observations() const;
  /// One coherent snapshot of the estimator state (see LoadSnapshot).
  LoadSnapshot snapshot() const;
  /// True once min_observations batches have been seen.
  bool warmed_up() const;

  /// Predicted submit-to-completion sojourn of a request entering now with
  /// `queue_depth` requests ahead of it and `replicas` execution slots.
  double predicted_sojourn_seconds(std::size_t queue_depth,
                                   std::size_t replicas) const;

  /// Predicted attainment of one request entering at `queue_depth` (the
  /// admission-time view).
  double predicted_attainment(std::size_t queue_depth,
                              std::size_t replicas) const;

  /// Steady-state predicted attainment at `replicas` slots under the
  /// current arrival rate (the replica-sizing view).
  double steady_state_attainment(std::size_t replicas) const;

  /// Admission decision: false when the request is statistically predicted
  /// to miss its deadline (attainment below target beyond the 95% CI).
  /// Always true before warm-up.
  bool admit(std::size_t queue_depth, std::size_t replicas) const;

  /// Pressure signal for cross-class shedding: true when the *steady
  /// state* at the current replica count is statistically predicted to
  /// miss the attainment target — the model cannot keep up even with an
  /// empty queue, so lower classes should get out of its way.
  bool overloaded(std::size_t replicas) const;

  /// Predictive replica sizing: the smallest replica count (<= max of
  /// max_replicas and `current`) whose steady-state predicted attainment
  /// passes the CI criterion against the target; `current` before warm-up.
  /// Both grow (overload) and shrink (idle) fall out of "smallest".
  std::size_t recommended_replicas(std::size_t current) const;

 private:
  double sojourn_locked(std::size_t queue_depth, std::size_t replicas) const;
  double steady_sojourn_locked(std::size_t replicas) const;
  double attainment_of_sojourn(double sojourn_seconds) const;
  bool passes_target_locked(double attainment) const;

  const LoadControlConfig cfg_;
  const double deadline_seconds_;

  mutable std::mutex mu_;
  double service_ewma_ = 0.0;  // seconds per row
  double rate_ewma_ = 0.0;     // arrivals per second
  std::chrono::steady_clock::time_point last_arrival_{};
  bool have_arrival_ = false;
  std::size_t batches_ = 0;
  std::size_t rows_ = 0;  // CI sample size for the statistical criterion
};

}  // namespace willump::serving
