#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "serving/load_control.hpp"

namespace willump::serving {

class Server;

/// Replica-autoscaling policy of one Server (part of ServerConfig). The
/// controller closes the loop PR 6 left open: LoadController predicts
/// per-model deadline attainment from its online EWMA latency/queue model,
/// and the autoscaler acts on that prediction by growing or shrinking the
/// model's replica group at runtime.
///
/// Every resize is gated by the paper's §6.3 statistical criterion, never a
/// point estimate: the policy compares the *bounds* of the 95% binomial CI
/// around predicted attainment (at the observed row count) against the
/// class target, and the asymmetry of the two rules is the hysteresis that
/// keeps a noisy estimate from flapping the group:
///
/// - **scale up** only after the CI *upper* bound at the current replica
///   count falls below the target for `scale_up_streak` consecutive
///   evaluations (the model is confidently failing, and keeps failing);
/// - **scale down** only when the CI *lower* bound at one *fewer* replica
///   still clears the target (the smaller group would confidently pass).
///
/// Between the bounds — the uncertain band — the policy holds. A cooldown
/// after every resize lets the estimators re-converge on the new group
/// before the next decision, and min/max bounds clamp the group size.
struct AutoscaleConfig {
  /// Spawn the background controller thread when serving starts. Off by
  /// default: replica groups stay operator-sized, exactly the legacy
  /// behavior.
  bool enabled = false;
  /// Controller evaluation period. Each tick evaluates every registered
  /// model once against its LoadController snapshot.
  double interval_micros = 20'000.0;
  /// Group-size clamp: the controller never shrinks below min_replicas or
  /// grows above max_replicas (operator resizes are not clamped).
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 8;
  /// Consecutive failing evaluations (CI upper bound below target) required
  /// before a scale-up fires. The streak keeps accumulating during a
  /// cooldown — the cooldown defers the action, not the evidence.
  std::size_t scale_up_streak = 3;
  /// Minimum time between two resizes of the same model, so the estimators
  /// observe the resized group before the next decision.
  double cooldown_micros = 100'000.0;
  /// Cold-start guard: no resize before the model's estimators have
  /// observed this many batches (mirrors LoadControlConfig::min_observations
  /// — a cold CI is meaninglessly wide, so a cold model is never resized).
  std::size_t min_observations = 5;
};

/// What one policy evaluation decided for one model.
enum class AutoscaleAction {
  kHold,
  kGrow,    // add one replica
  kShrink,  // retire one replica (drain, then free)
};

/// Steady-state predicted attainment of `snap`'s load at `replicas` slots —
/// the same M/M/k-flavored model LoadController::steady_state_attainment
/// evaluates, recomputed from a snapshot so the policy can ask "what would
/// one fewer replica predict?" without touching the live controller.
double steady_state_attainment(const LoadSnapshot& snap, std::size_t replicas);

/// Pure per-model resize decision logic: no clock reads, no threads, no
/// Server — `evaluate` consumes a LoadController snapshot and an injected
/// `now`, so every hysteresis edge (streak, cooldown, clamps, cold-start
/// guard) is a deterministic unit test. The background Autoscaler holds one
/// policy per model and feeds it the real clock; tests feed synthetic
/// snapshots and a synthetic clock (tests/test_autoscaler.cpp).
///
/// Not thread-safe: one evaluator owns a policy instance.
class AutoscalePolicy {
 public:
  explicit AutoscalePolicy(AutoscaleConfig cfg) : cfg_(cfg) {}

  /// Evaluate one tick: the decision for a model currently running
  /// `current_replicas` slots under the load `snap` describes, at time
  /// `now`. Returning kGrow/kShrink arms the cooldown immediately (the
  /// caller is expected to act); kHold leaves all state untouched except
  /// the failing streak.
  AutoscaleAction evaluate(const LoadSnapshot& snap,
                           std::size_t current_replicas,
                           std::chrono::steady_clock::time_point now);

  /// Consecutive evaluations whose CI upper bound failed the target
  /// (diagnostics; reset by any resize or passing evaluation).
  std::size_t failing_streak() const { return streak_; }

  const AutoscaleConfig& config() const { return cfg_; }

 private:
  const AutoscaleConfig cfg_;
  std::size_t streak_ = 0;
  bool resized_ = false;  // last_resize_ is meaningful
  std::chrono::steady_clock::time_point last_resize_{};
};

/// The background controller thread of one Server (opt-in via
/// ServerConfig::autoscale): every `interval_micros` it snapshots each
/// registered model's LoadController, runs that model's AutoscalePolicy,
/// and applies the decision — `Server::add_replica(model)` (cold-started
/// from the model's registered artifact path, falling back to cloning the
/// live pipeline's Parts) or `Server::retire_replica(model)` (mark
/// draining, stop routing, free after outstanding work completes).
///
/// Lifecycle: Server::start_serving constructs and starts it; shutdown
/// stops and joins it before the queues close. stop() is idempotent.
class Autoscaler {
 public:
  Autoscaler(Server& server, AutoscaleConfig cfg);
  ~Autoscaler();

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  /// Spawn the controller thread (no-op if already running).
  void start();
  /// Stop and join the controller thread (idempotent, thread-safe).
  void stop();

  /// One controller tick: evaluate every registered model at `now` and
  /// apply the decisions. Public so tests can drive the loop body
  /// deterministically without the thread (construct with enabled=false
  /// semantics: never call start()).
  void evaluate_once(std::chrono::steady_clock::time_point now);

  /// Controller ticks executed so far (thread + manual).
  std::size_t evaluations() const;

 private:
  void loop();

  Server& server_;
  const AutoscaleConfig cfg_;

  std::mutex mu_;  // guards thread_ and the stop CV
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;

  /// Per-model policy state; touched only by the controller thread (or the
  /// test driving evaluate_once single-threaded).
  std::unordered_map<std::string, AutoscalePolicy> policies_;

  std::atomic<std::size_t> evaluations_{0};
};

}  // namespace willump::serving
