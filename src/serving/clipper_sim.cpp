#include "serving/clipper_sim.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "common/string_util.hpp"
#include "common/timer.hpp"

namespace willump::serving {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

[[noreturn]] void wire_error(const std::string& what) {
  throw std::invalid_argument("ClipperSim: malformed wire input: " + what);
}

/// Consume one character, which must be `expected`.
void expect_char(std::string_view s, std::size_t& pos, char expected) {
  if (pos >= s.size() || s[pos] != expected) {
    wire_error(std::string("expected '") + expected + "' at offset " +
               std::to_string(pos));
  }
  ++pos;
}

std::string parse_escaped(std::string_view s, std::size_t& pos) {
  expect_char(s, pos, '"');
  std::string out;
  while (pos < s.size() && s[pos] != '"') {
    if (s[pos] == '\\') {
      ++pos;
      if (pos >= s.size()) wire_error("escape at end of input");
    }
    out.push_back(s[pos]);
    ++pos;
  }
  expect_char(s, pos, '"');  // throws on unterminated string
  return out;
}

template <typename T>
T parse_number(std::string_view s, std::size_t& pos) {
  T v{};
  const auto r = std::from_chars(s.data() + pos, s.data() + s.size(), v);
  if (r.ec != std::errc()) {
    wire_error("bad number at offset " + std::to_string(pos));
  }
  pos = static_cast<std::size_t>(r.ptr - s.data());
  return v;
}

}  // namespace

std::string ClipperSim::serialize_batch(const data::Batch& batch) {
  std::string out;
  out.reserve(batch.num_rows() * 32);
  out.push_back('{');
  for (const auto& name : batch.names()) {
    append_escaped(out, name);
    out.push_back(':');
    out.push_back('[');
    const auto& col = batch.get(name);
    char buf[64];
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (r > 0) out.push_back(',');
      switch (col.type()) {
        case data::ColumnType::Int:
          out.append(buf, static_cast<std::size_t>(
                              std::snprintf(buf, sizeof buf, "%lld",
                                            static_cast<long long>(col.ints()[r]))));
          break;
        case data::ColumnType::Double:
          out.append(buf, static_cast<std::size_t>(std::snprintf(
                              buf, sizeof buf, "%.17g", col.doubles()[r])));
          break;
        case data::ColumnType::String:
          append_escaped(out, col.strings()[r]);
          break;
      }
    }
    out.push_back(']');
    out.push_back(';');
  }
  out.push_back('}');
  return out;
}

data::Batch ClipperSim::deserialize_batch(const std::string& wire,
                                          const data::Batch& schema) {
  data::Batch out;
  std::size_t pos = 0;
  expect_char(wire, pos, '{');
  while (pos < wire.size() && wire[pos] != '}') {
    const std::string name = parse_escaped(wire, pos);
    if (!schema.has(name)) {
      wire_error("unknown column \"" + name + "\"");
    }
    if (out.has(name)) {
      wire_error("duplicate column \"" + name + "\"");
    }
    expect_char(wire, pos, ':');
    expect_char(wire, pos, '[');
    const auto type = schema.get(name).type();
    data::IntColumn ints;
    data::DoubleColumn doubles;
    data::StringColumn strings;
    bool first = true;
    while (pos < wire.size() && wire[pos] != ']') {
      if (!first) expect_char(wire, pos, ',');
      first = false;
      switch (type) {
        case data::ColumnType::Int:
          ints.push_back(parse_number<std::int64_t>(wire, pos));
          break;
        case data::ColumnType::Double:
          doubles.push_back(parse_number<double>(wire, pos));
          break;
        case data::ColumnType::String:
          strings.push_back(parse_escaped(wire, pos));
          break;
      }
    }
    expect_char(wire, pos, ']');  // throws on truncated column
    expect_char(wire, pos, ';');
    switch (type) {
      case data::ColumnType::Int:
        out.add(name, data::Column(std::move(ints)));
        break;
      case data::ColumnType::Double:
        out.add(name, data::Column(std::move(doubles)));
        break;
      case data::ColumnType::String:
        out.add(name, data::Column(std::move(strings)));
        break;
    }
  }
  expect_char(wire, pos, '}');
  if (pos != wire.size()) wire_error("trailing bytes after '}'");
  // Unknown and duplicate names were rejected above, so an equal count
  // means every schema column arrived.
  if (out.num_columns() != schema.num_columns()) {
    wire_error("missing schema columns");
  }
  return out;
}

std::string ClipperSim::serialize_predictions(const std::vector<double>& preds) {
  std::string out;
  out.reserve(preds.size() * 20);
  char buf[64];
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(buf, static_cast<std::size_t>(
                        std::snprintf(buf, sizeof buf, "%.17g", preds[i])));
  }
  return out;
}

std::vector<double> ClipperSim::deserialize_predictions(const std::string& wire) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    if (!out.empty()) expect_char(wire, pos, ',');
    out.push_back(parse_number<double>(wire, pos));
  }
  return out;
}

std::vector<double> ClipperSim::serve(std::string_view model,
                                      const data::Batch& batch) {
  ++wire_stats_.queries;
  wire_stats_.rows += batch.num_rows();

  // Client -> frontend: serialize the query and pay the RPC dispatch cost.
  common::Timer ser_timer;
  data::Batch container_batch = batch;
  if (cfg_.serialize) {
    const std::string wire = serialize_batch(batch);
    container_batch = deserialize_batch(wire, batch);
  }
  wire_stats_.serialize_seconds += ser_timer.elapsed_seconds();

  common::Timer rpc_timer;
  common::spin_wait_micros(cfg_.rpc_fixed_micros);
  wire_stats_.rpc_seconds += rpc_timer.elapsed_seconds();

  // Container-side inference (routing, the end-to-end prediction cache) is
  // the registry's business; this frontend only forwards the batch.
  common::Timer inf_timer;
  std::vector<double> preds = server_.predict_batch(model, container_batch);
  wire_stats_.inference_seconds += inf_timer.elapsed_seconds();

  // Frontend -> client: serialize predictions back.
  common::Timer ser2_timer;
  if (cfg_.serialize) {
    const std::string wire = serialize_predictions(preds);
    preds = deserialize_predictions(wire);
  }
  wire_stats_.serialize_seconds += ser2_timer.elapsed_seconds();
  return preds;
}

std::vector<double> ClipperSim::serve(const data::Batch& batch) {
  const auto names = server_.model_names();
  if (names.empty()) {
    throw std::logic_error("ClipperSim::serve: no models hosted");
  }
  return serve(names.front(), batch);
}

double ClipperSim::serve_timed(std::string_view model,
                               const data::Batch& batch) {
  common::Timer t;
  (void)serve(model, batch);
  return t.elapsed_seconds();
}

double ClipperSim::serve_timed(const data::Batch& batch) {
  common::Timer t;
  (void)serve(batch);
  return t.elapsed_seconds();
}

ClipperStats ClipperSim::stats() const {
  ClipperStats s = wire_stats_;
  s.cache_hits = server_.stats().cache_hits;
  return s;
}

void ClipperSim::reset_stats() {
  wire_stats_ = {};
  server_.reset_stats();
}

}  // namespace willump::serving
