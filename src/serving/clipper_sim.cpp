#include "serving/clipper_sim.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "common/string_util.hpp"
#include "common/timer.hpp"

namespace willump::serving {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

std::string parse_escaped(std::string_view s, std::size_t& pos) {
  std::string out;
  if (s[pos] != '"') throw std::invalid_argument("wire: expected string");
  ++pos;
  while (pos < s.size() && s[pos] != '"') {
    if (s[pos] == '\\') ++pos;
    out.push_back(s[pos]);
    ++pos;
  }
  ++pos;  // closing quote
  return out;
}

}  // namespace

std::string ClipperSim::serialize_batch(const data::Batch& batch) {
  std::string out;
  out.reserve(batch.num_rows() * 32);
  out.push_back('{');
  for (const auto& name : batch.names()) {
    append_escaped(out, name);
    out.push_back(':');
    out.push_back('[');
    const auto& col = batch.get(name);
    char buf[64];
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (r > 0) out.push_back(',');
      switch (col.type()) {
        case data::ColumnType::Int:
          out.append(buf, static_cast<std::size_t>(
                              std::snprintf(buf, sizeof buf, "%lld",
                                            static_cast<long long>(col.ints()[r]))));
          break;
        case data::ColumnType::Double:
          out.append(buf, static_cast<std::size_t>(std::snprintf(
                              buf, sizeof buf, "%.17g", col.doubles()[r])));
          break;
        case data::ColumnType::String:
          append_escaped(out, col.strings()[r]);
          break;
      }
    }
    out.push_back(']');
    out.push_back(';');
  }
  out.push_back('}');
  return out;
}

data::Batch ClipperSim::deserialize_batch(const std::string& wire,
                                          const data::Batch& schema) {
  data::Batch out;
  std::size_t pos = 1;  // skip '{'
  while (pos < wire.size() && wire[pos] != '}') {
    const std::string name = parse_escaped(wire, pos);
    ++pos;  // ':'
    ++pos;  // '['
    const auto type = schema.get(name).type();
    data::IntColumn ints;
    data::DoubleColumn doubles;
    data::StringColumn strings;
    while (wire[pos] != ']') {
      if (wire[pos] == ',') ++pos;
      switch (type) {
        case data::ColumnType::Int: {
          std::int64_t v = 0;
          const auto r = std::from_chars(wire.data() + pos, wire.data() + wire.size(), v);
          pos = static_cast<std::size_t>(r.ptr - wire.data());
          ints.push_back(v);
          break;
        }
        case data::ColumnType::Double: {
          double v = 0;
          const auto r = std::from_chars(wire.data() + pos, wire.data() + wire.size(), v);
          pos = static_cast<std::size_t>(r.ptr - wire.data());
          doubles.push_back(v);
          break;
        }
        case data::ColumnType::String:
          strings.push_back(parse_escaped(wire, pos));
          break;
      }
    }
    ++pos;  // ']'
    ++pos;  // ';'
    switch (type) {
      case data::ColumnType::Int:
        out.add(name, data::Column(std::move(ints)));
        break;
      case data::ColumnType::Double:
        out.add(name, data::Column(std::move(doubles)));
        break;
      case data::ColumnType::String:
        out.add(name, data::Column(std::move(strings)));
        break;
    }
  }
  return out;
}

std::string ClipperSim::serialize_predictions(const std::vector<double>& preds) {
  std::string out;
  out.reserve(preds.size() * 20);
  char buf[64];
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(buf, static_cast<std::size_t>(
                        std::snprintf(buf, sizeof buf, "%.17g", preds[i])));
  }
  return out;
}

std::vector<double> ClipperSim::deserialize_predictions(const std::string& wire) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    if (wire[pos] == ',') ++pos;
    double v = 0;
    const auto r = std::from_chars(wire.data() + pos, wire.data() + wire.size(), v);
    pos = static_cast<std::size_t>(r.ptr - wire.data());
    out.push_back(v);
  }
  return out;
}

std::vector<double> ClipperSim::serve(const data::Batch& batch) {
  ++stats_.queries;
  stats_.rows += batch.num_rows();

  // Client -> frontend: serialize the query and pay the RPC dispatch cost.
  common::Timer ser_timer;
  data::Batch container_batch = batch;
  if (cfg_.serialize) {
    const std::string wire = serialize_batch(batch);
    container_batch = deserialize_batch(wire, batch);
  }
  stats_.serialize_seconds += ser_timer.elapsed_seconds();

  common::Timer rpc_timer;
  common::spin_wait_micros(cfg_.rpc_fixed_micros);
  stats_.rpc_seconds += rpc_timer.elapsed_seconds();

  // Container-side inference, with Clipper's end-to-end prediction cache
  // consulted per data input when enabled.
  common::Timer inf_timer;
  std::vector<double> preds(container_batch.num_rows(), 0.0);
  if (cfg_.enable_e2e_cache) {
    std::vector<std::size_t> missing;
    for (std::size_t r = 0; r < container_batch.num_rows(); ++r) {
      const data::Batch row = container_batch.row(r);
      if (auto hit = cache_.get(row)) {
        preds[r] = *hit;
        ++stats_.cache_hits;
      } else {
        missing.push_back(r);
      }
    }
    if (!missing.empty()) {
      const auto missing_preds =
          pipeline_->predict(container_batch.select_rows(missing));
      for (std::size_t i = 0; i < missing.size(); ++i) {
        preds[missing[i]] = missing_preds[i];
        cache_.put(container_batch.row(missing[i]), missing_preds[i]);
      }
    }
  } else {
    preds = pipeline_->predict(container_batch);
  }
  stats_.inference_seconds += inf_timer.elapsed_seconds();

  // Frontend -> client: serialize predictions back.
  common::Timer ser2_timer;
  if (cfg_.serialize) {
    const std::string wire = serialize_predictions(preds);
    preds = deserialize_predictions(wire);
  }
  stats_.serialize_seconds += ser2_timer.elapsed_seconds();
  return preds;
}

double ClipperSim::serve_timed(const data::Batch& batch) {
  common::Timer t;
  (void)serve(batch);
  return t.elapsed_seconds();
}

}  // namespace willump::serving
