#include "serving/aimd.hpp"

#include <algorithm>

namespace willump::serving {

namespace {

std::size_t clamp_cap(std::size_t cap, const AimdConfig& cfg) {
  const std::size_t lo = std::max<std::size_t>(cfg.min_batch, 1);
  const std::size_t hi = std::max(cfg.max_batch, lo);
  return std::clamp(cap, lo, hi);
}

}  // namespace

AimdBatchController::AimdBatchController(std::size_t initial_cap,
                                         AimdConfig cfg)
    : cfg_(cfg),
      cap_(cfg.enabled ? clamp_cap(initial_cap, cfg)
                       : std::max<std::size_t>(initial_cap, 1)) {}

void AimdBatchController::on_batch(std::size_t rows, double batch_seconds) {
  (void)rows;
  if (!cfg_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++observations_;
  const std::size_t cap = cap_.load(std::memory_order_relaxed);
  std::size_t next = cap;
  if (batch_seconds * 1e6 > cfg_.slo_micros) {
    // Violation: multiplicative decrease. The floor rounding alone cannot
    // stall at the old value — clamp handles backoff factors near 1.
    next = clamp_cap(
        std::min(cap - 1, static_cast<std::size_t>(
                              static_cast<double>(cap) * cfg_.backoff)),
        cfg_);
    if (next < cap) ++backoffs_;
    consecutive_violations_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Under the SLO: additive increase, probing for more amortization.
    next = clamp_cap(cap + std::max<std::size_t>(cfg_.additive_step, 1), cfg_);
    if (next > cap) ++increases_;
    consecutive_violations_.store(0, std::memory_order_relaxed);
  }
  cap_.store(next, std::memory_order_relaxed);
}

AimdCounters AimdBatchController::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {cap_.load(std::memory_order_relaxed), increases_, backoffs_,
          observations_};
}

void AimdBatchController::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  increases_ = 0;
  backoffs_ = 0;
  observations_ = 0;
}

}  // namespace willump::serving
