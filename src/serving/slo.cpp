#include "serving/slo.hpp"

#include <algorithm>

namespace willump::serving {

double SloClass::batch_slo_micros() const {
  const double fraction = std::clamp(batch_slo_fraction, 1e-6, 1.0);
  return std::max(1.0, deadline_micros * fraction);
}

SloClass SloClass::latency_critical(double deadline_micros) {
  return SloClass{.deadline_micros = deadline_micros, .priority = 10};
}

SloClass SloClass::standard(double deadline_micros) {
  return SloClass{.deadline_micros = deadline_micros, .priority = 0};
}

SloClass SloClass::best_effort(double deadline_micros) {
  return SloClass{.deadline_micros = deadline_micros, .priority = -10};
}

bool before(const ScheduleKey& a, const ScheduleKey& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.deadline < b.deadline;
}

}  // namespace willump::serving
