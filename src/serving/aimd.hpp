#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>

namespace willump::serving {

/// Policy of the AIMD max-batch controller (Clipper, NSDI 2017 §4.3).
///
/// Clipper discovers each model's optimal batch size online instead of
/// hand-tuning it: while measured batch processing latency stays under the
/// model's latency SLO the batch cap grows additively (probing for more
/// amortization), and a violation multiplicatively backs the cap off —
/// classic additive-increase/multiplicative-decrease, which converges to
/// the largest batch the SLO admits and re-adapts when load shifts.
struct AimdConfig {
  bool enabled = false;
  /// Batch processing-latency objective the controller tunes against.
  /// 0 (the default) means "derive from the model's SLO class": the
  /// registry resolves it to `SloClass::batch_slo_micros()` — a fraction
  /// of the per-query deadline, leaving the rest as queueing/coalescing
  /// headroom — before constructing the controller. Set a positive value
  /// to pin the batch target independently of the deadline.
  double slo_micros = 0.0;
  /// Additive step: cap += step after a batch under the SLO.
  std::size_t additive_step = 2;
  /// Multiplicative decrease: cap = max(min_batch, cap * backoff) on
  /// violation. Must be in (0, 1).
  double backoff = 0.5;
  /// Clamp bounds for the tuned cap.
  std::size_t min_batch = 1;
  std::size_t max_batch = 256;
};

/// Counters a stats snapshot reads from the controller.
struct AimdCounters {
  std::size_t current_max_batch = 0;
  std::size_t increases = 0;   // additive growth steps taken
  std::size_t backoffs = 0;    // multiplicative decreases taken
  std::size_t observations = 0;  // batches fed to the controller
};

/// Per-model AIMD tuner for the adaptive-batching cap.
///
/// Workers read `cap()` lock-free before coalescing a batch and feed every
/// executed batch's size and latency to `on_batch()`. When disabled the
/// controller simply pins the cap at its initial value (the hand-tuned
/// constant the registry replaces it with).
///
/// Thread safety: `cap()` is lock-free and safe from any thread;
/// `on_batch()`, `counters()`, and `reset_counters()` serialize on an
/// internal mutex. Nothing blocks beyond that mutex and nothing throws.
///
/// The controller uses `cfg.slo_micros` exactly as given; callers that
/// want the 0 = derive-from-deadline convention (see AimdConfig) must
/// resolve it first, as `serving::Server` does at registration.
class AimdBatchController {
 public:
  AimdBatchController(std::size_t initial_cap, AimdConfig cfg);

  /// Current batch cap; always >= 1. Lock-free, safe from any thread.
  std::size_t cap() const { return cap_.load(std::memory_order_relaxed); }

  /// Record one executed batch of `rows` rows that took `batch_seconds`.
  /// No-op when tuning is disabled.
  void on_batch(std::size_t rows, double batch_seconds);

  /// SLO-violating batches observed in a row (reset by any compliant
  /// batch). Violations are counted even when the cap is already at its
  /// floor and cannot back off further — that saturated state is exactly
  /// the overload the shed path needs to see. Lock-free, safe from any
  /// thread.
  std::size_t consecutive_violations() const {
    return consecutive_violations_.load(std::memory_order_relaxed);
  }

  /// Overload signal the admission controller coordinates with: true once
  /// the controller has seen >= 2 consecutive violating batches, i.e. it
  /// is actively backing off (or pinned at the floor) rather than probing.
  /// Load control sheds best-effort classes while a higher class's
  /// controller reports pressure, so the two mechanisms push the same
  /// direction instead of AIMD shrinking batches while shedding starves
  /// them. Lock-free.
  bool under_pressure() const { return consecutive_violations() >= 2; }

  AimdCounters counters() const;
  bool enabled() const { return cfg_.enabled; }

  /// Reset the counters (not the learned cap or the violation streak).
  void reset_counters();

 private:
  AimdConfig cfg_;
  std::atomic<std::size_t> cap_;
  std::atomic<std::size_t> consecutive_violations_{0};
  mutable std::mutex mu_;
  std::size_t increases_ = 0;
  std::size_t backoffs_ = 0;
  std::size_t observations_ = 0;
};

}  // namespace willump::serving
