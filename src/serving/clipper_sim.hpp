#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "serving/e2e_cache.hpp"

namespace willump::serving {

/// Overhead parameters of the simulated model-serving frontend. Defaults
/// approximate the fixed and variable overheads the paper attributes to
/// Clipper (§6.3: "large fixed overheads (RPC processing time, etc.) which
/// are amortized over a batch" and "large variable overheads (serialization
/// time, etc.) which Willump cannot reduce").
struct ClipperConfig {
  double rpc_fixed_micros = 900.0;  // per-query RPC dispatch cost
  bool serialize = true;            // JSON-encode inputs and predictions
  std::size_t e2e_cache_capacity = 0;
  bool enable_e2e_cache = false;
};

/// Traffic/latency counters for one serving session.
struct ClipperStats {
  std::size_t queries = 0;
  std::size_t rows = 0;
  std::size_t cache_hits = 0;
  double serialize_seconds = 0.0;
  double rpc_seconds = 0.0;
  double inference_seconds = 0.0;
};

/// A Clipper-like general-purpose model-serving frontend.
///
/// Clipper treats the pipeline as a black box behind an RPC interface: each
/// query serializes its inputs, pays an RPC round trip, runs the pipeline
/// container-side, and serializes predictions back. The serialization here
/// is real work (a JSON wire format is built and parsed); the RPC cost is a
/// measured spin-wait. Willump integrates by swapping the black-box
/// pipeline for an optimized one — exactly the Table 6 experiment.
class ClipperSim {
 public:
  ClipperSim(const core::OptimizedPipeline* pipeline, ClipperConfig cfg)
      : pipeline_(pipeline), cfg_(cfg), cache_(cfg.e2e_cache_capacity) {}

  /// Serve one query batch end-to-end; returns the predictions.
  std::vector<double> serve(const data::Batch& batch);

  /// End-to-end latency (seconds) of serving `batch` once.
  double serve_timed(const data::Batch& batch);

  const ClipperStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  EndToEndCache& cache() { return cache_; }

  /// Wire-format helpers (exposed for tests).
  static std::string serialize_batch(const data::Batch& batch);
  static data::Batch deserialize_batch(const std::string& wire,
                                       const data::Batch& schema);
  static std::string serialize_predictions(const std::vector<double>& preds);
  static std::vector<double> deserialize_predictions(const std::string& wire);

 private:
  const core::OptimizedPipeline* pipeline_;
  ClipperConfig cfg_;
  EndToEndCache cache_;
  ClipperStats stats_;
};

}  // namespace willump::serving
