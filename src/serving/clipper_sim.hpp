#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer.hpp"
#include "serving/server.hpp"

namespace willump::serving {

/// Overhead parameters of the simulated model-serving frontend. Defaults
/// approximate the fixed and variable overheads the paper attributes to
/// Clipper (§6.3: "large fixed overheads (RPC processing time, etc.) which
/// are amortized over a batch" and "large variable overheads (serialization
/// time, etc.) which Willump cannot reduce").
struct ClipperConfig {
  double rpc_fixed_micros = 900.0;  // per-query RPC dispatch cost
  bool serialize = true;            // JSON-encode inputs and predictions
  std::size_t e2e_cache_capacity = 0;
  bool enable_e2e_cache = false;
};

/// Traffic/latency counters for one serving session (aggregate over every
/// hosted model).
struct ClipperStats {
  std::size_t queries = 0;
  std::size_t rows = 0;
  std::size_t cache_hits = 0;
  double serialize_seconds = 0.0;
  double rpc_seconds = 0.0;
  double inference_seconds = 0.0;
};

/// A Clipper-like general-purpose model-serving frontend.
///
/// Clipper treats each pipeline as a black box behind an RPC interface: a
/// query names its model, serializes its inputs, pays an RPC round trip,
/// runs the pipeline container-side, and serializes predictions back. The
/// serialization here is real work (a JSON wire format is built and
/// parsed); the RPC cost is a measured spin-wait. Willump integrates by
/// swapping a black-box pipeline for an optimized one — exactly the Table 6
/// experiment.
///
/// ClipperSim owns only the wire format and RPC overhead accounting; the
/// container-side inference, routing, and end-to-end prediction caches live
/// in the model registry (serving::Server), of which this is a thin
/// synchronous client. Like the real Clipper frontend it hosts any number
/// of models: construct with `ClipperConfig` and `add_model` each pipeline,
/// or use the single-model convenience constructor. Pre-batched client
/// batches go through the engine's synchronous path, preserving their
/// composition exactly.
///
/// Thread safety: NOT internally synchronized. serve()/serve_timed()
/// mutate the frontend's wire counters without a lock, so one ClipperSim
/// belongs to one driver thread (use one instance per thread, or your own
/// lock, if you need concurrent frontends — the registry behind them is
/// thread-safe either way). add_model() is registration-phase only (the
/// usual registry freeze rules apply through the backing Server). serve()
/// propagates pipeline errors (e.g. a schema-mismatched batch) as
/// exceptions to the caller; deserialize_* reject malformed wire input
/// with std::invalid_argument and never construct a partial batch.
class ClipperSim {
 public:
  /// Multi-model frontend: host models added via add_model().
  explicit ClipperSim(ClipperConfig cfg)
      // num_workers 0: serve() is synchronous and pre-batched, so the
      // engine runs in its inline mode with no idle worker thread.
      : cfg_(cfg), server_(ServerConfig{.num_workers = 0}) {}

  /// Single-model convenience (the PR-2 shape): hosts `pipeline` under the
  /// registry's default name.
  ClipperSim(const core::OptimizedPipeline* pipeline, ClipperConfig cfg)
      : ClipperSim(cfg) {
    add_model("default", pipeline);
  }

  /// Register another hosted model (before the first async request; the
  /// synchronous serve() path never freezes the registry).
  void add_model(const std::string& name, const core::OptimizedPipeline* pipeline) {
    ModelConfig model_cfg;
    model_cfg.enable_e2e_cache = cfg_.enable_e2e_cache;
    model_cfg.e2e_cache_capacity = cfg_.e2e_cache_capacity;
    server_.register_model(name, pipeline, model_cfg);
  }

  /// Serve one query batch end-to-end against `model`; returns the
  /// predictions.
  std::vector<double> serve(std::string_view model, const data::Batch& batch);

  /// Single-model convenience: serve against the first hosted model.
  std::vector<double> serve(const data::Batch& batch);

  /// End-to-end latency (seconds) of serving `batch` once.
  double serve_timed(std::string_view model, const data::Batch& batch);
  double serve_timed(const data::Batch& batch);

  /// Frontend counters; cache hits come from the backing engine.
  ClipperStats stats() const;
  void reset_stats();

  /// The model registry serving this frontend.
  Server& server() { return server_; }
  EndToEndCache& cache() { return server_.cache(); }

  /// Wire-format helpers (exposed for tests). deserialize_* reject
  /// malformed wire input with std::invalid_argument.
  static std::string serialize_batch(const data::Batch& batch);
  static data::Batch deserialize_batch(const std::string& wire,
                                       const data::Batch& schema);
  static std::string serialize_predictions(const std::vector<double>& preds);
  static std::vector<double> deserialize_predictions(const std::string& wire);

 private:
  ClipperConfig cfg_;
  Server server_;
  ClipperStats wire_stats_;  // queries/rows/serialize/rpc timing
};

}  // namespace willump::serving
