#pragma once

#include <chrono>
#include <cstdint>

namespace willump::serving {

/// The latency objective and scheduling class of one registered model.
///
/// Production registries host models with very different obligations: a
/// latency-critical ranker answering an interactive page next to a batch
/// scorer that only cares about throughput. An SLO class captures that
/// contract per model — a per-query completion deadline plus a scheduling
/// priority — and the engine derives everything else from it:
///
/// - **Queue order.** Workers dequeue across models by (priority
///   descending, earliest absolute deadline first); see
///   `ServerConfig::slo_scheduling`. The absolute deadline of a queued
///   request is its accept time plus `deadline_micros`, so within one
///   class earliest-deadline-first degrades to FIFO (deadlines are an
///   accept-time offset) and across classes the closest deadline wins ties
///   between equal priorities.
/// - **Batch-latency target.** The AIMD controller tunes the micro-batch
///   cap against a *batch execution* SLO. When `AimdConfig::slo_micros` is
///   left at 0 the engine derives it as `batch_slo_fraction *
///   deadline_micros` (`batch_slo_micros()`): a query's end-to-end budget
///   must cover queueing and coalescing as well as execution, so only a
///   fraction of the deadline is given to the batch itself.
///
/// An `SloClass` is plain data: copying it is cheap, comparing two of them
/// is `before()`. Defaults describe a "standard" interactive model
/// (100 ms deadline, priority 0).
struct SloClass {
  /// Per-query completion objective (submit to completion), microseconds.
  /// Must be positive; `Server::register_model` rejects non-positive
  /// deadlines with std::invalid_argument.
  double deadline_micros = 100'000.0;

  /// Scheduling priority: higher values are dequeued first, strictly — a
  /// queued request of a higher class is always taken before any request
  /// of a lower class (no aging). Ties fall through to
  /// earliest-deadline-first.
  int priority = 0;

  /// Share of the deadline granted to one batch *execution* when the AIMD
  /// batch-latency target is derived (AimdConfig::slo_micros == 0). The
  /// remainder is headroom for queueing, coalescing, and completion
  /// delivery. Clamped to (0, 1] by batch_slo_micros().
  double batch_slo_fraction = 0.5;

  /// The derived AIMD batch-latency target, microseconds (>= 1).
  double batch_slo_micros() const;

  /// Shed ordering under overload: classes with negative priority are
  /// best-effort and are the first the admission controller sheds
  /// (`RejectReason::kShedBestEffort`) when a higher class is under
  /// pressure — before any standard or latency-critical request is put at
  /// risk. See serving/load_control.hpp.
  bool is_best_effort() const { return priority < 0; }

  /// Preset: an interactive model that preempts everything else.
  static SloClass latency_critical(double deadline_micros = 20'000.0);
  /// Preset: the default class (priority 0).
  static SloClass standard(double deadline_micros = 100'000.0);
  /// Preset: a throughput/batch model that yields to every other class.
  static SloClass best_effort(double deadline_micros = 1'000'000.0);
};

/// Dequeue-ordering key of one model's queue head: the class priority plus
/// the head request's absolute deadline (accept time + class deadline).
/// Built by the scheduler from a RequestQueue peek; never stored.
struct ScheduleKey {
  int priority = 0;
  std::chrono::steady_clock::time_point deadline{};
};

/// Strict-weak ordering of schedule keys: higher priority first, then
/// earlier absolute deadline. Returns true when `a` should be served
/// before `b`.
bool before(const ScheduleKey& a, const ScheduleKey& b);

}  // namespace willump::serving
