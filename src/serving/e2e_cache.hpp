#pragma once

#include <cstdint>
#include <optional>

#include "common/lru_cache.hpp"
#include "data/value.hpp"

namespace willump::serving {

/// Clipper-style end-to-end prediction cache: keys on the *entire* raw
/// input of one example and stores the final prediction (paper §4.5:
/// "existing model serving systems cache ML inference pipelines end-to-end,
/// caching the prediction made for each data input received").
///
/// Its weakness — which Willump's feature-level cache fixes — is that a
/// query misses whenever ANY raw input differs, even if most of its
/// features were computed before for other inputs (Table 2).
class EndToEndCache {
 public:
  /// capacity 0 = unbounded (the paper's Table 2/3 configuration).
  explicit EndToEndCache(std::size_t capacity = 0) : cache_(capacity) {}

  /// Stable hash over every column of a single-row batch.
  static std::uint64_t key_of(const data::Batch& row);

  std::optional<double> get(const data::Batch& row) {
    return cache_.get(key_of(row));
  }
  void put(const data::Batch& row, double prediction) {
    cache_.put(key_of(row), prediction);
  }

  std::size_t hits() const { return cache_.hits(); }
  std::size_t misses() const { return cache_.misses(); }
  double hit_rate() const { return cache_.hit_rate(); }
  void clear() { cache_.clear(); }

 private:
  common::LruCache<std::uint64_t, double> cache_;
};

}  // namespace willump::serving
