#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "common/lru_cache.hpp"
#include "data/value.hpp"

namespace willump::serving {

/// Clipper-style end-to-end prediction cache: keys on the *entire* raw
/// input of one example and stores the final prediction (paper §4.5:
/// "existing model serving systems cache ML inference pipelines end-to-end,
/// caching the prediction made for each data input received").
///
/// Its weakness — which Willump's feature-level cache fixes — is that a
/// query misses whenever ANY raw input differs, even if most of its
/// features were computed before for other inputs (Table 2).
///
/// All operations are thread-safe: the serving engine consults this cache
/// from concurrent client threads (before enqueue) and worker threads
/// (after inference). A single mutex suffices — one LRU lookup is orders of
/// magnitude cheaper than the inference it short-circuits. No operation
/// blocks beyond that mutex and none throws (key_of and get/put on a
/// present/absent key are total); eviction is LRU at `capacity`.
///
/// Version coherence across hot reloads is the *caller's* job: the
/// registry salts keys with the model's swap generation and clears the
/// cache at swap, so entries computed by a retired pipeline version are
/// never served as the new version's answers (see Server::swap_model).
class EndToEndCache {
 public:
  /// capacity 0 = unbounded (the paper's Table 2/3 configuration).
  explicit EndToEndCache(std::size_t capacity = 0) : cache_(capacity) {}

  EndToEndCache(const EndToEndCache&) = delete;
  EndToEndCache& operator=(const EndToEndCache&) = delete;

  /// Stable hash over every column of a single-row batch.
  static std::uint64_t key_of(const data::Batch& row);

  std::optional<double> get(const data::Batch& row) { return get(key_of(row)); }
  std::optional<double> get(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.get(key);
  }

  void put(const data::Batch& row, double prediction) {
    put(key_of(row), prediction);
  }
  void put(std::uint64_t key, double prediction) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.put(key, prediction);
  }

  std::size_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.hits();
  }
  std::size_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.misses();
  }
  double hit_rate() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.hit_rate();
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
  }

 private:
  mutable std::mutex mu_;
  common::LruCache<std::uint64_t, double> cache_;
};

}  // namespace willump::serving
