#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/dispatch.hpp"

namespace willump::kernels {

/// Dot product of two contiguous length-n arrays under `v` (downgraded to
/// the best supported variant if this CPU lacks `v`). Scalar is the strict
/// left-to-right reference; the others split the sum across independent
/// accumulators/lanes and agree to ~1e-12 relative.
double dot(DotVariant v, const double* a, const double* b, std::size_t n);

/// Batched linear margins over a row-major block:
///   out[r] = bias + dot(x + r*stride, w)   for r in [0, rows).
/// This is the GEMV shape of LinearModelBase::predict on dense input.
void dense_margins(DotVariant v, const double* x, std::size_t rows,
                   std::size_t stride, const double* w, std::size_t d,
                   double bias, double* out);

/// Batched linear margins over CSR rows:
///   out[r] = bias + sum_k values[k] * w[indices[k]]  over row r's entries.
/// Scalar keeps the reference order; every other variant uses a two-way
/// accumulator split (index gathers defeat wider vectorization).
void csr_margins(DotVariant v, const std::size_t* indptr,
                 const std::int32_t* indices, const double* values,
                 const double* w, double bias, std::size_t rows, double* out);

/// Hidden-layer forward for a row block (the GEMM shape of the MLP):
///   h[r*hidden + j] = relu(b1[j] + dot(x + r*stride, w1 + j*in_dim))
/// Loops hidden-major so each weight row streams once per block and is
/// reused across every row of the block (FluidML's contiguous-operand
/// argument: the caller blocks rows so x stays cache-resident).
void hidden_relu(DotVariant v, const double* x, std::size_t rows,
                 std::size_t stride, const double* w1, const double* b1,
                 std::size_t hidden, std::size_t in_dim, double* h);

}  // namespace willump::kernels
