#include "kernels/dispatch.hpp"

#include "serialize/buffer.hpp"
#include "serialize/error.hpp"

namespace willump::kernels {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
bool cpu_has_avx512f() { return __builtin_cpu_supports("avx512f"); }
#else
bool cpu_has_avx2_fma() { return false; }
bool cpu_has_avx512f() { return false; }
#endif

}  // namespace

bool dot_supported(DotVariant v) {
  switch (v) {
    case DotVariant::Scalar:
    case DotVariant::Unrolled:
      return true;
    case DotVariant::Avx2:
      return cpu_has_avx2_fma();
    case DotVariant::Avx512:
      return cpu_has_avx512f() && cpu_has_avx2_fma();
  }
  return false;
}

DotVariant best_supported_dot() {
  // Probed once: the answer cannot change within a process.
  static const DotVariant best = [] {
    if (dot_supported(DotVariant::Avx512)) return DotVariant::Avx512;
    if (dot_supported(DotVariant::Avx2)) return DotVariant::Avx2;
    return DotVariant::Unrolled;
  }();
  return best;
}

DotVariant effective_dot(DotVariant v) {
  while (!dot_supported(v)) {
    v = static_cast<DotVariant>(static_cast<std::uint8_t>(v) - 1);
  }
  return v;
}

KernelConfig native_config() {
  KernelConfig c;
  c.dot = best_supported_dot();
  return c;
}

const char* variant_name(DotVariant v) {
  switch (v) {
    case DotVariant::Scalar: return "scalar";
    case DotVariant::Unrolled: return "unrolled";
    case DotVariant::Avx2: return "avx2";
    case DotVariant::Avx512: return "avx512";
  }
  return "?";
}

const char* variant_name(TreeVariant v) {
  switch (v) {
    case TreeVariant::RowWise: return "rowwise";
    case TreeVariant::Blocked: return "blocked";
  }
  return "?";
}

const char* variant_name(LookupVariant v) {
  switch (v) {
    case LookupVariant::HashMap: return "hashmap";
    case LookupVariant::SortedVocab: return "sorted";
  }
  return "?";
}

const char* variant_name(OneHotVariant v) {
  switch (v) {
    case OneHotVariant::Scalar: return "scalar";
    case OneHotVariant::Batched: return "batched";
  }
  return "?";
}

void save_kernel_config(serialize::Writer& w, const KernelConfig& c) {
  w.u8(static_cast<std::uint8_t>(c.dot));
  w.u8(static_cast<std::uint8_t>(c.tree));
  w.u32(c.tree_block);
  w.u32(c.sparse_cutoff);
}

KernelConfig load_kernel_config(serialize::Reader& r) {
  KernelConfig c;
  const std::uint8_t dot = r.u8();
  const std::uint8_t tree = r.u8();
  const std::uint32_t block = r.u32();
  const std::uint32_t cutoff = r.u32();
  if (dot > static_cast<std::uint8_t>(DotVariant::Avx512) ||
      tree > static_cast<std::uint8_t>(TreeVariant::Blocked) || block == 0 ||
      block > kMaxTreeBlock) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "kernel config out of range");
  }
  c.dot = static_cast<DotVariant>(dot);
  c.tree = static_cast<TreeVariant>(tree);
  c.tree_block = block;
  c.sparse_cutoff = cutoff;  // any u32 is a valid threshold
  return c;
}

void save_featureop_config(serialize::Writer& w, const FeatureOpConfig& c) {
  w.u8(static_cast<std::uint8_t>(c.lookup));
  w.u32(c.block_rows);
  w.u8(c.zero_copy ? 1 : 0);
  if (w.format_version() >= 4) {
    w.u8(static_cast<std::uint8_t>(c.onehot));
  }
}

FeatureOpConfig load_featureop_config(serialize::Reader& r) {
  FeatureOpConfig c;
  const std::uint8_t lookup = r.u8();
  const std::uint32_t block_rows = r.u32();
  const std::uint8_t zero_copy = r.u8();
  // v3 artifacts predate the one-hot stage: the default (Scalar) is the
  // exact behavior they were tuned with.
  const std::uint8_t onehot = r.format_version() >= 4 ? r.u8() : 0;
  if (lookup > static_cast<std::uint8_t>(LookupVariant::SortedVocab) ||
      block_rows == 0 || block_rows > kMaxBlockRows || zero_copy > 1 ||
      onehot > static_cast<std::uint8_t>(OneHotVariant::Batched)) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "feature-op config out of range");
  }
  c.lookup = static_cast<LookupVariant>(lookup);
  c.block_rows = block_rows;
  c.zero_copy = zero_copy != 0;
  c.onehot = static_cast<OneHotVariant>(onehot);
  return c;
}

}  // namespace willump::kernels
