#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/dispatch.hpp"

namespace willump::kernels {

/// Flattened structure-of-arrays layout of a boosted forest, built once at
/// fit/load time (the LightGBM predictor idiom). All trees' nodes live in
/// four parallel contiguous arrays; children are absolute node ids, leaves
/// keep feature < 0 and store their output in `split`. Traversal kernels
/// walk a block of rows through a tree level together, so the per-node
/// load->compare->load dependency chains of different rows overlap instead
/// of serializing (the pointer-chasing predict_row shape).
class FlatForest {
 public:
  /// Reset to an empty forest with the given base margin.
  void reset(double base);

  /// Append one tree given parallel intra-tree node arrays (node i's
  /// children are intra-tree ids > i, as the trainer builds and the loader
  /// validates; leaves have feature < 0 and their output in `value`).
  void add_tree(std::span<const std::int32_t> feature,
                std::span<const double> threshold,
                std::span<const std::int32_t> left,
                std::span<const std::int32_t> right,
                std::span<const double> value);

  /// Compute the suffix leaf-magnitude bounds the cascade early-exit needs.
  /// Call after the last add_tree.
  void finalize();

  bool empty() const { return roots_.empty(); }
  std::size_t num_trees() const { return roots_.size(); }
  double base() const { return base_; }

  /// out[r] = base + sum of per-tree leaf outputs for row r. `x` is a
  /// row-major block of `rows` rows with `stride` doubles per row. Both
  /// variants accumulate trees in the same order, so RowWise and Blocked
  /// are bit-exact equals.
  void margins(TreeVariant v, std::uint32_t block, const double* x,
               std::size_t rows, std::size_t stride, double* out) const;

  /// margins() over CSR rows without densifying the column space: each row
  /// block is gathered into a forest-column-compacted scratch (one slot per
  /// column any tree references — a few hundred for a TF-IDF-wide input
  /// whose trees pick the discriminative terms) and traversed with the same
  /// branch-free blocked kernel. Absent columns read as 0.0 — exactly what
  /// the densify scratch would have held — and per-row tree order is
  /// unchanged, so outputs are bit-exact with the dense path. Wins when the
  /// full-width scratch (block × cols doubles) is far beyond cache while
  /// the compacted one stays in L1/L2.
  void margins_csr(const std::size_t* indptr, const std::int32_t* indices,
                   const double* values, std::size_t rows, double* out) const;

  /// Early-exit margins for cascade routing: a row whose final margin is
  /// provably inside [-bound, bound] (partial sum + remaining-tree bound)
  /// stops accumulating — it gets hard[r] = 1 and a PARTIAL margin in
  /// out[r] that callers must not use (the cascade overwrites hard rows
  /// with the full model). Rows that finish get their exact margin and
  /// hard[r] = 0; the caller applies its own confidence check to those.
  void cascade_margins(std::uint32_t block, const double* x, std::size_t rows,
                       std::size_t stride, double bound, double* out,
                       std::uint8_t* hard) const;

 private:
  void margins_rowwise(const double* x, std::size_t rows, std::size_t stride,
                       double* out) const;
  void margins_blocked(std::uint32_t block, const double* x, std::size_t rows,
                       std::size_t stride, double* out) const;
  /// margins_blocked body over an arbitrary per-node column array (col_ for
  /// the dense path, ccol_ for the compact-gather CSR path).
  void margins_blocked_cols(const std::int32_t* cols, std::uint32_t block,
                            const double* x, std::size_t rows,
                            std::size_t stride, double* out) const;

  double base_ = 0.0;
  std::vector<std::int32_t> feature_;  // < 0 => leaf
  std::vector<std::int32_t> col_;      // max(feature, 0): leaf-safe x column
  std::vector<double> split_;          // threshold (internal) or output (leaf)
  std::vector<std::int32_t> left_;     // absolute node ids; leaves self-point
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> roots_;        // per-tree root node id
  std::vector<std::int32_t> depths_;       // per-tree max depth
  std::vector<double> max_abs_leaf_;       // per-tree max |leaf output|
  std::vector<double> suffix_abs_bound_;   // suffix sums of max_abs_leaf_
  std::vector<std::int32_t> used_cols_;    // sorted unique split features
  std::vector<std::int32_t> ccol_;         // col_ remapped into used_cols_
};

}  // namespace willump::kernels
