#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/dispatch.hpp"

namespace willump::kernels {

/// Elementwise block kernels for the feature operators. Unlike dot products,
/// these have no cross-element reduction — every variant computes each
/// output element with the same two-operation expression `(x - off) * s` —
/// so all variants are bit-exact equals of Scalar, not tolerance equals.

/// Standardize a dense row-major block in one pass:
///   dst[r*stride + c] = (src[r*stride + c] - offsets[c]) * scales[c]
/// for r in [0, rows), c in [0, cols). src and dst may alias exactly
/// (in-place) but must not partially overlap.
void affine_scale_block(DotVariant v, const double* src, double* dst,
                        std::size_t rows, std::size_t cols, std::size_t stride,
                        const double* offsets, const double* scales);

/// Scale a CSR value strip by per-column factors (offsets do not apply to
/// sparse standardization — the reference path scales only):
///   dst[i] = src[i] * scales_by_col[indices[i]]
void scale_csr_values(DotVariant v, const std::int32_t* indices,
                      const double* src, double* dst, std::size_t nnz,
                      const double* scales_by_col);

}  // namespace willump::kernels
