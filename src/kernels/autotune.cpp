#include "kernels/autotune.hpp"

#include "serialize/buffer.hpp"
#include "serialize/error.hpp"

namespace willump::kernels {

std::vector<DotVariant> candidate_dots() {
  std::vector<DotVariant> out = {DotVariant::Scalar, DotVariant::Unrolled};
  if (dot_supported(DotVariant::Avx2)) out.push_back(DotVariant::Avx2);
  if (dot_supported(DotVariant::Avx512)) out.push_back(DotVariant::Avx512);
  return out;
}

void save_autotune_report(serialize::Writer& w, const AutotuneReport& rep) {
  w.u8(rep.tuned ? 1 : 0);
  save_kernel_config(w, rep.full);
  w.u8(rep.has_small ? 1 : 0);
  save_kernel_config(w, rep.small);
  w.u8(rep.tuned_ops ? 1 : 0);
  save_featureop_config(w, rep.ops);
  w.u64(rep.timings.size());
  for (const auto& t : rep.timings) {
    w.str(t.name);
    w.f64(t.seconds);
  }
}

AutotuneReport load_autotune_report(serialize::Reader& r) {
  AutotuneReport rep;
  const std::uint8_t tuned = r.u8();
  if (tuned > 1) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "autotune tuned flag out of range");
  }
  rep.tuned = tuned != 0;
  rep.full = load_kernel_config(r);
  const std::uint8_t has_small = r.u8();
  if (has_small > 1) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "autotune has_small flag out of range");
  }
  rep.has_small = has_small != 0;
  rep.small = load_kernel_config(r);
  const std::uint8_t tuned_ops = r.u8();
  if (tuned_ops > 1) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "autotune tuned_ops flag out of range");
  }
  rep.tuned_ops = tuned_ops != 0;
  rep.ops = load_featureop_config(r);
  const std::uint64_t n = r.length(9, "autotune timing list");
  rep.timings.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    VariantTiming t;
    t.name = r.str();
    t.seconds = r.f64();
    rep.timings.push_back(std::move(t));
  }
  return rep;
}

}  // namespace willump::kernels
