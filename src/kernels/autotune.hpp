#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/dispatch.hpp"

namespace willump::serialize {
class Reader;
class Writer;
}

namespace willump::kernels {

/// Knobs for the optimize-time kernel autotuner. It reuses the cost model's
/// measurement discipline (warmup + median of `reps` timed runs) on a
/// training-set sample, so tuning cost stays a small constant on top of the
/// cascade search.
struct AutotuneConfig {
  int reps = 5;                  // timed repetitions per candidate (median)
  std::size_t sample_rows = 256; // rows of the training set to time against
  std::vector<std::uint32_t> tree_blocks = {8, 16, 32, 64};
  /// Row-chunk sizes to try for zero-copy dense block assembly.
  std::vector<std::uint32_t> block_rows = {64, 256, 1024};
  /// Also tune op-level choices (lookup strategy, zero-copy assembly) on a
  /// compiled executor. The optimizer turns this off when the caller forced
  /// a FeatureOpConfig.
  bool tune_feature_ops = true;
};

/// One timed candidate, kept for observability (surfaced by benches and
/// persisted in the artifact's kernel section).
struct VariantTiming {
  std::string name;      // e.g. "full/dot:avx512" or "small/tree:blocked/16"
  double seconds = 0.0;  // median wall seconds for one sample-batch predict
};

/// Outcome of tuning one optimized pipeline: the winning config per model
/// plus the full candidate timing table. Serialized as the WLMP artifact's
/// kernel section so a loaded pipeline cold-starts tuned.
struct AutotuneReport {
  bool tuned = false;      // false => defaults in use (tuning skipped/forced)
  KernelConfig full;       // winner for the full (original) model
  bool has_small = false;  // cascades only
  KernelConfig small;      // winner for the small/approximate model
  /// Op-level winners (feature pipeline, not models). tuned_ops says the
  /// `ops` field is meaningful — set both by the op autotuner and by a
  /// forced FeatureOpConfig — and tells artifact load to install it on the
  /// compiled executor.
  bool tuned_ops = false;
  FeatureOpConfig ops;
  std::vector<VariantTiming> timings;
};

/// Dot-product variants worth timing on this CPU (always includes Scalar and
/// Unrolled; AVX tiers only when supported, so tuning never times a variant
/// that would silently downgrade).
std::vector<DotVariant> candidate_dots();

void save_autotune_report(serialize::Writer& w, const AutotuneReport& rep);
AutotuneReport load_autotune_report(serialize::Reader& r);

}  // namespace willump::kernels
