#include "kernels/tree.hpp"

#include <algorithm>
#include <cmath>

namespace willump::kernels {

namespace {

std::uint32_t clamp_block(std::uint32_t block) {
  return std::clamp<std::uint32_t>(block, 1, kMaxTreeBlock);
}

}  // namespace

void FlatForest::reset(double base) {
  base_ = base;
  feature_.clear();
  col_.clear();
  split_.clear();
  left_.clear();
  right_.clear();
  roots_.clear();
  depths_.clear();
  max_abs_leaf_.clear();
  suffix_abs_bound_.clear();
}

void FlatForest::add_tree(std::span<const std::int32_t> feature,
                          std::span<const double> threshold,
                          std::span<const std::int32_t> left,
                          std::span<const std::int32_t> right,
                          std::span<const double> value) {
  const std::int32_t off = static_cast<std::int32_t>(feature_.size());
  const std::size_t n = feature.size();
  roots_.push_back(off);

  // Children have larger intra-tree ids than their parents (the trainer
  // emits nodes in creation order and the loader validates this), so one
  // forward pass computes every node's depth.
  std::vector<std::int32_t> depth(n, 0);
  std::int32_t max_depth = 0;
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool leaf = feature[i] < 0;
    feature_.push_back(feature[i]);
    col_.push_back(leaf ? 0 : feature[i]);
    split_.push_back(leaf ? value[i] : threshold[i]);
    if (leaf) {
      // Self-loop: extra branch-free traversal levels park here harmlessly.
      left_.push_back(off + static_cast<std::int32_t>(i));
      right_.push_back(off + static_cast<std::int32_t>(i));
      max_abs = std::max(max_abs, std::fabs(value[i]));
      max_depth = std::max(max_depth, depth[i]);
    } else {
      left_.push_back(off + left[i]);
      right_.push_back(off + right[i]);
      depth[static_cast<std::size_t>(left[i])] = depth[i] + 1;
      depth[static_cast<std::size_t>(right[i])] = depth[i] + 1;
    }
  }
  depths_.push_back(max_depth);
  max_abs_leaf_.push_back(max_abs);
}

void FlatForest::finalize() {
  const std::size_t t = roots_.size();
  suffix_abs_bound_.assign(t + 1, 0.0);
  for (std::size_t i = t; i-- > 0;) {
    suffix_abs_bound_[i] = suffix_abs_bound_[i + 1] + max_abs_leaf_[i];
  }

  // Compact column space for the CSR path: the sorted set of features any
  // internal node splits on, and every node's column remapped into it.
  // Leaves keep the same clamp-to-0 convention as col_ (their loads are
  // parked self-loop reads that never affect the traversal).
  used_cols_.clear();
  for (const std::int32_t f : feature_) {
    if (f >= 0) used_cols_.push_back(f);
  }
  std::sort(used_cols_.begin(), used_cols_.end());
  used_cols_.erase(std::unique(used_cols_.begin(), used_cols_.end()),
                   used_cols_.end());
  ccol_.assign(col_.size(), 0);
  for (std::size_t i = 0; i < col_.size(); ++i) {
    if (feature_[i] < 0) continue;
    const auto it =
        std::lower_bound(used_cols_.begin(), used_cols_.end(), col_[i]);
    ccol_[i] = static_cast<std::int32_t>(it - used_cols_.begin());
  }
}

void FlatForest::margins(TreeVariant v, std::uint32_t block, const double* x,
                         std::size_t rows, std::size_t stride,
                         double* out) const {
  if (v == TreeVariant::RowWise) {
    margins_rowwise(x, rows, stride, out);
  } else {
    margins_blocked(clamp_block(block), x, rows, stride, out);
  }
}

void FlatForest::margins_rowwise(const double* x, std::size_t rows,
                                 std::size_t stride, double* out) const {
  const std::size_t trees = roots_.size();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = x + r * stride;
    double acc = base_;
    for (std::size_t t = 0; t < trees; ++t) {
      std::int32_t i = roots_[t];
      while (feature_[static_cast<std::size_t>(i)] >= 0) {
        const std::size_t ni = static_cast<std::size_t>(i);
        const double xv = row[static_cast<std::size_t>(feature_[ni])];
        // NaN fails `<=` and goes right, matching the blocked kernel.
        i = xv <= split_[ni] ? left_[ni] : right_[ni];
      }
      acc += split_[static_cast<std::size_t>(i)];
    }
    out[r] = acc;
  }
}

void FlatForest::margins_blocked(std::uint32_t block, const double* x,
                                 std::size_t rows, std::size_t stride,
                                 double* out) const {
  margins_blocked_cols(col_.data(), block, x, rows, stride, out);
}

void FlatForest::margins_blocked_cols(const std::int32_t* cols,
                                      std::uint32_t block, const double* x,
                                      std::size_t rows, std::size_t stride,
                                      double* out) const {
  const std::size_t trees = roots_.size();
  for (std::size_t r = 0; r < rows; ++r) out[r] = base_;
  if (trees == 0) return;

  // Tile trees into cache-sized groups and run every row block through one
  // group before touching the next. A production forest's node arrays are
  // megabytes — walking block-outer/tree-inner would re-stream the whole
  // forest once per 64 rows, and that memory traffic (not the traversal
  // arithmetic) dominates. With the group resident, per-node work is an
  // L1/L2 hit and the independent per-row dependency chains actually
  // overlap. Groups advance in tree order and acc round-trips through
  // out[] exactly, so per-row accumulation order — hence bit-exactness
  // with the row-wise reference — is unchanged.
  constexpr std::size_t kGroupBytes = 256 * 1024;
  const std::size_t node_bytes =
      sizeof(std::int32_t) * 3 + sizeof(double);  // col/left/right/split
  std::size_t g0 = 0;
  while (g0 < trees) {
    std::size_t g1 = g0;
    std::size_t bytes = 0;
    while (g1 < trees && (bytes == 0 || bytes < kGroupBytes)) {
      const std::size_t begin = static_cast<std::size_t>(roots_[g1]);
      const std::size_t end = g1 + 1 < trees
                                  ? static_cast<std::size_t>(roots_[g1 + 1])
                                  : feature_.size();
      bytes += (end - begin) * node_bytes;
      ++g1;
    }

    for (std::size_t r0 = 0; r0 < rows; r0 += block) {
      const std::size_t bsz = std::min<std::size_t>(block, rows - r0);
      double acc[kMaxTreeBlock];
      std::int32_t idx[kMaxTreeBlock];
      for (std::size_t b = 0; b < bsz; ++b) acc[b] = out[r0 + b];
      for (std::size_t t = g0; t < g1; ++t) {
        const std::int32_t root = roots_[t];
        const std::int32_t levels = depths_[t];
        for (std::size_t b = 0; b < bsz; ++b) idx[b] = root;
        for (std::int32_t lvl = 0; lvl < levels; ++lvl) {
          for (std::size_t b = 0; b < bsz; ++b) {
            // Branch-free advance. col_ is leaf-safe (clamped to 0) and a
            // leaf's children self-point, so finished rows park on their
            // leaf with no masking: the whole step is loads + one compare
            // + one register-register cmov. Keep it that way — a load
            // inside a ternary arm, or a select on `feature_[i] >= 0`,
            // makes the compiler emit a data-dependent branch, and tree
            // splits are the branch predictor's worst case (~50/50).
            const std::size_t i = static_cast<std::size_t>(idx[b]);
            const double xv =
                x[(r0 + b) * stride + static_cast<std::size_t>(cols[i])];
            const std::int32_t lc = left_[i];
            const std::int32_t rc = right_[i];
            idx[b] = xv <= split_[i] ? lc : rc;
          }
        }
        for (std::size_t b = 0; b < bsz; ++b) {
          acc[b] += split_[static_cast<std::size_t>(idx[b])];
        }
      }
      for (std::size_t b = 0; b < bsz; ++b) out[r0 + b] = acc[b];
    }
    g0 = g1;
  }
}

void FlatForest::margins_csr(const std::size_t* indptr,
                             const std::int32_t* indices, const double* values,
                             std::size_t rows, double* out) const {
  const std::size_t trees = roots_.size();
  if (trees == 0) {
    for (std::size_t r = 0; r < rows; ++r) out[r] = base_;
    return;
  }

  // Gather each row block into a compact scratch with one slot per
  // forest-referenced column (used_cols_), then run the branch-free blocked
  // kernel over it. The scratch is block × |used_cols_| doubles — L1/L2
  // resident for realistic forests — where a full-width densify scratch on
  // a TF-IDF-wide matrix is tens of MiB of scattered misses. The gather is
  // a two-pointer merge of the row's sorted indices with used_cols_;
  // columns the forest never reads are simply skipped. Unmatched slots hold
  // 0.0 (all-zeros invariant, restored from a touched list), exactly what a
  // densify scratch would hold, and margins_blocked_cols accumulates trees
  // in the same per-row order — so outputs stay bit-exact with the dense
  // path.
  const std::size_t cd = used_cols_.size();
  const std::int32_t* uc = used_cols_.data();
  thread_local std::vector<double> scratch;  // all zeros between calls
  thread_local std::vector<std::size_t> touched;
  if (scratch.size() < kMaxTreeBlock * cd) {
    scratch.assign(kMaxTreeBlock * cd, 0.0);
  }

  for (std::size_t r0 = 0; r0 < rows; r0 += kMaxTreeBlock) {
    const std::size_t bsz = std::min<std::size_t>(kMaxTreeBlock, rows - r0);
    touched.clear();
    for (std::size_t b = 0; b < bsz; ++b) {
      std::size_t k = indptr[r0 + b];
      const std::size_t hi = indptr[r0 + b + 1];
      std::size_t u = 0;
      while (k < hi && u < cd) {
        const std::int32_t c = indices[k];
        if (uc[u] < c) {
          ++u;
        } else if (uc[u] == c) {
          const std::size_t slot = b * cd + u;
          scratch[slot] = values[k];
          touched.push_back(slot);
          ++u;
          ++k;
        } else {
          ++k;
        }
      }
    }
    margins_blocked_cols(ccol_.data(), kMaxTreeBlock, scratch.data(), bsz, cd,
                         out + r0);
    for (const std::size_t slot : touched) scratch[slot] = 0.0;
  }
}

void FlatForest::cascade_margins(std::uint32_t block, const double* x,
                                 std::size_t rows, std::size_t stride,
                                 double bound, double* out,
                                 std::uint8_t* hard) const {
  block = clamp_block(block);
  const std::size_t trees = roots_.size();

  // A row is provably HARD once |partial| + (bound on remaining trees)
  // cannot exceed `bound`: its final margin stays inside [-bound, bound],
  // so the full model will run regardless and the partial sum in out[] is
  // never consumed. Check before any trees (catches threshold 1.0, where
  // bound is +inf and every row short-circuits immediately)...
  if (std::fabs(base_) + suffix_abs_bound_[0] <= bound) {
    for (std::size_t r = 0; r < rows; ++r) {
      hard[r] = 1;
      out[r] = base_;
    }
    return;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = base_;
    hard[r] = 0;
  }
  if (trees == 0) return;  // every row "survived": exact margin base_

  // Same ~256 KiB tree-group tiling as margins_blocked, same reason: a
  // production forest's node arrays are megabytes, and block-outer order
  // re-streams all of them once per row block. Partial sums round-trip
  // through out[] between groups and the retirement checkpoints fire at
  // the same global tree indices, so retirement decisions — and the
  // surviving rows' margins — are bit-identical to the untiled order.
  constexpr std::size_t kGroupBytes = 256 * 1024;
  const std::size_t node_bytes = sizeof(std::int32_t) * 3 + sizeof(double);
  std::size_t g0 = 0;
  while (g0 < trees) {
    std::size_t g1 = g0;
    std::size_t bytes = 0;
    while (g1 < trees && (bytes == 0 || bytes < kGroupBytes)) {
      const std::size_t begin = static_cast<std::size_t>(roots_[g1]);
      const std::size_t end = g1 + 1 < trees
                                  ? static_cast<std::size_t>(roots_[g1 + 1])
                                  : feature_.size();
      bytes += (end - begin) * node_bytes;
      ++g1;
    }

    for (std::size_t r0 = 0; r0 < rows; r0 += block) {
      const std::size_t bsz = std::min<std::size_t>(block, rows - r0);
      double acc[kMaxTreeBlock];
      std::int32_t idx[kMaxTreeBlock];
      std::uint32_t act[kMaxTreeBlock];  // block-relative ids still active
      std::size_t nact = 0;
      for (std::size_t b = 0; b < bsz; ++b) {
        if (hard[r0 + b]) continue;  // retired in an earlier group
        acc[b] = out[r0 + b];
        act[nact++] = static_cast<std::uint32_t>(b);
      }
      if (nact == 0) continue;

      for (std::size_t t = g0; t < g1 && nact > 0; ++t) {
        const std::int32_t root = roots_[t];
        const std::int32_t levels = depths_[t];
        for (std::size_t a = 0; a < nact; ++a) idx[a] = root;
        for (std::int32_t lvl = 0; lvl < levels; ++lvl) {
          for (std::size_t a = 0; a < nact; ++a) {
            // Same maskless branch-free step as margins_blocked: leaf-safe
            // col_ plus leaf self-loops keep finished rows parked via the
            // single register-register cmov.
            const std::size_t i = static_cast<std::size_t>(idx[a]);
            const double xv =
                x[(r0 + act[a]) * stride + static_cast<std::size_t>(col_[i])];
            const std::int32_t lc = left_[i];
            const std::int32_t rc = right_[i];
            idx[a] = xv <= split_[i] ? lc : rc;
          }
        }
        for (std::size_t a = 0; a < nact; ++a) {
          acc[act[a]] += split_[static_cast<std::size_t>(idx[a])];
        }

        // ...then re-check (and compact the active list) every 8 trees; the
        // test is cheap but retiring rows mid-forest is where the win is.
        // Deliberately not checked after the last tree: completed rows keep
        // hard = 0 so the caller's sigmoid-confidence comparison — the same
        // one the non-kernel path applies — decides them, keeping knife-edge
        // rows bit-identical to the reference cascade.
        if ((t & 7u) == 7u && t + 1 < trees) {
          const double rem = suffix_abs_bound_[t + 1];
          std::size_t w = 0;
          for (std::size_t a = 0; a < nact; ++a) {
            const std::uint32_t b = act[a];
            if (std::fabs(acc[b]) + rem <= bound) {
              hard[r0 + b] = 1;
              out[r0 + b] = acc[b];  // partial; caller must ignore
            } else {
              act[w++] = b;
            }
          }
          nact = w;
        }
      }

      // Active rows carry their partial (or, after the last group, exact)
      // margins forward through out[].
      for (std::size_t a = 0; a < nact; ++a) {
        out[r0 + act[a]] = acc[act[a]];
      }
    }
    g0 = g1;
  }
}

}  // namespace willump::kernels
