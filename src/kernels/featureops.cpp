#include "kernels/featureops.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define WILLUMP_X86_SIMD 1
#include <immintrin.h>
#endif

namespace willump::kernels {

namespace {

void affine_row_scalar(const double* src, double* dst, std::size_t cols,
                       const double* offsets, const double* scales) {
  for (std::size_t c = 0; c < cols; ++c) {
    dst[c] = (src[c] - offsets[c]) * scales[c];
  }
}

#ifdef WILLUMP_X86_SIMD

__attribute__((target("avx2"))) void affine_row_avx2(const double* src,
                                                     double* dst,
                                                     std::size_t cols,
                                                     const double* offsets,
                                                     const double* scales) {
  std::size_t c = 0;
  for (; c + 4 <= cols; c += 4) {
    const __m256d x = _mm256_loadu_pd(src + c);
    const __m256d o = _mm256_loadu_pd(offsets + c);
    const __m256d s = _mm256_loadu_pd(scales + c);
    // Plain mul after sub (not FMA): keeps the arithmetic the literal
    // (x - o) * s the scalar reference computes, so variants stay bit-exact.
    _mm256_storeu_pd(dst + c, _mm256_mul_pd(_mm256_sub_pd(x, o), s));
  }
  for (; c < cols; ++c) dst[c] = (src[c] - offsets[c]) * scales[c];
}

__attribute__((target("avx512f"))) void affine_row_avx512(
    const double* src, double* dst, std::size_t cols, const double* offsets,
    const double* scales) {
  std::size_t c = 0;
  for (; c + 8 <= cols; c += 8) {
    const __m512d x = _mm512_loadu_pd(src + c);
    const __m512d o = _mm512_loadu_pd(offsets + c);
    const __m512d s = _mm512_loadu_pd(scales + c);
    _mm512_storeu_pd(dst + c, _mm512_mul_pd(_mm512_sub_pd(x, o), s));
  }
  for (; c < cols; ++c) dst[c] = (src[c] - offsets[c]) * scales[c];
}

#endif  // WILLUMP_X86_SIMD

void scale_csr_scalar(const std::int32_t* indices, const double* src,
                      double* dst, std::size_t nnz,
                      const double* scales_by_col) {
  for (std::size_t i = 0; i < nnz; ++i) {
    dst[i] = src[i] * scales_by_col[static_cast<std::size_t>(indices[i])];
  }
}

}  // namespace

void affine_scale_block(DotVariant v, const double* src, double* dst,
                        std::size_t rows, std::size_t cols, std::size_t stride,
                        const double* offsets, const double* scales) {
  v = effective_dot(v);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* s = src + r * stride;
    double* d = dst + r * stride;
    switch (v) {
#ifdef WILLUMP_X86_SIMD
      case DotVariant::Avx512:
        affine_row_avx512(s, d, cols, offsets, scales);
        break;
      case DotVariant::Avx2:
        affine_row_avx2(s, d, cols, offsets, scales);
        break;
#endif
      default:
        affine_row_scalar(s, d, cols, offsets, scales);
        break;
    }
  }
}

void scale_csr_values(DotVariant v, const std::int32_t* indices,
                      const double* src, double* dst, std::size_t nnz,
                      const double* scales_by_col) {
  // The gather defeats vector units on every x86 tier we target; one tight
  // scalar loop is the fast path for all variants.
  (void)v;
  scale_csr_scalar(indices, src, dst, nnz, scales_by_col);
}

}  // namespace willump::kernels
