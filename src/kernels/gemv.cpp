#include "kernels/gemv.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define WILLUMP_X86_SIMD 1
#include <immintrin.h>
#endif

namespace willump::kernels {

namespace {

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double dot_unrolled(const double* a, const double* b, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += a[i] * b[i];
    a1 += a[i + 1] * b[i + 1];
    a2 += a[i + 2] * b[i + 2];
    a3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return ((a0 + a1) + (a2 + a3)) + tail;
}

#ifdef WILLUMP_X86_SIMD

__attribute__((target("avx2,fma"))) double dot_avx2(const double* a,
                                                    const double* b,
                                                    std::size_t n) {
  __m256d v0 = _mm256_setzero_pd();
  __m256d v1 = _mm256_setzero_pd();
  __m256d v2 = _mm256_setzero_pd();
  __m256d v3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    v0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), v0);
    v1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4), v1);
    v2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8), v2);
    v3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12), _mm256_loadu_pd(b + i + 12), v3);
  }
  for (; i + 4 <= n; i += 4) {
    v0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), v0);
  }
  const __m256d sum = _mm256_add_pd(_mm256_add_pd(v0, v1), _mm256_add_pd(v2, v3));
  const __m128d lo = _mm256_castpd256_pd128(sum);
  const __m128d hi = _mm256_extractf128_pd(sum, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double acc = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

__attribute__((target("avx512f"))) double dot_avx512(const double* a,
                                                     const double* b,
                                                     std::size_t n) {
  __m512d v0 = _mm512_setzero_pd();
  __m512d v1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    v0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i), v0);
    v1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8), _mm512_loadu_pd(b + i + 8), v1);
  }
  for (; i + 8 <= n; i += 8) {
    v0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i), v0);
  }
  // Spill-and-reduce: _mm512_reduce_add_pd (and the extract intrinsics it
  // is built from) trip a spurious -Wuninitialized in GCC 12's header.
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, _mm512_add_pd(v0, v1));
  double acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
               ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

#endif  // WILLUMP_X86_SIMD

}  // namespace

double dot(DotVariant v, const double* a, const double* b, std::size_t n) {
  switch (effective_dot(v)) {
    case DotVariant::Scalar:
      return dot_scalar(a, b, n);
    case DotVariant::Unrolled:
      return dot_unrolled(a, b, n);
#ifdef WILLUMP_X86_SIMD
    case DotVariant::Avx2:
      return dot_avx2(a, b, n);
    case DotVariant::Avx512:
      return dot_avx512(a, b, n);
#else
    case DotVariant::Avx2:
    case DotVariant::Avx512:
      return dot_unrolled(a, b, n);
#endif
  }
  return dot_scalar(a, b, n);
}

void dense_margins(DotVariant v, const double* x, std::size_t rows,
                   std::size_t stride, const double* w, std::size_t d,
                   double bias, double* out) {
  // Resolve the variant once per batch, not once per row.
  const DotVariant ev = effective_dot(v);
  if (ev == DotVariant::Scalar) {
    // Reference order: accumulator seeded with the bias, exactly the
    // pre-kernel per-row loop.
    for (std::size_t r = 0; r < rows; ++r) {
      const double* row = x + r * stride;
      double acc = bias;
      for (std::size_t i = 0; i < d; ++i) acc += row[i] * w[i];
      out[r] = acc;
    }
    return;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = bias + dot(ev, x + r * stride, w, d);
  }
}

void csr_margins(DotVariant v, const std::size_t* indptr,
                 const std::int32_t* indices, const double* values,
                 const double* w, double bias, std::size_t rows, double* out) {
  if (v == DotVariant::Scalar) {
    for (std::size_t r = 0; r < rows; ++r) {
      double acc = bias;
      for (std::size_t k = indptr[r]; k < indptr[r + 1]; ++k) {
        acc += values[k] * w[static_cast<std::size_t>(indices[k])];
      }
      out[r] = acc;
    }
    return;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t lo = indptr[r];
    const std::size_t hi = indptr[r + 1];
    double a0 = 0.0, a1 = 0.0;
    std::size_t k = lo;
    for (; k + 2 <= hi; k += 2) {
      a0 += values[k] * w[static_cast<std::size_t>(indices[k])];
      a1 += values[k + 1] * w[static_cast<std::size_t>(indices[k + 1])];
    }
    double tail = 0.0;
    for (; k < hi; ++k) {
      tail += values[k] * w[static_cast<std::size_t>(indices[k])];
    }
    out[r] = bias + ((a0 + a1) + tail);
  }
}

void hidden_relu(DotVariant v, const double* x, std::size_t rows,
                 std::size_t stride, const double* w1, const double* b1,
                 std::size_t hidden, std::size_t in_dim, double* h) {
  const DotVariant ev = effective_dot(v);
  for (std::size_t j = 0; j < hidden; ++j) {
    const double* wrow = w1 + j * in_dim;
    const double bj = b1[j];
    if (ev == DotVariant::Scalar) {
      // Reference order: bias-seeded accumulator (the pre-kernel loop).
      for (std::size_t r = 0; r < rows; ++r) {
        const double* row = x + r * stride;
        double z = bj;
        for (std::size_t i = 0; i < in_dim; ++i) z += wrow[i] * row[i];
        h[r * hidden + j] = z > 0.0 ? z : 0.0;
      }
      continue;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double z = bj + dot(ev, x + r * stride, wrow, in_dim);
      h[r * hidden + j] = z > 0.0 ? z : 0.0;
    }
  }
}

}  // namespace willump::kernels
