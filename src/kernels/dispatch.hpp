#pragma once

#include <cstdint>
#include <string>

namespace willump::serialize {
class Reader;
class Writer;
}

namespace willump::kernels {

/// Dense dot-product / GEMV kernel variant. Scalar is the bit-exact
/// reference (single accumulator, left-to-right — the summation order the
/// pre-kernel model code used); the others trade summation order for
/// throughput and agree with Scalar to ~1e-12 relative (see DESIGN.md §9).
enum class DotVariant : std::uint8_t {
  Scalar = 0,    // reference: one accumulator, strict left-to-right
  Unrolled = 1,  // four independent accumulators (ILP without intrinsics)
  Avx2 = 2,      // 256-bit FMA lanes (x86 with AVX2+FMA)
  Avx512 = 3,    // 512-bit FMA lanes (x86 with AVX-512F)
};

/// Forest-traversal kernel variant. RowWise is the reference (walk each row
/// through each tree with branches, the pre-kernel Tree::predict_row shape);
/// Blocked walks a block of rows through a tree level together, branch-free,
/// so the per-node dependency chains of different rows overlap. Both
/// accumulate per-row tree outputs in the same order, so they are bit-exact
/// equals, not tolerance equals.
enum class TreeVariant : std::uint8_t {
  RowWise = 0,
  Blocked = 1,
};

/// Upper bound on rows per traversal block (stack-buffer sizing).
inline constexpr std::uint32_t kMaxTreeBlock = 64;

/// Column count at or above which a sparse GBDT input skips the per-block
/// densify scratch and traverses the CSR rows directly. Wide TF-IDF blocks
/// blow the densify scratch out of L1/L2; compact CSR rows stay resident.
/// The autotuner pins this to 0 (always CSR) or UINT32_MAX (always densify)
/// per model after timing both on real data.
inline constexpr std::uint32_t kDefaultSparseCutoff = 2048;

/// Per-model kernel selection. Defaults come from native_config() (best
/// instruction set the CPU supports, untuned block size); the optimizer's
/// autotuner refines them and the values are serialized with the model, so
/// a loaded artifact reproduces the tuned pipeline's exact arithmetic.
struct KernelConfig {
  DotVariant dot = DotVariant::Unrolled;
  TreeVariant tree = TreeVariant::Blocked;
  std::uint32_t tree_block = 32;  // rows per block, clamped to [1, kMaxTreeBlock]
  // Sparse inputs with >= this many columns use the no-densify CSR
  // traversal; narrower ones densify per block. Any u32 is valid.
  std::uint32_t sparse_cutoff = kDefaultSparseCutoff;

  bool operator==(const KernelConfig&) const = default;
};

/// Vocabulary-lookup strategy for term-indexed feature ops (TF-IDF).
/// HashMap is the reference (heterogeneous unordered_map find); SortedVocab
/// binary-searches an index-sorted term permutation — fewer cache lines for
/// small vocabularies, no hashing. Both produce identical features.
enum class LookupVariant : std::uint8_t {
  HashMap = 0,
  SortedVocab = 1,
};

/// Hashed one-hot encoding strategy. Scalar is the reference (hash + append
/// per row inline); Batched precomputes the whole block's buckets into the
/// worker arena first, so the hash loop and the CSR append loop each stay
/// tight. Both produce identical features.
enum class OneHotVariant : std::uint8_t {
  Scalar = 0,
  Batched = 1,
};

/// Pipeline-level feature-operator selection, tuned by the op-level
/// autotuner and persisted in the artifact KERN section so load_model
/// cold-starts with the tuned feature path.
struct FeatureOpConfig {
  LookupVariant lookup = LookupVariant::HashMap;
  std::uint32_t block_rows = 256;  // rows per feature block, [1, 2^20]
  bool zero_copy = true;           // plan contiguous output blocks in the executor
  OneHotVariant onehot = OneHotVariant::Scalar;

  bool operator==(const FeatureOpConfig&) const = default;
};

/// Upper bound on block_rows (sanity bound for deserialization).
inline constexpr std::uint32_t kMaxBlockRows = 1u << 20;

/// Whether this CPU can execute `v` (Scalar/Unrolled always can).
bool dot_supported(DotVariant v);

/// Best dot variant this CPU supports (probed once).
DotVariant best_supported_dot();

/// Downgrade `v` to the best supported variant at or below it, so an
/// artifact tuned on a wider machine still runs (within tolerance of the
/// recorded arithmetic) on a narrower one.
DotVariant effective_dot(DotVariant v);

/// Default config for this machine: best supported dot variant, blocked
/// tree traversal with the untuned default block size.
KernelConfig native_config();

const char* variant_name(DotVariant v);
const char* variant_name(TreeVariant v);
const char* variant_name(LookupVariant v);
const char* variant_name(OneHotVariant v);

/// Serialize/deserialize a config (fixed 10 bytes). load validates ranges
/// and throws SerializeError(CorruptData) on out-of-range values; it does
/// NOT clamp to this machine's capabilities — the recorded choice
/// round-trips bit-exactly and is downgraded only at dispatch time.
void save_kernel_config(serialize::Writer& w, const KernelConfig& c);
KernelConfig load_kernel_config(serialize::Reader& r);

/// Serialize/deserialize a feature-op config (fixed 6 bytes in v3
/// artifacts, 7 in v4 — the one-hot variant byte rides the format-version
/// gate the Writer/Reader carry). Same validation discipline as the
/// kernel config.
void save_featureop_config(serialize::Writer& w, const FeatureOpConfig& c);
FeatureOpConfig load_featureop_config(serialize::Reader& r);

}  // namespace willump::kernels
