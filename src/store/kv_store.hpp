#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/vector.hpp"

namespace willump::store {

/// A feature table: integer key -> dense feature row.
///
/// This models the per-entity feature tables (user features, song features,
/// IP statistics, ...) that the paper's Music/Credit/Tracking benchmarks
/// store in Redis. A default row is returned for unknown keys, mirroring the
/// benchmarks' cold-start handling.
class FeatureTable {
 public:
  FeatureTable(std::string name, std::size_t feature_dim)
      : name_(std::move(name)), dim_(feature_dim), default_row_(feature_dim, 0.0) {}

  void put(std::int64_t key, data::DenseVector row);
  const data::DenseVector& get(std::int64_t key) const;
  bool contains(std::int64_t key) const { return rows_.find(key) != rows_.end(); }

  const std::string& name() const { return name_; }
  std::size_t feature_dim() const { return dim_; }
  std::size_t size() const { return rows_.size(); }

  /// All stored rows (serialization iterates these; sort keys for a
  /// deterministic byte stream — map order is arbitrary).
  const std::unordered_map<std::int64_t, data::DenseVector>& rows() const {
    return rows_;
  }

 private:
  std::string name_;
  std::size_t dim_;
  data::DenseVector default_row_;
  std::unordered_map<std::int64_t, data::DenseVector> rows_;
};

/// Network model for a remote store: one round trip costs
/// `rtt_micros + per_key_micros * keys` when fetched as a single pipelined
/// batch (the paper queries Redis asynchronously, §6.3).
struct NetworkModel {
  double rtt_micros = 0.0;      // 0 = local table, no simulated delay
  double per_key_micros = 0.0;
  /// How the simulated delay is realized. false (default): a spin-wait —
  /// deterministically measurable at the 100 µs scale the latency
  /// microbenchmarks operate at, but it burns a core, so concurrent
  /// fetches contend for CPU. true: a blocking sleep — what a real remote
  /// fetch does to the local machine (no CPU while waiting), so N
  /// concurrent fetches genuinely overlap in wall-clock time even on a
  /// single core. The serving concurrency experiments (replica scaling)
  /// use blocking mode. Process-local simulation knob: NOT persisted in
  /// pipeline artifacts — a loaded pipeline's tables default to spin.
  bool blocking = false;

  bool is_remote() const { return rtt_micros > 0.0 || per_key_micros > 0.0; }
  double batch_cost_micros(std::size_t keys) const {
    return keys == 0 ? 0.0
                     : rtt_micros + per_key_micros * static_cast<double>(keys);
  }
};

/// Cumulative traffic counters for one table client (paper Table 2 counts
/// the remote requests each optimization configuration avoids).
struct StoreStats {
  std::atomic<std::uint64_t> round_trips{0};
  std::atomic<std::uint64_t> keys_fetched{0};
  std::atomic<std::uint64_t> simulated_wait_nanos{0};

  void reset() {
    round_trips = 0;
    keys_fetched = 0;
    simulated_wait_nanos = 0;
  }
};

/// Client handle to a feature table behind a (possibly simulated-remote)
/// network. All lookups in a `get_batch` call share one round trip.
class TableClient {
 public:
  TableClient(std::shared_ptr<const FeatureTable> table, NetworkModel net)
      : table_(std::move(table)), net_(net) {}

  /// Fetch rows for `keys` in one pipelined round trip; `out` receives
  /// pointers into the table (valid while the table lives).
  void get_batch(std::span<const std::int64_t> keys,
                 std::vector<const data::DenseVector*>& out) const;

  const FeatureTable& table() const { return *table_; }
  const NetworkModel& network() const { return net_; }
  /// Swap the network model (local <-> remote); resets traffic stats.
  void set_network(NetworkModel net) {
    net_ = net;
    stats_.reset();
  }
  StoreStats& stats() const { return stats_; }

 private:
  std::shared_ptr<const FeatureTable> table_;
  NetworkModel net_;
  mutable StoreStats stats_;
};

/// Registry of all tables a workload uses; owns client handles so an
/// experiment can flip every table between local and remote and read the
/// aggregate traffic counters.
class TableRegistry {
 public:
  std::shared_ptr<TableClient> add(std::shared_ptr<const FeatureTable> table,
                                   NetworkModel net);
  std::shared_ptr<TableClient> find(const std::string& name) const;

  /// Replace every client's network model (e.g. make all tables remote).
  void set_network(NetworkModel net);

  std::uint64_t total_round_trips() const;
  std::uint64_t total_keys_fetched() const;
  void reset_stats();

  const std::vector<std::shared_ptr<TableClient>>& clients() const {
    return clients_;
  }

 private:
  std::vector<std::shared_ptr<TableClient>> clients_;
};

}  // namespace willump::store
