#include "store/kv_store.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/timer.hpp"

namespace willump::store {

void FeatureTable::put(std::int64_t key, data::DenseVector row) {
  if (row.dim() != dim_) {
    throw std::invalid_argument("FeatureTable " + name_ + ": row dim mismatch");
  }
  rows_[key] = std::move(row);
}

const data::DenseVector& FeatureTable::get(std::int64_t key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? default_row_ : it->second;
}

void TableClient::get_batch(std::span<const std::int64_t> keys,
                            std::vector<const data::DenseVector*>& out) const {
  out.clear();
  out.reserve(keys.size());
  if (keys.empty()) return;
  if (net_.is_remote()) {
    const double wait = net_.batch_cost_micros(keys.size());
    if (net_.blocking) {
      // A real remote fetch releases the CPU while the bytes are in
      // flight; sleeping (instead of spinning) lets concurrent fetches
      // from replicas/workers overlap even on one core.
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          static_cast<std::int64_t>(wait * 1e3)));
    } else {
      common::spin_wait_micros(wait);
    }
    stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
    stats_.keys_fetched.fetch_add(keys.size(), std::memory_order_relaxed);
    stats_.simulated_wait_nanos.fetch_add(
        static_cast<std::uint64_t>(wait * 1e3), std::memory_order_relaxed);
  }
  for (std::int64_t k : keys) out.push_back(&table_->get(k));
}

std::shared_ptr<TableClient> TableRegistry::add(
    std::shared_ptr<const FeatureTable> table, NetworkModel net) {
  auto client = std::make_shared<TableClient>(std::move(table), net);
  clients_.push_back(client);
  return client;
}

std::shared_ptr<TableClient> TableRegistry::find(const std::string& name) const {
  for (const auto& c : clients_) {
    if (c->table().name() == name) return c;
  }
  return nullptr;
}

void TableRegistry::set_network(NetworkModel net) {
  for (auto& c : clients_) c->set_network(net);
}

std::uint64_t TableRegistry::total_round_trips() const {
  std::uint64_t acc = 0;
  for (const auto& c : clients_) acc += c->stats().round_trips.load();
  return acc;
}

std::uint64_t TableRegistry::total_keys_fetched() const {
  std::uint64_t acc = 0;
  for (const auto& c : clients_) acc += c->stats().keys_fetched.load();
  return acc;
}

void TableRegistry::reset_stats() {
  for (auto& c : clients_) c->stats().reset();
}

}  // namespace willump::store
