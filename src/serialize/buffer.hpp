#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serialize/error.hpp"

namespace willump::serialize {

/// Artifact format version. Bump on any incompatible layout change; load
/// rejects versions it does not read (no silent cross-version parsing).
/// v2: model payloads carry a kernel config; pipelines carry a 'KERN'
/// autotune-report section.
/// v3: kernel configs gain a sparse-traversal cutoff; the 'KERN' report
/// gains the op-level feature-pipeline winners (lookup strategy, zero-copy
/// assembly, row-chunk size), installed on the compiled executor at load.
/// v4: per-section codecs — varint length prefixes, delta-coded sorted
/// integer keys, a dictionary codec for repetitive double vectors, and
/// front-coded TF-IDF vocabularies — each carrying a CRC-32 over the
/// *decoded* payload so a codec bug can never silently corrupt fitted
/// state. Loaders accept v3 and v4; writers emit v4 unless asked not to.
inline constexpr std::uint32_t kFormatVersion = 4;
/// Oldest version this build still reads (v3 artifacts load bit-identically).
inline constexpr std::uint32_t kMinReadVersion = 3;

/// CRC-32 (ISO-HDLC polynomial, the zlib convention) over a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// CRC-32 over the little-endian byte image of a double vector — the
/// decoded-payload checksum the v4 dictionary codec carries.
inline std::uint32_t crc32_f64_le(std::span<const double> xs) {
  std::vector<std::uint8_t> b;
  b.reserve(xs.size() * 8);
  for (double x : xs) {
    const std::uint64_t v = std::bit_cast<std::uint64_t>(x);
    for (std::size_t i = 0; i < 8; ++i) {
      b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  return crc32(b);
}

/// CRC-32 over the little-endian byte image of an i64 vector (decoded-side
/// checksum for delta-coded key arrays).
inline std::uint32_t crc32_i64_le(std::span<const std::int64_t> xs) {
  std::vector<std::uint8_t> b;
  b.reserve(xs.size() * 8);
  for (std::int64_t x : xs) {
    const std::uint64_t v = static_cast<std::uint64_t>(x);
    for (std::size_t i = 0; i < 8; ++i) {
      b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  return crc32(b);
}

/// Append-only little-endian byte sink. All multi-byte integers are written
/// fixed-width little-endian; doubles are written as their IEEE-754 bit
/// pattern, so a round trip is bit-exact.
///
/// The writer carries the artifact format version it is producing: v4
/// writers emit varint length prefixes and the dictionary/delta codecs,
/// v3 writers reproduce the legacy fixed-width layout byte for byte (the
/// backward-compat fixtures and the codec kill switch both rely on this).
/// Op and model serializers never branch on the version themselves — it
/// travels inside the Writer they were handed.
///
/// Not thread-safe (one Writer per serialization in progress; nothing in
/// the artifact layer shares one across threads). Writes never fail short
/// of allocation failure; nothing here blocks.
class Writer {
 public:
  explicit Writer(std::uint32_t format_version = kFormatVersion)
      : version_(format_version) {}

  std::uint32_t format_version() const { return version_; }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }

  /// LEB128 unsigned varint (1 byte for values < 128 — which is nearly
  /// every length prefix and delta in an artifact).
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zigzag-mapped signed varint (small magnitudes of either sign stay
  /// short).
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  /// Length-prefixed UTF-8/opaque bytes (varint prefix in v4).
  void str(std::string_view s) {
    if (v4()) {
      varint(s.size());
    } else {
      u64(s.size());
    }
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Un-prefixed raw bytes (bulk append; the container packer uses this for
  /// section payloads, which carry their own length in the section header).
  void raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Double vectors. v3: fixed count + raw IEEE bits. v4: varint count +
  /// codec byte — raw, or a dictionary (unique-value table + varint
  /// indices) when values repeat enough to win, e.g. histogram-binned tree
  /// thresholds and Zipf-tied IDF weights. Dictionary payloads end with a
  /// CRC-32 over the decoded doubles.
  void doubles(std::span<const double> xs) {
    if (!v4()) {
      u64(xs.size());
      for (double x : xs) f64(x);
      return;
    }
    varint(xs.size());
    const std::size_t n = xs.size();
    std::unordered_map<std::uint64_t, std::uint32_t> dict;
    if (n >= 16) {
      dict.reserve(n / 2 + 1);
      for (double x : xs) {
        if (dict.emplace(std::bit_cast<std::uint64_t>(x),
                         static_cast<std::uint32_t>(dict.size()))
                .second &&
            dict.size() > n / 2) {
          dict.clear();  // too many uniques: raw encoding wins
          break;
        }
      }
    }
    if (dict.empty() || dict.size() > 65535) {
      u8(0);  // raw
      for (double x : xs) f64(x);
      return;
    }
    u8(1);  // dictionary
    varint(dict.size());
    // Table in first-appearance order (the order emplace assigned ids).
    std::vector<double> table(dict.size());
    for (const auto& [bits, id] : dict) {
      table[id] = std::bit_cast<double>(bits);
    }
    for (double x : table) f64(x);
    for (double x : xs) varint(dict.at(std::bit_cast<std::uint64_t>(x)));
    u32(crc32_f64_le(xs));
  }

  void sizes(std::span<const std::size_t> xs) {
    if (!v4()) {
      u64(xs.size());
      for (std::size_t x : xs) u64(x);
      return;
    }
    varint(xs.size());
    for (std::size_t x : xs) varint(x);
  }

  /// Ascending i64 keys. v3: fixed count + raw. v4: svarint first value +
  /// varint deltas (dense key spaces collapse to ~1 byte/key) + CRC-32
  /// over the decoded keys. Callers must pass a sorted span — feature-table
  /// key lists already are.
  void i64s_delta(std::span<const std::int64_t> xs) {
    if (!v4()) {
      u64(xs.size());
      for (std::int64_t x : xs) i64(x);
      return;
    }
    varint(xs.size());
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i == 0) {
        svarint(xs[0]);
      } else {
        if (xs[i] < prev) {
          throw std::logic_error("delta-coded keys must be ascending");
        }
        varint(static_cast<std::uint64_t>(xs[i] - prev));
      }
      prev = xs[i];
    }
    if (!xs.empty()) u32(crc32_i64_le(xs));
  }

  /// Bool vectors (cascade masks) as one byte per element.
  void bools(const std::vector<bool>& xs) {
    u64(xs.size());
    for (bool x : xs) u8(x ? 1 : 0);
  }

  std::span<const std::uint8_t> bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  bool v4() const { return version_ >= 4; }

  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::uint32_t version_;
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte span. Every
/// overrun throws SerializeError(Truncated); element counts are validated
/// against the bytes actually remaining before any allocation, so a
/// bit-flipped length cannot trigger a multi-gigabyte resize. The reader
/// carries the artifact version it is decoding (the container header's
/// version, threaded down by unpack) and mirrors the Writer's per-version
/// layouts; v4 codec payloads additionally verify their decoded-side CRC.
///
/// Borrows, never copies: the span must outlive the Reader. Not
/// thread-safe (the cursor is mutable state); concurrent loads each parse
/// their own Reader over their own bytes. A Reader that has thrown is
/// positioned mid-structure and must be discarded, not resumed.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes,
                  std::uint32_t format_version = kFormatVersion)
      : buf_(bytes), version_(format_version) {}

  std::uint32_t format_version() const { return version_; }

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }
  double f64() { return std::bit_cast<double>(take_le<std::uint64_t>()); }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
      require(1, "varint");
      const std::uint8_t b = buf_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
      if ((b & 0x80) == 0) {
        if (i == 9 && b > 1) {
          throw SerializeError(ErrorCode::CorruptData, "varint overflows u64");
        }
        return v;
      }
    }
    throw SerializeError(ErrorCode::CorruptData, "varint longer than 10 bytes");
  }

  std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::string str() {
    const std::uint64_t n =
        v4() ? varlength(1, "string") : length(1, "string");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::vector<double> doubles() {
    if (!v4()) {
      const std::uint64_t n = length(8, "double vector");
      std::vector<double> xs;
      xs.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) xs.push_back(f64());
      return xs;
    }
    const std::uint64_t n = varlength(1, "double vector");
    const std::uint8_t mode = u8();
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(n));
    if (mode == 0) {
      require(static_cast<std::size_t>(n) * 8, "double vector payload");
      for (std::uint64_t i = 0; i < n; ++i) xs.push_back(f64());
      return xs;
    }
    if (mode != 1) {
      throw SerializeError(ErrorCode::CorruptData,
                           "double vector codec mode out of range");
    }
    const std::uint64_t n_unique = varlength(8, "double dictionary");
    if (n_unique == 0 || n_unique > 65535 || n_unique > n) {
      throw SerializeError(ErrorCode::CorruptData,
                           "double dictionary size out of range");
    }
    std::vector<double> table;
    table.reserve(static_cast<std::size_t>(n_unique));
    for (std::uint64_t i = 0; i < n_unique; ++i) table.push_back(f64());
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t idx = varint();
      if (idx >= n_unique) {
        throw SerializeError(ErrorCode::CorruptData,
                             "double dictionary index out of range");
      }
      xs.push_back(table[static_cast<std::size_t>(idx)]);
    }
    if (u32() != crc32_f64_le(xs)) {
      throw SerializeError(ErrorCode::ChecksumMismatch,
                           "decoded double vector fails its CRC");
    }
    return xs;
  }

  std::vector<std::size_t> sizes() {
    if (!v4()) {
      const std::uint64_t n = length(8, "size vector");
      std::vector<std::size_t> xs;
      xs.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        xs.push_back(static_cast<std::size_t>(u64()));
      }
      return xs;
    }
    const std::uint64_t n = varlength(1, "size vector");
    std::vector<std::size_t> xs;
    xs.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      xs.push_back(static_cast<std::size_t>(varint()));
    }
    return xs;
  }

  std::vector<std::int64_t> i64s_delta() {
    std::vector<std::int64_t> xs;
    if (!v4()) {
      const std::uint64_t n = length(8, "key vector");
      xs.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) xs.push_back(i64());
      return xs;
    }
    const std::uint64_t n = varlength(1, "key vector");
    xs.reserve(static_cast<std::size_t>(n));
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (i == 0) {
        prev = svarint();
      } else {
        const std::uint64_t d = varint();
        const std::int64_t next =
            static_cast<std::int64_t>(static_cast<std::uint64_t>(prev) + d);
        if (next < prev) {
          throw SerializeError(ErrorCode::CorruptData,
                               "delta-coded key overflows i64");
        }
        prev = next;
      }
      xs.push_back(prev);
    }
    if (!xs.empty() && u32() != crc32_i64_le(xs)) {
      throw SerializeError(ErrorCode::ChecksumMismatch,
                           "decoded key vector fails its CRC");
    }
    return xs;
  }

  std::vector<bool> bools() {
    const std::uint64_t n = length(1, "bool vector");
    std::vector<bool> xs(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint8_t b = u8();
      if (b > 1) {
        throw SerializeError(ErrorCode::CorruptData, "bool byte out of range");
      }
      xs[static_cast<std::size_t>(i)] = b != 0;
    }
    return xs;
  }

  /// Read a fixed u64 element count and validate it against the remaining
  /// payload (each element consumes at least `min_elem_bytes`).
  std::uint64_t length(std::size_t min_elem_bytes, const char* what) {
    return checked(u64(), min_elem_bytes, what);
  }

  /// Varint-prefixed counterpart of length() for v4 payloads.
  std::uint64_t varlength(std::size_t min_elem_bytes, const char* what) {
    return checked(varint(), min_elem_bytes, what);
  }

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t position() const { return pos_; }

  /// Bytes consumed since `from` (an earlier position()) — the exact wire
  /// image a payload was parsed from, which is what the content-hash
  /// intern pool keys shared fitted state by.
  std::span<const std::uint8_t> window(std::size_t from) const {
    if (from > pos_) {
      throw std::logic_error("Reader::window start past the cursor");
    }
    return buf_.subspan(from, pos_ - from);
  }

  /// Borrow `n` raw bytes (used for nested section payloads).
  std::span<const std::uint8_t> raw(std::size_t n) {
    require(n, "raw bytes");
    auto out = buf_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  bool v4() const { return version_ >= 4; }

  std::uint64_t checked(std::uint64_t n, std::size_t min_elem_bytes,
                        const char* what) {
    if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
      throw SerializeError(ErrorCode::Truncated,
                           std::string(what) + " length exceeds payload");
    }
    return n;
  }

  void require(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw SerializeError(ErrorCode::Truncated,
                           std::string("reading ") + what + " past the end");
    }
  }

  template <typename T>
  T take_le() {
    require(sizeof(T), "integer");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(buf_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> buf_;
  std::uint32_t version_;
  std::size_t pos_ = 0;
};

}  // namespace willump::serialize
