#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serialize/error.hpp"

namespace willump::serialize {

/// CRC-32 (ISO-HDLC polynomial, the zlib convention) over a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Append-only little-endian byte sink. All multi-byte integers are written
/// fixed-width little-endian; doubles are written as their IEEE-754 bit
/// pattern, so a round trip is bit-exact.
///
/// Not thread-safe (one Writer per serialization in progress; nothing in
/// the artifact layer shares one across threads). Writes never fail short
/// of allocation failure; nothing here blocks.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed UTF-8/opaque bytes.
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Un-prefixed raw bytes (bulk append; the container packer uses this for
  /// section payloads, which carry their own length in the section header).
  void raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  void doubles(std::span<const double> xs) {
    u64(xs.size());
    for (double x : xs) f64(x);
  }

  void sizes(std::span<const std::size_t> xs) {
    u64(xs.size());
    for (std::size_t x : xs) u64(x);
  }

  /// Bool vectors (cascade masks) as one byte per element.
  void bools(const std::vector<bool>& xs) {
    u64(xs.size());
    for (bool x : xs) u8(x ? 1 : 0);
  }

  std::span<const std::uint8_t> bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte span. Every
/// overrun throws SerializeError(Truncated); element counts are validated
/// against the bytes actually remaining before any allocation, so a
/// bit-flipped length cannot trigger a multi-gigabyte resize.
///
/// Borrows, never copies: the span must outlive the Reader. Not
/// thread-safe (the cursor is mutable state); concurrent loads each parse
/// their own Reader over their own bytes. A Reader that has thrown is
/// positioned mid-structure and must be discarded, not resumed.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }
  double f64() { return std::bit_cast<double>(take_le<std::uint64_t>()); }

  std::string str() {
    const std::uint64_t n = length(1, "string");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::vector<double> doubles() {
    const std::uint64_t n = length(8, "double vector");
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) xs.push_back(f64());
    return xs;
  }

  std::vector<std::size_t> sizes() {
    const std::uint64_t n = length(8, "size vector");
    std::vector<std::size_t> xs;
    xs.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      xs.push_back(static_cast<std::size_t>(u64()));
    }
    return xs;
  }

  std::vector<bool> bools() {
    const std::uint64_t n = length(1, "bool vector");
    std::vector<bool> xs(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint8_t b = u8();
      if (b > 1) {
        throw SerializeError(ErrorCode::CorruptData, "bool byte out of range");
      }
      xs[static_cast<std::size_t>(i)] = b != 0;
    }
    return xs;
  }

  /// Read an element count and validate it against the remaining payload
  /// (each element consumes at least `min_elem_bytes`).
  std::uint64_t length(std::size_t min_elem_bytes, const char* what) {
    const std::uint64_t n = u64();
    if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
      throw SerializeError(ErrorCode::Truncated,
                           std::string(what) + " length exceeds payload");
    }
    return n;
  }

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t position() const { return pos_; }

  /// Borrow `n` raw bytes (used for nested section payloads).
  std::span<const std::uint8_t> raw(std::size_t n) {
    require(n, "raw bytes");
    auto out = buf_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  void require(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw SerializeError(ErrorCode::Truncated,
                           std::string("reading ") + what + " past the end");
    }
  }

  template <typename T>
  T take_le() {
    require(sizeof(T), "integer");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(buf_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace willump::serialize
