#include "serialize/intern.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/hash.hpp"
#include "serialize/buffer.hpp"

namespace willump::serialize {

namespace {

struct ContentKey {
  std::uint64_t kind_hash;
  std::uint64_t content_hash;  // fnv1a-64 over the payload bytes
  std::uint32_t crc;           // independent second hash (crc32)
  std::uint64_t size;

  bool operator==(const ContentKey&) const = default;
};

struct ContentKeyHash {
  std::size_t operator()(const ContentKey& k) const {
    std::uint64_t h = k.kind_hash;
    h = common::hash_combine(h, k.content_hash);
    h = common::hash_combine(h, k.crc);
    h = common::hash_combine(h, k.size);
    return static_cast<std::size_t>(h);
  }
};

struct PoolState {
  std::mutex mu;
  std::unordered_map<ContentKey, std::weak_ptr<const void>, ContentKeyHash> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

PoolState& state() {
  static PoolState s;
  return s;
}

std::atomic<int> g_enabled{-1};  // -1 = read env on first use

}  // namespace

InternPool& InternPool::instance() {
  static InternPool pool;
  return pool;
}

bool InternPool::enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("WILLUMP_COW_INTERN");
    v = (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void InternPool::set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::shared_ptr<const void> InternPool::lookup_or_store(
    std::string_view kind, std::span<const std::uint8_t> bytes,
    std::shared_ptr<const void> fresh) {
  const ContentKey key{common::fnv1a(kind),
                       common::fnv1a(std::string_view(
                           reinterpret_cast<const char*>(bytes.data()),
                           bytes.size())),
                       crc32(bytes), bytes.size()};
  PoolState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it != s.map.end()) {
    if (auto live = it->second.lock()) {
      ++s.hits;
      return live;
    }
  }
  ++s.misses;
  s.map[key] = fresh;
  // Opportunistically sweep a few dead entries so the map stays bounded
  // across many swap generations without a full O(n) pass per load.
  if (s.map.size() > 64) {
    auto sweep = s.map.begin();
    for (int i = 0; i < 8 && sweep != s.map.end(); ++i) {
      if (sweep->second.expired()) {
        sweep = s.map.erase(sweep);
      } else {
        ++sweep;
      }
    }
  }
  return fresh;
}

InternPool::Stats InternPool::stats() const {
  PoolState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return {s.hits, s.misses};
}

void InternPool::clear() {
  PoolState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.map.clear();
  s.hits = 0;
  s.misses = 0;
}

}  // namespace willump::serialize
