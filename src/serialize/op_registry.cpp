#include "serialize/op_registry.hpp"

#include <functional>
#include <stdexcept>

#include "ops/concat.hpp"
#include "ops/encoders.hpp"
#include "ops/lookup.hpp"
#include "ops/scale.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"
#include "serialize/intern.hpp"

namespace willump::serialize {

namespace {

using Loader =
    std::function<ops::OperatorPtr(Reader&, const OpLoadContext&)>;

ops::OperatorPtr load_one_hot_hash(Reader& r, const OpLoadContext&) {
  const std::int32_t buckets = r.i32();
  const std::uint64_t salt = r.u64();
  std::string label = r.str();
  if (buckets <= 0) {
    throw SerializeError(ErrorCode::CorruptData,
                         "one_hot_hash bucket count must be positive");
  }
  return std::make_shared<ops::OneHotHashOp>(buckets, salt, std::move(label));
}

ops::OperatorPtr load_numeric_columns(Reader& r, const OpLoadContext&) {
  return std::make_shared<ops::NumericColumnsOp>(r.str());
}

ops::OperatorPtr load_bucketize(Reader& r, const OpLoadContext&) {
  return std::make_shared<ops::BucketizeOp>(r.doubles());
}

ops::OperatorPtr load_column_math(Reader& r, const OpLoadContext&) {
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(ops::ColumnMathOp::Kind::Log1p)) {
    throw SerializeError(ErrorCode::CorruptData,
                         "column_math kind out of range");
  }
  return std::make_shared<ops::ColumnMathOp>(
      static_cast<ops::ColumnMathOp::Kind>(kind));
}

ops::OperatorPtr load_scale(Reader& r, const OpLoadContext&) {
  auto scale = r.doubles();
  auto offset = r.doubles();
  if (scale.size() != offset.size()) {
    throw SerializeError(ErrorCode::CorruptData,
                         "scale/offset dimension mismatch");
  }
  return std::make_shared<ops::ScaleOp>(std::move(scale), std::move(offset));
}

ops::OperatorPtr load_keyword_count(Reader& r, const OpLoadContext&) {
  // v4 strings carry 1-byte varint prefixes, so the per-element floor drops.
  const std::uint64_t n =
      r.length(r.format_version() >= 4 ? 1 : 8, "keyword list");
  std::vector<std::string> keywords;
  keywords.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) keywords.push_back(r.str());
  return std::make_shared<ops::KeywordCountOp>(std::move(keywords));
}

ops::OperatorPtr load_tfidf(Reader& r, const OpLoadContext&) {
  std::string label = r.str();
  // Key the intern pool by the model's exact wire image: replicas and
  // swap generations loading byte-identical fitted state share one model.
  const std::size_t start = r.position();
  std::shared_ptr<const ops::TfIdfModel> model =
      std::make_shared<ops::TfIdfModel>(ops::TfIdfModel::load(r));
  model = InternPool::instance().intern<ops::TfIdfModel>(
      "tfidf", r.window(start), std::move(model));
  return std::make_shared<ops::TfIdfOp>(std::move(model), std::move(label));
}

ops::OperatorPtr load_table_lookup(Reader& r, const OpLoadContext& ctx) {
  const std::string table_name = r.str();
  store::NetworkModel net;
  net.rtt_micros = r.f64();
  net.per_key_micros = r.f64();
  auto it = ctx.tables.find(table_name);
  if (it == ctx.tables.end()) {
    throw SerializeError(ErrorCode::MissingSection,
                         "table \"" + table_name +
                             "\" not present in the artifact's table section");
  }
  return std::make_shared<ops::TableLookupOp>(
      std::make_shared<store::TableClient>(it->second, net));
}

const std::unordered_map<std::string, Loader>& loaders() {
  static const std::unordered_map<std::string, Loader> table = {
      {"concat",
       [](Reader&, const OpLoadContext&) -> ops::OperatorPtr {
         return std::make_shared<ops::ConcatOp>();
       }},
      {"lowercase",
       [](Reader&, const OpLoadContext&) -> ops::OperatorPtr {
         return std::make_shared<ops::LowercaseOp>();
       }},
      {"strip_punct",
       [](Reader&, const OpLoadContext&) -> ops::OperatorPtr {
         return std::make_shared<ops::StripPunctOp>();
       }},
      {"string_stats",
       [](Reader&, const OpLoadContext&) -> ops::OperatorPtr {
         return std::make_shared<ops::StringStatsOp>();
       }},
      {"one_hot_hash", load_one_hot_hash},
      {"numeric_columns", load_numeric_columns},
      {"bucketize", load_bucketize},
      {"column_math", load_column_math},
      {"scale", load_scale},
      {"keyword_count", load_keyword_count},
      {"tfidf", load_tfidf},
      {"table_lookup", load_table_lookup},
  };
  return table;
}

}  // namespace

void save_op(Writer& w, const ops::Operator& op) {
  const std::string_view tag = op.serial_tag();
  if (tag.empty() || loaders().find(std::string(tag)) == loaders().end()) {
    throw std::logic_error("operator \"" + op.name() +
                           "\" has no registered serialization tag");
  }
  w.str(tag);
  op.save(w);
}

ops::OperatorPtr load_op(Reader& r, const OpLoadContext& ctx) {
  const std::string tag = r.str();
  auto it = loaders().find(tag);
  if (it == loaders().end()) {
    throw SerializeError(ErrorCode::UnknownTypeTag,
                         "operator tag \"" + tag + "\"");
  }
  return it->second(r, ctx);
}

}  // namespace willump::serialize
