#include "serialize/artifact.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/executors.hpp"
#include "core/ifv_analysis.hpp"
#include "kernels/autotune.hpp"
#include "ops/lookup.hpp"
#include "serialize/intern.hpp"
#include "serialize/model_registry.hpp"
#include "serialize/op_registry.hpp"

namespace willump::serialize {

namespace {

constexpr std::uint32_t fourcc(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24);
}

constexpr std::uint32_t kMagic = fourcc("WLMP");
constexpr std::uint32_t kPipelineKind = fourcc("WPIP");
constexpr std::uint32_t kCascadeKind = fourcc("WCSC");
constexpr std::uint32_t kSplitKind = fourcc("WSPL");

constexpr std::uint32_t kSecMeta = fourcc("META");
constexpr std::uint32_t kSecTables = fourcc("TABL");
constexpr std::uint32_t kSecGraph = fourcc("GRPH");
constexpr std::uint32_t kSecLayout = fourcc("LAYT");
constexpr std::uint32_t kSecCascade = fourcc("CASC");
constexpr std::uint32_t kSecKernels = fourcc("KERN");
constexpr std::uint32_t kSecSplits = fourcc("SPLT");

struct Section {
  std::uint32_t tag;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> pack(std::uint32_t kind, std::uint32_t version,
                               const std::vector<Section>& sections) {
  Writer w(version);
  w.u32(kMagic);
  w.u32(version);
  w.u32(kind);
  w.u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& s : sections) {
    w.u32(s.tag);
    w.u64(s.payload.size());
    w.u32(crc32(s.payload));
    w.raw(s.payload);
  }
  return w.take();
}

/// Container contents after header/CRC verification; `version` is threaded
/// into every section Reader so the codec layer decodes the layout the
/// artifact was written with.
struct Unpacked {
  std::uint32_t version = kFormatVersion;
  std::map<std::uint32_t, std::vector<std::uint8_t>> sections;
};

/// Parse and verify the container: magic, version, kind, and every
/// section's bounds and checksum.
Unpacked unpack(std::span<const std::uint8_t> bytes,
                std::uint32_t expected_kind) {
  Reader r(bytes);
  if (r.remaining() < 16) {
    throw SerializeError(ErrorCode::Truncated, "artifact smaller than header");
  }
  if (r.u32() != kMagic) {
    throw SerializeError(ErrorCode::BadMagic, "not a Willump artifact");
  }
  const std::uint32_t version = r.u32();
  if (version < kMinReadVersion || version > kFormatVersion) {
    throw SerializeError(ErrorCode::UnsupportedVersion,
                         "artifact version " + std::to_string(version) +
                             ", this build reads " +
                             std::to_string(kMinReadVersion) + ".." +
                             std::to_string(kFormatVersion));
  }
  const std::uint32_t kind = r.u32();
  if (kind != expected_kind) {
    throw SerializeError(ErrorCode::WrongKind,
                         "artifact holds a different payload kind");
  }
  const std::uint32_t n_sections = r.u32();
  // Each section consumes at least its 16-byte header.
  if (n_sections > r.remaining() / 16) {
    throw SerializeError(ErrorCode::Truncated,
                         "section count exceeds artifact size");
  }
  Unpacked out;
  out.version = version;
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    const std::uint32_t tag = r.u32();
    const std::uint64_t size = r.u64();
    const std::uint32_t crc = r.u32();
    if (size > r.remaining()) {
      throw SerializeError(ErrorCode::Truncated, "section payload cut short");
    }
    const auto payload = r.raw(static_cast<std::size_t>(size));
    if (crc32(payload) != crc) {
      throw SerializeError(ErrorCode::ChecksumMismatch,
                           "section payload fails its CRC");
    }
    if (!out.sections
             .emplace(tag,
                      std::vector<std::uint8_t>(payload.begin(), payload.end()))
             .second) {
      throw SerializeError(ErrorCode::CorruptData, "duplicate section tag");
    }
  }
  return out;
}

Reader section_reader(const Unpacked& u, std::uint32_t tag, const char* what) {
  auto it = u.sections.find(tag);
  if (it == u.sections.end()) {
    throw SerializeError(ErrorCode::MissingSection, what);
  }
  return Reader(it->second, u.version);
}

// --- graph ---------------------------------------------------------------

void save_graph(Writer& w, const core::Graph& g) {
  w.u64(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    const core::Node& n = g.node(static_cast<int>(i));
    w.u8(n.kind == core::NodeKind::Source ? 0 : 1);
    w.str(n.name);
    if (n.kind == core::NodeKind::Source) {
      w.u8(static_cast<std::uint8_t>(n.source_type));
    } else {
      save_op(w, *n.op);
    }
    w.u64(n.inputs.size());
    for (int in : n.inputs) w.i32(in);
  }
  w.i32(g.output());
}

core::Graph load_graph(Reader& r, const OpLoadContext& ctx) {
  core::Graph g;
  const std::uint64_t n_nodes = r.length(2, "graph nodes");
  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    const std::uint8_t kind = r.u8();
    std::string name = r.str();
    if (kind == 0) {
      const std::uint8_t type = r.u8();
      if (type > static_cast<std::uint8_t>(data::ColumnType::String)) {
        throw SerializeError(ErrorCode::CorruptData,
                             "source column type out of range");
      }
      (void)g.add_source(std::move(name), static_cast<data::ColumnType>(type));
      const std::uint64_t n_inputs = r.length(4, "source inputs");
      if (n_inputs != 0) {
        throw SerializeError(ErrorCode::CorruptData, "source node has inputs");
      }
    } else if (kind == 1) {
      ops::OperatorPtr op = load_op(r, ctx);
      const std::uint64_t n_inputs = r.length(4, "transform inputs");
      std::vector<int> inputs;
      inputs.reserve(static_cast<std::size_t>(n_inputs));
      for (std::uint64_t k = 0; k < n_inputs; ++k) {
        const std::int32_t in = r.i32();
        // The builder assigns ids 0..i-1 so far; anything else cannot be a
        // DAG edge and would index out of bounds at execution time.
        if (in < 0 || static_cast<std::uint64_t>(in) >= i) {
          throw SerializeError(ErrorCode::CorruptData,
                               "graph edge references an invalid node id");
        }
        inputs.push_back(in);
      }
      (void)g.add_transform(std::move(name), std::move(op), std::move(inputs));
    } else {
      throw SerializeError(ErrorCode::CorruptData, "node kind out of range");
    }
  }
  const std::int32_t output = r.i32();
  if (output < 0 || static_cast<std::uint64_t>(output) >= n_nodes) {
    throw SerializeError(ErrorCode::CorruptData, "graph output id invalid");
  }
  g.set_output(output);
  return g;
}

// --- feature tables ------------------------------------------------------

void save_tables(Writer& w, const core::Graph& g) {
  // Dedup by table name (two lookup ops may share one table); reject two
  // distinct tables under one name — the artifact could not rebind them.
  std::map<std::string, const store::FeatureTable*> tables;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const core::Node& n = g.node(static_cast<int>(i));
    const auto* lookup = dynamic_cast<const ops::TableLookupOp*>(n.op.get());
    if (lookup == nullptr) continue;
    const store::FeatureTable& t = lookup->client().table();
    auto [it, inserted] = tables.emplace(t.name(), &t);
    if (!inserted && it->second != &t) {
      throw std::logic_error("two distinct feature tables named \"" +
                             t.name() + "\" cannot share one artifact");
    }
  }
  w.u64(tables.size());
  const bool v4 = w.format_version() >= 4;
  for (const auto& [name, table] : tables) {
    w.str(name);
    w.u64(table->feature_dim());
    std::vector<std::int64_t> keys;
    keys.reserve(table->rows().size());
    for (const auto& [key, row] : table->rows()) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    if (v4) {
      // Keys as one delta-coded block (dense entity-id spaces collapse to
      // ~1 byte/key), rows as one double vector in key order so the
      // dictionary codec sees the whole table at once.
      w.i64s_delta(keys);
      std::vector<double> flat;
      flat.reserve(keys.size() * table->feature_dim());
      for (std::int64_t key : keys) {
        const auto& row = table->rows().at(key).values();
        flat.insert(flat.end(), row.begin(), row.end());
      }
      w.doubles(flat);
    } else {
      w.u64(keys.size());
      for (std::int64_t key : keys) {
        w.i64(key);
        for (double v : table->rows().at(key).values()) w.f64(v);
      }
    }
  }
}

OpLoadContext load_tables(Reader& r) {
  OpLoadContext ctx;
  const bool v4 = r.format_version() >= 4;
  const std::uint64_t n_tables = r.length(v4 ? 2 : 16, "table list");
  for (std::uint64_t t = 0; t < n_tables; ++t) {
    // Remember where this table's wire image starts: byte-identical
    // payloads across replicas / swap generations intern to one object.
    const std::size_t start = r.position();
    std::string name = r.str();
    const std::uint64_t dim = r.u64();
    auto table = std::make_shared<store::FeatureTable>(
        name, static_cast<std::size_t>(dim));
    if (v4) {
      const std::vector<std::int64_t> keys = r.i64s_delta();
      const std::vector<double> flat = r.doubles();
      // Overflow-safe keys*dim == flat.size() check (dim is attacker data).
      const bool shape_ok =
          keys.empty() ? flat.empty()
                       : (flat.size() % keys.size() == 0 &&
                          flat.size() / keys.size() == dim);
      if (!shape_ok) {
        throw SerializeError(ErrorCode::CorruptData,
                             "table row block does not match key count");
      }
      for (std::size_t i = 0; i < keys.size(); ++i) {
        data::DenseVector row(static_cast<std::size_t>(dim));
        for (std::uint64_t c = 0; c < dim; ++c) {
          row[static_cast<std::size_t>(c)] =
              flat[i * static_cast<std::size_t>(dim) +
                   static_cast<std::size_t>(c)];
        }
        table->put(keys[i], std::move(row));
      }
    } else {
      const std::uint64_t n_rows = r.length(8, "table rows");
      if (dim > r.remaining() / 8) {
        throw SerializeError(ErrorCode::Truncated,
                             "table row width exceeds payload");
      }
      for (std::uint64_t i = 0; i < n_rows; ++i) {
        const std::int64_t key = r.i64();
        data::DenseVector row(static_cast<std::size_t>(dim));
        for (std::uint64_t c = 0; c < dim; ++c) {
          row[static_cast<std::size_t>(c)] = r.f64();
        }
        table->put(key, std::move(row));
      }
    }
    std::shared_ptr<const store::FeatureTable> shared =
        InternPool::instance().intern<store::FeatureTable>(
            "table", r.window(start), std::move(table));
    if (!ctx.tables.emplace(std::move(name), std::move(shared)).second) {
      throw SerializeError(ErrorCode::CorruptData, "duplicate table name");
    }
  }
  return ctx;
}

// --- layout / cascade ----------------------------------------------------

void save_layout(Writer& w, std::span<const std::size_t> block_cols,
                 std::span<const std::size_t> col_begin,
                 std::span<const double> fg_costs) {
  w.sizes(block_cols);
  w.sizes(col_begin);
  w.doubles(fg_costs);
}

void save_cascade(Writer& w, const core::TrainedCascade& c) {
  w.bools(c.efficient_mask);
  w.bools(c.inefficient_mask);
  w.f64(c.threshold);
  w.doubles(c.stats.cost_seconds);
  w.doubles(c.stats.importance);
  w.f64(c.full_valid_accuracy);
  w.f64(c.cascade_valid_accuracy);
  w.u8(c.small_model != nullptr ? 1 : 0);
  if (c.small_model != nullptr) save_model(w, *c.small_model);
  if (c.full_model == nullptr) {
    throw std::logic_error("cascade without a trained full model cannot be saved");
  }
  save_model(w, *c.full_model);
}

core::TrainedCascade load_cascade(Reader& r) {
  core::TrainedCascade c;
  c.efficient_mask = r.bools();
  c.inefficient_mask = r.bools();
  c.threshold = r.f64();
  c.stats.cost_seconds = r.doubles();
  c.stats.importance = r.doubles();
  c.full_valid_accuracy = r.f64();
  c.cascade_valid_accuracy = r.f64();
  if (c.inefficient_mask.size() != c.efficient_mask.size()) {
    throw SerializeError(ErrorCode::CorruptData, "cascade mask size mismatch");
  }
  const std::uint8_t has_small = r.u8();
  if (has_small > 1) {
    throw SerializeError(ErrorCode::CorruptData, "cascade small-model flag");
  }
  if (has_small != 0) c.small_model = load_model(r);
  c.full_model = load_model(r);
  return c;
}

}  // namespace

// --- pipeline artifact ----------------------------------------------------

std::uint32_t artifact_write_version() {
  const char* env = std::getenv("WILLUMP_WLMP_CODECS");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') return 3;
  return kFormatVersion;
}

std::vector<std::uint8_t> pipeline_to_bytes(const core::OptimizedPipeline& p) {
  return pipeline_to_bytes(p, artifact_write_version());
}

std::vector<std::uint8_t> pipeline_to_bytes(const core::OptimizedPipeline& p,
                                            std::uint32_t format_version) {
  const core::Executor& exec = p.executor();
  const bool compiled =
      dynamic_cast<const core::CompiledExecutor*>(&exec) != nullptr;

  Writer meta(format_version);
  meta.u8(compiled ? 1 : 0);
  meta.u8(p.use_cascades() ? 1 : 0);
  meta.f64(p.topk_config().ck);
  meta.f64(p.topk_config().min_subset_frac);
  meta.u8(p.cache() != nullptr ? 1 : 0);
  meta.u64(p.cache_capacity_per_ifv());
  meta.u64(p.parallel_threads());

  Writer tables(format_version);
  save_tables(tables, exec.graph());

  Writer graph(format_version);
  save_graph(graph, exec.graph());

  Writer layout(format_version);
  save_layout(layout, exec.analysis().block_cols, exec.analysis().col_begin,
              exec.fg_costs());

  Writer cascade(format_version);
  save_cascade(cascade, p.cascade());

  Writer kern(format_version);
  kernels::save_autotune_report(kern, p.autotune_report());

  return pack(kPipelineKind, format_version,
              {{kSecMeta, meta.take()},
               {kSecTables, tables.take()},
               {kSecGraph, graph.take()},
               {kSecLayout, layout.take()},
               {kSecCascade, cascade.take()},
               {kSecKernels, kern.take()}});
}

core::OptimizedPipeline pipeline_from_bytes(
    std::span<const std::uint8_t> bytes) {
  const auto sections = unpack(bytes, kPipelineKind);

  Reader meta = section_reader(sections, kSecMeta, "pipeline meta section");
  const std::uint8_t engine = meta.u8();
  if (engine > 1) {
    throw SerializeError(ErrorCode::CorruptData, "engine kind out of range");
  }
  const bool use_cascades = meta.u8() != 0;
  core::TopKConfig topk;
  topk.ck = meta.f64();
  topk.min_subset_frac = meta.f64();
  const bool feature_cache = meta.u8() != 0;
  const std::size_t cache_capacity = static_cast<std::size_t>(meta.u64());
  const std::size_t parallel_threads = static_cast<std::size_t>(meta.u64());
  // A flipped thread count must not spawn an absurd pool.
  if (parallel_threads > 4096) {
    throw SerializeError(ErrorCode::CorruptData, "parallel thread count absurd");
  }

  Reader tables_r = section_reader(sections, kSecTables, "table section");
  const OpLoadContext ctx = load_tables(tables_r);

  Reader graph_r = section_reader(sections, kSecGraph, "graph section");
  core::Graph graph = load_graph(graph_r, ctx);

  // The IFV analysis is derived state: recompute it from the loaded graph
  // (guaranteed consistent) and restore only the probed layout. A graph
  // that decodes but no longer analyzes is corrupt by construction — the
  // artifact was saved from a pipeline that analyzed.
  std::shared_ptr<core::Executor> executor;
  try {
    core::IfvAnalysis analysis = core::analyze_ifvs(graph);
    if (engine == 1) {
      executor = std::make_shared<core::CompiledExecutor>(std::move(graph),
                                                          std::move(analysis));
    } else {
      executor = std::make_shared<core::InterpretedExecutor>(
          std::move(graph), std::move(analysis));
    }
  } catch (const std::invalid_argument& e) {
    throw SerializeError(ErrorCode::CorruptData, e.what());
  }

  Reader layout_r = section_reader(sections, kSecLayout, "layout section");
  auto block_cols = layout_r.sizes();
  auto col_begin = layout_r.sizes();
  auto fg_costs = layout_r.doubles();
  try {
    executor->restore_layout(std::move(block_cols), std::move(col_begin));
  } catch (const std::invalid_argument& e) {
    throw SerializeError(ErrorCode::CorruptData, e.what());
  }
  executor->set_fg_costs(std::move(fg_costs));

  Reader cascade_r = section_reader(sections, kSecCascade, "cascade section");
  core::TrainedCascade cascade = load_cascade(cascade_r);
  if (cascade.enabled() &&
      cascade.efficient_mask.size() != executor->analysis().num_generators()) {
    throw SerializeError(ErrorCode::CorruptData,
                         "cascade masks do not match the graph's generators");
  }

  Reader kern_r = section_reader(sections, kSecKernels, "kernel section");
  kernels::AutotuneReport autotune = kernels::load_autotune_report(kern_r);
  // Op-level winners live on the executor, not the models: install them
  // while it is still mutable so a loaded pipeline cold-starts tuned.
  if (autotune.tuned_ops) {
    if (auto* compiled =
            dynamic_cast<core::CompiledExecutor*>(executor.get())) {
      compiled->set_featureop_config(autotune.ops);
    }
  }

  core::OptimizedPipeline::Parts parts;
  parts.executor = std::move(executor);
  parts.cascade = std::move(cascade);
  parts.autotune = std::move(autotune);
  parts.use_cascades = use_cascades;
  parts.topk = topk;
  parts.feature_cache = feature_cache;
  parts.cache_capacity = cache_capacity;
  parts.parallel_threads = parallel_threads;
  return core::OptimizedPipeline(std::move(parts));
}

void save_pipeline(const core::OptimizedPipeline& p, const std::string& path) {
  write_file_atomic(path, pipeline_to_bytes(p));
}

core::OptimizedPipeline load_pipeline(const std::string& path) {
  return pipeline_from_bytes(read_file(path));
}

// --- cascade bundle -------------------------------------------------------

std::vector<std::uint8_t> cascade_bundle_to_bytes(const CascadeBundle& b) {
  const std::uint32_t version = artifact_write_version();
  Writer layout(version);
  save_layout(layout, b.block_cols, b.col_begin, b.fg_costs);
  Writer cascade(version);
  save_cascade(cascade, b.cascade);
  return pack(kCascadeKind, version,
              {{kSecLayout, layout.take()}, {kSecCascade, cascade.take()}});
}

CascadeBundle cascade_bundle_from_bytes(std::span<const std::uint8_t> bytes) {
  const auto sections = unpack(bytes, kCascadeKind);
  CascadeBundle b;
  Reader layout_r = section_reader(sections, kSecLayout, "layout section");
  b.block_cols = layout_r.sizes();
  b.col_begin = layout_r.sizes();
  b.fg_costs = layout_r.doubles();
  Reader cascade_r = section_reader(sections, kSecCascade, "cascade section");
  b.cascade = load_cascade(cascade_r);
  return b;
}

void save_cascade_bundle(const CascadeBundle& b, const std::string& path) {
  write_file_atomic(path, cascade_bundle_to_bytes(b));
}

CascadeBundle load_cascade_bundle(const std::string& path) {
  return cascade_bundle_from_bytes(read_file(path));
}

void bind_cascade_bundle(CascadeBundle& bundle, core::Executor& executor) {
  const std::size_t n = executor.analysis().num_generators();
  if (bundle.cascade.enabled() && bundle.cascade.efficient_mask.size() != n) {
    throw SerializeError(ErrorCode::CorruptData,
                         "cascade masks do not match the executor's generators");
  }
  try {
    executor.restore_layout(bundle.block_cols, bundle.col_begin);
  } catch (const std::invalid_argument& e) {
    throw SerializeError(ErrorCode::CorruptData, e.what());
  }
  executor.set_fg_costs(bundle.fg_costs);
}

// --- workload splits ------------------------------------------------------

namespace {

void save_column(Writer& w, const data::Column& c) {
  w.u8(static_cast<std::uint8_t>(c.type()));
  const bool v4 = w.format_version() >= 4;
  switch (c.type()) {
    case data::ColumnType::Int: {
      const auto& xs = c.ints();
      if (v4) {
        w.varint(xs.size());
        for (std::int64_t x : xs) w.svarint(x);
      } else {
        w.u64(xs.size());
        for (std::int64_t x : xs) w.i64(x);
      }
      break;
    }
    case data::ColumnType::Double:
      w.doubles(c.doubles());
      break;
    case data::ColumnType::String: {
      const auto& xs = c.strings();
      if (v4) {
        w.varint(xs.size());
      } else {
        w.u64(xs.size());
      }
      for (const auto& s : xs) w.str(s);
      break;
    }
  }
}

data::Column load_column(Reader& r) {
  const std::uint8_t type = r.u8();
  if (type > static_cast<std::uint8_t>(data::ColumnType::String)) {
    throw SerializeError(ErrorCode::CorruptData, "column type out of range");
  }
  const bool v4 = r.format_version() >= 4;
  switch (static_cast<data::ColumnType>(type)) {
    case data::ColumnType::Int: {
      const std::uint64_t n = v4 ? r.varlength(1, "int column")
                                 : r.length(8, "int column");
      data::IntColumn xs;
      xs.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        xs.push_back(v4 ? r.svarint() : r.i64());
      }
      return data::Column(std::move(xs));
    }
    case data::ColumnType::Double:
      return data::Column(data::DoubleColumn(r.doubles()));
    default: {
      const std::uint64_t n = v4 ? r.varlength(1, "string column")
                                 : r.length(8, "string column");
      data::StringColumn xs;
      xs.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) xs.push_back(r.str());
      return data::Column(std::move(xs));
    }
  }
}

void save_labeled(Writer& w, const core::LabeledData& d) {
  const auto& names = d.inputs.names();
  w.u64(names.size());
  for (const auto& name : names) {
    w.str(name);
    save_column(w, d.inputs.get(name));
  }
  w.doubles(d.targets);
}

core::LabeledData load_labeled(Reader& r) {
  core::LabeledData d;
  const std::uint64_t n_cols = r.length(2, "split columns");
  for (std::uint64_t i = 0; i < n_cols; ++i) {
    std::string name = r.str();
    d.inputs.add(std::move(name), load_column(r));
  }
  d.targets = r.doubles();
  if (d.inputs.num_columns() > 0 && d.targets.size() != d.inputs.num_rows()) {
    throw SerializeError(ErrorCode::CorruptData,
                         "split target count does not match its rows");
  }
  return d;
}

}  // namespace

std::vector<std::uint8_t> split_bundle_to_bytes(const SplitBundle& b) {
  const std::uint32_t version = artifact_write_version();
  Writer w(version);
  w.str(b.workload);
  w.u8(b.classification ? 1 : 0);
  save_labeled(w, b.train);
  save_labeled(w, b.valid);
  save_labeled(w, b.test);
  return pack(kSplitKind, version, {{kSecSplits, w.take()}});
}

SplitBundle split_bundle_from_bytes(std::span<const std::uint8_t> bytes) {
  const auto sections = unpack(bytes, kSplitKind);
  Reader r = section_reader(sections, kSecSplits, "split section");
  SplitBundle b;
  b.workload = r.str();
  const std::uint8_t cls = r.u8();
  if (cls > 1) {
    throw SerializeError(ErrorCode::CorruptData, "split classification flag");
  }
  b.classification = cls != 0;
  b.train = load_labeled(r);
  b.valid = load_labeled(r);
  b.test = load_labeled(r);
  return b;
}

void save_split_bundle(const SplitBundle& b, const std::string& path) {
  write_file_atomic(path, split_bundle_to_bytes(b));
}

SplitBundle load_split_bundle(const std::string& path) {
  return split_bundle_from_bytes(read_file(path));
}

// --- file io --------------------------------------------------------------

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializeError(ErrorCode::IoError, "cannot open \"" + path + "\"");
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw SerializeError(ErrorCode::IoError, "read failed for \"" + path + "\"");
  }
  return bytes;
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);  // best-effort
  }
  // Unique per process and call: parallel test binaries warming the same
  // cache entry each write their own temp file and race only on the
  // (atomic) rename.
  static std::atomic<std::uint64_t> counter{0};
  const fs::path tmp = target.string() + ".tmp." +
                       std::to_string(::getpid()) + "." +
                       std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SerializeError(ErrorCode::IoError,
                           "cannot create \"" + tmp.string() + "\"");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw SerializeError(ErrorCode::IoError,
                           "write failed for \"" + tmp.string() + "\"");
    }
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw SerializeError(ErrorCode::IoError, "rename failed for \"" + path + "\"");
  }
}

}  // namespace willump::serialize
