#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace willump::serialize {

/// Process-wide content-addressed pool of immutable heavy fitted state
/// (TF-IDF models, feature tables, flattened forests). Deserializers intern
/// the object they just parsed keyed by the payload bytes it came from: when
/// another replica — or a later `swap_model` generation — loads byte-identical
/// state, it receives the same live `shared_ptr<const T>` instead of a
/// private copy, so N replicas cost ~1x heavy state instead of Nx.
///
/// Entries are weak: the pool keeps nothing alive. Content identity is the
/// (kind, fnv1a-64, crc32, size) quadruple of the payload bytes — not a full
/// byte compare — which is collision-safe far beyond fleet scale but is an
/// assumption, so the pool can be disabled (WILLUMP_COW_INTERN=0) to fall
/// back to private copies.
class InternPool {
 public:
  static InternPool& instance();

  /// Dedup `fresh` (just parsed from `bytes`): returns the pooled live
  /// object for identical content, else registers and returns `fresh`.
  /// `kind` partitions the key space per type ("tfidf", "table", ...).
  template <typename T>
  std::shared_ptr<const T> intern(std::string_view kind,
                                  std::span<const std::uint8_t> bytes,
                                  std::shared_ptr<const T> fresh) {
    if (!enabled() || fresh == nullptr) return fresh;
    auto held = lookup_or_store(
        kind, bytes,
        std::static_pointer_cast<const void>(fresh));
    return std::static_pointer_cast<const T>(std::move(held));
  }

  struct Stats {
    std::uint64_t hits = 0;    // loads that reused a live pooled object
    std::uint64_t misses = 0;  // loads that registered fresh state
  };
  Stats stats() const;
  void clear();  // drop all entries (stats too); mainly for benchmarks

  /// Process-wide switch. Defaults from WILLUMP_COW_INTERN (unset/1 = on).
  static bool enabled();
  static void set_enabled(bool on);

 private:
  InternPool() = default;
  std::shared_ptr<const void> lookup_or_store(std::string_view kind,
                                              std::span<const std::uint8_t> bytes,
                                              std::shared_ptr<const void> fresh);
};

}  // namespace willump::serialize
