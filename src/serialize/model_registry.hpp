#pragma once

#include <memory>

#include "models/model.hpp"
#include "serialize/buffer.hpp"

namespace willump::serialize {

/// Write `model` as [type tag][model payload]; the tag is the model's
/// name(). Throws std::logic_error for models outside the registry.
/// Stateless and safe to call concurrently for different (Writer, model)
/// pairs; the tag table is immutable after static initialization.
void save_model(Writer& w, const models::Model& model);

/// Reconstruct a model from [type tag][payload]. Throws SerializeError
/// (UnknownTypeTag / CorruptData / Truncated) on malformed input — a
/// malformed payload never yields a partially constructed model, and
/// cross-field invariants (tree child indices, layer shapes) are validated
/// here so a decoded model cannot crash at predict time.
std::shared_ptr<models::Model> load_model(Reader& r);

}  // namespace willump::serialize
