#pragma once

#include <memory>

#include "models/model.hpp"
#include "serialize/buffer.hpp"

namespace willump::serialize {

/// Write `model` as [type tag][model payload]; the tag is the model's
/// name(). Throws std::logic_error for models outside the registry.
void save_model(Writer& w, const models::Model& model);

/// Reconstruct a model from [type tag][payload]. Throws SerializeError
/// (UnknownTypeTag / CorruptData / Truncated) on malformed input.
std::shared_ptr<models::Model> load_model(Reader& r);

}  // namespace willump::serialize
