#include "serialize/model_registry.hpp"

#include <stdexcept>

#include "models/gbdt.hpp"
#include "models/linear.hpp"
#include "models/mlp.hpp"

namespace willump::serialize {

void save_model(Writer& w, const models::Model& model) {
  const std::string tag = model.name();
  if (tag != "logistic_regression" && tag != "linear_regression" &&
      tag != "gbdt" && tag != "mlp") {
    throw std::logic_error("model \"" + tag +
                           "\" has no registered serialization tag");
  }
  w.str(tag);
  model.save(w);
}

std::shared_ptr<models::Model> load_model(Reader& r) {
  const std::string tag = r.str();
  if (tag == "logistic_regression") return models::LogisticRegression::load(r);
  if (tag == "linear_regression") return models::LinearRegression::load(r);
  if (tag == "gbdt") return models::Gbdt::load(r);
  if (tag == "mlp") return models::Mlp::load(r);
  throw SerializeError(ErrorCode::UnknownTypeTag, "model tag \"" + tag + "\"");
}

}  // namespace willump::serialize
