#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "serialize/buffer.hpp"

namespace willump::serialize {

// kFormatVersion / kMinReadVersion live in buffer.hpp beside the Writer/
// Reader that implement each version's wire layout.

/// File layout (all integers little-endian):
///
///   "WLMP"  magic (4 bytes)
///   u32     format version
///   u32     artifact kind ('WPIP' pipeline | 'WCSC' cascade bundle |
///           'WSPL' workload splits)
///   u32     section count
///   repeat: u32 section tag, u64 payload size, u32 payload CRC-32, payload
///
/// Sections of a pipeline artifact: 'META' (engine + optimization flags),
/// 'TABL' (feature tables, dedup'd by name), 'GRPH' (graph topology + op
/// payloads via the op registry), 'LAYT' (probed column layout + measured
/// generator costs), 'CASC' (trained cascade + models via the model
/// registry), 'KERN' (kernel autotune report: winning configs + candidate
/// timings — the per-model winners also travel inside each model payload,
/// so a loaded pipeline cold-starts tuned). A cascade bundle carries
/// 'LAYT' + 'CASC' only.
///
/// Error semantics: every load failure throws SerializeError with a typed
/// ErrorCode (see error.hpp); corrupt bytes can never construct a pipeline
/// (per-section CRCs catch flips, every read is bounds-checked, and
/// cross-field invariants are validated on load). Save failures throw
/// std::logic_error only for unserializable content (an op/model outside
/// the registries) and SerializeError(IoError) for filesystem problems.
///
/// Thread safety: these are free functions over value types — concurrent
/// saves and loads of *different* pipelines/paths need no coordination,
/// and concurrent loads of the same file are fine (the file is read once
/// into memory, then parsed). Writers to the same path race benignly via
/// write_file_atomic (temp file + rename: last writer wins whole). None
/// of these functions block beyond file I/O.

/// The version save paths emit by default: kFormatVersion, or 3 when the
/// WILLUMP_WLMP_CODECS=0 kill switch disables the v4 codecs (artifacts
/// then reproduce the legacy fixed-width layout byte for byte).
std::uint32_t artifact_write_version();

/// Serialize a trained pipeline. Throws std::logic_error if the pipeline
/// contains an op or model outside the serialization registries.
std::vector<std::uint8_t> pipeline_to_bytes(const core::OptimizedPipeline& p);
std::vector<std::uint8_t> pipeline_to_bytes(const core::OptimizedPipeline& p,
                                            std::uint32_t format_version);

/// Reconstruct a pipeline; the artifact is self-contained (fitted
/// vocabularies, model weights, cascade thresholds, and feature tables all
/// travel inside it).
core::OptimizedPipeline pipeline_from_bytes(std::span<const std::uint8_t> bytes);

void save_pipeline(const core::OptimizedPipeline& p, const std::string& path);
core::OptimizedPipeline load_pipeline(const std::string& path);

/// A trained cascade plus the probed layout and measured per-generator
/// costs — what the test fixture cache stores so slow suites skip cascade
/// training. The executor itself is rebuilt from the (regenerated)
/// workload graph; bind_cascade_bundle() re-attaches the tuned state.
struct CascadeBundle {
  core::TrainedCascade cascade;
  std::vector<std::size_t> block_cols;
  std::vector<std::size_t> col_begin;
  std::vector<double> fg_costs;
};

std::vector<std::uint8_t> cascade_bundle_to_bytes(const CascadeBundle& b);
CascadeBundle cascade_bundle_from_bytes(std::span<const std::uint8_t> bytes);

void save_cascade_bundle(const CascadeBundle& b, const std::string& path);
CascadeBundle load_cascade_bundle(const std::string& path);

/// Restore a bundle's layout/costs onto an executor rebuilt from the same
/// graph. Throws SerializeError(CorruptData) when the bundle does not match
/// the executor's generator structure.
void bind_cascade_bundle(CascadeBundle& bundle, core::Executor& executor);

/// Raw workload train/valid/test splits as a 'WSPL' artifact — the test
/// fixture cache stores these so warm runs skip workload *generation*
/// (text synthesis, TF-IDF fitting data, Zipf sampling), the remaining
/// fixed cost of the slow suites once pipelines themselves are cached.
struct SplitBundle {
  std::string workload;       // generator tag the splits came from
  bool classification = true; // label semantics (accuracy vs regression)
  core::LabeledData train;
  core::LabeledData valid;
  core::LabeledData test;
};

std::vector<std::uint8_t> split_bundle_to_bytes(const SplitBundle& b);
SplitBundle split_bundle_from_bytes(std::span<const std::uint8_t> bytes);

void save_split_bundle(const SplitBundle& b, const std::string& path);
SplitBundle load_split_bundle(const std::string& path);

/// Whole-file read; missing/unreadable files throw SerializeError(IoError).
std::vector<std::uint8_t> read_file(const std::string& path);

/// Crash/concurrency-safe write: bytes land in a temp file first and are
/// renamed into place, so readers only ever see complete artifacts (a
/// half-written file additionally fails its CRCs). Parallel writers of the
/// same path race benignly — last rename wins with identical content.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

}  // namespace willump::serialize
