#pragma once

#include <stdexcept>
#include <string>

namespace willump::serialize {

/// Why an artifact was rejected. Every load failure maps to one of these;
/// corrupt input must never surface as UB, a crash, or a silently wrong
/// pipeline (the hardening standard ClipperSim::deserialize_batch set for
/// the wire format applies to artifacts too).
///
/// Callers branch on the code, not the message: `code()` is API, the
/// what() string is diagnostics. The typed split matters operationally —
/// IoError is retryable (file still being copied into place),
/// UnsupportedVersion calls for a re-export from the matching build, and
/// everything else means the artifact itself is damaged and no retry will
/// help.
enum class ErrorCode {
  IoError,             // file missing / unreadable / unwritable
  BadMagic,            // not a Willump artifact
  UnsupportedVersion,  // format version this build does not read
  WrongKind,           // a valid artifact of a different artifact kind
  Truncated,           // ran out of bytes mid-structure
  ChecksumMismatch,    // a section's payload fails its CRC
  UnknownTypeTag,      // op/model tag missing from the type registry
  CorruptData,         // structurally invalid payload (bad enum, bad id, ...)
  MissingSection,      // a required section is absent
};

const char* error_code_name(ErrorCode code);

/// The one exception type every serialization failure throws.
class SerializeError : public std::runtime_error {
 public:
  SerializeError(ErrorCode code, const std::string& what)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + what),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::IoError: return "artifact io error";
    case ErrorCode::BadMagic: return "bad magic";
    case ErrorCode::UnsupportedVersion: return "unsupported format version";
    case ErrorCode::WrongKind: return "wrong artifact kind";
    case ErrorCode::Truncated: return "truncated artifact";
    case ErrorCode::ChecksumMismatch: return "checksum mismatch";
    case ErrorCode::UnknownTypeTag: return "unknown type tag";
    case ErrorCode::CorruptData: return "corrupt data";
    case ErrorCode::MissingSection: return "missing section";
  }
  return "serialize error";
}

}  // namespace willump::serialize
