#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "ops/operator.hpp"
#include "serialize/buffer.hpp"
#include "store/kv_store.hpp"

namespace willump::serialize {

/// Context threaded through polymorphic op loading. Feature tables are
/// stored once in the artifact's table section (dedup'd by name) and bound
/// here before the graph loads; a table_lookup op payload references its
/// table by name. The context is read-only during the load and owned by
/// the caller; the loaded ops share ownership of the tables they bind
/// (shared_ptr), so the context may be discarded after load.
///
/// The save/load pair below is stateless and thread-safe to call
/// concurrently for different (Writer/Reader, op) pairs; the registry
/// tables themselves are immutable after static initialization.
struct OpLoadContext {
  std::unordered_map<std::string, std::shared_ptr<const store::FeatureTable>>
      tables;
};

/// Write `op` as [type tag][op payload]. Throws std::logic_error for ops
/// outside the registry (serial_tag() empty / unknown) — a pipeline carrying
/// a user op that has not implemented the contract cannot be saved.
void save_op(Writer& w, const ops::Operator& op);

/// Reconstruct an op from [type tag][payload]. Throws SerializeError with
/// UnknownTypeTag for tags this build does not know, CorruptData /
/// Truncated for malformed payloads, and MissingSection when a table_lookup
/// references a table absent from `ctx`.
ops::OperatorPtr load_op(Reader& r, const OpLoadContext& ctx);

}  // namespace willump::serialize
