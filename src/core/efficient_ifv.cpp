#include "core/efficient_ifv.hpp"

#include <algorithm>
#include <numeric>

namespace willump::core {

std::size_t EfficientIfvResult::num_selected() const {
  return static_cast<std::size_t>(std::count(mask.begin(), mask.end(), true));
}

EfficientIfvResult select_efficient_ifvs(std::span<const double> importance,
                                         std::span<const double> cost,
                                         double gamma) {
  const std::size_t n = importance.size();
  EfficientIfvResult res;
  res.mask.assign(n, false);
  res.total_cost = std::accumulate(cost.begin(), cost.end(), 0.0);

  // Refinement over the paper's Algorithm 1: IFVs costing under 2% of the
  // whole pipeline are always included — they cannot meaningfully slow the
  // small model — and are kept OUT of the running average below. Without
  // this, a near-free IFV (e.g. raw numeric columns) makes avgCE explode
  // and the gamma rule spuriously rejects every substantive IFV.
  const double free_threshold = kFreeIfvFraction * res.total_cost;
  double e_cost = 0.0;
  std::vector<std::size_t> queue;
  for (std::size_t f = 0; f < n; ++f) {
    if (cost[f] <= free_threshold) {
      res.mask[f] = true;
      e_cost += cost[f];
    } else {
      queue.push_back(f);
    }
  }

  // Queue ordered by decreasing cost-effectiveness (Algorithm 1, line 1).
  auto ce = [&](std::size_t f) { return importance[f] / std::max(cost[f], 1e-12); };
  std::sort(queue.begin(), queue.end(),
            [&](std::size_t a, std::size_t b) { return ce(a) > ce(b); });

  const double total_importance =
      std::accumulate(importance.begin(), importance.end(), 0.0);

  double sub_importance = 0.0;  // substantive (non-free) members only
  double sub_cost = 0.0;
  for (std::size_t f : queue) {
    // avgCE of the selected set; 0 while empty (line 6).
    const double avg_ce = sub_cost > 0.0 ? sub_importance / sub_cost : 0.0;
    if (ce(f) < gamma * avg_ce) {
      // Gamma rule (line 8) — but per the paper's stated intent (§6.4) it
      // exists to drop IFVs that "do not improve accuracy enough to justify
      // their cost". A candidate holding a substantial share of the total
      // prediction importance is not such an IFV even when its CE is low
      // (its cost merely differs by orders of magnitude from the selected
      // set's), so it stays in consideration for the cost budget.
      if (total_importance <= 0.0 ||
          importance[f] / total_importance < kGammaEscapeImportanceShare) {
        break;
      }
    }
    if (e_cost + cost[f] > res.total_cost / 2.0) continue;    // line 11
    res.mask[f] = true;
    sub_importance += importance[f];
    sub_cost += cost[f];
    e_cost += cost[f];
  }
  res.selected_cost = e_cost;
  return res;
}

EfficientIfvResult select_by_policy(SelectionPolicy policy,
                                    std::span<const double> importance,
                                    std::span<const double> cost, double gamma) {
  if (policy == SelectionPolicy::Willump) {
    return select_efficient_ifvs(importance, cost, gamma);
  }
  const std::size_t n = importance.size();
  EfficientIfvResult res;
  res.mask.assign(n, false);
  res.total_cost = std::accumulate(cost.begin(), cost.end(), 0.0);

  std::vector<std::size_t> queue(n);
  std::iota(queue.begin(), queue.end(), std::size_t{0});
  if (policy == SelectionPolicy::MostImportant) {
    std::sort(queue.begin(), queue.end(), [&](std::size_t a, std::size_t b) {
      return importance[a] > importance[b];
    });
  } else {
    std::sort(queue.begin(), queue.end(),
              [&](std::size_t a, std::size_t b) { return cost[a] < cost[b]; });
  }

  // Same half-cost budget as Algorithm 1 so the comparison isolates the
  // ordering criterion (what Table 8 varies).
  double e_cost = 0.0;
  for (std::size_t f : queue) {
    if (e_cost + cost[f] > res.total_cost / 2.0) continue;
    res.mask[f] = true;
    e_cost += cost[f];
  }
  res.selected_cost = e_cost;
  (void)gamma;
  return res;
}

}  // namespace willump::core
