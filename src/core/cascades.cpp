#include "core/cascades.hpp"

#include <algorithm>
#include <cmath>

#include "core/importance.hpp"
#include "models/metrics.hpp"

namespace willump::core {

namespace {

/// Gather the rows of each computed block (used to reuse already-computed
/// efficient blocks for the rows that cascade to the full model).
std::vector<data::FeatureMatrix> gather_block_rows(
    const std::vector<data::FeatureMatrix>& blocks,
    const std::vector<bool>& mask, std::span<const std::size_t> rows) {
  std::vector<data::FeatureMatrix> out(blocks.size());
  for (std::size_t f = 0; f < blocks.size(); ++f) {
    if (f < mask.size() && mask[f]) out[f] = blocks[f].select_rows(rows);
  }
  return out;
}

}  // namespace

double CascadeTrainer::select_threshold(std::span<const double> small_probas,
                                        std::span<const double> full_probas,
                                        std::span<const double> labels,
                                        double accuracy_target) {
  const double full_acc = models::accuracy(full_probas, labels);
  // Thresholds are integer multiples of 0.1 to avoid overfitting the
  // validation set (§4.2); binary confidences live in [0.5, 1.0].
  double best = 1.0;
  for (double t = 0.5; t <= 1.0 + 1e-9; t += 0.1) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const double p = models::confidence(small_probas[i]) > t ? small_probas[i]
                                                               : full_probas[i];
      if (models::predicted_label(p) == labels[i]) ++correct;
    }
    const double acc =
        labels.empty() ? 0.0
                       : static_cast<double>(correct) / static_cast<double>(labels.size());
    if (acc >= full_acc - accuracy_target) {
      best = t;
      break;  // lowest such threshold
    }
  }
  return best;
}

TrainedCascade CascadeTrainer::train(const Executor& executor,
                                     const models::Model& model_proto,
                                     const LabeledData& train,
                                     const LabeledData& valid,
                                     const CascadeConfig& cfg) {
  TrainedCascade out;
  const auto& analysis = executor.analysis();
  const std::size_t num_fg = analysis.num_generators();

  // Stage 1: IFV statistics. Costs are measured while computing training
  // features; importances come from a full model trained on all features.
  out.stats.cost_seconds = measure_fg_costs(executor, train.inputs);

  const data::FeatureMatrix x_train_full = executor.compute_matrix(train.inputs);
  auto full_model = std::shared_ptr<models::Model>(model_proto.clone_untrained());
  full_model->fit(x_train_full, train.targets);
  out.full_model = full_model;

  const auto per_feature =
      feature_importances(*full_model, x_train_full, train.targets);
  out.stats.importance = ifv_importances(analysis, per_feature);

  // Stage 2: efficient-IFV selection (Algorithm 1 or an ablation policy).
  const double gamma = cfg.disable_gamma_rule ? 0.0 : cfg.gamma;
  const EfficientIfvResult sel = select_by_policy(
      cfg.policy, out.stats.importance, out.stats.cost_seconds, gamma);
  if (sel.empty() || sel.num_selected() == num_fg) {
    // No useful approximation exists (nothing selected, or the "small"
    // model would need every IFV anyway): cascades stay disabled.
    return out;
  }
  out.efficient_mask = sel.mask;
  out.inefficient_mask.assign(num_fg, false);
  for (std::size_t f = 0; f < num_fg; ++f) {
    out.inefficient_mask[f] = !sel.mask[f];
  }

  // Stage 3: train the small model on the efficient feature vectors.
  ExecOptions eff_opts;
  eff_opts.fg_mask = out.efficient_mask;
  const data::FeatureMatrix x_train_eff =
      executor.compute_matrix(train.inputs, eff_opts);
  auto small_model = std::shared_ptr<models::Model>(model_proto.clone_untrained());
  small_model->fit(x_train_eff, train.targets);
  out.small_model = small_model;

  // Stage 4: threshold search on the validation set (classification only;
  // regression pipelines use cascades solely as top-K filter models, where
  // no threshold is involved).
  if (model_proto.is_classifier()) {
    const data::FeatureMatrix x_valid_full = executor.compute_matrix(valid.inputs);
    const data::FeatureMatrix x_valid_eff =
        executor.compute_matrix(valid.inputs, eff_opts);
    const auto small_probas = small_model->predict(x_valid_eff);
    const auto full_probas = full_model->predict(x_valid_full);
    out.threshold = select_threshold(small_probas, full_probas, valid.targets,
                                     cfg.accuracy_target);
    out.full_valid_accuracy = models::accuracy(full_probas, valid.targets);

    std::vector<double> casc(valid.targets.size());
    for (std::size_t i = 0; i < casc.size(); ++i) {
      casc[i] = models::confidence(small_probas[i]) > out.threshold
                    ? small_probas[i]
                    : full_probas[i];
    }
    out.cascade_valid_accuracy = models::accuracy(casc, valid.targets);
  }
  return out;
}

std::vector<double> cascade_predict(const Executor& executor,
                                    const TrainedCascade& cascade,
                                    const data::Batch& batch,
                                    const ExecOptions& opts,
                                    CascadeRunStats* stats) {
  std::vector<double> preds(batch.num_rows());
  cascade_predict_into(executor, cascade, batch, opts, preds, stats);
  return preds;
}

void cascade_predict_into(const Executor& executor,
                          const TrainedCascade& cascade,
                          const data::Batch& batch, const ExecOptions& opts,
                          std::span<double> preds, CascadeRunStats* stats) {
  const std::size_t n = batch.num_rows();

  // Stage 5a: compute efficient IFVs and predict with the small model.
  ExecOptions eff_opts = opts;
  eff_opts.fg_mask = cascade.efficient_mask;
  const auto eff_blocks = executor.compute_blocks(batch, eff_opts);
  const data::FeatureMatrix x_eff =
      executor.assemble(eff_blocks, cascade.efficient_mask);

  // Stage 5a/5b fused: the model marks the rows whose confidence does not
  // exceed the threshold (and may short-circuit its own evaluation for rows
  // it can prove hard mid-way — the GBDT's per-tree margin bounds do).
  // Hard rows may carry partial predictions; they are overwritten below.
  std::vector<std::uint8_t> hard(n);
  cascade.small_model->predict_cascade(x_eff, cascade.threshold, preds, hard);
  std::vector<std::size_t> hard_rows;
  for (std::size_t i = 0; i < n; ++i) {
    if (hard[i] != 0) hard_rows.push_back(i);
  }
  if (stats != nullptr) {
    stats->total_rows += n;
    stats->short_circuited += n - hard_rows.size();
  }
  if (hard_rows.empty()) return;

  // Compute only the remaining IFVs, only for the hard rows; reuse the
  // already-computed efficient blocks for those rows.
  const data::Batch hard_batch = batch.select_rows(hard_rows);
  ExecOptions ineff_opts = opts;
  ineff_opts.fg_mask = cascade.inefficient_mask;
  auto hard_blocks = executor.compute_blocks(hard_batch, ineff_opts);
  const auto eff_hard = gather_block_rows(eff_blocks, cascade.efficient_mask, hard_rows);
  for (std::size_t f = 0; f < hard_blocks.size(); ++f) {
    if (f < cascade.efficient_mask.size() && cascade.efficient_mask[f]) {
      hard_blocks[f] = eff_hard[f];
    }
  }
  const data::FeatureMatrix x_full = executor.assemble(hard_blocks, {});
  const auto full_preds = cascade.full_model->predict(x_full);
  for (std::size_t i = 0; i < hard_rows.size(); ++i) {
    preds[hard_rows[i]] = full_preds[i];
  }
}

}  // namespace willump::core
