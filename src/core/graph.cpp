#include "core/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace willump::core {

int Graph::add_source(std::string name, data::ColumnType type) {
  Node n;
  n.id = static_cast<int>(nodes_.size());
  n.kind = NodeKind::Source;
  n.name = std::move(name);
  n.source_type = type;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int Graph::add_transform(std::string name, ops::OperatorPtr op,
                         std::vector<int> inputs) {
  if (!op) throw std::invalid_argument("add_transform: null operator");
  const int id = static_cast<int>(nodes_.size());
  for (int in : inputs) {
    if (in < 0 || in >= id) {
      // Inputs must precede their consumer, which makes the graph acyclic
      // by construction.
      throw std::invalid_argument("add_transform: input id out of range");
    }
  }
  Node n;
  n.id = id;
  n.kind = NodeKind::Transform;
  n.name = std::move(name);
  n.op = std::move(op);
  n.inputs = std::move(inputs);
  nodes_.push_back(std::move(n));
  return id;
}

void Graph::set_output(int id) {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw std::invalid_argument("set_output: unknown node");
  }
  output_ = id;
}

std::vector<int> Graph::execution_order() const {
  if (output_ < 0) throw std::logic_error("Graph: output not set");
  // Nodes are already in a valid topological order by construction
  // (inputs < id); restrict to the ancestors of the output.
  std::vector<bool> needed(nodes_.size(), false);
  needed[static_cast<std::size_t>(output_)] = true;
  for (int id = output_; id >= 0; --id) {
    if (!needed[static_cast<std::size_t>(id)]) continue;
    for (int in : nodes_[static_cast<std::size_t>(id)].inputs) {
      needed[static_cast<std::size_t>(in)] = true;
    }
  }
  std::vector<int> order;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (needed[i]) order.push_back(static_cast<int>(i));
  }
  return order;
}

std::vector<int> Graph::ancestors(int id) const {
  std::vector<bool> anc(nodes_.size(), false);
  std::vector<int> stack(nodes_.at(static_cast<std::size_t>(id)).inputs);
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    if (anc[static_cast<std::size_t>(u)]) continue;
    anc[static_cast<std::size_t>(u)] = true;
    for (int in : nodes_[static_cast<std::size_t>(u)].inputs) stack.push_back(in);
  }
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (anc[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Graph::source_ancestors(int id) const {
  std::vector<int> out;
  for (int a : ancestors(id)) {
    if (nodes_[static_cast<std::size_t>(a)].kind == NodeKind::Source) {
      out.push_back(a);
    }
  }
  return out;
}

}  // namespace willump::core
