#include "core/executors.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "common/timer.hpp"
#include "ops/block_kernels.hpp"
#include "runtime/boxed.hpp"

namespace willump::core {

namespace {

/// -1 = unset (read WILLUMP_ARENA on first use), else 0/1.
std::atomic<int> g_request_scratch_enabled{-1};

bool request_scratch_on() {
  int v = g_request_scratch_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("WILLUMP_ARENA");
    v = (e != nullptr && e[0] == '0' && e[1] == '\0') ? 0 : 1;
    g_request_scratch_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

std::size_t request_arena_chunk_bytes() {
  if (const char* e = std::getenv("WILLUMP_ARENA_CHUNK_KB")) {
    const long kb = std::strtol(e, nullptr, 10);
    if (kb > 0) return static_cast<std::size_t>(kb) * 1024;
  }
  return 256u * 1024;
}

}  // namespace

ExecScratch* request_scratch() {
  if (!request_scratch_on()) return nullptr;
  thread_local ExecScratch scratch(request_arena_chunk_bytes());
  return &scratch;
}

void set_request_scratch_enabled(bool enabled) {
  g_request_scratch_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace {

/// Incrementally assembles a columnar Value from single-row Values.
class RowAccumulator {
 public:
  void append(const data::Value& one_row) {
    if (one_row.is_column()) {
      const auto& c = one_row.column();
      switch (c.type()) {
        case data::ColumnType::Int:
          ints_.push_back(c.ints()[0]);
          break;
        case data::ColumnType::Double:
          doubles_.push_back(c.doubles()[0]);
          break;
        case data::ColumnType::String:
          strings_.push_back(c.strings()[0]);
          break;
      }
      kind_ = Kind::Column;
      col_type_ = c.type();
      return;
    }
    const auto& m = one_row.features();
    if (m.is_dense()) {
      dense_rows_.emplace_back(
          std::vector<double>(m.dense().row(0).begin(), m.dense().row(0).end()));
      kind_ = Kind::Dense;
    } else {
      sparse_rows_.push_back(m.sparse().row_vector(0));
      sparse_cols_ = m.sparse().cols();
      kind_ = Kind::Sparse;
    }
  }

  data::Value finish() {
    switch (kind_) {
      case Kind::Column:
        switch (col_type_) {
          case data::ColumnType::Int:
            return data::Value(data::Column(std::move(ints_)));
          case data::ColumnType::Double:
            return data::Value(data::Column(std::move(doubles_)));
          case data::ColumnType::String:
            return data::Value(data::Column(std::move(strings_)));
        }
        break;
      case Kind::Dense:
        return data::Value(
            data::FeatureMatrix(data::DenseMatrix::from_rows(dense_rows_)));
      case Kind::Sparse:
        return data::Value(data::FeatureMatrix(
            data::CsrMatrix::from_rows(sparse_cols_, sparse_rows_)));
      case Kind::Empty:
        break;
    }
    return {};
  }

  bool empty() const { return kind_ == Kind::Empty; }

 private:
  enum class Kind { Empty, Column, Dense, Sparse };
  Kind kind_ = Kind::Empty;
  data::ColumnType col_type_ = data::ColumnType::Int;
  data::IntColumn ints_;
  data::DoubleColumn doubles_;
  data::StringColumn strings_;
  std::vector<data::DenseVector> dense_rows_;
  std::vector<data::SparseVector> sparse_rows_;
  std::int32_t sparse_cols_ = 0;
};

/// Box one row of `v` into the Python-like object model and immediately
/// unbox it back into a single-row Value. The round trip is the honest
/// overhead the interpreted engine pays on every edge element.
data::Value boxed_row_roundtrip(const data::Value& v, std::size_t row) {
  namespace bx = willump::runtime::boxed;
  if (v.is_column()) {
    auto b = bx::box_row(v.column(), row);
    return data::Value(bx::unbox_to_column(b, v.column().type()));
  }
  const auto& m = v.features();
  auto b = bx::box_feature_row(m, row);
  return data::Value(bx::unbox_to_features(b, m.is_sparse(), m.cols()));
}

/// Extract a single CachedRow from row `r` of a block.
CachedRow cached_row_of(const data::FeatureMatrix& block, std::size_t r) {
  if (block.is_dense()) {
    auto rv = block.dense().row(r);
    return data::DenseVector(std::vector<double>(rv.begin(), rv.end()));
  }
  return block.sparse().row_vector(r);
}

/// Assemble a block from per-row CachedRow values.
data::FeatureMatrix block_from_rows(const std::vector<CachedRow>& rows) {
  if (rows.empty()) return data::FeatureMatrix(data::DenseMatrix(0, 0));
  if (std::holds_alternative<data::DenseVector>(rows[0])) {
    std::vector<data::DenseVector> dense;
    dense.reserve(rows.size());
    for (const auto& r : rows) dense.push_back(std::get<data::DenseVector>(r));
    return data::FeatureMatrix(data::DenseMatrix::from_rows(dense));
  }
  std::vector<data::SparseVector> sparse;
  sparse.reserve(rows.size());
  for (const auto& r : rows) sparse.push_back(std::get<data::SparseVector>(r));
  return data::FeatureMatrix(
      data::CsrMatrix::from_rows(sparse[0].dim(), sparse));
}

}  // namespace

Executor::Executor(Graph graph, IfvAnalysis analysis)
    : graph_(std::move(graph)), analysis_(std::move(analysis)) {}

data::FeatureMatrix Executor::assemble(
    const std::vector<data::FeatureMatrix>& blocks,
    const std::vector<bool>& mask) const {
  std::vector<data::FeatureMatrix> selected;
  bool full = true;
  for (std::size_t f = 0; f < analysis_.generators.size(); ++f) {
    if (fg_selected(mask, f)) {
      selected.push_back(blocks[f]);
    } else {
      full = false;
    }
  }
  data::FeatureMatrix m = data::FeatureMatrix::hconcat_all(selected);
  return apply_post_chain(std::move(m), mask, full);
}

data::FeatureMatrix Executor::apply_post_chain(data::FeatureMatrix m,
                                               const std::vector<bool>& mask,
                                               bool full) const {
  for (int post : analysis_.post_chain) {
    const auto& op = *graph_.node(post).op;
    if (full) {
      data::Value v[1] = {data::Value(std::move(m))};
      m = op.eval_batch(v).features();
    } else {
      const auto* sliceable = dynamic_cast<const ops::ColumnSliceable*>(&op);
      if (sliceable == nullptr) {
        throw std::logic_error("assemble: post-chain op '" + op.name() +
                               "' is not column-sliceable");
      }
      const auto cols = analysis_.columns_of(
          mask.empty() ? std::vector<bool>(analysis_.generators.size(), true)
                       : mask);
      m = sliceable->apply_columns(m, cols);
    }
  }
  return m;
}

data::FeatureMatrix Executor::compute_matrix(const data::Batch& batch,
                                             const ExecOptions& opts) const {
  return assemble(compute_blocks(batch, opts), opts.fg_mask);
}

const data::FeatureMatrix& Executor::compute_matrix_into(
    const data::Batch& batch, ExecScratch& scratch,
    const ExecOptions& opts) const {
  ExecOptions o = opts;
  o.scratch = &scratch;
  scratch.result = compute_matrix(batch, o);
  return scratch.result;
}

void Executor::probe_layout(const data::Batch& probe) {
  const auto blocks = compute_blocks(probe, {});
  analysis_.block_cols.resize(blocks.size());
  analysis_.col_begin.resize(blocks.size());
  std::size_t offset = 0;
  for (std::size_t f = 0; f < blocks.size(); ++f) {
    analysis_.block_cols[f] = blocks[f].cols();
    analysis_.col_begin[f] = offset;
    offset += blocks[f].cols();
  }
}

void Executor::restore_layout(std::vector<std::size_t> block_cols,
                              std::vector<std::size_t> col_begin) {
  const std::size_t n = analysis_.num_generators();
  if (block_cols.size() != n || col_begin.size() != n) {
    throw std::invalid_argument(
        "restore_layout: layout width does not match this graph's generators");
  }
  std::size_t offset = 0;
  for (std::size_t f = 0; f < n; ++f) {
    if (col_begin[f] != offset) {
      throw std::invalid_argument(
          "restore_layout: column offsets are not a prefix sum of the widths");
    }
    offset += block_cols[f];
  }
  analysis_.block_cols = std::move(block_cols);
  analysis_.col_begin = std::move(col_begin);
}

// ---------------------------------------------------------------------------
// Interpreted engine
// ---------------------------------------------------------------------------

namespace {

/// Per-call dispatch work of the simulated Python runtime, in
/// dictionary-operation units. A plain Python-level function call resolves
/// names through frame/global dictionaries (`kDispatchFunction`); a call
/// into a library like pandas/scikit-learn/scipy additionally traverses
/// many wrapper layers and constructs result objects (`kDispatchLibrary`).
/// These constants were sized so that single-example dispatch costs land in
/// the tens-of-microseconds range CPython exhibits, which is what makes the
/// paper's unoptimized example-at-a-time latencies milliseconds while batch
/// throughput is only a few times below compiled (§6.3). The work is real
/// (allocations + hash-table traffic), not a sleep.
constexpr int kDispatchFunction = 96;
constexpr int kDispatchLibrary = 384;

/// Sink that keeps the dispatch simulation observable (non-elidable).
std::atomic<std::int64_t> g_dispatch_sink{0};

void simulate_interpreter_dispatch(int dict_ops) {
  namespace bx = willump::runtime::boxed;
  bx::Namespace frame;
  std::string key;
  for (int i = 0; i < dict_ops; ++i) {
    key = "name";
    key += std::to_string(i);
    frame.set(key, bx::make_int(i));
  }
  std::int64_t acc = 0;
  for (int i = 0; i < dict_ops; ++i) {
    key = "name";
    key += std::to_string(i);
    acc += std::get<std::int64_t>(frame.get(key)->payload);
  }
  g_dispatch_sink.fetch_add(acc, std::memory_order_relaxed);
}

/// Evaluate one transform node the way the Python interpreter would: for
/// compilable ops, loop over rows through boxed frames; for external-I/O ops
/// (table lookups), call the native batch kernel once but box/unbox the
/// result boundary (the numpy/pandas <-> Python object frontier).
data::Value interpret_node(const Graph& g, const Node& node,
                           std::span<const data::Value> inputs,
                           std::size_t n_rows) {
  namespace bx = willump::runtime::boxed;
  const auto& op = *node.op;

  // Every node evaluation is at least one Python-level call; library-backed
  // nodes (external I/O, feature-block producers) pay the deeper wrapper
  // stack once per call.
  simulate_interpreter_dispatch(kDispatchFunction);
  if (!op.compilable()) simulate_interpreter_dispatch(kDispatchLibrary);

  if (!op.compilable()) {
    data::Value out = op.eval_batch(inputs);
    RowAccumulator acc;
    for (std::size_t r = 0; r < n_rows; ++r) {
      acc.append(boxed_row_roundtrip(out, r));
    }
    return acc.empty() ? out : acc.finish();
  }

  RowAccumulator acc;
  std::vector<data::Value> row_inputs(inputs.size());
  for (std::size_t r = 0; r < n_rows; ++r) {
    // CPython-frame analog: arguments are bound into a dictionary and
    // loaded back by name before the kernel runs.
    bx::Namespace frame;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::string name = "arg" + std::to_string(i);
      if (inputs[i].is_column()) {
        frame.set(name, bx::box_row(inputs[i].column(), r));
        row_inputs[i] = data::Value(bx::unbox_to_column(
            frame.get(name), inputs[i].column().type()));
      } else {
        frame.set(name, bx::box_feature_row(inputs[i].features(), r));
        row_inputs[i] = data::Value(
            bx::unbox_to_features(frame.get(name), inputs[i].features().is_sparse(),
                                  inputs[i].features().cols()));
      }
    }
    data::Value out_row = op.eval_batch(row_inputs);
    acc.append(boxed_row_roundtrip(out_row, 0));
  }
  if (acc.empty()) {
    // Zero-row batch: fall back to the batch kernel for a correctly typed
    // empty output.
    return op.eval_batch(inputs);
  }
  (void)g;
  data::Value out = acc.finish();
  if (out.is_features()) {
    // Feature-block producers are library calls in the Python pipelines
    // (scikit-learn vectorizers, scipy sparse constructors).
    simulate_interpreter_dispatch(kDispatchLibrary);
  }
  return out;
}

}  // namespace

std::vector<data::FeatureMatrix> InterpretedExecutor::compute_blocks(
    const data::Batch& batch, const ExecOptions& opts) const {
  const std::size_t n = batch.num_rows();
  std::vector<data::Value> store(graph_.size());

  auto ensure_sources = [&](const std::vector<int>& node_ids) {
    for (int id : node_ids) {
      for (int in : graph_.node(id).inputs) {
        const Node& src = graph_.node(in);
        if (src.kind == NodeKind::Source && store[static_cast<std::size_t>(in)].empty()) {
          store[static_cast<std::size_t>(in)] =
              data::Value(batch.get(src.name));
        }
      }
    }
  };

  auto eval_nodes = [&](const std::vector<int>& node_ids) {
    ensure_sources(node_ids);
    for (int id : node_ids) {
      const Node& node = graph_.node(id);
      std::vector<data::Value> inputs;
      inputs.reserve(node.inputs.size());
      for (int in : node.inputs) inputs.push_back(store[static_cast<std::size_t>(in)]);
      common::Timer t;
      store[static_cast<std::size_t>(id)] =
          interpret_node(graph_, node, inputs, n);
      if (opts.profiler != nullptr) opts.profiler->record(id, t.elapsed_seconds());
    }
  };

  eval_nodes(analysis_.preprocessing);

  std::vector<data::FeatureMatrix> blocks(analysis_.generators.size());
  for (std::size_t f = 0; f < analysis_.generators.size(); ++f) {
    if (!fg_selected(opts.fg_mask, f)) continue;
    const auto& fg = analysis_.generators[f];
    eval_nodes(fg.nodes);
    blocks[f] = store[static_cast<std::size_t>(fg.output_node)].features();
  }
  return blocks;
}

// ---------------------------------------------------------------------------
// Compiled engine
// ---------------------------------------------------------------------------

int count_language_transitions(const Graph& g, const std::vector<int>& order) {
  int transitions = 0;
  bool have_prev = false;
  bool prev_compilable = false;
  for (int id : order) {
    const Node& n = g.node(id);
    if (n.kind != NodeKind::Transform) continue;
    const bool c = n.op->compilable();
    if (have_prev && c != prev_compilable) ++transitions;
    prev_compilable = c;
    have_prev = true;
  }
  return transitions;
}

namespace {

/// Hoist each non-compilable ("Python") node to the earliest position that
/// still follows all of its inputs — the paper's transition-minimizing sort.
std::vector<int> hoist_python_nodes(const Graph& g, std::vector<int> order) {
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int id = order[i];
    const Node& n = g.node(id);
    if (n.kind != NodeKind::Transform || n.op->compilable()) continue;
    // Earliest allowable slot: right after the last input's position.
    std::size_t earliest = 0;
    for (int in : n.inputs) {
      const auto pos = static_cast<std::size_t>(
          std::find(order.begin(), order.end(), in) - order.begin());
      earliest = std::max(earliest, pos + 1);
    }
    if (earliest < i) {
      order.erase(order.begin() + static_cast<std::ptrdiff_t>(i));
      order.insert(order.begin() + static_cast<std::ptrdiff_t>(earliest), id);
    }
  }
  return order;
}

/// Group a generator's node list into steps, fusing maximal chains of
/// string-map ops that form a linear producer/consumer sequence.
std::vector<PlanStep> fuse_steps(const Graph& g, const std::vector<int>& nodes) {
  std::vector<PlanStep> steps;
  std::size_t i = 0;
  while (i < nodes.size()) {
    const Node& n = g.node(nodes[i]);
    PlanStep step;
    step.nodes.push_back(nodes[i]);
    if (n.kind == NodeKind::Transform && n.op->is_string_map()) {
      // Extend the chain while the next node is a string map consuming
      // exactly the previous node's output.
      std::size_t j = i + 1;
      while (j < nodes.size()) {
        const Node& m = g.node(nodes[j]);
        if (m.kind != NodeKind::Transform || !m.op->is_string_map() ||
            m.inputs.size() != 1 || m.inputs[0] != step.nodes.back()) {
          break;
        }
        step.nodes.push_back(nodes[j]);
        ++j;
      }
      i = j;
    } else {
      ++i;
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

}  // namespace

CompiledPlan compile_plan(const Graph& g, const IfvAnalysis& a) {
  CompiledPlan plan;
  const auto topo = g.execution_order();
  plan.transitions_before = count_language_transitions(g, topo);
  plan.sorted_order = hoist_python_nodes(g, topo);
  plan.transitions_after = count_language_transitions(g, plan.sorted_order);

  plan.preprocessing = fuse_steps(g, a.preprocessing);
  plan.fg_steps.reserve(a.generators.size());
  plan.fg_compilable.reserve(a.generators.size());
  for (const auto& fg : a.generators) {
    plan.fg_steps.push_back(fuse_steps(g, fg.nodes));
    bool compilable = true;
    for (int id : fg.nodes) {
      if (!g.node(id).op->compilable()) compilable = false;
    }
    plan.fg_compilable.push_back(compilable);
  }
  return plan;
}

CompiledExecutor::CompiledExecutor(Graph graph, IfvAnalysis analysis)
    : Executor(std::move(graph), std::move(analysis)),
      plan_(compile_plan(graph_, analysis_)) {}

std::span<const data::Value> CompiledExecutor::gather_inputs(
    const Node& node, const data::Batch& batch, Frame& frame,
    std::vector<data::Value>& tmp) const {
  auto& store = frame.store;
  for (int in : node.inputs) {
    const Node& src = graph_.node(in);
    if (src.kind != NodeKind::Source) continue;
    const auto i = static_cast<std::size_t>(in);
    if (frame.source_bound != nullptr) {
      // Persistent store: the slot may hold last batch's column, so an
      // explicit per-entry bit is the bind indicator; assign_column reuses
      // the stale column's heap capacity.
      if (!(*frame.source_bound)[i]) {
        store[i].assign_column(batch.get(src.name));
        (*frame.source_bound)[i] = 1;
      }
    } else if (store[i].empty()) {
      store[i] = data::Value(batch.get(src.name));
    }
  }
  if (node.inputs.size() == 1) {
    // Single-operand nodes (the common case) read the store slot in place —
    // no per-step deep Value copy.
    return {&store[static_cast<std::size_t>(node.inputs[0])], 1};
  }
  tmp.clear();
  tmp.reserve(node.inputs.size());
  for (int in : node.inputs) {
    tmp.push_back(store[static_cast<std::size_t>(in)]);
  }
  return {tmp.data(), tmp.size()};
}

void CompiledExecutor::run_steps(std::span<const PlanStep> steps,
                                 const data::Batch& batch, Frame& frame,
                                 const ExecOptions& opts) const {
  std::vector<data::Value> local_tmp;
  std::vector<data::Value>& tmp =
      frame.gather_tmp != nullptr ? *frame.gather_tmp : local_tmp;
  for (const auto& step : steps) {
    common::Timer driver_timer;
    // Driver stage: bind source inputs and gather operand values — the O(1)
    // marshaling the paper's C++ drivers perform.
    const Node& first = graph_.node(step.nodes.front());
    const auto inputs = gather_inputs(first, batch, frame, tmp);
    const double driver_s = driver_timer.elapsed_seconds();

    common::Timer kernel_timer;
    data::Value& slot = frame.store[static_cast<std::size_t>(step.nodes.back())];
    if (step.fused()) {
      // Fused string chain: one pass over the column, no intermediate
      // materialization (loop fusion).
      const auto& in_col = inputs[0].column().strings();
      data::StringColumn out_col;
      out_col.reserve(in_col.size());
      for (const auto& s : in_col) {
        std::string cur = graph_.node(step.nodes[0]).op->map_string(s);
        for (std::size_t k = 1; k < step.nodes.size(); ++k) {
          cur = graph_.node(step.nodes[k]).op->map_string(cur);
        }
        out_col.push_back(std::move(cur));
      }
      slot = data::Value(data::Column(std::move(out_col)));
    } else if (const auto* emitter =
                   dynamic_cast<const ops::SparseBlockEmitter*>(first.op.get());
               emitter != nullptr) {
      // Sparse block producers run their batched kernel with the tuned
      // lookup strategy even outside the zero-copy plan (cached, pooled and
      // masked paths included); rows are bit-identical to eval_batch.
      const ops::BlockExecContext ctx{opcfg_, frame.arena};
      if (frame.source_bound != nullptr) {
        // Persistent store: rebuild the slot's CSR in place so its index /
        // value arrays keep last batch's capacity.
        if (!slot.is_features()) {
          slot = data::Value(data::FeatureMatrix(data::CsrMatrix(0)));
        }
        emitter->emit_into(inputs, ctx, slot.mutable_features().ensure_sparse());
      } else {
        slot = data::Value(data::FeatureMatrix(emitter->emit_batch(inputs, ctx)));
      }
    } else {
      slot = first.op->eval_batch(inputs);
    }
    const double kernel_s = kernel_timer.elapsed_seconds();

    if (opts.profiler != nullptr) {
      opts.profiler->record(step.nodes.back(), driver_s + kernel_s);
    }
    if (opts.drivers != nullptr) {
      opts.drivers->driver_seconds += driver_s;
      opts.drivers->kernel_seconds += kernel_s;
      ++opts.drivers->block_entries;
    }
  }
}

data::FeatureMatrix CompiledExecutor::compute_block_plain(
    const data::Batch& batch, std::size_t f, Frame& frame,
    const ExecOptions& opts) const {
  const auto& fg = analysis_.generators[f];
  run_steps(plan_.fg_steps[f], batch, frame, opts);
  return frame.store[static_cast<std::size_t>(fg.output_node)].features();
}

data::FeatureMatrix CompiledExecutor::compute_block_cached(
    const data::Batch& batch, std::size_t f, const ExecOptions& opts) const {
  const auto& fg = analysis_.generators[f];
  FeatureCacheBank& cache = *opts.cache;
  const std::size_t n = batch.num_rows();

  std::vector<CachedRow> rows(n, data::DenseVector{});
  std::vector<std::uint64_t> keys(n);
  // Deduplicate misses within the batch: one representative row per unique
  // missing key (so repeated entities cost one computation and one fetch
  // even on their first appearance).
  std::vector<std::size_t> missing;
  std::unordered_map<std::uint64_t, std::size_t> missing_index;
  for (std::size_t r = 0; r < n; ++r) {
    keys[r] = cache_key_of_row(batch, graph_, fg, r);
    if (auto hit = cache.lookup(f, keys[r])) {
      rows[r] = std::move(*hit);
    } else if (missing_index.find(keys[r]) == missing_index.end()) {
      missing_index.emplace(keys[r], missing.size());
      missing.push_back(r);
    }
  }

  if (!missing.empty()) {
    // Recompute only the missing rows: preprocessing + this generator on the
    // row subset (so a remote lookup fetches only the missing keys).
    const data::Batch sub = batch.select_rows(missing);
    std::vector<data::Value> store(graph_.size());
    Frame frame{store};
    run_steps(plan_.preprocessing, sub, frame, opts);
    const data::FeatureMatrix block = compute_block_plain(sub, f, frame, opts);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      cache.insert(f, keys[missing[i]], cached_row_of(block, i));
    }
    for (std::size_t r = 0; r < n; ++r) {
      auto it = missing_index.find(keys[r]);
      if (it != missing_index.end()) {
        rows[r] = cached_row_of(block, it->second);
      }
    }
  }
  return block_from_rows(rows);
}

std::vector<data::FeatureMatrix> CompiledExecutor::compute_blocks(
    const data::Batch& batch, const ExecOptions& opts) const {
  const std::size_t num_fg = analysis_.generators.size();
  std::vector<data::FeatureMatrix> blocks(num_fg);

  // Which generators are we computing?
  std::vector<std::size_t> selected;
  for (std::size_t f = 0; f < num_fg; ++f) {
    if (fg_selected(opts.fg_mask, f)) selected.push_back(f);
  }

  if (opts.cache != nullptr) {
    // Cached path processes each generator independently (preprocessing is
    // recomputed per missing subset; cached workloads have none).
    for (std::size_t f : selected) {
      blocks[f] = compute_block_cached(batch, f, opts);
    }
    return blocks;
  }

  // The persistent scratch store only backs the serial path: pooled tasks
  // copy the seeded store into private vectors (and must not share the
  // single-threaded arena).
  ExecScratch* sc = opts.pool == nullptr ? opts.scratch : nullptr;
  std::vector<data::Value> local_store;
  if (sc != nullptr) {
    sc->begin(graph_.size());
  } else {
    local_store.resize(graph_.size());
  }
  Frame frame = sc != nullptr
                    ? Frame{sc->store, &sc->source_bound, &sc->arena,
                            &sc->gather_tmp}
                    : Frame{local_store};
  run_steps(plan_.preprocessing, batch, frame, opts);

  if (opts.pool == nullptr || selected.size() < 2) {
    for (std::size_t f : selected) {
      blocks[f] = compute_block_plain(batch, f, frame, opts);
    }
    return blocks;
  }

  // Per-input parallelization (§4.4): statically assign compiled generators
  // to threads, balancing measured costs (longest-processing-time greedy);
  // non-compiled generators run on the calling thread (Willump cannot
  // parallelize "Python" code).
  std::vector<std::size_t> parallel_fgs, serial_fgs;
  for (std::size_t f : selected) {
    (plan_.fg_compilable[f] ? parallel_fgs : serial_fgs).push_back(f);
  }

  const std::size_t n_groups = opts.pool->num_threads() + 1;
  std::vector<std::vector<std::size_t>> groups(n_groups);
  std::vector<double> group_cost(n_groups, 0.0);
  std::sort(parallel_fgs.begin(), parallel_fgs.end(),
            [&](std::size_t a, std::size_t b) {
              const double ca = a < fg_costs_.size() ? fg_costs_[a] : 1.0;
              const double cb = b < fg_costs_.size() ? fg_costs_[b] : 1.0;
              return ca > cb;
            });
  for (std::size_t f : parallel_fgs) {
    const auto g = static_cast<std::size_t>(
        std::min_element(group_cost.begin(), group_cost.end()) -
        group_cost.begin());
    groups[g].push_back(f);
    group_cost[g] += f < fg_costs_.size() ? fg_costs_[f] : 1.0;
  }

  std::vector<std::function<void()>> tasks;
  for (auto& group : groups) {
    if (group.empty()) continue;
    tasks.push_back([this, &batch, &blocks, &local_store, &opts, group] {
      // Each task gets its own store copy seeded with preprocessing
      // results; generators write disjoint block slots.
      std::vector<data::Value> local = local_store;
      Frame local_frame{local};
      ExecOptions local_opts = opts;
      local_opts.profiler = nullptr;  // profiler is not thread-safe
      local_opts.drivers = nullptr;
      local_opts.scratch = nullptr;   // per-worker state, not shareable
      for (std::size_t f : group) {
        blocks[f] = compute_block_plain(batch, f, local_frame, local_opts);
      }
    });
  }
  opts.pool->run_all(std::move(tasks));

  for (std::size_t f : serial_fgs) {
    blocks[f] = compute_block_plain(batch, f, frame, opts);
  }
  return blocks;
}

// ---------------------------------------------------------------------------
// Zero-copy planned assembly
// ---------------------------------------------------------------------------

namespace {

/// Fused k-way dense concat: copy every selected block's rows into its
/// column slice of one preallocated matrix, row-chunk-major so the
/// destination chunk stays cache-resident across the k sources. One copy
/// per element vs the pairwise hconcat fold's O(k) copies. `out` is rebuilt
/// in place (capacity reuse on persistent destinations).
void fused_dense_concat(const std::vector<const data::FeatureMatrix*>& blocks,
                        std::size_t rows, std::size_t total_cols,
                        std::size_t block_rows, data::DenseMatrix& out) {
  out.reshape(rows, total_cols);
  double* dst = out.mutable_data().data();
  for (std::size_t r0 = 0; r0 < rows; r0 += block_rows) {
    const std::size_t r1 = std::min(rows, r0 + block_rows);
    std::size_t col_off = 0;
    for (const auto* b : blocks) {
      const auto& d = b->dense();
      const std::size_t w = d.cols();
      for (std::size_t r = r0; r < r1; ++r) {
        auto src = d.row(r);
        std::copy(src.begin(), src.end(), dst + r * total_cols + col_off);
      }
      col_off += w;
    }
  }
}

/// Fused k-way sparse concat: stream every block's row entries (with column
/// offsets; dense blocks drop zeros, exactly as FeatureMatrix::to_csr does
/// inside the pairwise fold) into one output CSR — a single pass instead of
/// k-1 intermediate matrices. `out` is rebuilt in place.
void fused_sparse_concat(const std::vector<const data::FeatureMatrix*>& blocks,
                         std::size_t rows, std::size_t total_cols,
                         data::CsrMatrix& out) {
  std::size_t nnz_guess = 0;
  for (const auto* b : blocks) {
    nnz_guess += b->is_sparse() ? b->sparse().nnz() : b->rows();
  }
  out.reset(static_cast<std::int32_t>(total_cols));
  out.reserve(rows, nnz_guess);
  std::vector<data::SparseEntry> row;
  for (std::size_t r = 0; r < rows; ++r) {
    row.clear();
    std::int32_t col_off = 0;
    for (const auto* b : blocks) {
      if (b->is_sparse()) {
        const auto rv = b->sparse().row(r);
        for (std::size_t k = 0; k < rv.nnz(); ++k) {
          row.push_back({rv.indices[k] + col_off, rv.values[k]});
        }
        col_off += b->sparse().cols();
      } else {
        const auto rv = b->dense().row(r);
        for (std::size_t c = 0; c < rv.size(); ++c) {
          if (rv[c] != 0.0) {
            row.push_back({col_off + static_cast<std::int32_t>(c), rv[c]});
          }
        }
        col_off += static_cast<std::int32_t>(rv.size());
      }
    }
    out.append_row(row);
  }
}

}  // namespace

bool CompiledExecutor::plan_matrix_into(const data::Batch& batch,
                                        const ExecOptions& opts,
                                        data::FeatureMatrix& result) const {
  const std::size_t num_fg = analysis_.generators.size();
  const std::size_t rows = batch.num_rows();
  // Planning needs the probed layout and exclusive use of the sequential
  // step machinery; every other mode falls back to the reference path
  // (which produces the identical matrix).
  if (!opcfg_.zero_copy || rows == 0 || opts.cache != nullptr ||
      opts.pool != nullptr || opts.profiler != nullptr ||
      opts.drivers != nullptr || analysis_.block_cols.size() != num_fg) {
    return false;
  }

  ExecScratch* sc = opts.scratch;
  std::vector<std::size_t> selected_local;
  std::vector<std::size_t>& selected =
      sc != nullptr ? sc->selected : selected_local;
  selected.clear();
  bool full = true;
  for (std::size_t f = 0; f < num_fg; ++f) {
    if (fg_selected(opts.fg_mask, f)) {
      selected.push_back(f);
    } else {
      full = false;
    }
  }
  if (selected.empty()) return false;

  // Classify each selected generator by its terminal op's block interface.
  // The terminal step must be the generator's (unfused) output node.
  bool all_dense_writers = true;
  bool all_sparse_emitters = true;
  for (std::size_t f : selected) {
    const auto& steps = plan_.fg_steps[f];
    const auto& fg = analysis_.generators[f];
    if (steps.empty() || steps.back().fused() ||
        steps.back().nodes.back() != fg.output_node) {
      return false;
    }
    const ops::Operator* op = graph_.node(fg.output_node).op.get();
    if (dynamic_cast<const ops::DenseBlockWriter*>(op) == nullptr) {
      all_dense_writers = false;
    }
    if (dynamic_cast<const ops::SparseBlockEmitter*>(op) == nullptr) {
      all_sparse_emitters = false;
    }
  }

  std::vector<data::Value> local_store;
  if (sc != nullptr) {
    sc->begin(graph_.size());
  } else {
    local_store.resize(graph_.size());
  }
  Frame frame = sc != nullptr
                    ? Frame{sc->store, &sc->source_bound, &sc->arena,
                            &sc->gather_tmp}
                    : Frame{local_store};
  const ops::BlockExecContext ctx{opcfg_, frame.arena};
  std::vector<data::Value> gather_local;
  std::vector<data::Value>& gtmp =
      frame.gather_tmp != nullptr ? *frame.gather_tmp : gather_local;
  run_steps(plan_.preprocessing, batch, frame, opts);

  if (all_dense_writers) {
    // Dense plan: one matrix for the downstream model's whole input (reused
    // in place on persistent destinations); every generator writes its
    // column slice. No per-op DenseMatrix, no hconcat.
    std::size_t total_cols = 0;
    for (std::size_t f : selected) total_cols += analysis_.block_cols[f];
    auto& out = result.ensure_dense();
    out.reshape(rows, total_cols);
    double* base = out.mutable_data().data();
    std::size_t col_off = 0;
    for (std::size_t f : selected) {
      const auto& fg = analysis_.generators[f];
      const auto& steps = plan_.fg_steps[f];
      run_steps(std::span<const PlanStep>(steps.data(), steps.size() - 1), batch,
                frame, opts);
      const Node& node = graph_.node(fg.output_node);
      const auto inputs = gather_inputs(node, batch, frame, gtmp);
      const auto* writer =
          dynamic_cast<const ops::DenseBlockWriter*>(node.op.get());
      writer->write_block(inputs, ctx, base + col_off, rows, total_cols);
      col_off += analysis_.block_cols[f];
    }
    result = apply_post_chain(std::move(result), opts.fg_mask, full);
    return true;
  }

  if (all_sparse_emitters && selected.size() == 1) {
    // Single sparse generator: the emitted CSR IS the model input, rebuilt
    // in place on persistent destinations.
    const std::size_t f = selected[0];
    const auto& fg = analysis_.generators[f];
    const auto& steps = plan_.fg_steps[f];
    run_steps(std::span<const PlanStep>(steps.data(), steps.size() - 1), batch,
                frame, opts);
    const Node& node = graph_.node(fg.output_node);
    const auto inputs = gather_inputs(node, batch, frame, gtmp);
    const auto* emitter =
        dynamic_cast<const ops::SparseBlockEmitter*>(node.op.get());
    emitter->emit_into(inputs, ctx, result.ensure_sparse());
    result = apply_post_chain(std::move(result), opts.fg_mask, full);
    return true;
  }

  // Mixed plan: compute the selected blocks (sparse producers still run
  // their tuned batch kernels via run_steps), then assemble with a fused
  // one-pass k-way concat instead of the pairwise fold.
  std::vector<data::FeatureMatrix> computed(num_fg);
  std::vector<const data::FeatureMatrix*> parts;
  bool any_sparse = false;
  std::size_t total_cols = 0;
  for (std::size_t f : selected) {
    computed[f] = compute_block_plain(batch, f, frame, opts);
    const auto& b = computed[f];
    if (b.rows() == 0 && b.cols() == 0) continue;  // identity, as hconcat
    parts.push_back(&b);
    any_sparse = any_sparse || b.is_sparse();
    total_cols += b.cols();
  }
  if (parts.empty()) {
    result = data::FeatureMatrix();
  } else if (any_sparse) {
    fused_sparse_concat(parts, rows, total_cols, result.ensure_sparse());
  } else {
    fused_dense_concat(parts, rows, total_cols, opcfg_.block_rows,
                       result.ensure_dense());
  }
  result = apply_post_chain(std::move(result), opts.fg_mask, full);
  return true;
}

data::FeatureMatrix CompiledExecutor::compute_matrix(
    const data::Batch& batch, const ExecOptions& opts) const {
  data::FeatureMatrix result;
  if (plan_matrix_into(batch, opts, result)) return result;
  return Executor::compute_matrix(batch, opts);
}

const data::FeatureMatrix& CompiledExecutor::compute_matrix_into(
    const data::Batch& batch, ExecScratch& scratch,
    const ExecOptions& opts) const {
  ExecOptions o = opts;
  o.scratch = &scratch;
  if (plan_matrix_into(batch, o, scratch.result)) return scratch.result;
  scratch.result = Executor::compute_matrix(batch, o);
  return scratch.result;
}

}  // namespace willump::core
