#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "core/feature_cache.hpp"
#include "core/graph.hpp"
#include "core/ifv_analysis.hpp"
#include "kernels/dispatch.hpp"
#include "runtime/profiler.hpp"
#include "runtime/thread_pool.hpp"

namespace willump::core {

/// Reusable per-worker execution state. One instance per worker thread; the
/// executor rewinds it at every compute entry so the steady-state request
/// path performs (almost) zero heap allocations:
///  - `arena`: bump allocator for trivially-destructible op staging
///    (densify buffers, hash staging) — reset per entry, chunks retained;
///  - `store` + `source_bound`: the persistent node store. Values keep their
///    heap capacity across requests; `source_bound` (cleared per entry)
///    replaces the fresh-store `empty()` check as the source-bind indicator,
///    so a stale column from the previous batch is never mistaken for a
///    bound one;
///  - `result`: destination matrix of compute_matrix_into, reused in place.
///
/// Not thread-safe. Never share one scratch between concurrent calls; the
/// serving layer keys them thread_local (see request_scratch()).
struct ExecScratch {
  explicit ExecScratch(std::size_t arena_chunk_bytes = 1u << 18)
      : arena(arena_chunk_bytes) {}

  common::Arena arena;
  std::vector<data::Value> store;
  std::vector<std::uint8_t> source_bound;
  std::vector<data::Value> gather_tmp;  // multi-input gather staging
  std::vector<std::size_t> selected;    // plan staging (selected generators)
  data::FeatureMatrix result;

  /// Rewind for a new compute entry over a graph of `graph_size` nodes.
  void begin(std::size_t graph_size) {
    arena.reset();
    if (store.size() != graph_size) {
      store.assign(graph_size, {});
      source_bound.assign(graph_size, 0);
    } else {
      std::fill(source_bound.begin(), source_bound.end(), 0);
    }
  }
};

/// The calling thread's request scratch, or nullptr when arena-path reuse is
/// disabled (WILLUMP_ARENA=0 or set_request_scratch_enabled(false)). The
/// serving engine's worker threads each get their own instance lazily; the
/// first-chunk size is WILLUMP_ARENA_CHUNK_KB (default 256).
ExecScratch* request_scratch();

/// Process-wide override of the WILLUMP_ARENA gate (benchmarks toggle the
/// arena path to measure both sides in one process).
void set_request_scratch_enabled(bool enabled);

/// Marshaling/kernel time split of a compiled execution — the analog of the
/// paper's Weld-driver overhead measurement (§6.4, "Weld Drivers").
struct DriverStats {
  double driver_seconds = 0.0;  // input gathering + output placement
  double kernel_seconds = 0.0;  // operator kernels
  std::size_t block_entries = 0;

  double overhead_fraction() const {
    const double total = driver_seconds + kernel_seconds;
    return total > 0.0 ? driver_seconds / total : 0.0;
  }
};

/// Per-call execution options.
struct ExecOptions {
  /// Which feature generators to compute; empty = all. Masked-out
  /// generators produce empty blocks.
  std::vector<bool> fg_mask;
  /// Feature-level caching (§4.5); nullptr disables.
  FeatureCacheBank* cache = nullptr;
  /// Thread pool for per-input parallelization of compiled feature
  /// generators (§4.4); nullptr = sequential.
  runtime::ThreadPool* pool = nullptr;
  /// Per-node timing (cost model input); nullptr disables.
  runtime::Profiler* profiler = nullptr;
  /// Driver/kernel split accounting; nullptr disables.
  DriverStats* drivers = nullptr;
  /// Per-worker reusable execution state; nullptr = allocate per call. Only
  /// the serial uncached path uses it (pooled tasks and cached sub-batches
  /// always build private stores); passing one is always safe.
  ExecScratch* scratch = nullptr;
};

/// Common machinery of both execution engines: graph + IFV analysis
/// ownership, block assembly, and layout probing.
class Executor {
 public:
  Executor(Graph graph, IfvAnalysis analysis);
  virtual ~Executor() = default;

  /// Compute the feature block of every selected generator. The result is
  /// indexed by generator; unselected generators yield empty matrices.
  virtual std::vector<data::FeatureMatrix> compute_blocks(
      const data::Batch& batch, const ExecOptions& opts) const = 0;

  /// Concatenate selected blocks in canonical order and apply the
  /// post-concatenation commutative chain. With a partial mask, post-chain
  /// ops must be ColumnSliceable (paper: transforms that "commute with
  /// vector concatenation", §5.1).
  data::FeatureMatrix assemble(const std::vector<data::FeatureMatrix>& blocks,
                               const std::vector<bool>& mask) const;

  /// compute_blocks + assemble in one call. Virtual so engines can plan the
  /// final matrix directly (the compiled engine's zero-copy block path).
  virtual data::FeatureMatrix compute_matrix(const data::Batch& batch,
                                             const ExecOptions& opts = {}) const;

  /// Allocation-reusing variant: computes the same matrix as compute_matrix
  /// but into `scratch.result` (valid until the next call with the same
  /// scratch) and threads `scratch` through the engine so node values and
  /// op staging reuse the previous request's capacity. Base implementation
  /// moves compute_matrix's result into the slot.
  virtual const data::FeatureMatrix& compute_matrix_into(
      const data::Batch& batch, ExecScratch& scratch,
      const ExecOptions& opts = {}) const;

  /// Execute once on `probe` to record each generator's block width in the
  /// analysis (cascades need the column layout before training models).
  void probe_layout(const data::Batch& probe);

  /// Restore a previously probed column layout (what an artifact recorded)
  /// instead of re-executing a probe batch. Throws std::invalid_argument
  /// when the vectors do not describe this graph's generators.
  void restore_layout(std::vector<std::size_t> block_cols,
                      std::vector<std::size_t> col_begin);

  const Graph& graph() const { return graph_; }
  const IfvAnalysis& analysis() const { return analysis_; }

  /// Per-generator costs (seconds per training run), used for static
  /// assignment of generators to threads (§5.2, Parallelization).
  void set_fg_costs(std::vector<double> costs) { fg_costs_ = std::move(costs); }
  const std::vector<double>& fg_costs() const { return fg_costs_; }

 protected:
  bool fg_selected(const std::vector<bool>& mask, std::size_t f) const {
    return mask.empty() || (f < mask.size() && mask[f]);
  }

  /// Run the post-concatenation commutative chain over an assembled matrix
  /// (`full` = every generator contributed, so ops see the full layout).
  data::FeatureMatrix apply_post_chain(data::FeatureMatrix m,
                                       const std::vector<bool>& mask,
                                       bool full) const;

  Graph graph_;
  IfvAnalysis analysis_;
  std::vector<double> fg_costs_;
};

/// Reference engine modeling the unoptimized Python baseline: every edge is
/// materialized as boxed per-row objects, compilable operators run
/// row-at-a-time through dictionary-based "frames", and only external-I/O
/// operators (table lookups — the pandas-merge / RPC class) run as batch
/// kernels. See runtime/boxed.hpp for why this is an honest stand-in.
class InterpretedExecutor final : public Executor {
 public:
  InterpretedExecutor(Graph graph, IfvAnalysis analysis)
      : Executor(std::move(graph), std::move(analysis)) {}

  std::vector<data::FeatureMatrix> compute_blocks(
      const data::Batch& batch, const ExecOptions& opts) const override;
};

/// One step of a compiled plan: either a single node or a fused chain of
/// element-wise string ops executed in one pass (loop fusion — the Weld
/// optimization the paper leans on, §5.2).
struct PlanStep {
  std::vector<int> nodes;  // >1 => fused string-map chain
  bool fused() const { return nodes.size() > 1; }
};

/// The compiled plan for one graph: sorted node order (non-compilable
/// "Python" nodes hoisted to their earliest allowable position to minimize
/// language transitions, §5.2 Sorting), per-generator fused steps, and
/// preprocessing steps.
struct CompiledPlan {
  std::vector<int> sorted_order;
  int transitions_before = 0;  // language transitions in plain topo order
  int transitions_after = 0;   // after hoisting
  std::vector<PlanStep> preprocessing;
  std::vector<std::vector<PlanStep>> fg_steps;  // per generator
  std::vector<bool> fg_compilable;              // all nodes compilable?
};

/// Build the compiled plan (sorting + fusion stages of §5.2).
CompiledPlan compile_plan(const Graph& g, const IfvAnalysis& a);

/// Count interpreter<->compiled transitions along an execution order.
int count_language_transitions(const Graph& g, const std::vector<int>& order);

/// Optimized engine (the Weld analog): columnar batch kernels, fused
/// string chains, constant-time "drivers", optional feature-level caching
/// and per-input parallel generator execution.
class CompiledExecutor final : public Executor {
 public:
  CompiledExecutor(Graph graph, IfvAnalysis analysis);

  std::vector<data::FeatureMatrix> compute_blocks(
      const data::Batch& batch, const ExecOptions& opts) const override;

  /// Zero-copy planned assembly: when the layout is known and every
  /// selected generator ends in a block-kernel op, the final feature matrix
  /// is allocated once and ops write their column slices (dense) or stream
  /// their CSR rows (sparse) straight into it — no per-op block, no
  /// pairwise hconcat copies. Falls back to the reference
  /// compute_blocks+assemble path whenever planning does not apply
  /// (caching, pooling, profiling, unknown layout, zero_copy disabled);
  /// both paths produce bit-identical matrices.
  data::FeatureMatrix compute_matrix(const data::Batch& batch,
                                     const ExecOptions& opts = {}) const override;

  /// Zero-copy planning into a persistent destination: the planned matrix is
  /// rebuilt inside `scratch.result` (ensure_dense/ensure_sparse keep the
  /// previous request's heap capacity) and the whole entry runs against the
  /// scratch's node store and arena.
  const data::FeatureMatrix& compute_matrix_into(
      const data::Batch& batch, ExecScratch& scratch,
      const ExecOptions& opts = {}) const override;

  const CompiledPlan& plan() const { return plan_; }

  /// Tuned feature-op choices (lookup strategy, assembly row-block size,
  /// zero-copy planning). Set by the op-level autotuner and by artifact
  /// deserialization; defaults are the untuned reference choices.
  void set_featureop_config(const kernels::FeatureOpConfig& c) { opcfg_ = c; }
  const kernels::FeatureOpConfig& featureop_config() const { return opcfg_; }

 private:
  /// One compute entry's mutable state: the node store plus the optional
  /// scratch extensions. `source_bound`/`arena`/`gather_tmp` are null on the
  /// fresh-store paths (pooled tasks, cached sub-batches), where the
  /// original `empty()` source-bind check and per-step temporaries apply.
  struct Frame {
    std::vector<data::Value>& store;
    std::vector<std::uint8_t>* source_bound = nullptr;
    common::Arena* arena = nullptr;
    std::vector<data::Value>* gather_tmp = nullptr;
  };

  /// Evaluate a step list over `batch` into the frame's store.
  void run_steps(std::span<const PlanStep> steps, const data::Batch& batch,
                 Frame& frame, const ExecOptions& opts) const;

  /// Compute one generator's block with per-row feature caching.
  data::FeatureMatrix compute_block_cached(const data::Batch& batch,
                                           std::size_t f,
                                           const ExecOptions& opts) const;

  /// Plain (uncached) computation of one generator's block given computed
  /// preprocessing values.
  data::FeatureMatrix compute_block_plain(const data::Batch& batch,
                                          std::size_t f, Frame& frame,
                                          const ExecOptions& opts) const;

  /// Bind source columns and gather a node's operand values from the store
  /// (the run_steps driver stage, reused by the zero-copy planner). The
  /// returned span views store slots directly for single-input nodes (no
  /// Value copies); multi-input nodes stage copies in `tmp`.
  std::span<const data::Value> gather_inputs(const Node& node,
                                             const data::Batch& batch,
                                             Frame& frame,
                                             std::vector<data::Value>& tmp) const;

  /// Attempt the zero-copy planned assembly into `result`; returns false
  /// when planning preconditions fail and the caller must fall back to the
  /// reference compute_blocks+assemble path.
  bool plan_matrix_into(const data::Batch& batch, const ExecOptions& opts,
                        data::FeatureMatrix& result) const;

  CompiledPlan plan_;
  kernels::FeatureOpConfig opcfg_;
};

}  // namespace willump::core
