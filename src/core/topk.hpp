#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/cascades.hpp"

namespace willump::core {

/// Top-K filter-model settings (§4.3).
struct TopKConfig {
  /// Subset multiplier: the filter passes ck * K candidates to the full
  /// model ("like prior manually constructed retrieval models, we choose a
  /// (user-tunable) default ck = 10").
  double ck = 10.0;
  /// Minimum subset size as a fraction of the input batch ("a (user-tunable)
  /// minimum subset size of 5% of the input set size").
  double min_subset_frac = 0.05;
};

/// Serving-time counters for one top-K query.
struct TopKRunStats {
  std::size_t batch_size = 0;
  std::size_t subset_size = 0;
};

/// A compiled top-K query plan: an automatically constructed filter model
/// (built exactly like a cascade's small model, §4.3) scores the whole
/// batch; the full model re-ranks only the top-scoring subset.
class TopKPipeline {
 public:
  TopKPipeline(std::shared_ptr<const Executor> executor, TrainedCascade cascade,
               TopKConfig cfg)
      : executor_(std::move(executor)), cascade_(std::move(cascade)), cfg_(cfg) {}

  /// Indices (into `batch`) of the predicted top K, best first.
  std::vector<std::size_t> top_k(const data::Batch& batch, std::size_t k,
                                 const ExecOptions& opts = {},
                                 TopKRunStats* stats = nullptr) const;

  /// The subset size rule: max(ck*K, min_subset_frac*N), clamped to N.
  std::size_t subset_size(std::size_t k, std::size_t n) const;

  bool has_filter() const { return cascade_.enabled(); }
  const TrainedCascade& cascade() const { return cascade_; }

 private:
  std::shared_ptr<const Executor> executor_;
  TrainedCascade cascade_;
  TopKConfig cfg_;
};

}  // namespace willump::core
