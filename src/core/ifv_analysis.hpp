#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.hpp"

namespace willump::core {

/// A feature generator: the disjoint subgraph computing one independent
/// feature vector (IFV), per paper §4.1/§5.1.
struct FeatureGenerator {
  /// First non-commutative node found descending from the commutative region
  /// (paper rule 1).
  int root = -1;
  /// Single-input commutative nodes sitting between `root` and the concat
  /// node (e.g. a per-block scaler); executed as part of this generator,
  /// in order from root outward.
  std::vector<int> block_chain;
  /// All nodes executed for this generator (exclusive ancestors of root,
  /// then root, then block_chain), in execution order. Excludes sources and
  /// preprocessing nodes.
  std::vector<int> nodes;
  /// Source nodes feeding this generator exclusively.
  std::vector<int> exclusive_sources;
  /// ALL source nodes this generator's output depends on (including those
  /// reaching it through preprocessing nodes) — the cache key for the IFV's
  /// feature-level cache (§4.5).
  std::vector<int> key_sources;
  /// Node whose output is this generator's IFV (top of block_chain, or root).
  int output_node = -1;
};

/// Result of Willump's IFV-identification dataflow analysis (§5.1).
///
/// The analysis descends the commutative nodes from the model sink and
/// applies the paper's three rules:
///   1. a non-commutative ancestor of a commutative node roots a generator;
///   2. an ancestor of exactly one generator root joins that generator;
///   3. an ancestor of multiple generator roots is a preprocessing node,
///      executed before any feature is computed.
struct IfvAnalysis {
  /// Generators in concatenation (column) order.
  std::vector<FeatureGenerator> generators;
  /// Preprocessing nodes (rule 3), in execution order; excludes sources.
  std::vector<int> preprocessing;
  /// The concatenation node joining the IFVs (commutative, multi-input);
  /// -1 when the graph has a single generator and no concat.
  int concat_node = -1;
  /// Commutative single-input nodes between the concat node and the model
  /// sink, in execution order (each must be ColumnSliceable for cascades to
  /// evaluate IFV subsets through them).
  std::vector<int> post_chain;

  /// Column layout of the full concatenated feature matrix, filled in by a
  /// probe execution (`Executors::probe_layout`): block widths and starting
  /// offsets per generator.
  std::vector<std::size_t> block_cols;
  std::vector<std::size_t> col_begin;

  std::size_t num_generators() const { return generators.size(); }
  std::size_t total_cols() const;

  /// Global column indices covered by the generators selected in `mask`.
  std::vector<std::size_t> columns_of(const std::vector<bool>& mask) const;
};

/// Run the IFV-identification analysis on `g`. Throws std::invalid_argument
/// if the graph's commutative region is not a chain-plus-concat shape (see
/// DESIGN.md §4); falls back to a single whole-graph generator when the
/// output node itself is not commutative.
IfvAnalysis analyze_ifvs(const Graph& g);

}  // namespace willump::core
