#pragma once

#include <span>
#include <vector>

namespace willump::core {

/// Result of the efficient-IFV search.
struct EfficientIfvResult {
  std::vector<bool> mask;  // selected generators
  double selected_cost = 0.0;
  double total_cost = 0.0;
  std::size_t num_selected() const;
  bool empty() const { return num_selected() == 0; }
};

/// IFVs costing at most this fraction of the total pipeline cost are always
/// included in the efficient set and excluded from the γ-rule average (see
/// select_efficient_ifvs).
inline constexpr double kFreeIfvFraction = 0.02;

/// A candidate whose share of total prediction importance reaches this
/// fraction is exempt from the γ stopping rule (it remains subject to the
/// half-cost budget); see select_efficient_ifvs.
inline constexpr double kGammaEscapeImportanceShare = 0.1;

/// Paper Algorithm 1: greedily select the most cost-effective IFVs
/// (importance / cost), subject to two stopping rules:
///  - γ rule (line 8): stop once the next candidate's cost-effectiveness
///    falls below γ times the average cost-effectiveness of the selected
///    set (low-CE IFVs "do not improve accuracy enough to justify their
///    cost", §6.4);
///  - half-cost rule (line 11): skip candidates that would push the
///    selected set's cost past half the total cost (otherwise the "small"
///    model would not be meaningfully cheaper), but keep draining the queue
///    since later, cheaper candidates may still fit.
EfficientIfvResult select_efficient_ifvs(std::span<const double> importance,
                                         std::span<const double> cost,
                                         double gamma);

/// Ablation baselines for the selection-policy comparison (paper Table 8).
enum class SelectionPolicy {
  Willump,        // Algorithm 1
  MostImportant,  // greedy by importance alone
  Cheapest,       // greedy by cost alone
};

EfficientIfvResult select_by_policy(SelectionPolicy policy,
                                    std::span<const double> importance,
                                    std::span<const double> cost, double gamma);

}  // namespace willump::core
