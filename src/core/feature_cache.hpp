#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "common/lru_cache.hpp"
#include "core/ifv_analysis.hpp"
#include "data/value.hpp"

namespace willump::core {

/// One cached IFV row: the features a feature generator produced for one
/// data input (dense or sparse depending on the generator's output block).
using CachedRow = std::variant<data::DenseVector, data::SparseVector>;

/// Willump's feature-level cache (§4.5): one fixed-size LRU cache per IFV,
/// keyed by (a stable 64-bit hash of) the tuple of the IFV's feature-
/// generator sources, holding the IFV's computed features.
///
/// Contrast with the end-to-end prediction caching of systems like Clipper,
/// which keys on the *entire* input and therefore misses whenever any one
/// raw input differs; per-IFV caching captures recomputation of the same
/// features across different data inputs (paper Table 2).
///
/// lookup()/insert() are thread-safe with one lock per IFV: per-input
/// parallelization (§4.4) and the serving engine's workers both touch the
/// bank concurrently, but contention only arises when two threads hit the
/// *same* generator's cache.
class FeatureCacheBank {
 public:
  /// `capacity_per_ifv` of 0 means unbounded (the paper's Table 2/3 setup).
  FeatureCacheBank(std::size_t num_generators, std::size_t capacity_per_ifv)
      : caches_(num_generators,
                common::LruCache<std::uint64_t, CachedRow>(capacity_per_ifv)),
        locks_(num_generators) {}

  FeatureCacheBank(const FeatureCacheBank&) = delete;
  FeatureCacheBank& operator=(const FeatureCacheBank&) = delete;

  /// Thread-safe lookup in generator `fg`'s cache (refreshes LRU recency).
  std::optional<CachedRow> lookup(std::size_t fg, std::uint64_t key) {
    std::lock_guard<std::mutex> lock(locks_[fg]);
    return caches_[fg].get(key);
  }

  /// Thread-safe insert into generator `fg`'s cache.
  void insert(std::size_t fg, std::uint64_t key, CachedRow row) {
    std::lock_guard<std::mutex> lock(locks_[fg]);
    caches_[fg].put(key, std::move(row));
  }

  /// Direct access to one IFV's cache for inspection. NOT thread-safe:
  /// reserve for tests and single-threaded reporting.
  common::LruCache<std::uint64_t, CachedRow>& cache(std::size_t fg) {
    return caches_[fg];
  }

  std::size_t num_caches() const { return caches_.size(); }

  std::size_t total_hits() const;
  std::size_t total_misses() const;
  double hit_rate() const;
  void clear();

 private:
  std::vector<common::LruCache<std::uint64_t, CachedRow>> caches_;
  mutable std::vector<std::mutex> locks_;
};

/// Stable per-row cache key over the generator's key-source columns.
std::uint64_t cache_key_of_row(const data::Batch& batch, const Graph& g,
                               const FeatureGenerator& fg, std::size_t row);

}  // namespace willump::core
