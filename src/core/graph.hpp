#pragma once

#include <string>
#include <vector>

#include "data/value.hpp"
#include "ops/operator.hpp"

namespace willump::core {

enum class NodeKind { Source, Transform };

/// One node of a transformation graph: a raw-input source or a feature
/// transformation. Edges are represented by `inputs` (ids of producer nodes).
struct Node {
  int id = -1;
  NodeKind kind = NodeKind::Source;
  std::string name;
  data::ColumnType source_type = data::ColumnType::Int;  // sources only
  ops::OperatorPtr op;                                   // transforms only
  std::vector<int> inputs;
};

/// Willump's internal representation of an ML inference pipeline (§3, §5.1):
/// a DAG from raw-input sources to a single output node whose value (the
/// full feature vector) feeds the model sink.
///
/// The paper constructs this graph by walking the Python AST of the user's
/// inference function; in this C++ reproduction pipelines are constructed
/// directly through this builder API, which yields the identical structure
/// the analyses operate on (see DESIGN.md §1).
class Graph {
 public:
  /// Add a raw-input source; `name` must match a `data::Batch` column name.
  int add_source(std::string name, data::ColumnType type);

  /// Add a transformation consuming previously added nodes.
  int add_transform(std::string name, ops::OperatorPtr op, std::vector<int> inputs);

  /// Designate the node producing the full feature vector (the model input).
  void set_output(int id);
  int output() const { return output_; }

  const Node& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  std::size_t size() const { return nodes_.size(); }

  /// Nodes needed to compute the output, in a valid execution order.
  std::vector<int> execution_order() const;

  /// All transitive ancestors of `id` (not including `id`).
  std::vector<int> ancestors(int id) const;

  /// Ids of all source nodes among the ancestors of `id`, ascending.
  std::vector<int> source_ancestors(int id) const;

 private:
  std::vector<Node> nodes_;
  int output_ = -1;
};

}  // namespace willump::core
