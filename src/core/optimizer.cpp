#include "core/optimizer.hpp"

#include <atomic>
#include <stdexcept>

namespace willump::core {

OptimizedPipeline::OptimizedPipeline(Parts parts) {
  if (parts.executor == nullptr) {
    throw std::invalid_argument("OptimizedPipeline: null executor");
  }
  if (parts.cascade.full_model == nullptr) {
    throw std::invalid_argument("OptimizedPipeline: cascade lacks a full model");
  }
  executor_ = std::move(parts.executor);
  cascade_ = std::move(parts.cascade);
  use_cascades_ = parts.use_cascades && cascade_.enabled();
  topk_cfg_ = parts.topk;
  autotune_ = std::move(parts.autotune);
  if (parts.feature_cache) {
    cache_ = std::make_shared<FeatureCacheBank>(
        executor_->analysis().num_generators(), parts.cache_capacity);
  }
  if (parts.parallel_threads > 1) {
    pool_ = std::make_shared<runtime::ThreadPool>(parts.parallel_threads - 1);
  }
}

std::size_t OptimizedPipeline::cache_capacity_per_ifv() const {
  if (cache_ == nullptr || cache_->num_caches() == 0) return 0;
  return cache_->cache(0).capacity();
}

std::size_t OptimizedPipeline::parallel_threads() const {
  return pool_ == nullptr ? 0 : pool_->num_threads() + 1;
}

ExecOptions OptimizedPipeline::exec_options() const {
  ExecOptions opts;
  opts.cache = cache_.get();
  opts.pool = pool_.get();
  return opts;
}

std::vector<double> OptimizedPipeline::predict(const data::Batch& batch) const {
  std::vector<double> out(batch.num_rows());
  predict_into(batch, out);
  return out;
}

void OptimizedPipeline::predict_into(const data::Batch& batch,
                                     std::span<double> out) const {
  ExecOptions opts = exec_options();
  // Per-worker reusable execution state (thread_local): node store, op
  // staging arena and result matrix keep their capacity across requests, so
  // the steady-state serving path stops allocating. Disabled via
  // WILLUMP_ARENA=0; predictions are bit-identical either way.
  opts.scratch = request_scratch();
  if (cascades_enabled()) {
    // Accumulate run counters locally, then merge atomically: concurrent
    // serving workers share one pipeline, and plain increments on the
    // shared counters would race (the executor itself is const and
    // stateless per call; these counters are the only mutable state on
    // this path).
    CascadeRunStats local;
    cascade_predict_into(*executor_, cascade_, batch, opts, out, &local);
    std::atomic_ref<std::size_t>(run_stats_.total_rows)
        .fetch_add(local.total_rows, std::memory_order_relaxed);
    std::atomic_ref<std::size_t>(run_stats_.short_circuited)
        .fetch_add(local.short_circuited, std::memory_order_relaxed);
    return;
  }
  if (opts.scratch != nullptr) {
    cascade_.full_model->predict_into(
        executor_->compute_matrix_into(batch, *opts.scratch, opts), out);
    return;
  }
  cascade_.full_model->predict_into(executor_->compute_matrix(batch, opts), out);
}

double OptimizedPipeline::predict_one(const data::Batch& row) const {
  if (row.num_rows() != 1) {
    throw std::invalid_argument("predict_one: expects a single-row batch");
  }
  return predict(row)[0];
}

std::vector<double> OptimizedPipeline::predict_full(const data::Batch& batch) const {
  const ExecOptions opts = exec_options();
  return cascade_.full_model->predict(executor_->compute_matrix(batch, opts));
}

std::vector<std::size_t> OptimizedPipeline::top_k(const data::Batch& batch,
                                                  std::size_t k) const {
  TopKPipeline pipeline(executor_, cascade_, topk_cfg_);
  return pipeline.top_k(batch, k, exec_options(), &topk_stats_);
}

OptimizedPipeline WillumpOptimizer::optimize(const Pipeline& pipeline,
                                             const LabeledData& train,
                                             const LabeledData& valid,
                                             const OptimizeOptions& opts) {
  // Dataflow stage: infer the IFV structure of the transformation graph.
  IfvAnalysis analysis = analyze_ifvs(pipeline.graph);

  // Compilation stage: pick the engine. The interpreted engine is the
  // unoptimized baseline; the compiled engine applies sorting + fusion +
  // O(1) drivers (§5.2).
  std::shared_ptr<Executor> executor;
  if (opts.compile) {
    executor = std::make_shared<CompiledExecutor>(pipeline.graph, std::move(analysis));
  } else {
    executor =
        std::make_shared<InterpretedExecutor>(pipeline.graph, std::move(analysis));
  }

  // Record the feature-column layout (block widths per IFV).
  std::vector<std::size_t> probe_rows;
  const std::size_t probe_n = std::min<std::size_t>(train.inputs.num_rows(), 8);
  for (std::size_t i = 0; i < probe_n; ++i) probe_rows.push_back(i);
  executor->probe_layout(train.inputs.select_rows(probe_rows));

  // A forced feature-op config is installed before any training or timing
  // so every downstream compute_matrix (model fits, cost measurement,
  // autotuning) runs the forced path. Tuning-based selection happens below
  // with the kernel configs.
  auto* compiled_exec = dynamic_cast<CompiledExecutor*>(executor.get());
  if (compiled_exec != nullptr && opts.featureop_config.has_value()) {
    compiled_exec->set_featureop_config(*opts.featureop_config);
  }

  OptimizedPipeline out;

  // Optimization stage.
  const bool want_cascades = opts.cascades || opts.topk_filter;
  if (want_cascades) {
    // CascadeTrainer also trains the full model and measures costs.
    out.cascade_ = CascadeTrainer::train(*executor, *pipeline.model_proto, train,
                                         valid, opts.cascade_cfg);
    // Cascades only short-circuit classification pipelines (§6.3); for
    // regression the trained small model still serves as the top-K filter.
    out.use_cascades_ = opts.cascades && pipeline.classification();
  } else {
    out.cascade_.full_model =
        std::shared_ptr<models::Model>(pipeline.model_proto->clone_untrained());
    out.cascade_.full_model->fit(executor->compute_matrix(train.inputs),
                                 train.targets);
    if (opts.parallel_threads > 1) {
      // Static thread assignment needs measured generator costs (§5.2,
      // Parallelization) even when no cascade was trained.
      out.cascade_.stats.cost_seconds = measure_fg_costs(*executor, train.inputs);
    }
  }

  executor->set_fg_costs(out.cascade_.stats.cost_seconds);

  // Kernel selection: force one config everywhere, autotune against a
  // training sample, or keep the machine defaults (DESIGN.md §9). The
  // chosen configs live on the models and serialize with them.
  if (opts.kernel_config.has_value()) {
    out.cascade_.full_model->set_kernel_config(*opts.kernel_config);
    out.autotune_.full = *opts.kernel_config;
    if (out.cascade_.small_model != nullptr) {
      out.cascade_.small_model->set_kernel_config(*opts.kernel_config);
      out.autotune_.has_small = true;
      out.autotune_.small = *opts.kernel_config;
    }
  } else if (opts.autotune_kernels) {
    kernels::AutotuneConfig acfg = opts.autotune;
    if (opts.featureop_config.has_value()) acfg.tune_feature_ops = false;
    out.autotune_ = autotune_pipeline_kernels(out.cascade_, *executor,
                                              train.inputs, acfg);
  } else {
    out.autotune_.full = out.cascade_.full_model->kernel_config();
    if (out.cascade_.small_model != nullptr) {
      out.autotune_.has_small = true;
      out.autotune_.small = out.cascade_.small_model->kernel_config();
    }
  }

  // Record a forced feature-op config in the report so the artifact
  // cold-starts with it (the autotuned path recorded its own winners above).
  if (compiled_exec != nullptr && opts.featureop_config.has_value()) {
    out.autotune_.tuned_ops = true;
    out.autotune_.ops = *opts.featureop_config;
  }

  if (opts.feature_cache) {
    out.cache_ = std::make_shared<FeatureCacheBank>(
        executor->analysis().num_generators(), opts.cache_capacity);
  }
  if (opts.parallel_threads > 1) {
    out.pool_ = std::make_shared<runtime::ThreadPool>(opts.parallel_threads - 1);
  }

  out.topk_cfg_ = opts.topk;
  out.executor_ = std::move(executor);
  return out;
}

}  // namespace willump::core
