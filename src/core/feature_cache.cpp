#include "core/feature_cache.hpp"

#include <bit>

#include "common/hash.hpp"

namespace willump::core {

std::size_t FeatureCacheBank::total_hits() const {
  std::size_t acc = 0;
  for (std::size_t f = 0; f < caches_.size(); ++f) {
    std::lock_guard<std::mutex> lock(locks_[f]);
    acc += caches_[f].hits();
  }
  return acc;
}

std::size_t FeatureCacheBank::total_misses() const {
  std::size_t acc = 0;
  for (std::size_t f = 0; f < caches_.size(); ++f) {
    std::lock_guard<std::mutex> lock(locks_[f]);
    acc += caches_[f].misses();
  }
  return acc;
}

double FeatureCacheBank::hit_rate() const {
  const std::size_t hits = total_hits();
  const std::size_t total = hits + total_misses();
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void FeatureCacheBank::clear() {
  for (std::size_t f = 0; f < caches_.size(); ++f) {
    std::lock_guard<std::mutex> lock(locks_[f]);
    caches_[f].clear();
  }
}

std::uint64_t cache_key_of_row(const data::Batch& batch, const Graph& g,
                               const FeatureGenerator& fg, std::size_t row) {
  std::uint64_t h = 0x51AFE5;
  for (int src : fg.key_sources) {
    const auto& col = batch.get(g.node(src).name);
    std::uint64_t hv = 0;
    switch (col.type()) {
      case data::ColumnType::Int:
        hv = common::hash_u64(static_cast<std::uint64_t>(col.ints()[row]));
        break;
      case data::ColumnType::Double:
        hv = common::hash_u64(std::bit_cast<std::uint64_t>(col.doubles()[row]));
        break;
      case data::ColumnType::String:
        hv = common::fnv1a(col.strings()[row]);
        break;
    }
    h = common::hash_combine(h, hv);
  }
  return h;
}

}  // namespace willump::core
