#include "core/importance.hpp"

#include "models/gbdt.hpp"

namespace willump::core {

std::vector<double> feature_importances(const models::Model& model,
                                        const data::FeatureMatrix& x,
                                        std::span<const double> y) {
  std::vector<double> imp = model.feature_importances();
  if (!imp.empty()) return imp;

  // GBDT proxy for models with no native importance measure (paper §4.2).
  models::GbdtConfig cfg;
  cfg.n_trees = 20;
  cfg.max_depth = 4;
  cfg.classification = model.is_classifier();
  cfg.permutation_rows = 0;  // gain importances suffice for the proxy
  models::Gbdt proxy(cfg);
  proxy.fit(x, y);
  return proxy.feature_importances();
}

std::vector<double> ifv_importances(const IfvAnalysis& analysis,
                                    std::span<const double> per_feature) {
  std::vector<double> out(analysis.generators.size(), 0.0);
  for (std::size_t f = 0; f < analysis.generators.size(); ++f) {
    const std::size_t begin = analysis.col_begin[f];
    const std::size_t end = begin + analysis.block_cols[f];
    for (std::size_t c = begin; c < end && c < per_feature.size(); ++c) {
      out[f] += per_feature[c];
    }
  }
  return out;
}

}  // namespace willump::core
