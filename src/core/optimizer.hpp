#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/cascades.hpp"
#include "core/topk.hpp"
#include "kernels/autotune.hpp"

namespace willump::core {

/// A user pipeline handed to Willump: a transformation graph plus an
/// untrained model prototype (the paper's "functions from raw inputs to
/// predictions"; see DESIGN.md on the builder-API substitution for the
/// Python AST frontend).
struct Pipeline {
  Graph graph;
  std::shared_ptr<models::Model> model_proto;

  bool classification() const { return model_proto->is_classifier(); }
};

/// Which optimizations to apply — mirrors the paper's evaluated
/// configurations (Python / Willump-compiled / +cascades / +caching /
/// +parallelization).
struct OptimizeOptions {
  /// false = the unoptimized interpreted baseline ("Python").
  bool compile = true;
  /// Automatic end-to-end cascades (§4.2); classification pipelines only.
  bool cascades = false;
  CascadeConfig cascade_cfg;
  /// Feature-level caching (§4.5). capacity 0 = unbounded.
  bool feature_cache = false;
  std::size_t cache_capacity = 0;
  /// Per-input parallelization (§4.4).
  std::size_t parallel_threads = 0;
  /// Build the automatic top-K filter model (§4.3).
  bool topk_filter = false;
  TopKConfig topk;
  /// Kernel autotuning (DESIGN.md §9): after model training, time kernel
  /// variant x block-size candidates on a training sample and install the
  /// fastest per model. The winners are serialized with the models, so a
  /// saved artifact cold-starts tuned.
  bool autotune_kernels = true;
  kernels::AutotuneConfig autotune;
  /// Force one kernel config on every model instead of tuning (benchmark
  /// baselines and ablations). Takes precedence over autotune_kernels.
  std::optional<kernels::KernelConfig> kernel_config;
  /// Force the compiled executor's feature-op config (lookup strategy,
  /// zero-copy assembly, row-chunk size) instead of tuning it — the
  /// feature-pipeline analog of kernel_config, used for ablations. Takes
  /// precedence over op-level autotuning; ignored by the interpreted engine.
  std::optional<kernels::FeatureOpConfig> featureop_config;
};

/// The optimized pipeline Willump returns: same serving interface as the
/// original ("the optimized pipeline ... has the same signature", §3) plus
/// counters the evaluation reads.
///
/// Thread-safety: predict / predict_one / predict_full are safe to call
/// concurrently on one shared instance — execution state is per-call, the
/// feature cache takes per-IFV locks, the thread pool's fork-join groups
/// are per-call, and cascade run counters merge atomically. top_k is
/// single-caller (its run counters are plain), and the run_stats()/
/// topk_stats() accessors are meant to be read once serving quiesces.
class OptimizedPipeline {
 public:
  /// Everything a trained pipeline is made of — what WillumpOptimizer
  /// produces and what an artifact round-trips (serialize/artifact.hpp).
  /// The optimizer keeps being the normal way to get one; this constructor
  /// exists so deserialization is not a friend-class backdoor.
  struct Parts {
    std::shared_ptr<const Executor> executor;
    TrainedCascade cascade;  // full_model must be set
    bool use_cascades = false;
    TopKConfig topk;
    bool feature_cache = false;
    std::size_t cache_capacity = 0;
    std::size_t parallel_threads = 0;
    kernels::AutotuneReport autotune;
  };

  OptimizedPipeline() = default;
  explicit OptimizedPipeline(Parts parts);

  /// Batch prediction (throughput-oriented; Figure 5).
  std::vector<double> predict(const data::Batch& batch) const;

  /// Batch prediction into caller-owned storage (`out.size()` must equal
  /// batch.num_rows()): the serving path, which reuses one per-worker
  /// buffer across requests instead of allocating a result per call.
  void predict_into(const data::Batch& batch, std::span<double> out) const;

  /// Example-at-a-time prediction (latency-oriented; Figure 6).
  double predict_one(const data::Batch& row) const;

  /// Top-K query (§4.3; Table 4).
  std::vector<std::size_t> top_k(const data::Batch& batch, std::size_t k) const;

  /// Full-model scores with no approximation (the "unoptimized query"
  /// accuracy reference of Table 4).
  std::vector<double> predict_full(const data::Batch& batch) const;

  const Executor& executor() const { return *executor_; }
  const TrainedCascade& cascade() const { return cascade_; }
  bool cascades_enabled() const { return use_cascades_ && cascade_.enabled(); }
  const models::Model& full_model() const { return *cascade_.full_model; }

  FeatureCacheBank* cache() const { return cache_.get(); }
  CascadeRunStats& run_stats() const { return run_stats_; }
  TopKRunStats& topk_stats() const { return topk_stats_; }

  /// Tuned-state accessors (what an artifact records; see Parts).
  bool use_cascades() const { return use_cascades_; }
  const TopKConfig& topk_config() const { return topk_cfg_; }
  std::size_t cache_capacity_per_ifv() const;
  /// The parallel_threads the pipeline was optimized with (0 = sequential).
  std::size_t parallel_threads() const;
  std::shared_ptr<const Executor> executor_ptr() const { return executor_; }
  /// Kernel-autotuning outcome (winning configs + candidate timings); the
  /// per-model winners also travel inside each serialized model.
  const kernels::AutotuneReport& autotune_report() const { return autotune_; }

 private:
  friend class WillumpOptimizer;

  ExecOptions exec_options() const;

  std::shared_ptr<const Executor> executor_;
  TrainedCascade cascade_;  // full_model always set; small only if cascades
  bool use_cascades_ = false;
  TopKConfig topk_cfg_;
  std::shared_ptr<FeatureCacheBank> cache_;
  std::shared_ptr<runtime::ThreadPool> pool_;
  kernels::AutotuneReport autotune_;
  mutable CascadeRunStats run_stats_;
  mutable TopKRunStats topk_stats_;
};

/// Willump's entry point (§3): infer the transformation graph's IFV
/// structure, apply the selected optimizations, train whatever models the
/// optimizations need, and return an optimized pipeline.
class WillumpOptimizer {
 public:
  static OptimizedPipeline optimize(const Pipeline& pipeline,
                                    const LabeledData& train,
                                    const LabeledData& valid,
                                    const OptimizeOptions& opts);
};

}  // namespace willump::core
