#include "core/ifv_analysis.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace willump::core {

namespace {

bool is_commutative(const Graph& g, int id) {
  const Node& n = g.node(id);
  return n.kind == NodeKind::Transform && n.op->commutative();
}

}  // namespace

std::size_t IfvAnalysis::total_cols() const {
  return std::accumulate(block_cols.begin(), block_cols.end(), std::size_t{0});
}

std::vector<std::size_t> IfvAnalysis::columns_of(const std::vector<bool>& mask) const {
  std::vector<std::size_t> cols;
  for (std::size_t f = 0; f < generators.size(); ++f) {
    if (f < mask.size() && !mask[f]) continue;
    for (std::size_t c = 0; c < block_cols[f]; ++c) cols.push_back(col_begin[f] + c);
  }
  return cols;
}

IfvAnalysis analyze_ifvs(const Graph& g) {
  IfvAnalysis out;
  const int output = g.output();
  if (output < 0) throw std::logic_error("analyze_ifvs: graph output not set");

  // Descend the commutative region from the node closest to the model
  // (paper §5.1). Collect the post-concat chain of single-input commutative
  // nodes, then the concat node itself.
  int cursor = output;
  std::vector<int> post_chain_rev;
  while (is_commutative(g, cursor) && g.node(cursor).inputs.size() == 1) {
    post_chain_rev.push_back(cursor);
    cursor = g.node(cursor).inputs[0];
  }

  std::vector<int> block_tops;  // direct IFV producers, in concat input order
  if (is_commutative(g, cursor)) {
    out.concat_node = cursor;
    block_tops = g.node(cursor).inputs;
  } else {
    // Output is not commutative: the whole graph is one feature generator
    // (no cascade decomposition possible, but execution still works).
    if (!post_chain_rev.empty()) {
      throw std::invalid_argument(
          "analyze_ifvs: commutative chain ends in a non-commutative node");
    }
    block_tops = {cursor};
  }
  out.post_chain.assign(post_chain_rev.rbegin(), post_chain_rev.rend());

  // Rule 1: descend per-block single-input commutative nodes to find each
  // generator's root (the first non-commutative ancestor).
  struct BlockInfo {
    int top;
    int root;
    std::vector<int> chain;  // commutative nodes between root and concat
  };
  std::vector<BlockInfo> blocks;
  for (int top : block_tops) {
    BlockInfo b{top, top, {}};
    int node = top;
    std::vector<int> chain_rev;
    while (is_commutative(g, node)) {
      if (g.node(node).inputs.size() != 1) {
        throw std::invalid_argument(
            "analyze_ifvs: nested multi-input commutative nodes unsupported");
      }
      chain_rev.push_back(node);
      node = g.node(node).inputs[0];
    }
    b.root = node;
    b.chain.assign(chain_rev.rbegin(), chain_rev.rend());
    blocks.push_back(std::move(b));
  }

  // Rules 2 and 3: classify every ancestor by how many generator roots it
  // feeds. Count, for each node, the number of distinct roots it is an
  // ancestor of.
  std::vector<int> root_count(g.size(), 0);
  for (const auto& b : blocks) {
    std::vector<bool> seen(g.size(), false);
    for (int a : g.ancestors(b.root)) seen[static_cast<std::size_t>(a)] = true;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (seen[i]) ++root_count[i];
    }
  }

  // Preprocessing = transform nodes feeding multiple roots (rule 3).
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (root_count[i] > 1 &&
        g.node(static_cast<int>(i)).kind == NodeKind::Transform) {
      out.preprocessing.push_back(static_cast<int>(i));
    }
  }

  // Assemble generators (rule 2: exclusive ancestors join the generator).
  for (const auto& b : blocks) {
    FeatureGenerator fg;
    fg.root = b.root;
    fg.block_chain = b.chain;
    fg.output_node = b.chain.empty() ? b.root : b.chain.back();

    std::unordered_set<int> exclusive;
    for (int a : g.ancestors(b.root)) {
      if (root_count[static_cast<std::size_t>(a)] == 1) exclusive.insert(a);
    }
    // Execution order: ascending ids are a valid topological order.
    std::vector<int> nodes;
    for (int a : g.ancestors(b.root)) {
      if (exclusive.count(a) != 0 &&
          g.node(a).kind == NodeKind::Transform) {
        nodes.push_back(a);
      }
      if (exclusive.count(a) != 0 && g.node(a).kind == NodeKind::Source) {
        fg.exclusive_sources.push_back(a);
      }
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.push_back(b.root);
    for (int c : b.chain) nodes.push_back(c);
    fg.nodes = std::move(nodes);
    fg.key_sources = g.source_ancestors(b.root);
    out.generators.push_back(std::move(fg));
  }

  return out;
}

}  // namespace willump::core
