#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "core/efficient_ifv.hpp"
#include "core/executors.hpp"
#include "models/model.hpp"

namespace willump::core {

/// Labeled raw inputs: what the cascade trainer consumes.
struct LabeledData {
  data::Batch inputs;
  std::vector<double> targets;
};

/// Cascade construction settings (§4.2).
struct CascadeConfig {
  /// Maximum validation-accuracy loss of the cascade vs the full model
  /// ("user-specified accuracy target", stage 4).
  double accuracy_target = 0.001;
  /// γ of Algorithm 1's stopping rule (the paper leaves γ unspecified; 0.1
  /// reproduces its reported selections across our six workloads).
  double gamma = 0.1;
  /// Disable the γ rule (the Table 8 / §6.4 ablation).
  bool disable_gamma_rule = false;
  /// Override selection policy (Table 8 ablation); Willump = Algorithm 1.
  SelectionPolicy policy = SelectionPolicy::Willump;
};

/// A trained end-to-end cascade: small model over the efficient IFVs,
/// full model over all IFVs, and the confidence threshold routing between
/// them (§4.2, Figure 3).
struct TrainedCascade {
  std::vector<bool> efficient_mask;
  std::vector<bool> inefficient_mask;
  std::shared_ptr<models::Model> small_model;
  std::shared_ptr<models::Model> full_model;
  double threshold = 1.0;  // predictions with confidence > threshold short-circuit
  IfvStats stats;
  double full_valid_accuracy = 0.0;
  double cascade_valid_accuracy = 0.0;

  bool enabled() const { return small_model != nullptr; }
};

/// Serving-time counters for one cascade run.
struct CascadeRunStats {
  std::size_t total_rows = 0;
  std::size_t short_circuited = 0;  // classified by the small model
  double short_circuit_rate() const {
    return total_rows == 0
               ? 0.0
               : static_cast<double>(short_circuited) / static_cast<double>(total_rows);
  }
};

/// Builds end-to-end cascades (stages 1-4 of §4.2): IFV statistics,
/// efficient-IFV selection (Algorithm 1), small/full model training, and
/// validation-set threshold search on a 0.1 grid.
class CascadeTrainer {
 public:
  /// `executor` must have its layout probed. Returns a cascade whose
  /// small_model is null when no useful efficient subset exists (the
  /// optimizer then serves the full model only).
  static TrainedCascade train(const Executor& executor,
                              const models::Model& model_proto,
                              const LabeledData& train, const LabeledData& valid,
                              const CascadeConfig& cfg);

  /// Stage 4 in isolation: lowest threshold on the 0.1 grid whose cascaded
  /// validation accuracy is within `accuracy_target` of the full model's.
  static double select_threshold(std::span<const double> small_probas,
                                 std::span<const double> full_probas,
                                 std::span<const double> labels,
                                 double accuracy_target);
};

/// Serves predictions from a trained cascade (stage 5, Figure 3): predict
/// with the small model on the efficient IFVs; short-circuit confident rows;
/// compute remaining IFVs and the full model for the rest.
std::vector<double> cascade_predict(const Executor& executor,
                                    const TrainedCascade& cascade,
                                    const data::Batch& batch,
                                    const ExecOptions& opts,
                                    CascadeRunStats* stats = nullptr);

/// cascade_predict into caller-owned storage (`preds.size()` must equal
/// batch.num_rows()) — the serving path, which reuses one per-worker buffer
/// across requests instead of allocating a result vector per call.
void cascade_predict_into(const Executor& executor,
                          const TrainedCascade& cascade,
                          const data::Batch& batch, const ExecOptions& opts,
                          std::span<double> preds,
                          CascadeRunStats* stats = nullptr);

}  // namespace willump::core
