#pragma once

#include <string>
#include <vector>

#include "core/executors.hpp"
#include "kernels/autotune.hpp"
#include "models/model.hpp"

namespace willump::core {

struct TrainedCascade;  // cascades.hpp (which includes this header)

/// Per-IFV statistics driving the cascades optimization (§4.2, stage 1):
/// computational cost (measured) and prediction importance (model-derived,
/// filled in by core/importance).
struct IfvStats {
  std::vector<double> cost_seconds;  // per generator
  std::vector<double> importance;    // per generator

  double total_cost() const;
};

/// Measure each feature generator's computational cost by timing its nodes
/// while computing training-set features (the paper measures node runtimes
/// during model training, §4.2: serve-time costs match because the same
/// pipeline runs at train and serve time).
///
/// Returns per-generator seconds (preprocessing time is excluded: it runs
/// regardless of which IFVs a cascade computes).
std::vector<double> measure_fg_costs(const Executor& executor,
                                     const data::Batch& train_inputs);

/// Time kernel-variant candidates for one trained model on a feature-matrix
/// sample and install the fastest (the cost model's measure-then-optimize
/// loop applied to the prediction kernels themselves). Greedy two-stage
/// search: dot-product variant first, then tree variant x block size — the
/// two axes are independent (no model consults both on one path), so greedy
/// equals exhaustive here at a fraction of the measurements. Each timing is
/// a warmup run plus the median of `cfg.reps` timed runs; every candidate
/// is appended to `timings` (names prefixed "<label>/") when non-null.
kernels::KernelConfig tune_model_kernels(
    models::Model& model, const data::FeatureMatrix& x,
    const kernels::AutotuneConfig& cfg, const std::string& label,
    std::vector<kernels::VariantTiming>* timings);

/// Time op-level choices for a compiled executor's feature pipeline on a
/// sample batch and install the winners: vocabulary lookup strategy (only
/// when the graph tokenizes — a TF-IDF op consults it), zero-copy planned
/// assembly off/on, and the dense assembly row-chunk size. Greedy stages on
/// independent axes, same measurement discipline as tune_model_kernels;
/// every feature-op choice is bit-exact, so timing is the only criterion.
kernels::FeatureOpConfig tune_feature_ops(
    CompiledExecutor& executor, const data::Batch& sample,
    const kernels::AutotuneConfig& cfg,
    std::vector<kernels::VariantTiming>* timings);

/// Autotune both models of a trained cascade against features computed from
/// a training-set sample (first `cfg.sample_rows` rows): the full model on
/// the full feature matrix, the small model (when present) on the
/// efficient-IFV matrix it serves. Returns the report the WLMP artifact's
/// kernel section persists; when there is nothing to measure (empty
/// training set, zero reps) the models keep their configs and the report
/// says tuned = false.
///
/// When the executor is compiled and `cfg.tune_feature_ops` is set, the
/// op-level autotuner (tune_feature_ops) also runs against the sample and
/// its winners are installed on the executor and recorded in the report
/// (`tuned_ops` / `ops`) — hence the mutable executor reference.
kernels::AutotuneReport autotune_pipeline_kernels(
    TrainedCascade& cascade, Executor& executor,
    const data::Batch& train_inputs, const kernels::AutotuneConfig& cfg);

}  // namespace willump::core
