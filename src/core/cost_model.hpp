#pragma once

#include <vector>

#include "core/executors.hpp"

namespace willump::core {

/// Per-IFV statistics driving the cascades optimization (§4.2, stage 1):
/// computational cost (measured) and prediction importance (model-derived,
/// filled in by core/importance).
struct IfvStats {
  std::vector<double> cost_seconds;  // per generator
  std::vector<double> importance;    // per generator

  double total_cost() const;
};

/// Measure each feature generator's computational cost by timing its nodes
/// while computing training-set features (the paper measures node runtimes
/// during model training, §4.2: serve-time costs match because the same
/// pipeline runs at train and serve time).
///
/// Returns per-generator seconds (preprocessing time is excluded: it runs
/// regardless of which IFVs a cascade computes).
std::vector<double> measure_fg_costs(const Executor& executor,
                                     const data::Batch& train_inputs);

}  // namespace willump::core
