#pragma once

#include <span>
#include <vector>

#include "core/ifv_analysis.hpp"
#include "models/model.hpp"

namespace willump::core {

/// Per-feature prediction importances for a trained model, following the
/// paper's model-specific strategy (§4.2):
///  - models with a native measure (linear: |w|*mean|x|; GBDT: permutation
///    importances computed during construction) report it directly;
///  - models without one (neural nets) fall back to a GBDT proxy trained on
///    the same features, "similar to the common practice of using GBDT
///    feature importances for feature selection".
std::vector<double> feature_importances(const models::Model& model,
                                        const data::FeatureMatrix& x,
                                        std::span<const double> y);

/// Aggregate per-feature importances into per-IFV importances: the
/// prediction importance of an IFV is the sum over its features (§4.2).
std::vector<double> ifv_importances(const IfvAnalysis& analysis,
                                    std::span<const double> per_feature);

}  // namespace willump::core
