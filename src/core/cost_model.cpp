#include "core/cost_model.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/timer.hpp"
#include "core/cascades.hpp"
#include "ops/encoders.hpp"
#include "ops/tfidf.hpp"

namespace willump::core {

double IfvStats::total_cost() const {
  return std::accumulate(cost_seconds.begin(), cost_seconds.end(), 0.0);
}

std::vector<double> measure_fg_costs(const Executor& executor,
                                     const data::Batch& train_inputs) {
  runtime::Profiler profiler;
  ExecOptions opts;
  opts.profiler = &profiler;
  (void)executor.compute_blocks(train_inputs, opts);

  const auto& analysis = executor.analysis();
  std::vector<double> costs(analysis.generators.size(), 0.0);
  for (std::size_t f = 0; f < analysis.generators.size(); ++f) {
    double acc = 0.0;
    for (int node : analysis.generators[f].nodes) {
      acc += profiler.total_seconds(node);
    }
    // Floor at a small epsilon so cost-effectiveness ratios stay finite.
    costs[f] = std::max(acc, 1e-9);
  }
  return costs;
}

namespace {

/// One candidate measurement: a warmup run (faults scratch pages, resolves
/// dispatch) then the median of `reps` timed batch predicts.
double time_predict_into(const models::Model& m, const data::FeatureMatrix& x,
                         std::span<double> out, int reps) {
  m.predict_into(x, out);
  return common::time_median_seconds(reps,
                                     [&m, &x, out] { m.predict_into(x, out); });
}

/// One feature-pipeline measurement: warmup then the median of `reps`
/// compute_matrix runs (the quantity op-level choices change).
double time_compute_matrix(const Executor& e, const data::Batch& b, int reps) {
  (void)e.compute_matrix(b);
  return common::time_median_seconds(reps, [&e, &b] { (void)e.compute_matrix(b); });
}

bool graph_has_tfidf(const Graph& g) {
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto* op = g.node(static_cast<int>(i)).op.get();
    if (dynamic_cast<const ops::TfIdfOp*>(op) != nullptr) return true;
  }
  return false;
}

bool graph_has_onehot(const Graph& g) {
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto* op = g.node(static_cast<int>(i)).op.get();
    if (dynamic_cast<const ops::OneHotHashOp*>(op) != nullptr) return true;
  }
  return false;
}

}  // namespace

kernels::KernelConfig tune_model_kernels(
    models::Model& model, const data::FeatureMatrix& x,
    const kernels::AutotuneConfig& cfg, const std::string& label,
    std::vector<kernels::VariantTiming>* timings) {
  std::vector<double> out(x.rows());
  kernels::KernelConfig best = model.kernel_config();

  // Stage 1: dot-product variant (drives linear/MLP margins; a pure-tree
  // model times near-identically across these and just keeps the fastest).
  double best_s = std::numeric_limits<double>::infinity();
  for (const auto v : kernels::candidate_dots()) {
    kernels::KernelConfig c = best;
    c.dot = v;
    model.set_kernel_config(c);
    const double s = time_predict_into(model, x, out, cfg.reps);
    if (timings != nullptr) {
      timings->push_back(
          {label + "/dot:" + kernels::variant_name(v), s});
    }
    if (s < best_s) {
      best_s = s;
      best.dot = v;
    }
  }

  // Stage 2: tree traversal variant and block size (exercised by forest
  // models; block 1 row-wise is the branchy reference shape).
  struct TreeCand {
    kernels::TreeVariant tree;
    std::uint32_t block;
    std::string name;
  };
  std::vector<TreeCand> cands;
  cands.push_back({kernels::TreeVariant::RowWise, 1, "rowwise"});
  for (std::uint32_t b : cfg.tree_blocks) {
    b = std::clamp<std::uint32_t>(b, 1, kernels::kMaxTreeBlock);
    cands.push_back(
        {kernels::TreeVariant::Blocked, b, "blocked/" + std::to_string(b)});
  }
  best_s = std::numeric_limits<double>::infinity();
  kernels::KernelConfig tree_pick = best;
  for (const auto& cand : cands) {
    kernels::KernelConfig c = best;
    c.tree = cand.tree;
    c.tree_block = cand.block;
    model.set_kernel_config(c);
    const double s = time_predict_into(model, x, out, cfg.reps);
    if (timings != nullptr) {
      timings->push_back({label + "/tree:" + cand.name, s});
    }
    if (s < best_s) {
      best_s = s;
      tree_pick = c;
    }
  }
  best = tree_pick;

  // Stage 3: sparse traversal cutoff — only meaningful when the feature
  // matrix is CSR (dense inputs never consult it). Two poles: 0 forces the
  // no-densify CSR traversal, UINT32_MAX forces the densify-block path; the
  // winner is pinned so serving dispatches without re-measuring.
  if (!x.is_dense()) {
    struct CutCand {
      std::uint32_t cutoff;
      const char* name;
    };
    const CutCand cuts[] = {
        {0u, "csr"}, {std::numeric_limits<std::uint32_t>::max(), "densify"}};
    best_s = std::numeric_limits<double>::infinity();
    kernels::KernelConfig cut_pick = best;
    for (const auto& cand : cuts) {
      kernels::KernelConfig c = best;
      c.sparse_cutoff = cand.cutoff;
      model.set_kernel_config(c);
      const double s = time_predict_into(model, x, out, cfg.reps);
      if (timings != nullptr) {
        timings->push_back({label + "/sparse:" + cand.name, s});
      }
      if (s < best_s) {
        best_s = s;
        cut_pick = c;
      }
    }
    best = cut_pick;
  }
  model.set_kernel_config(best);
  return best;
}

kernels::FeatureOpConfig tune_feature_ops(
    CompiledExecutor& executor, const data::Batch& sample,
    const kernels::AutotuneConfig& cfg,
    std::vector<kernels::VariantTiming>* timings) {
  kernels::FeatureOpConfig best = executor.featureop_config();
  if (sample.num_rows() == 0 || cfg.reps <= 0) return best;

  // Stage 1: vocabulary lookup strategy. Only TF-IDF consults it, so other
  // pipelines skip the measurement entirely.
  if (graph_has_tfidf(executor.graph())) {
    double best_s = std::numeric_limits<double>::infinity();
    kernels::FeatureOpConfig pick = best;
    for (const auto v :
         {kernels::LookupVariant::HashMap, kernels::LookupVariant::SortedVocab}) {
      kernels::FeatureOpConfig c = best;
      c.lookup = v;
      executor.set_featureop_config(c);
      const double s = time_compute_matrix(executor, sample, cfg.reps);
      if (timings != nullptr) {
        timings->push_back(
            {std::string("ops/lookup:") + kernels::variant_name(v), s});
      }
      if (s < best_s) {
        best_s = s;
        pick = c;
      }
    }
    best = pick;
  }

  // Stage 1b: one-hot hashing shape. Scalar hashes and appends per row;
  // Batched stages the whole block's buckets first (arena/thread-local) and
  // appends in a second tight loop. Identical rows either way, so only
  // graphs that actually hash pay for the measurement.
  if (graph_has_onehot(executor.graph())) {
    double best_s = std::numeric_limits<double>::infinity();
    kernels::FeatureOpConfig pick = best;
    for (const auto v :
         {kernels::OneHotVariant::Scalar, kernels::OneHotVariant::Batched}) {
      kernels::FeatureOpConfig c = best;
      c.onehot = v;
      executor.set_featureop_config(c);
      const double s = time_compute_matrix(executor, sample, cfg.reps);
      if (timings != nullptr) {
        timings->push_back(
            {std::string("ops/onehot:") + kernels::variant_name(v), s});
      }
      if (s < best_s) {
        best_s = s;
        pick = c;
      }
    }
    best = pick;
  }

  // Stage 2: zero-copy planned assembly off/on. Off is the reference
  // blocks+hconcat path; both produce bit-identical matrices.
  {
    double best_s = std::numeric_limits<double>::infinity();
    kernels::FeatureOpConfig pick = best;
    for (const bool zc : {false, true}) {
      kernels::FeatureOpConfig c = best;
      c.zero_copy = zc;
      executor.set_featureop_config(c);
      const double s = time_compute_matrix(executor, sample, cfg.reps);
      if (timings != nullptr) {
        timings->push_back(
            {std::string("ops/zero_copy:") + (zc ? "on" : "off"), s});
      }
      if (s < best_s) {
        best_s = s;
        pick = c;
      }
    }
    best = pick;
  }

  // Stage 3: dense assembly row-chunk size — the cache-blocking granularity
  // of the fused concat. Irrelevant when stage 2 kept the fallback path.
  if (best.zero_copy && !cfg.block_rows.empty()) {
    double best_s = std::numeric_limits<double>::infinity();
    kernels::FeatureOpConfig pick = best;
    for (std::uint32_t b : cfg.block_rows) {
      b = std::clamp<std::uint32_t>(b, 1, kernels::kMaxBlockRows);
      kernels::FeatureOpConfig c = best;
      c.block_rows = b;
      executor.set_featureop_config(c);
      const double s = time_compute_matrix(executor, sample, cfg.reps);
      if (timings != nullptr) {
        timings->push_back({"ops/block_rows:" + std::to_string(b), s});
      }
      if (s < best_s) {
        best_s = s;
        pick = c;
      }
    }
    best = pick;
  }

  executor.set_featureop_config(best);
  return best;
}

kernels::AutotuneReport autotune_pipeline_kernels(
    TrainedCascade& cascade, Executor& executor,
    const data::Batch& train_inputs, const kernels::AutotuneConfig& cfg) {
  kernels::AutotuneReport rep;
  rep.full = cascade.full_model->kernel_config();
  if (cascade.small_model != nullptr) {
    rep.has_small = true;
    rep.small = cascade.small_model->kernel_config();
  }
  const std::size_t n = train_inputs.num_rows();
  if (n == 0 || cfg.reps <= 0 || cfg.sample_rows == 0) return rep;

  std::vector<std::size_t> rows(std::min(cfg.sample_rows, n));
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const data::Batch sample = train_inputs.select_rows(rows);

  rep.full = tune_model_kernels(*cascade.full_model,
                                executor.compute_matrix(sample), cfg, "full",
                                &rep.timings);
  if (cascade.small_model != nullptr) {
    ExecOptions eff;
    eff.fg_mask = cascade.efficient_mask;
    rep.small = tune_model_kernels(*cascade.small_model,
                                   executor.compute_matrix(sample, eff), cfg,
                                   "small", &rep.timings);
  }
  if (auto* compiled = dynamic_cast<CompiledExecutor*>(&executor);
      compiled != nullptr && cfg.tune_feature_ops) {
    rep.ops = tune_feature_ops(*compiled, sample, cfg, &rep.timings);
    rep.tuned_ops = true;
  }
  rep.tuned = true;
  return rep;
}

}  // namespace willump::core
