#include "core/cost_model.hpp"

#include <numeric>

namespace willump::core {

double IfvStats::total_cost() const {
  return std::accumulate(cost_seconds.begin(), cost_seconds.end(), 0.0);
}

std::vector<double> measure_fg_costs(const Executor& executor,
                                     const data::Batch& train_inputs) {
  runtime::Profiler profiler;
  ExecOptions opts;
  opts.profiler = &profiler;
  (void)executor.compute_blocks(train_inputs, opts);

  const auto& analysis = executor.analysis();
  std::vector<double> costs(analysis.generators.size(), 0.0);
  for (std::size_t f = 0; f < analysis.generators.size(); ++f) {
    double acc = 0.0;
    for (int node : analysis.generators[f].nodes) {
      acc += profiler.total_seconds(node);
    }
    // Floor at a small epsilon so cost-effectiveness ratios stay finite.
    costs[f] = std::max(acc, 1e-9);
  }
  return costs;
}

}  // namespace willump::core
