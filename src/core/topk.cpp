#include "core/topk.hpp"

#include <algorithm>

#include "models/metrics.hpp"

namespace willump::core {

std::size_t TopKPipeline::subset_size(std::size_t k, std::size_t n) const {
  const auto by_ck = static_cast<std::size_t>(cfg_.ck * static_cast<double>(k));
  const auto by_frac =
      static_cast<std::size_t>(cfg_.min_subset_frac * static_cast<double>(n));
  return std::min(n, std::max({by_ck, by_frac, k}));
}

std::vector<std::size_t> TopKPipeline::top_k(const data::Batch& batch,
                                             std::size_t k, const ExecOptions& opts,
                                             TopKRunStats* stats) const {
  const std::size_t n = batch.num_rows();

  if (!has_filter()) {
    // No filter model available: score everything with the full model.
    const auto scores =
        cascade_.full_model->predict(executor_->compute_matrix(batch, opts));
    if (stats != nullptr) *stats = {n, n};
    return models::top_k_indices(scores, k);
  }

  // Filter stage: the approximate pipeline (small model on efficient IFVs)
  // scores every element of the batch.
  ExecOptions eff_opts = opts;
  eff_opts.fg_mask = cascade_.efficient_mask;
  const auto filter_scores = cascade_.small_model->predict(
      executor_->compute_matrix(batch, eff_opts));

  // Keep the top max(ck*K, 5%*N) candidates...
  const std::size_t subset = subset_size(k, n);
  auto candidates = models::top_k_indices(filter_scores, subset);
  if (stats != nullptr) *stats = {n, subset};

  // ...and re-rank only those with the full pipeline.
  const data::Batch sub_batch = batch.select_rows(candidates);
  const auto full_scores =
      cascade_.full_model->predict(executor_->compute_matrix(sub_batch, opts));
  const auto local_top = models::top_k_indices(full_scores, k);

  std::vector<std::size_t> out;
  out.reserve(local_top.size());
  for (std::size_t i : local_top) out.push_back(candidates[i]);
  return out;
}

}  // namespace willump::core
