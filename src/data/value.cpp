#include "data/value.hpp"

#include <stdexcept>

namespace willump::data {

std::size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, v_);
}

Column Column::select_rows(std::span<const std::size_t> idx) const {
  return std::visit(
      [&](const auto& v) -> Column {
        std::decay_t<decltype(v)> out;
        out.reserve(idx.size());
        for (std::size_t i : idx) out.push_back(v[i]);
        return Column(std::move(out));
      },
      v_);
}

void Column::append(const Column& other) {
  if (type() != other.type()) {
    throw std::invalid_argument("Column::append: type mismatch");
  }
  std::visit(
      [&](auto& v) {
        const auto& src = std::get<std::decay_t<decltype(v)>>(other.v_);
        v.insert(v.end(), src.begin(), src.end());
      },
      v_);
}

std::size_t Value::size() const {
  if (is_column()) return column().size();
  if (is_features()) return features().rows();
  return 0;
}

Value Value::select_rows(std::span<const std::size_t> idx) const {
  if (is_column()) return Value(column().select_rows(idx));
  if (is_features()) return Value(features().select_rows(idx));
  return {};
}

void Batch::add(std::string name, Column col) {
  if (!cols_.empty() && col.size() != cols_.front().size()) {
    throw std::invalid_argument("Batch::add: column length mismatch for " + name);
  }
  names_.push_back(std::move(name));
  cols_.push_back(std::move(col));
}

const Column& Batch::get(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return cols_[i];
  }
  throw std::out_of_range("Batch::get: no column named " + name);
}

bool Batch::has(const std::string& name) const {
  for (const auto& n : names_) {
    if (n == name) return true;
  }
  return false;
}

std::size_t Batch::num_rows() const { return cols_.empty() ? 0 : cols_.front().size(); }

Batch Batch::select_rows(std::span<const std::size_t> idx) const {
  Batch out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out.add(names_[i], cols_[i].select_rows(idx));
  }
  return out;
}

Batch Batch::row(std::size_t r) const {
  const std::size_t idx[1] = {r};
  return select_rows(idx);
}

void Batch::append_rows(const Batch& other) {
  if (other.names_ != names_) {
    throw std::invalid_argument("Batch::append_rows: column names differ");
  }
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    cols_[i].append(other.cols_[i]);
  }
}

}  // namespace willump::data
