#include "data/matrix.hpp"

#include <cassert>
#include <stdexcept>

namespace willump::data {

DenseMatrix DenseMatrix::from_rows(const std::vector<DenseVector>& rows) {
  if (rows.empty()) return {};
  DenseMatrix m(rows.size(), rows[0].dim());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].dim() != m.cols_) {
      throw std::invalid_argument("DenseMatrix::from_rows: ragged rows");
    }
    auto dst = m.mutable_row(r);
    auto src = rows[r].values();
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return m;
}

std::vector<double> DenseMatrix::column(std::size_t c) const {
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

DenseMatrix DenseMatrix::select_rows(std::span<const std::size_t> idx) const {
  DenseMatrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    auto src = row(idx[i]);
    auto dst = out.mutable_row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

DenseMatrix DenseMatrix::hconcat(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() == 0) return b;
  if (b.rows() == 0) return a;
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("DenseMatrix::hconcat: row count mismatch");
  }
  DenseMatrix out(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto dst = out.mutable_row(r);
    auto ra = a.row(r);
    auto rb = b.row(r);
    std::copy(ra.begin(), ra.end(), dst.begin());
    std::copy(rb.begin(), rb.end(), dst.begin() + static_cast<std::ptrdiff_t>(a.cols()));
  }
  return out;
}

CsrMatrix CsrMatrix::from_rows(std::int32_t cols, const std::vector<SparseVector>& rows) {
  CsrMatrix m(cols);
  for (const auto& r : rows) m.append_row(r);
  return m;
}

void CsrMatrix::append_row(std::span<const SparseEntry> entries) {
  for (const auto& e : entries) {
    indices_.push_back(e.index);
    values_.push_back(e.value);
  }
  indptr_.push_back(indices_.size());
}

CsrMatrix::RowView CsrMatrix::row(std::size_t r) const {
  const std::size_t lo = indptr_[r];
  const std::size_t hi = indptr_[r + 1];
  return {std::span<const std::int32_t>(indices_.data() + lo, hi - lo),
          std::span<const double>(values_.data() + lo, hi - lo)};
}

SparseVector CsrMatrix::row_vector(std::size_t r) const {
  SparseVector v(cols_);
  auto rv = row(r);
  for (std::size_t i = 0; i < rv.nnz(); ++i) v.push_back(rv.indices[i], rv.values[i]);
  return v;
}

CsrMatrix CsrMatrix::select_rows(std::span<const std::size_t> idx) const {
  CsrMatrix out(cols_);
  for (std::size_t i : idx) {
    auto rv = row(i);
    for (std::size_t k = 0; k < rv.nnz(); ++k) {
      out.indices_.push_back(rv.indices[k]);
      out.values_.push_back(rv.values[k]);
    }
    out.indptr_.push_back(out.indices_.size());
  }
  return out;
}

CsrMatrix CsrMatrix::hconcat(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.rows() == 0) return b;
  if (b.rows() == 0) return a;
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("CsrMatrix::hconcat: row count mismatch");
  }
  CsrMatrix out(a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto ra = a.row(r);
    for (std::size_t k = 0; k < ra.nnz(); ++k) {
      out.indices_.push_back(ra.indices[k]);
      out.values_.push_back(ra.values[k]);
    }
    auto rb = b.row(r);
    for (std::size_t k = 0; k < rb.nnz(); ++k) {
      out.indices_.push_back(rb.indices[k] + a.cols());
      out.values_.push_back(rb.values[k]);
    }
    out.indptr_.push_back(out.indices_.size());
  }
  return out;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix out(rows(), static_cast<std::size_t>(cols_));
  for (std::size_t r = 0; r < rows(); ++r) {
    auto rv = row(r);
    for (std::size_t k = 0; k < rv.nnz(); ++k) {
      out(r, static_cast<std::size_t>(rv.indices[k])) = rv.values[k];
    }
  }
  return out;
}

std::size_t FeatureMatrix::rows() const {
  return is_dense() ? dense().rows() : sparse().rows();
}

std::size_t FeatureMatrix::cols() const {
  return is_dense() ? dense().cols() : static_cast<std::size_t>(sparse().cols());
}

FeatureMatrix FeatureMatrix::select_rows(std::span<const std::size_t> idx) const {
  if (is_dense()) return FeatureMatrix(dense().select_rows(idx));
  return FeatureMatrix(sparse().select_rows(idx));
}

CsrMatrix FeatureMatrix::to_csr() const {
  if (is_sparse()) return sparse();
  const auto& d = dense();
  CsrMatrix out(static_cast<std::int32_t>(d.cols()));
  std::vector<SparseEntry> entries;
  for (std::size_t r = 0; r < d.rows(); ++r) {
    entries.clear();
    auto rv = d.row(r);
    for (std::size_t c = 0; c < rv.size(); ++c) {
      if (rv[c] != 0.0) {
        entries.push_back({static_cast<std::int32_t>(c), rv[c]});
      }
    }
    out.append_row(entries);
  }
  return out;
}

FeatureMatrix FeatureMatrix::hconcat(const FeatureMatrix& a, const FeatureMatrix& b) {
  if (a.rows() == 0 && a.cols() == 0) return b;
  if (b.rows() == 0 && b.cols() == 0) return a;
  if (a.is_dense() && b.is_dense()) {
    return FeatureMatrix(DenseMatrix::hconcat(a.dense(), b.dense()));
  }
  return FeatureMatrix(CsrMatrix::hconcat(a.to_csr(), b.to_csr()));
}

FeatureMatrix FeatureMatrix::hconcat_all(std::span<const FeatureMatrix> blocks) {
  FeatureMatrix out;
  for (const auto& b : blocks) out = hconcat(out, b);
  return out;
}

}  // namespace willump::data
