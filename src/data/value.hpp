#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "data/matrix.hpp"

namespace willump::data {

/// A typed column of raw input data flowing along a transformation-graph edge.
///
/// Graph sources produce columns (one entry per example in the batch);
/// transforms consume columns and produce either new columns or feature
/// blocks (`FeatureMatrix`).
using IntColumn = std::vector<std::int64_t>;
using DoubleColumn = std::vector<double>;
using StringColumn = std::vector<std::string>;

enum class ColumnType { Int, Double, String };

class Column {
 public:
  Column() = default;
  Column(IntColumn v) : v_(std::move(v)) {}     // NOLINT(implicit)
  Column(DoubleColumn v) : v_(std::move(v)) {}  // NOLINT(implicit)
  Column(StringColumn v) : v_(std::move(v)) {}  // NOLINT(implicit)

  ColumnType type() const {
    if (std::holds_alternative<IntColumn>(v_)) return ColumnType::Int;
    if (std::holds_alternative<DoubleColumn>(v_)) return ColumnType::Double;
    return ColumnType::String;
  }

  std::size_t size() const;

  const IntColumn& ints() const { return std::get<IntColumn>(v_); }
  const DoubleColumn& doubles() const { return std::get<DoubleColumn>(v_); }
  const StringColumn& strings() const { return std::get<StringColumn>(v_); }

  Column select_rows(std::span<const std::size_t> idx) const;

  /// Append every entry of `other`, which must hold the same type.
  void append(const Column& other);

 private:
  std::variant<IntColumn, DoubleColumn, StringColumn> v_;
};

/// The value materialized on a graph edge: nothing, a raw column, or a
/// computed feature block.
class Value {
 public:
  Value() = default;
  Value(Column c) : v_(std::move(c)) {}         // NOLINT(implicit)
  Value(FeatureMatrix m) : v_(std::move(m)) {}  // NOLINT(implicit)

  bool empty() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_column() const { return std::holds_alternative<Column>(v_); }
  bool is_features() const { return std::holds_alternative<FeatureMatrix>(v_); }

  const Column& column() const { return std::get<Column>(v_); }
  const FeatureMatrix& features() const { return std::get<FeatureMatrix>(v_); }

  /// Mutable feature-block access for the executor's persistent store:
  /// batched emitters rebuild the slot's matrix in place (capacity reuse)
  /// instead of materializing a fresh one. Throws if not holding features.
  FeatureMatrix& mutable_features() { return std::get<FeatureMatrix>(v_); }

  /// Rebind this slot to hold `c` by copy, reusing the existing column's
  /// heap capacity when the slot already holds one (variant copy-assign of
  /// the same alternative copy-assigns the contained vectors in place).
  /// The executor's persistent node store re-binds sources through this
  /// every batch instead of constructing fresh Values.
  void assign_column(const Column& c) {
    if (is_column()) {
      std::get<Column>(v_) = c;
    } else {
      v_ = c;
    }
  }

  /// Reset to the empty state (slot reads as unset again).
  void clear() { v_.emplace<std::monostate>(); }

  /// Number of examples represented (rows of the column / matrix).
  std::size_t size() const;

  Value select_rows(std::span<const std::size_t> idx) const;

 private:
  std::variant<std::monostate, Column, FeatureMatrix> v_;
};

/// A named batch of raw input columns — what a serving request carries.
class Batch {
 public:
  Batch() = default;

  void add(std::string name, Column col);
  const Column& get(const std::string& name) const;
  bool has(const std::string& name) const;

  std::size_t num_rows() const;
  std::size_t num_columns() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// Gather a subset of rows from every column.
  Batch select_rows(std::span<const std::size_t> idx) const;

  /// Single-row slice (example-at-a-time serving).
  Batch row(std::size_t r) const;

  /// Append every row of `other`, which must have identical column names
  /// (in order) and types. The serving engine uses this to coalesce queued
  /// pointwise queries into one micro-batch.
  void append_rows(const Batch& other);

 private:
  std::vector<std::string> names_;
  std::vector<Column> cols_;
};

}  // namespace willump::data
