#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "data/vector.hpp"

namespace willump::data {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), v_(rows * cols, fill) {}

  static DenseMatrix from_rows(const std::vector<DenseVector>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Reshape to rows x cols filled with `fill`, reusing the backing
  /// store's capacity (per-batch scratch matrices shrink/grow for free).
  void reshape(std::size_t rows, std::size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    v_.assign(rows * cols, fill);
  }

  double operator()(std::size_t r, std::size_t c) const { return v_[r * cols_ + c]; }
  double& operator()(std::size_t r, std::size_t c) { return v_[r * cols_ + c]; }

  std::span<const double> row(std::size_t r) const {
    return std::span<const double>(v_.data() + r * cols_, cols_);
  }
  std::span<double> mutable_row(std::size_t r) {
    return std::span<double>(v_.data() + r * cols_, cols_);
  }

  std::span<const double> data() const { return v_; }

  /// Whole backing store, writable — for block kernels that fill column
  /// slices of a preallocated output matrix in place.
  std::span<double> mutable_data() { return v_; }

  /// Extract a column (copies).
  std::vector<double> column(std::size_t c) const;

  /// Select a subset of rows (gather).
  DenseMatrix select_rows(std::span<const std::size_t> idx) const;

  /// Horizontally concatenate (same row count).
  static DenseMatrix hconcat(const DenseMatrix& a, const DenseMatrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> v_;
};

/// Compressed-sparse-row matrix of doubles.
class CsrMatrix {
 public:
  CsrMatrix() { indptr_.push_back(0); }
  explicit CsrMatrix(std::int32_t cols) : cols_(cols) { indptr_.push_back(0); }

  static CsrMatrix from_rows(std::int32_t cols, const std::vector<SparseVector>& rows);

  std::size_t rows() const { return indptr_.size() - 1; }
  std::int32_t cols() const { return cols_; }
  std::size_t nnz() const { return indices_.size(); }

  /// Append one sparse row; entries must be sorted by index and < cols().
  void append_row(std::span<const SparseEntry> entries);
  void append_row(const SparseVector& row) { append_row(row.entries()); }

  /// Drop all rows but keep the backing arrays' capacity — per-batch
  /// scratch CSR emitters reset instead of reallocating.
  void reset(std::int32_t cols) {
    cols_ = cols;
    indptr_.clear();
    indptr_.push_back(0);
    indices_.clear();
    values_.clear();
  }

  /// Pre-size the backing arrays (batched transforms that know their
  /// row count and can estimate nnz).
  void reserve(std::size_t rows, std::size_t nnz) {
    indptr_.reserve(rows + 1);
    indices_.reserve(nnz);
    values_.reserve(nnz);
  }

  /// Entries of row r as (index, value) pairs.
  struct RowView {
    std::span<const std::int32_t> indices;
    std::span<const double> values;
    std::size_t nnz() const { return indices.size(); }
  };
  RowView row(std::size_t r) const;

  SparseVector row_vector(std::size_t r) const;

  /// Raw CSR arrays (indptr has rows()+1 entries) for batched kernels that
  /// stream all rows without per-row RowView construction.
  std::span<const std::size_t> indptr() const { return indptr_; }
  std::span<const std::int32_t> indices() const { return indices_; }
  std::span<const double> values() const { return values_; }

  /// Writable value strip for elementwise kernels (scaling); the sparsity
  /// pattern stays fixed.
  std::span<double> mutable_values() { return values_; }

  CsrMatrix select_rows(std::span<const std::size_t> idx) const;

  static CsrMatrix hconcat(const CsrMatrix& a, const CsrMatrix& b);

  /// Densify (tests and small matrices only).
  DenseMatrix to_dense() const;

 private:
  std::int32_t cols_ = 0;
  std::vector<std::size_t> indptr_;
  std::vector<std::int32_t> indices_;
  std::vector<double> values_;
};

/// A feature-matrix block that is either dense or sparse.
///
/// Feature generators output one of these per IFV; Willump concatenates
/// blocks from multiple IFVs before handing them to a model. Concatenating
/// mixed dense/sparse blocks promotes the result to sparse.
class FeatureMatrix {
 public:
  FeatureMatrix() : m_(DenseMatrix{}) {}
  FeatureMatrix(DenseMatrix m) : m_(std::move(m)) {}  // NOLINT(implicit)
  FeatureMatrix(CsrMatrix m) : m_(std::move(m)) {}    // NOLINT(implicit)

  bool is_dense() const { return std::holds_alternative<DenseMatrix>(m_); }
  bool is_sparse() const { return !is_dense(); }

  const DenseMatrix& dense() const { return std::get<DenseMatrix>(m_); }
  const CsrMatrix& sparse() const { return std::get<CsrMatrix>(m_); }

  /// Mutable access that switches the alternative only when needed, so a
  /// scratch FeatureMatrix reused across batches keeps its heap capacity.
  DenseMatrix& ensure_dense() {
    if (!is_dense()) m_.emplace<DenseMatrix>();
    return std::get<DenseMatrix>(m_);
  }
  CsrMatrix& ensure_sparse() {
    if (!is_sparse()) m_.emplace<CsrMatrix>();
    return std::get<CsrMatrix>(m_);
  }

  std::size_t rows() const;
  std::size_t cols() const;

  FeatureMatrix select_rows(std::span<const std::size_t> idx) const;

  /// Convert to CSR regardless of representation (copies if dense).
  CsrMatrix to_csr() const;

  /// Horizontally concatenate two blocks (promoting to sparse on mixed input).
  static FeatureMatrix hconcat(const FeatureMatrix& a, const FeatureMatrix& b);

  /// Concatenate many blocks left-to-right; empty list yields an empty matrix.
  static FeatureMatrix hconcat_all(std::span<const FeatureMatrix> blocks);

 private:
  std::variant<DenseMatrix, CsrMatrix> m_;
};

}  // namespace willump::data
