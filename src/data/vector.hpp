#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace willump::data {

/// A dense feature row: a thin owning wrapper over contiguous doubles.
class DenseVector {
 public:
  DenseVector() = default;
  explicit DenseVector(std::size_t dim, double fill = 0.0) : v_(dim, fill) {}
  explicit DenseVector(std::vector<double> v) : v_(std::move(v)) {}
  DenseVector(std::initializer_list<double> init) : v_(init) {}

  std::size_t dim() const { return v_.size(); }
  double operator[](std::size_t i) const { return v_[i]; }
  double& operator[](std::size_t i) { return v_[i]; }

  std::span<const double> values() const { return v_; }
  std::vector<double>& mutable_values() { return v_; }

  void push_back(double x) { v_.push_back(x); }

  /// Append another dense vector (feature-vector concatenation).
  void concat(const DenseVector& other) {
    v_.insert(v_.end(), other.v_.begin(), other.v_.end());
  }

  bool operator==(const DenseVector&) const = default;

 private:
  std::vector<double> v_;
};

/// One nonzero of a sparse row.
struct SparseEntry {
  std::int32_t index = 0;
  double value = 0.0;
  bool operator==(const SparseEntry&) const = default;
};

/// A sparse feature row with a fixed dimensionality.
/// Entries are kept sorted by index; duplicate indices are not allowed.
class SparseVector {
 public:
  SparseVector() = default;
  explicit SparseVector(std::int32_t dim) : dim_(dim) {}
  SparseVector(std::int32_t dim, std::vector<SparseEntry> entries)
      : dim_(dim), entries_(std::move(entries)) {}

  std::int32_t dim() const { return dim_; }
  std::size_t nnz() const { return entries_.size(); }
  std::span<const SparseEntry> entries() const { return entries_; }

  /// Append a nonzero; `index` must be strictly greater than the last one.
  void push_back(std::int32_t index, double value) {
    entries_.push_back({index, value});
  }

  /// Value at `index` (linear in nnz; intended for tests).
  double at(std::int32_t index) const {
    for (const auto& e : entries_) {
      if (e.index == index) return e.value;
    }
    return 0.0;
  }

  /// Concatenate: `other`'s indices are shifted by this->dim().
  void concat(const SparseVector& other) {
    for (const auto& e : other.entries_) {
      entries_.push_back({e.index + dim_, e.value});
    }
    dim_ += other.dim_;
  }

  /// L2 norm of the nonzeros.
  double l2_norm() const;

  /// Scale all nonzeros in place.
  void scale(double s) {
    for (auto& e : entries_) e.value *= s;
  }

  bool operator==(const SparseVector&) const = default;

 private:
  std::int32_t dim_ = 0;
  std::vector<SparseEntry> entries_;
};

inline double SparseVector::l2_norm() const {
  double acc = 0.0;
  for (const auto& e : entries_) acc += e.value * e.value;
  return acc > 0.0 ? std::sqrt(acc) : 0.0;
}

/// Dot product of a sparse row with a dense weight vector.
inline double dot(const SparseVector& x, std::span<const double> w) {
  double acc = 0.0;
  for (const auto& e : x.entries()) {
    acc += e.value * w[static_cast<std::size_t>(e.index)];
  }
  return acc;
}

/// Dot product of two dense spans.
inline double dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace willump::data
