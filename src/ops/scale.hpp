#pragma once

#include <vector>

#include "ops/operator.hpp"

namespace willump::ops {

/// Per-feature affine scaling of a feature matrix: x -> (x - offset) * scale.
///
/// Commutes with concatenation (scaling columns independently is the same
/// before or after concat), so it can sit between the concat node and the
/// model; the IFV analysis descends through it (§5.1). It is also
/// column-sliceable so cascades can apply it to just the efficient IFVs'
/// columns.
class ScaleOp final : public Operator, public ColumnSliceable {
 public:
  ScaleOp(std::vector<double> scale, std::vector<double> offset)
      : scale_(std::move(scale)), offset_(std::move(offset)) {}

  /// Standard-scaler parameters fitted from a training feature matrix.
  static ScaleOp standardize(const data::FeatureMatrix& train);

  std::string name() const override { return "scale"; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  bool commutative() const override { return true; }
  std::string_view serial_tag() const override { return "scale"; }
  void save(serialize::Writer& w) const override;

  data::FeatureMatrix apply_columns(
      const data::FeatureMatrix& m,
      std::span<const std::size_t> global_cols) const override;

  std::size_t dim() const { return scale_.size(); }

 private:
  std::vector<double> scale_;
  std::vector<double> offset_;
};

}  // namespace willump::ops
