#pragma once

#include <cstdint>
#include <vector>

#include "ops/block_kernels.hpp"
#include "ops/operator.hpp"

namespace willump::ops {

/// Hashed one-hot encoding of an integer key column into `n_buckets` sparse
/// indicator features (the "feature encoding" operator family of the Price
/// benchmark, Table 1).
class OneHotHashOp final : public Operator, public SparseBlockEmitter {
 public:
  OneHotHashOp(std::int32_t n_buckets, std::uint64_t salt = 0,
               std::string label = "one_hot_hash")
      : n_buckets_(n_buckets), salt_(salt), label_(std::move(label)) {}

  std::string name() const override { return label_; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  data::CsrMatrix emit_batch(std::span<const data::Value> inputs,
                             const BlockExecContext& ctx) const override;
  void emit_into(std::span<const data::Value> inputs,
                 const BlockExecContext& ctx,
                 data::CsrMatrix& out) const override;
  std::string_view serial_tag() const override { return "one_hot_hash"; }
  void save(serialize::Writer& w) const override;

  std::int32_t bucket_of(std::int64_t key) const;

 private:
  std::int32_t n_buckets_;
  std::uint64_t salt_;
  std::string label_;
};

/// Pass-through assembly of one or more numeric (int/double) columns into a
/// dense feature block, one column per feature.
class NumericColumnsOp final : public Operator, public DenseBlockWriter {
 public:
  explicit NumericColumnsOp(std::string label = "numeric_columns")
      : label_(std::move(label)) {}

  std::string name() const override { return label_; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  void write_block(std::span<const data::Value> inputs,
                   const BlockExecContext& ctx, double* dst, std::size_t rows,
                   std::size_t stride) const override;
  std::string_view serial_tag() const override { return "numeric_columns"; }
  void save(serialize::Writer& w) const override;

 private:
  std::string label_;
};

/// Map a double column through fixed ascending bucket boundaries to the
/// bucket index (as a double column), e.g. hour-of-day binning in Tracking.
class BucketizeOp final : public Operator {
 public:
  explicit BucketizeOp(std::vector<double> boundaries)
      : boundaries_(std::move(boundaries)) {}

  std::string name() const override { return "bucketize"; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  std::string_view serial_tag() const override { return "bucketize"; }
  void save(serialize::Writer& w) const override;

 private:
  std::vector<double> boundaries_;
};

/// Element-wise arithmetic over numeric columns producing a double column.
/// Unary kinds take one input; binary kinds take two.
class ColumnMathOp final : public Operator {
 public:
  enum class Kind { Add, Sub, Mul, Div, Log1p };

  explicit ColumnMathOp(Kind kind) : kind_(kind) {}

  std::string name() const override;
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  std::string_view serial_tag() const override { return "column_math"; }
  void save(serialize::Writer& w) const override;

 private:
  Kind kind_;
};

}  // namespace willump::ops
