#include "ops/string_ops.hpp"

#include <cctype>
#include <stdexcept>
#include <unordered_set>

#include "common/string_util.hpp"

#include "serialize/buffer.hpp"

namespace willump::ops {

namespace {

const data::StringColumn& string_input(std::span<const data::Value> inputs,
                                       const char* who) {
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::String) {
    throw std::invalid_argument(std::string(who) + ": expects one string column");
  }
  return inputs[0].column().strings();
}

}  // namespace

data::Value LowercaseOp::eval_batch(std::span<const data::Value> inputs) const {
  const auto& in = string_input(inputs, "lowercase");
  data::StringColumn out;
  out.reserve(in.size());
  for (const auto& s : in) out.push_back(common::to_lower(s));
  return data::Value(data::Column(std::move(out)));
}

std::string LowercaseOp::map_string(std::string_view s) const {
  return common::to_lower(s);
}

data::Value StripPunctOp::eval_batch(std::span<const data::Value> inputs) const {
  const auto& in = string_input(inputs, "strip_punct");
  data::StringColumn out;
  out.reserve(in.size());
  for (const auto& s : in) out.push_back(common::strip_punct(s));
  return data::Value(data::Column(std::move(out)));
}

std::string StripPunctOp::map_string(std::string_view s) const {
  return common::strip_punct(s);
}

void StringStatsOp::features_of(std::string_view s, std::span<double> out) {
  const auto words = common::split_ws(s);
  double total_word_len = 0.0;
  std::unordered_set<std::string_view> unique(words.begin(), words.end());
  for (auto w : words) total_word_len += static_cast<double>(w.size());
  const double n_words = static_cast<double>(words.size());
  out[0] = static_cast<double>(s.size());
  out[1] = n_words;
  out[2] = n_words > 0 ? total_word_len / n_words : 0.0;
  out[3] = common::upper_ratio(s);
  out[4] = common::digit_ratio(s);
  out[5] = n_words > 0 ? static_cast<double>(unique.size()) / n_words : 0.0;
}

data::Value StringStatsOp::eval_batch(std::span<const data::Value> inputs) const {
  const auto& in = string_input(inputs, "string_stats");
  data::DenseMatrix out(in.size(), kNumFeatures);
  for (std::size_t r = 0; r < in.size(); ++r) {
    features_of(in[r], out.mutable_row(r));
  }
  return data::Value(data::FeatureMatrix(std::move(out)));
}

data::Value KeywordCountOp::eval_batch(std::span<const data::Value> inputs) const {
  const auto& in = string_input(inputs, "keyword_count");
  data::DenseMatrix out(in.size(), num_features());
  for (std::size_t r = 0; r < in.size(); ++r) {
    auto row = out.mutable_row(r);
    double total = 0.0;
    for (std::size_t k = 0; k < keywords_.size(); ++k) {
      const double c =
          static_cast<double>(common::count_occurrences(in[r], keywords_[k]));
      row[k] = c;
      total += c;
    }
    row[keywords_.size()] = total;
  }
  return data::Value(data::FeatureMatrix(std::move(out)));
}

void KeywordCountOp::save(serialize::Writer& w) const {
  w.u64(keywords_.size());
  for (const auto& k : keywords_) w.str(k);
}

}  // namespace willump::ops
