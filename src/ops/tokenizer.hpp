#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace willump::ops {

/// Analyzer families for text vectorization, mirroring the paper's
/// "several different tokenizers, n-gram ranges, and norms" (§5.2).
enum class Analyzer { Word, Char };

/// N-gram extraction settings.
struct NgramRange {
  int min_n = 1;
  int max_n = 1;
};

/// Emit every n-gram of `s` under (analyzer, range) to `sink`.
///
/// Word analyzer: whitespace tokens joined by a single space.
/// Char analyzer: sliding character windows (including spaces, as in
/// scikit-learn's `analyzer='char'`).
void for_each_ngram(std::string_view s, Analyzer analyzer, NgramRange range,
                    const std::function<void(std::string_view)>& sink);

/// Collect all n-grams of a string (testing/fitting convenience).
std::vector<std::string> ngrams_of(std::string_view s, Analyzer analyzer,
                                   NgramRange range);

}  // namespace willump::ops
