#pragma once

#include <cctype>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace willump::ops {

/// Analyzer families for text vectorization, mirroring the paper's
/// "several different tokenizers, n-gram ranges, and norms" (§5.2).
enum class Analyzer { Word, Char };

/// N-gram extraction settings.
struct NgramRange {
  int min_n = 1;
  int max_n = 1;
};

/// Reusable tokenization buffers: one per worker (or thread_local) so the
/// hot transform path does zero per-document allocations after warmup.
struct TokenizerScratch {
  std::vector<std::string_view> tokens;  // whitespace split (word analyzer)
  std::string buf;                       // joined higher-order n-grams
};

/// Emit every n-gram of `s` under (analyzer, range) to `sink`, reusing
/// `scratch` across calls. Templated on the sink so the per-gram callback
/// inlines (no std::function dispatch in the hot loop).
///
/// Word analyzer: whitespace tokens joined by a single space.
/// Char analyzer: sliding character windows (including spaces, as in
/// scikit-learn's `analyzer='char'`).
template <typename Sink>
void for_each_ngram_t(std::string_view s, Analyzer analyzer, NgramRange range,
                      TokenizerScratch& scratch, Sink&& sink) {
  if (analyzer == Analyzer::Char) {
    for (int n = range.min_n; n <= range.max_n; ++n) {
      if (n <= 0 || static_cast<std::size_t>(n) > s.size()) continue;
      for (std::size_t i = 0; i + static_cast<std::size_t>(n) <= s.size();
           ++i) {
        sink(s.substr(i, static_cast<std::size_t>(n)));
      }
    }
    return;
  }

  // Whitespace split into the reusable token vector (split_ws allocates a
  // fresh vector per call — this is the per-doc temporary the hot path
  // must not pay).
  auto& tokens = scratch.tokens;
  tokens.clear();
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) tokens.push_back(s.substr(start, i - start));
  }

  auto& buf = scratch.buf;
  for (int n = range.min_n; n <= range.max_n; ++n) {
    if (n <= 0 || static_cast<std::size_t>(n) > tokens.size()) continue;
    if (n == 1) {
      for (auto t : tokens) sink(t);
      continue;
    }
    for (std::size_t k = 0; k + static_cast<std::size_t>(n) <= tokens.size();
         ++k) {
      buf.clear();
      for (int j = 0; j < n; ++j) {
        if (j > 0) buf.push_back(' ');
        buf.append(tokens[k + static_cast<std::size_t>(j)]);
      }
      sink(buf);
    }
  }
}

/// Type-erased convenience wrapper (fitting and cold paths).
void for_each_ngram(std::string_view s, Analyzer analyzer, NgramRange range,
                    const std::function<void(std::string_view)>& sink);

/// Collect all n-grams of a string (testing/fitting convenience).
std::vector<std::string> ngrams_of(std::string_view s, Analyzer analyzer,
                                   NgramRange range);

}  // namespace willump::ops
