#include "ops/concat.hpp"

#include <stdexcept>
#include <vector>

namespace willump::ops {

data::Value ConcatOp::eval_batch(std::span<const data::Value> inputs) const {
  std::vector<data::FeatureMatrix> blocks;
  blocks.reserve(inputs.size());
  for (const auto& v : inputs) {
    if (!v.is_features()) {
      throw std::invalid_argument("concat: expects feature-matrix inputs");
    }
    blocks.push_back(v.features());
  }
  return data::Value(data::FeatureMatrix::hconcat_all(blocks));
}

}  // namespace willump::ops
