#include "ops/lookup.hpp"

#include <stdexcept>

#include "serialize/buffer.hpp"

namespace willump::ops {

data::Value TableLookupOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::Int) {
    throw std::invalid_argument(name() + ": expects one int key column");
  }
  const auto& keys = inputs[0].column().ints();

  std::vector<const data::DenseVector*> rows;
  client_->get_batch(keys, rows);

  const std::size_t dim = client_->table().feature_dim();
  data::DenseMatrix out(keys.size(), dim);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    auto src = rows[r]->values();
    auto dst = out.mutable_row(r);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return data::Value(data::FeatureMatrix(std::move(out)));
}

void TableLookupOp::write_block(std::span<const data::Value> inputs,
                                const BlockExecContext& ctx, double* dst,
                                std::size_t rows, std::size_t stride) const {
  (void)ctx;
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::Int) {
    throw std::invalid_argument(name() + ": expects one int key column");
  }
  const auto& keys = inputs[0].column().ints();
  if (keys.size() != rows) {
    throw std::invalid_argument(name() + ": key count mismatch");
  }

  // Still one pipelined round trip, but rows land straight in the shared
  // feature block — the per-op DenseMatrix (and its later hconcat copy)
  // disappears.
  thread_local std::vector<const data::DenseVector*> row_ptrs;
  row_ptrs.clear();
  client_->get_batch(keys, row_ptrs);
  for (std::size_t r = 0; r < row_ptrs.size(); ++r) {
    auto src = row_ptrs[r]->values();
    std::copy(src.begin(), src.end(), dst + r * stride);
  }
}

void TableLookupOp::save(serialize::Writer& w) const {
  w.str(client_->table().name());
  w.f64(client_->network().rtt_micros);
  w.f64(client_->network().per_key_micros);
}

}  // namespace willump::ops
