#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/matrix.hpp"
#include "data/value.hpp"
#include "ops/operator.hpp"
#include "ops/tokenizer.hpp"

namespace willump::serialize {
class Reader;
}

namespace willump::ops {

/// TF-IDF vectorizer settings (scikit-learn-compatible subset).
struct TfIdfConfig {
  Analyzer analyzer = Analyzer::Word;
  NgramRange ngrams{1, 1};
  int max_features = 4000;  // keep the most frequent terms
  int min_df = 2;           // drop terms in fewer documents
  bool use_idf = true;
  bool sublinear_tf = false;  // 1 + log(tf)
  bool l2_normalize = true;
};

/// Fitted TF-IDF state: vocabulary plus smoothed IDF weights.
///
/// Fitting happens at training time; the graph node (`TfIdfOp`) holds a
/// shared immutable `TfIdfModel`, matching the paper's assumption that the
/// same feature pipeline runs at train and serve time (§4.2).
class TfIdfModel {
 public:
  static TfIdfModel fit(const data::StringColumn& corpus, TfIdfConfig cfg);

  /// Transform one document into a sorted sparse row.
  data::SparseVector transform_one(std::string_view doc) const;

  /// Transform a column of documents into a CSR block.
  data::CsrMatrix transform(const data::StringColumn& docs) const;

  std::int32_t vocabulary_size() const { return dim_; }
  const TfIdfConfig& config() const { return cfg_; }

  /// Term index, or -1 if out of vocabulary.
  std::int32_t term_index(const std::string& term) const;

  /// Fitted-state round trip (vocabulary is written index-ordered so the
  /// byte stream is deterministic across hash-map layouts).
  void save(serialize::Writer& w) const;
  static TfIdfModel load(serialize::Reader& r);

 private:
  TfIdfConfig cfg_;
  std::int32_t dim_ = 0;
  std::unordered_map<std::string, std::int32_t> vocab_;
  std::vector<double> idf_;
};

/// Graph node applying a fitted TF-IDF model to a string column.
/// Compilable (the paper compiles TF-IDF through parameterized Weld
/// templates, §5.2) but not a string map (output is a feature block).
class TfIdfOp final : public Operator {
 public:
  explicit TfIdfOp(std::shared_ptr<const TfIdfModel> model, std::string label = "tfidf")
      : model_(std::move(model)), label_(std::move(label)) {}

  std::string name() const override { return label_; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  std::string_view serial_tag() const override { return "tfidf"; }
  void save(serialize::Writer& w) const override;

  const TfIdfModel& model() const { return *model_; }

 private:
  std::shared_ptr<const TfIdfModel> model_;
  std::string label_;
};

}  // namespace willump::ops
