#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/matrix.hpp"
#include "data/value.hpp"
#include "kernels/dispatch.hpp"
#include "ops/block_kernels.hpp"
#include "ops/operator.hpp"
#include "ops/tokenizer.hpp"

namespace willump::serialize {
class Reader;
}

namespace willump::ops {

/// Heterogeneous string hash so the hot path can probe the vocabulary with
/// a string_view n-gram — no per-gram std::string temporary.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  std::size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Per-worker scratch for batched TF-IDF transforms: a dense count array
/// with an all-zeros invariant (only `touched` slots are ever nonzero, and
/// they are re-zeroed after each document), the touched-index list, the
/// assembled entry row, and tokenizer buffers. One allocation steady-state.
struct TfIdfScratch {
  std::vector<double> counts;          // dim_ slots, all-zero between docs
  std::vector<std::int32_t> touched;   // vocab indices hit by this doc
  std::vector<data::SparseEntry> row;  // assembled (index, tf*idf) entries
  TokenizerScratch tok;
};

/// TF-IDF vectorizer settings (scikit-learn-compatible subset).
struct TfIdfConfig {
  Analyzer analyzer = Analyzer::Word;
  NgramRange ngrams{1, 1};
  int max_features = 4000;  // keep the most frequent terms
  int min_df = 2;           // drop terms in fewer documents
  bool use_idf = true;
  bool sublinear_tf = false;  // 1 + log(tf)
  bool l2_normalize = true;
};

/// Fitted TF-IDF state: vocabulary plus smoothed IDF weights.
///
/// Fitting happens at training time; the graph node (`TfIdfOp`) holds a
/// shared immutable `TfIdfModel`, matching the paper's assumption that the
/// same feature pipeline runs at train and serve time (§4.2).
class TfIdfModel {
 public:
  TfIdfModel() = default;
  // terms_ holds views into vocab_'s key nodes: moves keep the nodes (views
  // stay valid), but copies allocate fresh nodes, so rebuild the index.
  TfIdfModel(const TfIdfModel& o)
      : cfg_(o.cfg_), dim_(o.dim_), vocab_(o.vocab_), idf_(o.idf_) {
    finalize_index();
  }
  TfIdfModel& operator=(const TfIdfModel& o) {
    if (this != &o) {
      cfg_ = o.cfg_;
      dim_ = o.dim_;
      vocab_ = o.vocab_;
      idf_ = o.idf_;
      finalize_index();
    }
    return *this;
  }
  TfIdfModel(TfIdfModel&&) = default;
  TfIdfModel& operator=(TfIdfModel&&) = default;

  static TfIdfModel fit(const data::StringColumn& corpus, TfIdfConfig cfg);

  /// Transform one document into a sorted sparse row.
  data::SparseVector transform_one(std::string_view doc) const;

  /// Transform a column of documents into a CSR block.
  data::CsrMatrix transform(const data::StringColumn& docs) const;

  /// Blocked transform: append one CSR row per document directly onto
  /// `out` (which must have cols() == vocabulary_size()), reusing `scratch`
  /// across documents so the steady-state path allocates nothing. `lookup`
  /// selects the vocabulary probe strategy; both variants produce
  /// bit-identical rows to transform_one.
  void transform_into(std::span<const std::string> docs,
                      kernels::LookupVariant lookup, TfIdfScratch& scratch,
                      data::CsrMatrix& out) const;

  std::int32_t vocabulary_size() const { return dim_; }
  const TfIdfConfig& config() const { return cfg_; }

  /// Term index, or -1 if out of vocabulary.
  std::int32_t term_index(std::string_view term) const;

  /// Fitted-state round trip (vocabulary is written index-ordered so the
  /// byte stream is deterministic across hash-map layouts).
  void save(serialize::Writer& w) const;
  static TfIdfModel load(serialize::Reader& r);

 private:
  /// Rebuild terms_ / sorted_perm_ from vocab_ (after fit or load).
  void finalize_index();

  /// Accumulate one document's vocab-hit counts into scratch (counts +
  /// touched); counts must be dim_ zeros on entry.
  void count_terms(std::string_view doc, kernels::LookupVariant lookup,
                   TfIdfScratch& scratch) const;

  /// Turn accumulated counts into the sorted tf·idf entry row in
  /// scratch.row (l2-normalized per config) and restore the counts
  /// all-zeros invariant.
  void build_row(TfIdfScratch& scratch) const;

  TfIdfConfig cfg_;
  std::int32_t dim_ = 0;
  // Heterogeneous map: find(string_view) without a temporary string.
  // Node-based, so the key strings are stable and terms_ can view them.
  std::unordered_map<std::string, std::int32_t, TransparentStringHash,
                     std::equal_to<>>
      vocab_;
  std::vector<double> idf_;
  std::vector<std::string_view> terms_;      // index -> term (views into vocab_ keys)
  std::vector<std::int32_t> sorted_perm_;    // vocab indices, term-lexicographic

  /// Flat open-addressing probe table for the HashMap lookup variant: one
  /// contiguous access per probe instead of the unordered_map's bucket-node
  /// chase. The stored hash filters almost every collision before the
  /// string compare, and the compare keeps hits exact (bit-exact rows).
  struct FlatSlot {
    std::uint64_t hash = 0;
    std::int32_t idx = -1;  // vocab index, -1 = empty
  };
  std::vector<FlatSlot> flat_;  // power-of-two size, >= 2x load headroom
  std::uint64_t flat_mask_ = 0;
};

/// Graph node applying a fitted TF-IDF model to a string column.
/// Compilable (the paper compiles TF-IDF through parameterized Weld
/// templates, §5.2) but not a string map (output is a feature block).
class TfIdfOp final : public Operator, public SparseBlockEmitter {
 public:
  explicit TfIdfOp(std::shared_ptr<const TfIdfModel> model, std::string label = "tfidf")
      : model_(std::move(model)), label_(std::move(label)) {}

  std::string name() const override { return label_; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  data::CsrMatrix emit_batch(std::span<const data::Value> inputs,
                             const BlockExecContext& ctx) const override;
  void emit_into(std::span<const data::Value> inputs,
                 const BlockExecContext& ctx,
                 data::CsrMatrix& out) const override;
  std::string_view serial_tag() const override { return "tfidf"; }
  void save(serialize::Writer& w) const override;

  const TfIdfModel& model() const { return *model_; }

 private:
  std::shared_ptr<const TfIdfModel> model_;
  std::string label_;
};

}  // namespace willump::ops
