#include "ops/encoders.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"
#include "serialize/buffer.hpp"

namespace willump::ops {

namespace {

/// View a numeric column as doubles (copies for int columns).
data::DoubleColumn as_doubles(const data::Column& c, const char* who) {
  switch (c.type()) {
    case data::ColumnType::Double:
      return c.doubles();
    case data::ColumnType::Int: {
      data::DoubleColumn out;
      out.reserve(c.size());
      for (auto v : c.ints()) out.push_back(static_cast<double>(v));
      return out;
    }
    default:
      throw std::invalid_argument(std::string(who) + ": expects numeric column");
  }
}

}  // namespace

std::int32_t OneHotHashOp::bucket_of(std::int64_t key) const {
  const std::uint64_t h =
      common::hash_u64(static_cast<std::uint64_t>(key) ^ salt_);
  return static_cast<std::int32_t>(h % static_cast<std::uint64_t>(n_buckets_));
}

data::Value OneHotHashOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::Int) {
    throw std::invalid_argument("one_hot_hash: expects one int column");
  }
  const auto& keys = inputs[0].column().ints();
  data::CsrMatrix out(n_buckets_);
  data::SparseEntry e[1];
  for (std::int64_t k : keys) {
    e[0] = {bucket_of(k), 1.0};
    out.append_row(std::span<const data::SparseEntry>(e, 1));
  }
  return data::Value(data::FeatureMatrix(std::move(out)));
}

data::CsrMatrix OneHotHashOp::emit_batch(std::span<const data::Value> inputs,
                                         const BlockExecContext& ctx) const {
  data::CsrMatrix out(n_buckets_);
  emit_into(inputs, ctx, out);
  return out;
}

void OneHotHashOp::emit_into(std::span<const data::Value> inputs,
                             const BlockExecContext& ctx,
                             data::CsrMatrix& out) const {
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::Int) {
    throw std::invalid_argument("one_hot_hash: expects one int column");
  }
  const auto& keys = inputs[0].column().ints();
  out.reset(n_buckets_);
  out.reserve(keys.size(), keys.size());  // exactly one entry per row
  data::SparseEntry e[1];
  if (ctx.cfg.onehot == kernels::OneHotVariant::Batched) {
    // Hash the whole block into a staged bucket array first (worker arena
    // when threaded, reused thread-local otherwise), then run the CSR
    // append as its own tight loop. Identical buckets to the scalar path.
    std::span<std::int32_t> buckets;
    thread_local std::vector<std::int32_t> fallback;
    if (ctx.arena != nullptr) {
      buckets = ctx.arena->make_span<std::int32_t>(keys.size());
    } else {
      fallback.resize(keys.size());
      buckets = fallback;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      buckets[i] = bucket_of(keys[i]);
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      e[0] = {buckets[i], 1.0};
      out.append_row(std::span<const data::SparseEntry>(e, 1));
    }
    return;
  }
  for (std::int64_t k : keys) {
    e[0] = {bucket_of(k), 1.0};
    out.append_row(std::span<const data::SparseEntry>(e, 1));
  }
}

data::Value NumericColumnsOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.empty()) {
    throw std::invalid_argument("numeric_columns: expects at least one column");
  }
  std::vector<data::DoubleColumn> cols;
  cols.reserve(inputs.size());
  for (const auto& v : inputs) {
    if (!v.is_column()) {
      throw std::invalid_argument("numeric_columns: expects raw columns");
    }
    cols.push_back(as_doubles(v.column(), "numeric_columns"));
  }
  const std::size_t n = cols[0].size();
  data::DenseMatrix out(n, cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].size() != n) {
      throw std::invalid_argument("numeric_columns: column length mismatch");
    }
    for (std::size_t r = 0; r < n; ++r) out(r, c) = cols[c][r];
  }
  return data::Value(data::FeatureMatrix(std::move(out)));
}

void NumericColumnsOp::write_block(std::span<const data::Value> inputs,
                                   const BlockExecContext& ctx, double* dst,
                                   std::size_t rows, std::size_t stride) const {
  (void)ctx;
  if (inputs.empty()) {
    throw std::invalid_argument("numeric_columns: expects at least one column");
  }
  // Column-at-a-time straight into the shared block: no DoubleColumn
  // temporaries, no per-op DenseMatrix. Same int->double casts as
  // eval_batch, so the written values are bit-identical.
  for (std::size_t c = 0; c < inputs.size(); ++c) {
    if (!inputs[c].is_column()) {
      throw std::invalid_argument("numeric_columns: expects raw columns");
    }
    const auto& col = inputs[c].column();
    if (col.size() != rows) {
      throw std::invalid_argument("numeric_columns: column length mismatch");
    }
    switch (col.type()) {
      case data::ColumnType::Double: {
        const auto& v = col.doubles();
        for (std::size_t r = 0; r < rows; ++r) dst[r * stride + c] = v[r];
        break;
      }
      case data::ColumnType::Int: {
        const auto& v = col.ints();
        for (std::size_t r = 0; r < rows; ++r) {
          dst[r * stride + c] = static_cast<double>(v[r]);
        }
        break;
      }
      default:
        throw std::invalid_argument("numeric_columns: expects numeric column");
    }
  }
}

data::Value BucketizeOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].is_column()) {
    throw std::invalid_argument("bucketize: expects one numeric column");
  }
  const auto vals = as_doubles(inputs[0].column(), "bucketize");
  data::DoubleColumn out;
  out.reserve(vals.size());
  for (double v : vals) {
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
    out.push_back(static_cast<double>(it - boundaries_.begin()));
  }
  return data::Value(data::Column(std::move(out)));
}

std::string ColumnMathOp::name() const {
  switch (kind_) {
    case Kind::Add: return "col_add";
    case Kind::Sub: return "col_sub";
    case Kind::Mul: return "col_mul";
    case Kind::Div: return "col_div";
    case Kind::Log1p: return "col_log1p";
  }
  return "col_math";
}

data::Value ColumnMathOp::eval_batch(std::span<const data::Value> inputs) const {
  const bool unary = kind_ == Kind::Log1p;
  if (inputs.size() != (unary ? 1u : 2u)) {
    throw std::invalid_argument("col_math: wrong arity");
  }
  const auto a = as_doubles(inputs[0].column(), "col_math");
  data::DoubleColumn out(a.size());
  if (unary) {
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::log1p(std::max(a[i], 0.0));
    return data::Value(data::Column(std::move(out)));
  }
  const auto b = as_doubles(inputs[1].column(), "col_math");
  if (b.size() != a.size()) {
    throw std::invalid_argument("col_math: column length mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    switch (kind_) {
      case Kind::Add: out[i] = a[i] + b[i]; break;
      case Kind::Sub: out[i] = a[i] - b[i]; break;
      case Kind::Mul: out[i] = a[i] * b[i]; break;
      case Kind::Div: out[i] = b[i] != 0.0 ? a[i] / b[i] : 0.0; break;
      case Kind::Log1p: break;  // unreachable
    }
  }
  return data::Value(data::Column(std::move(out)));
}

void OneHotHashOp::save(serialize::Writer& w) const {
  w.i32(n_buckets_);
  w.u64(salt_);
  w.str(label_);
}

void NumericColumnsOp::save(serialize::Writer& w) const { w.str(label_); }

void BucketizeOp::save(serialize::Writer& w) const { w.doubles(boundaries_); }

void ColumnMathOp::save(serialize::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
}

}  // namespace willump::ops
