#pragma once

#include <string>
#include <vector>

#include "ops/operator.hpp"

namespace willump::ops {

/// Element-wise ASCII lowercasing (string map; fusable).
class LowercaseOp final : public Operator {
 public:
  std::string name() const override { return "lowercase"; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  bool is_string_map() const override { return true; }
  std::string map_string(std::string_view s) const override;
  std::string_view serial_tag() const override { return "lowercase"; }
  void save(serialize::Writer&) const override {}  // stateless
};

/// Element-wise punctuation stripping (string map; fusable).
class StripPunctOp final : public Operator {
 public:
  std::string name() const override { return "strip_punct"; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  bool is_string_map() const override { return true; }
  std::string map_string(std::string_view s) const override;
  std::string_view serial_tag() const override { return "strip_punct"; }
  void save(serialize::Writer&) const override {}  // stateless
};

/// Cheap per-string summary features: length, word count, mean word length,
/// uppercase ratio, digit ratio, unique-word ratio. The classic "efficient
/// IFV" for the Product benchmark (the approximate model can often classify
/// titles from these alone).
class StringStatsOp final : public Operator {
 public:
  static constexpr std::size_t kNumFeatures = 6;

  std::string name() const override { return "string_stats"; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  std::string_view serial_tag() const override { return "string_stats"; }
  void save(serialize::Writer&) const override {}  // stateless

  /// Compute the feature row for one string (used by tests and fused paths).
  static void features_of(std::string_view s, std::span<double> out);
};

/// Counts occurrences of each keyword from a fixed list, plus a total count.
/// Models the paper's toxic-comment example: "the presence of curse words
/// quickly classifies some inputs as toxic" (§1).
class KeywordCountOp final : public Operator {
 public:
  explicit KeywordCountOp(std::vector<std::string> keywords)
      : keywords_(std::move(keywords)) {}

  std::string name() const override { return "keyword_count"; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  std::string_view serial_tag() const override { return "keyword_count"; }
  void save(serialize::Writer& w) const override;

  std::size_t num_features() const { return keywords_.size() + 1; }
  const std::vector<std::string>& keywords() const { return keywords_; }

 private:
  std::vector<std::string> keywords_;
};

}  // namespace willump::ops
