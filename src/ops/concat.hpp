#pragma once

#include "ops/operator.hpp"

namespace willump::ops {

/// Horizontal concatenation of feature blocks — the canonical commutative
/// node of every transformation graph (Figure 1's "Feature Concatenation").
/// Willump's IFV identification starts its descent from the model through
/// nodes like this one (§5.1).
class ConcatOp final : public Operator {
 public:
  std::string name() const override { return "concat"; }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  bool commutative() const override { return true; }
  std::string_view serial_tag() const override { return "concat"; }
  void save(serialize::Writer&) const override {}  // stateless
};

}  // namespace willump::ops
