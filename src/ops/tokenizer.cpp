#include "ops/tokenizer.hpp"

#include "common/string_util.hpp"

namespace willump::ops {

void for_each_ngram(std::string_view s, Analyzer analyzer, NgramRange range,
                    const std::function<void(std::string_view)>& sink) {
  if (analyzer == Analyzer::Char) {
    for (int n = range.min_n; n <= range.max_n; ++n) {
      if (n <= 0 || static_cast<std::size_t>(n) > s.size()) continue;
      for (std::size_t i = 0; i + static_cast<std::size_t>(n) <= s.size(); ++i) {
        sink(s.substr(i, static_cast<std::size_t>(n)));
      }
    }
    return;
  }

  const auto tokens = common::split_ws(s);
  // Unigrams need no buffer; higher-order n-grams are joined with spaces
  // into a reusable buffer to avoid per-gram allocations in the hot path.
  std::string buf;
  for (int n = range.min_n; n <= range.max_n; ++n) {
    if (n <= 0 || static_cast<std::size_t>(n) > tokens.size()) continue;
    if (n == 1) {
      for (auto t : tokens) sink(t);
      continue;
    }
    for (std::size_t i = 0; i + static_cast<std::size_t>(n) <= tokens.size(); ++i) {
      buf.clear();
      for (int j = 0; j < n; ++j) {
        if (j > 0) buf.push_back(' ');
        buf.append(tokens[i + static_cast<std::size_t>(j)]);
      }
      sink(buf);
    }
  }
}

std::vector<std::string> ngrams_of(std::string_view s, Analyzer analyzer,
                                   NgramRange range) {
  std::vector<std::string> out;
  for_each_ngram(s, analyzer, range,
                 [&](std::string_view g) { out.emplace_back(g); });
  return out;
}

}  // namespace willump::ops
