#include "ops/tokenizer.hpp"

namespace willump::ops {

void for_each_ngram(std::string_view s, Analyzer analyzer, NgramRange range,
                    const std::function<void(std::string_view)>& sink) {
  thread_local TokenizerScratch scratch;
  for_each_ngram_t(s, analyzer, range, scratch, sink);
}

std::vector<std::string> ngrams_of(std::string_view s, Analyzer analyzer,
                                   NgramRange range) {
  std::vector<std::string> out;
  for_each_ngram(s, analyzer, range,
                 [&](std::string_view g) { out.emplace_back(g); });
  return out;
}

}  // namespace willump::ops
