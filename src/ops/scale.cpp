#include "ops/scale.hpp"

#include <cmath>
#include <stdexcept>

#include "serialize/buffer.hpp"

namespace willump::ops {

ScaleOp ScaleOp::standardize(const data::FeatureMatrix& train) {
  if (!train.is_dense()) {
    throw std::invalid_argument("ScaleOp::standardize: dense input required");
  }
  const auto& m = train.dense();
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<double> mean(d, 0.0), var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < d; ++c) mean[c] += row[c];
  }
  for (auto& v : mean) v /= std::max<std::size_t>(n, 1);
  for (std::size_t r = 0; r < n; ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      var[c] += (row[c] - mean[c]) * (row[c] - mean[c]);
    }
  }
  std::vector<double> scale(d, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[c] / std::max<std::size_t>(n, 1));
    scale[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
  return ScaleOp(std::move(scale), std::move(mean));
}

data::Value ScaleOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].is_features()) {
    throw std::invalid_argument("scale: expects one feature matrix");
  }
  std::vector<std::size_t> all(dim());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return data::Value(apply_columns(inputs[0].features(), all));
}

data::FeatureMatrix ScaleOp::apply_columns(
    const data::FeatureMatrix& m, std::span<const std::size_t> global_cols) const {
  if (m.cols() != global_cols.size()) {
    throw std::invalid_argument("scale: column mapping size mismatch");
  }
  if (m.is_dense()) {
    data::DenseMatrix out = m.dense();
    for (std::size_t r = 0; r < out.rows(); ++r) {
      auto row = out.mutable_row(r);
      for (std::size_t c = 0; c < row.size(); ++c) {
        const std::size_t g = global_cols[c];
        row[c] = (row[c] - offset_[g]) * scale_[g];
      }
    }
    return data::FeatureMatrix(std::move(out));
  }
  // Sparse: scaling only (offsets would densify; sparse pipelines fit
  // offset = 0, which standardize() does not produce for sparse inputs).
  const auto& in = m.sparse();
  data::CsrMatrix out(in.cols());
  std::vector<data::SparseEntry> entries;
  for (std::size_t r = 0; r < in.rows(); ++r) {
    auto rv = in.row(r);
    entries.clear();
    for (std::size_t k = 0; k < rv.nnz(); ++k) {
      const std::size_t g = global_cols[static_cast<std::size_t>(rv.indices[k])];
      entries.push_back({rv.indices[k], rv.values[k] * scale_[g]});
    }
    out.append_row(entries);
  }
  return data::FeatureMatrix(std::move(out));
}

void ScaleOp::save(serialize::Writer& w) const {
  w.doubles(scale_);
  w.doubles(offset_);
}

}  // namespace willump::ops
