#include "ops/scale.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/featureops.hpp"
#include "serialize/buffer.hpp"

namespace willump::ops {

ScaleOp ScaleOp::standardize(const data::FeatureMatrix& train) {
  if (!train.is_dense()) {
    throw std::invalid_argument("ScaleOp::standardize: dense input required");
  }
  const auto& m = train.dense();
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  std::vector<double> mean(d, 0.0), var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < d; ++c) mean[c] += row[c];
  }
  for (auto& v : mean) v /= std::max<std::size_t>(n, 1);
  for (std::size_t r = 0; r < n; ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      var[c] += (row[c] - mean[c]) * (row[c] - mean[c]);
    }
  }
  std::vector<double> scale(d, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[c] / std::max<std::size_t>(n, 1));
    scale[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
  return ScaleOp(std::move(scale), std::move(mean));
}

data::Value ScaleOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].is_features()) {
    throw std::invalid_argument("scale: expects one feature matrix");
  }
  std::vector<std::size_t> all(dim());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return data::Value(apply_columns(inputs[0].features(), all));
}

data::FeatureMatrix ScaleOp::apply_columns(
    const data::FeatureMatrix& m, std::span<const std::size_t> global_cols) const {
  if (m.cols() != global_cols.size()) {
    throw std::invalid_argument("scale: column mapping size mismatch");
  }
  // Gather the slice's parameters into contiguous per-local-column arrays
  // once, then hand the whole block to the SIMD elementwise kernel. The
  // kernel computes the same (x - offset) * scale expression per element,
  // so vectorized output is bit-identical to the scalar reference.
  thread_local std::vector<double> offs, scals;
  offs.resize(global_cols.size());
  scals.resize(global_cols.size());
  for (std::size_t c = 0; c < global_cols.size(); ++c) {
    offs[c] = offset_[global_cols[c]];
    scals[c] = scale_[global_cols[c]];
  }

  if (m.is_dense()) {
    data::DenseMatrix out = m.dense();
    const std::size_t cols = out.cols();
    double* p = out.mutable_data().data();
    kernels::affine_scale_block(kernels::best_supported_dot(), p, p,
                                out.rows(), cols, cols, offs.data(),
                                scals.data());
    return data::FeatureMatrix(std::move(out));
  }
  // Sparse: scaling only (offsets would densify; sparse pipelines fit
  // offset = 0, which standardize() does not produce for sparse inputs).
  // One pass over the value strip; the sparsity pattern is untouched.
  data::CsrMatrix out = m.sparse();
  kernels::scale_csr_values(kernels::best_supported_dot(),
                            out.indices().data(), out.values().data(),
                            out.mutable_values().data(), out.nnz(),
                            scals.data());
  return data::FeatureMatrix(std::move(out));
}

void ScaleOp::save(serialize::Writer& w) const {
  w.doubles(scale_);
  w.doubles(offset_);
}

}  // namespace willump::ops
