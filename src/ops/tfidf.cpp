#include "ops/tfidf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "serialize/buffer.hpp"

namespace willump::ops {

TfIdfModel TfIdfModel::fit(const data::StringColumn& corpus, TfIdfConfig cfg) {
  TfIdfModel m;
  m.cfg_ = cfg;

  // Document frequencies over the corpus.
  std::unordered_map<std::string, std::int32_t> df;
  std::unordered_map<std::string, std::int32_t> seen_doc;  // term -> last doc id
  std::int32_t doc_id = 0;
  for (const auto& doc : corpus) {
    for_each_ngram(doc, cfg.analyzer, cfg.ngrams, [&](std::string_view g) {
      auto [it, inserted] = seen_doc.try_emplace(std::string(g), doc_id);
      if (inserted || it->second != doc_id) {
        it->second = doc_id;
        ++df[it->first];
      }
    });
    ++doc_id;
  }

  // Rank terms by document frequency (stable by term for determinism) and
  // keep the top max_features above min_df.
  std::vector<std::pair<std::string, std::int32_t>> ranked(df.begin(), df.end());
  std::erase_if(ranked, [&](const auto& p) { return p.second < cfg.min_df; });
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (cfg.max_features > 0 &&
      ranked.size() > static_cast<std::size_t>(cfg.max_features)) {
    ranked.resize(static_cast<std::size_t>(cfg.max_features));
  }

  const double n_docs = static_cast<double>(corpus.size());
  m.vocab_.reserve(ranked.size());
  m.idf_.reserve(ranked.size());
  for (const auto& [term, dfreq] : ranked) {
    m.vocab_.emplace(term, static_cast<std::int32_t>(m.idf_.size()));
    // Smoothed IDF, scikit-learn formulation.
    const double idf =
        cfg.use_idf
            ? std::log((1.0 + n_docs) / (1.0 + static_cast<double>(dfreq))) + 1.0
            : 1.0;
    m.idf_.push_back(idf);
  }
  m.dim_ = static_cast<std::int32_t>(m.idf_.size());
  return m;
}

std::int32_t TfIdfModel::term_index(const std::string& term) const {
  auto it = vocab_.find(term);
  return it == vocab_.end() ? -1 : it->second;
}

data::SparseVector TfIdfModel::transform_one(std::string_view doc) const {
  // Accumulate term counts into a small flat map (vocab hits only).
  std::unordered_map<std::int32_t, double> counts;
  for_each_ngram(doc, cfg_.analyzer, cfg_.ngrams, [&](std::string_view g) {
    // Transparent lookup via temporary string; acceptable since fitting
    // dominates and serving strings are short.
    auto it = vocab_.find(std::string(g));
    if (it != vocab_.end()) counts[it->second] += 1.0;
  });

  std::vector<data::SparseEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [idx, c] : counts) {
    double tf = cfg_.sublinear_tf ? 1.0 + std::log(c) : c;
    entries.push_back({idx, tf * idf_[static_cast<std::size_t>(idx)]});
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });

  data::SparseVector v(dim_, std::move(entries));
  if (cfg_.l2_normalize) {
    const double norm = v.l2_norm();
    if (norm > 0.0) v.scale(1.0 / norm);
  }
  return v;
}

data::CsrMatrix TfIdfModel::transform(const data::StringColumn& docs) const {
  data::CsrMatrix out(dim_);
  for (const auto& doc : docs) out.append_row(transform_one(doc));
  return out;
}

void TfIdfModel::save(serialize::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(cfg_.analyzer));
  w.i32(cfg_.ngrams.min_n);
  w.i32(cfg_.ngrams.max_n);
  w.i32(cfg_.max_features);
  w.i32(cfg_.min_df);
  w.u8(cfg_.use_idf ? 1 : 0);
  w.u8(cfg_.sublinear_tf ? 1 : 0);
  w.u8(cfg_.l2_normalize ? 1 : 0);
  // Vocabulary in index order: deterministic bytes regardless of the
  // unordered_map's layout, and load can rebuild indices positionally.
  std::vector<std::string_view> terms(static_cast<std::size_t>(dim_));
  for (const auto& [term, idx] : vocab_) {
    terms[static_cast<std::size_t>(idx)] = term;
  }
  w.u64(terms.size());
  for (auto t : terms) w.str(t);
  w.doubles(idf_);
}

TfIdfModel TfIdfModel::load(serialize::Reader& r) {
  TfIdfModel m;
  const std::uint8_t analyzer = r.u8();
  if (analyzer > static_cast<std::uint8_t>(Analyzer::Char)) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "tfidf analyzer out of range");
  }
  m.cfg_.analyzer = static_cast<Analyzer>(analyzer);
  m.cfg_.ngrams.min_n = r.i32();
  m.cfg_.ngrams.max_n = r.i32();
  m.cfg_.max_features = r.i32();
  m.cfg_.min_df = r.i32();
  m.cfg_.use_idf = r.u8() != 0;
  m.cfg_.sublinear_tf = r.u8() != 0;
  m.cfg_.l2_normalize = r.u8() != 0;
  if (m.cfg_.ngrams.min_n < 1 || m.cfg_.ngrams.max_n < m.cfg_.ngrams.min_n) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "tfidf ngram range invalid");
  }
  const std::uint64_t n_terms = r.length(8, "tfidf vocabulary");
  m.vocab_.reserve(static_cast<std::size_t>(n_terms));
  for (std::uint64_t i = 0; i < n_terms; ++i) {
    const auto [it, inserted] =
        m.vocab_.emplace(r.str(), static_cast<std::int32_t>(i));
    if (!inserted) {
      throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                      "tfidf vocabulary has duplicate term");
    }
  }
  m.idf_ = r.doubles();
  if (m.idf_.size() != n_terms) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "tfidf idf/vocabulary size mismatch");
  }
  m.dim_ = static_cast<std::int32_t>(n_terms);
  return m;
}

void TfIdfOp::save(serialize::Writer& w) const {
  w.str(label_);
  model_->save(w);
}

data::Value TfIdfOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::String) {
    throw std::invalid_argument("tfidf: expects one string column");
  }
  return data::Value(
      data::FeatureMatrix(model_->transform(inputs[0].column().strings())));
}

}  // namespace willump::ops
