#include "ops/tfidf.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "serialize/buffer.hpp"

namespace willump::ops {

TfIdfModel TfIdfModel::fit(const data::StringColumn& corpus, TfIdfConfig cfg) {
  TfIdfModel m;
  m.cfg_ = cfg;

  // Document frequencies over the corpus.
  std::unordered_map<std::string, std::int32_t> df;
  std::unordered_map<std::string, std::int32_t> seen_doc;  // term -> last doc id
  std::int32_t doc_id = 0;
  for (const auto& doc : corpus) {
    for_each_ngram(doc, cfg.analyzer, cfg.ngrams, [&](std::string_view g) {
      auto [it, inserted] = seen_doc.try_emplace(std::string(g), doc_id);
      if (inserted || it->second != doc_id) {
        it->second = doc_id;
        ++df[it->first];
      }
    });
    ++doc_id;
  }

  // Rank terms by document frequency (stable by term for determinism) and
  // keep the top max_features above min_df.
  std::vector<std::pair<std::string, std::int32_t>> ranked(df.begin(), df.end());
  std::erase_if(ranked, [&](const auto& p) { return p.second < cfg.min_df; });
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (cfg.max_features > 0 &&
      ranked.size() > static_cast<std::size_t>(cfg.max_features)) {
    ranked.resize(static_cast<std::size_t>(cfg.max_features));
  }

  const double n_docs = static_cast<double>(corpus.size());
  m.vocab_.reserve(ranked.size());
  m.idf_.reserve(ranked.size());
  for (const auto& [term, dfreq] : ranked) {
    m.vocab_.emplace(term, static_cast<std::int32_t>(m.idf_.size()));
    // Smoothed IDF, scikit-learn formulation.
    const double idf =
        cfg.use_idf
            ? std::log((1.0 + n_docs) / (1.0 + static_cast<double>(dfreq))) + 1.0
            : 1.0;
    m.idf_.push_back(idf);
  }
  m.dim_ = static_cast<std::int32_t>(m.idf_.size());
  m.finalize_index();
  return m;
}

void TfIdfModel::finalize_index() {
  // unordered_map is node-based: key strings stay put across rehash, so
  // index-ordered views into them are stable for the model's lifetime.
  terms_.assign(static_cast<std::size_t>(dim_), {});
  for (const auto& [term, idx] : vocab_) {
    terms_[static_cast<std::size_t>(idx)] = term;
  }
  sorted_perm_.resize(static_cast<std::size_t>(dim_));
  for (std::int32_t i = 0; i < dim_; ++i) {
    sorted_perm_[static_cast<std::size_t>(i)] = i;
  }
  std::sort(sorted_perm_.begin(), sorted_perm_.end(),
            [&](std::int32_t a, std::int32_t b) {
              return terms_[static_cast<std::size_t>(a)] <
                     terms_[static_cast<std::size_t>(b)];
            });

  // Flat probe table at <= 50% load; minimum size keeps the probe loop
  // in-bounds even for an empty vocabulary (every slot reads as empty).
  const std::size_t slots = std::max<std::size_t>(
      16, std::bit_ceil(static_cast<std::size_t>(dim_) * 2));
  flat_mask_ = slots - 1;
  flat_.assign(slots, {});
  for (std::int32_t i = 0; i < dim_; ++i) {
    const std::uint64_t h =
        std::hash<std::string_view>{}(terms_[static_cast<std::size_t>(i)]);
    std::size_t s = h & flat_mask_;
    while (flat_[s].idx != -1) s = (s + 1) & flat_mask_;
    flat_[s] = {h, i};
  }
}

std::int32_t TfIdfModel::term_index(std::string_view term) const {
  auto it = vocab_.find(term);
  return it == vocab_.end() ? -1 : it->second;
}

void TfIdfModel::count_terms(std::string_view doc,
                             kernels::LookupVariant lookup,
                             TfIdfScratch& scratch) const {
  scratch.counts.resize(static_cast<std::size_t>(dim_), 0.0);
  scratch.touched.clear();
  auto hit = [&](std::int32_t idx) {
    double& c = scratch.counts[static_cast<std::size_t>(idx)];
    if (c == 0.0) scratch.touched.push_back(idx);
    c += 1.0;
  };
  if (lookup == kernels::LookupVariant::SortedVocab) {
    for_each_ngram_t(doc, cfg_.analyzer, cfg_.ngrams, scratch.tok,
                     [&](std::string_view g) {
                       auto it = std::lower_bound(
                           sorted_perm_.begin(), sorted_perm_.end(), g,
                           [&](std::int32_t i, std::string_view key) {
                             return terms_[static_cast<std::size_t>(i)] < key;
                           });
                       if (it != sorted_perm_.end() &&
                           terms_[static_cast<std::size_t>(*it)] == g) {
                         hit(*it);
                       }
                     });
  } else {
    for_each_ngram_t(doc, cfg_.analyzer, cfg_.ngrams, scratch.tok,
                     [&](std::string_view g) {
                       const std::uint64_t h = std::hash<std::string_view>{}(g);
                       std::size_t s = h & flat_mask_;
                       for (std::int32_t idx; (idx = flat_[s].idx) != -1;
                            s = (s + 1) & flat_mask_) {
                         if (flat_[s].hash == h &&
                             terms_[static_cast<std::size_t>(idx)] == g) {
                           hit(idx);
                           break;
                         }
                       }
                     });
  }
}

void TfIdfModel::build_row(TfIdfScratch& scratch) const {
  // Index-sorted entries; zeroing each touched slot restores the counts
  // all-zeros invariant for the next document.
  std::sort(scratch.touched.begin(), scratch.touched.end());
  scratch.row.clear();
  for (const std::int32_t idx : scratch.touched) {
    double& c = scratch.counts[static_cast<std::size_t>(idx)];
    const double tf = cfg_.sublinear_tf ? 1.0 + std::log(c) : c;
    scratch.row.push_back({idx, tf * idf_[static_cast<std::size_t>(idx)]});
    c = 0.0;
  }
  if (cfg_.l2_normalize) {
    // Same arithmetic as SparseVector::l2_norm + scale(1/norm): sum of
    // v*v in index order, sqrt, multiply — bit-exact with transform_one.
    double sq = 0.0;
    for (const auto& e : scratch.row) sq += e.value * e.value;
    const double norm = std::sqrt(sq);
    if (norm > 0.0) {
      const double inv = 1.0 / norm;
      for (auto& e : scratch.row) e.value *= inv;
    }
  }
}

data::SparseVector TfIdfModel::transform_one(std::string_view doc) const {
  thread_local TfIdfScratch scratch;
  count_terms(doc, kernels::LookupVariant::HashMap, scratch);
  build_row(scratch);
  std::vector<data::SparseEntry> entries(scratch.row.begin(),
                                         scratch.row.end());
  return data::SparseVector(dim_, std::move(entries));
}

void TfIdfModel::transform_into(std::span<const std::string> docs,
                                kernels::LookupVariant lookup,
                                TfIdfScratch& scratch,
                                data::CsrMatrix& out) const {
  for (const auto& doc : docs) {
    count_terms(doc, lookup, scratch);
    build_row(scratch);
    out.append_row(scratch.row);
  }
}

data::CsrMatrix TfIdfModel::transform(const data::StringColumn& docs) const {
  thread_local TfIdfScratch scratch;
  data::CsrMatrix out(dim_);
  transform_into(std::span<const std::string>(docs.data(), docs.size()),
                 kernels::LookupVariant::HashMap, scratch, out);
  return out;
}

void TfIdfModel::save(serialize::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(cfg_.analyzer));
  w.i32(cfg_.ngrams.min_n);
  w.i32(cfg_.ngrams.max_n);
  w.i32(cfg_.max_features);
  w.i32(cfg_.min_df);
  w.u8(cfg_.use_idf ? 1 : 0);
  w.u8(cfg_.sublinear_tf ? 1 : 0);
  w.u8(cfg_.l2_normalize ? 1 : 0);
  if (w.format_version() >= 4) {
    // v4: vocabulary front-coded in lexicographic order (n-gram vocabularies
    // share long prefixes, so most terms reduce to a shared-prefix length
    // plus a short suffix), followed by the permutation mapping sorted
    // position -> vocab index, and a CRC over the *decoded* index-ordered
    // terms so a codec fault can never ship a silently wrong vocabulary.
    w.varint(terms_.size());
    std::string_view prev;
    for (std::int32_t vi : sorted_perm_) {
      const std::string_view t = terms_[static_cast<std::size_t>(vi)];
      std::size_t shared = 0;
      const std::size_t cap = std::min(prev.size(), t.size());
      while (shared < cap && prev[shared] == t[shared]) ++shared;
      w.varint(shared);
      w.varint(t.size() - shared);
      w.raw(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(t.data()) + shared,
          t.size() - shared));
      prev = t;
    }
    for (std::int32_t vi : sorted_perm_) {
      w.varint(static_cast<std::uint64_t>(vi));
    }
    serialize::Writer probe(w.format_version());
    for (auto t : terms_) probe.str(t);
    w.u32(serialize::crc32(probe.bytes()));
  } else {
    // Vocabulary in index order: deterministic bytes regardless of the
    // unordered_map's layout, and load can rebuild indices positionally.
    w.u64(terms_.size());
    for (auto t : terms_) w.str(t);
  }
  w.doubles(idf_);
}

TfIdfModel TfIdfModel::load(serialize::Reader& r) {
  TfIdfModel m;
  const std::uint8_t analyzer = r.u8();
  if (analyzer > static_cast<std::uint8_t>(Analyzer::Char)) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "tfidf analyzer out of range");
  }
  m.cfg_.analyzer = static_cast<Analyzer>(analyzer);
  m.cfg_.ngrams.min_n = r.i32();
  m.cfg_.ngrams.max_n = r.i32();
  m.cfg_.max_features = r.i32();
  m.cfg_.min_df = r.i32();
  m.cfg_.use_idf = r.u8() != 0;
  m.cfg_.sublinear_tf = r.u8() != 0;
  m.cfg_.l2_normalize = r.u8() != 0;
  if (m.cfg_.ngrams.min_n < 1 || m.cfg_.ngrams.max_n < m.cfg_.ngrams.min_n) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "tfidf ngram range invalid");
  }
  if (r.format_version() >= 4) {
    const std::uint64_t n_terms = r.varlength(2, "tfidf vocabulary");
    std::vector<std::string> by_index(static_cast<std::size_t>(n_terms));
    std::vector<std::uint8_t> placed(static_cast<std::size_t>(n_terms), 0);
    std::string prev;
    std::vector<std::string> sorted_terms;
    sorted_terms.reserve(static_cast<std::size_t>(n_terms));
    for (std::uint64_t j = 0; j < n_terms; ++j) {
      const std::uint64_t shared = r.varint();
      const std::uint64_t suffix_len = r.varint();
      if (shared > prev.size()) {
        throw serialize::SerializeError(
            serialize::ErrorCode::CorruptData,
            "tfidf front-coded prefix exceeds previous term");
      }
      const auto suffix = r.raw(static_cast<std::size_t>(suffix_len));
      std::string term = prev.substr(0, static_cast<std::size_t>(shared));
      term.append(reinterpret_cast<const char*>(suffix.data()),
                  suffix.size());
      if (j > 0 && term <= prev) {
        throw serialize::SerializeError(
            serialize::ErrorCode::CorruptData,
            "tfidf front-coded vocabulary not strictly ascending");
      }
      prev = term;
      sorted_terms.push_back(std::move(term));
    }
    for (std::uint64_t j = 0; j < n_terms; ++j) {
      const std::uint64_t vi = r.varint();
      if (vi >= n_terms || placed[static_cast<std::size_t>(vi)] != 0) {
        throw serialize::SerializeError(
            serialize::ErrorCode::CorruptData,
            "tfidf vocabulary permutation is not a bijection");
      }
      placed[static_cast<std::size_t>(vi)] = 1;
      by_index[static_cast<std::size_t>(vi)] =
          std::move(sorted_terms[static_cast<std::size_t>(j)]);
    }
    serialize::Writer probe(r.format_version());
    for (const auto& t : by_index) probe.str(t);
    if (r.u32() != serialize::crc32(probe.bytes())) {
      throw serialize::SerializeError(
          serialize::ErrorCode::ChecksumMismatch,
          "decoded tfidf vocabulary fails its CRC");
    }
    m.vocab_.reserve(static_cast<std::size_t>(n_terms));
    for (std::uint64_t i = 0; i < n_terms; ++i) {
      m.vocab_.emplace(std::move(by_index[static_cast<std::size_t>(i)]),
                       static_cast<std::int32_t>(i));
    }
  } else {
    const std::uint64_t n_terms = r.length(8, "tfidf vocabulary");
    m.vocab_.reserve(static_cast<std::size_t>(n_terms));
    for (std::uint64_t i = 0; i < n_terms; ++i) {
      const auto [it, inserted] =
          m.vocab_.emplace(r.str(), static_cast<std::int32_t>(i));
      if (!inserted) {
        throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                        "tfidf vocabulary has duplicate term");
      }
    }
  }
  m.idf_ = r.doubles();
  const std::uint64_t n_terms = m.vocab_.size();
  if (m.idf_.size() != n_terms) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "tfidf idf/vocabulary size mismatch");
  }
  m.dim_ = static_cast<std::int32_t>(n_terms);
  m.finalize_index();
  return m;
}

void TfIdfOp::save(serialize::Writer& w) const {
  w.str(label_);
  model_->save(w);
}

data::Value TfIdfOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::String) {
    throw std::invalid_argument("tfidf: expects one string column");
  }
  return data::Value(
      data::FeatureMatrix(model_->transform(inputs[0].column().strings())));
}

data::CsrMatrix TfIdfOp::emit_batch(std::span<const data::Value> inputs,
                                    const BlockExecContext& ctx) const {
  data::CsrMatrix out(model_->vocabulary_size());
  emit_into(inputs, ctx, out);
  return out;
}

void TfIdfOp::emit_into(std::span<const data::Value> inputs,
                        const BlockExecContext& ctx,
                        data::CsrMatrix& out) const {
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::String) {
    throw std::invalid_argument("tfidf: expects one string column");
  }
  const auto& docs = inputs[0].column().strings();
  thread_local TfIdfScratch scratch;
  out.reset(model_->vocabulary_size());
  out.reserve(docs.size(), docs.size() * 16);  // ~16 hits/doc starting guess
  model_->transform_into(std::span<const std::string>(docs.data(), docs.size()),
                         ctx.cfg.lookup, scratch, out);
}

}  // namespace willump::ops
