#include "ops/tfidf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace willump::ops {

TfIdfModel TfIdfModel::fit(const data::StringColumn& corpus, TfIdfConfig cfg) {
  TfIdfModel m;
  m.cfg_ = cfg;

  // Document frequencies over the corpus.
  std::unordered_map<std::string, std::int32_t> df;
  std::unordered_map<std::string, std::int32_t> seen_doc;  // term -> last doc id
  std::int32_t doc_id = 0;
  for (const auto& doc : corpus) {
    for_each_ngram(doc, cfg.analyzer, cfg.ngrams, [&](std::string_view g) {
      auto [it, inserted] = seen_doc.try_emplace(std::string(g), doc_id);
      if (inserted || it->second != doc_id) {
        it->second = doc_id;
        ++df[it->first];
      }
    });
    ++doc_id;
  }

  // Rank terms by document frequency (stable by term for determinism) and
  // keep the top max_features above min_df.
  std::vector<std::pair<std::string, std::int32_t>> ranked(df.begin(), df.end());
  std::erase_if(ranked, [&](const auto& p) { return p.second < cfg.min_df; });
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (cfg.max_features > 0 &&
      ranked.size() > static_cast<std::size_t>(cfg.max_features)) {
    ranked.resize(static_cast<std::size_t>(cfg.max_features));
  }

  const double n_docs = static_cast<double>(corpus.size());
  m.vocab_.reserve(ranked.size());
  m.idf_.reserve(ranked.size());
  for (const auto& [term, dfreq] : ranked) {
    m.vocab_.emplace(term, static_cast<std::int32_t>(m.idf_.size()));
    // Smoothed IDF, scikit-learn formulation.
    const double idf =
        cfg.use_idf
            ? std::log((1.0 + n_docs) / (1.0 + static_cast<double>(dfreq))) + 1.0
            : 1.0;
    m.idf_.push_back(idf);
  }
  m.dim_ = static_cast<std::int32_t>(m.idf_.size());
  return m;
}

std::int32_t TfIdfModel::term_index(const std::string& term) const {
  auto it = vocab_.find(term);
  return it == vocab_.end() ? -1 : it->second;
}

data::SparseVector TfIdfModel::transform_one(std::string_view doc) const {
  // Accumulate term counts into a small flat map (vocab hits only).
  std::unordered_map<std::int32_t, double> counts;
  for_each_ngram(doc, cfg_.analyzer, cfg_.ngrams, [&](std::string_view g) {
    // Transparent lookup via temporary string; acceptable since fitting
    // dominates and serving strings are short.
    auto it = vocab_.find(std::string(g));
    if (it != vocab_.end()) counts[it->second] += 1.0;
  });

  std::vector<data::SparseEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [idx, c] : counts) {
    double tf = cfg_.sublinear_tf ? 1.0 + std::log(c) : c;
    entries.push_back({idx, tf * idf_[static_cast<std::size_t>(idx)]});
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });

  data::SparseVector v(dim_, std::move(entries));
  if (cfg_.l2_normalize) {
    const double norm = v.l2_norm();
    if (norm > 0.0) v.scale(1.0 / norm);
  }
  return v;
}

data::CsrMatrix TfIdfModel::transform(const data::StringColumn& docs) const {
  data::CsrMatrix out(dim_);
  for (const auto& doc : docs) out.append_row(transform_one(doc));
  return out;
}

data::Value TfIdfOp::eval_batch(std::span<const data::Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].is_column() ||
      inputs[0].column().type() != data::ColumnType::String) {
    throw std::invalid_argument("tfidf: expects one string column");
  }
  return data::Value(
      data::FeatureMatrix(model_->transform(inputs[0].column().strings())));
}

}  // namespace willump::ops
