#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "data/value.hpp"

namespace willump::serialize {
class Writer;
}

namespace willump::ops {

/// A feature transformation: the payload of a transformation-graph node.
///
/// Operators are pure batch kernels over columnar `data::Value`s. Three
/// properties drive Willump's analyses (paper §5.1):
///  - `commutative()`: the op commutes with feature-vector concatenation
///    (concatenation itself, per-feature scaling, ...). The IFV-identification
///    rules descend through commutative nodes from the model sink.
///  - `compilable()`: the op can be compiled into a fused block (the Weld
///    analog). Non-compilable ops (remote table lookups — "RPC processing",
///    §6.3) execute outside fused blocks and cannot be parallelized per-input.
///  - `is_string_map()`: element-wise string→string ops that the compiled
///    executor fuses into a single pass (loop fusion).
class Operator {
 public:
  virtual ~Operator() = default;

  virtual std::string name() const = 0;

  /// Compute the output for a batch of inputs (one Value per graph input
  /// edge, all with equal row counts).
  virtual data::Value eval_batch(std::span<const data::Value> inputs) const = 0;

  virtual bool commutative() const { return false; }
  virtual bool compilable() const { return true; }
  virtual bool is_string_map() const { return false; }

  /// For string-map ops only: transform one element (used by fused blocks).
  virtual std::string map_string(std::string_view s) const {
    (void)s;
    return {};
  }

  /// Stable type tag under which the serialization registry reconstructs
  /// this op (serialize/op_registry.hpp). Empty = not serializable; a
  /// pipeline containing such an op cannot be saved to an artifact.
  virtual std::string_view serial_tag() const { return {}; }

  /// Write the op's parameters so the registry loader paired with
  /// serial_tag() can rebuild an equivalent op. Built-in ops override this;
  /// the default keeps user-defined ops compiling (they simply cannot be
  /// saved until they implement the contract).
  virtual void save(serialize::Writer& w) const {
    (void)w;
    throw std::logic_error("operator \"" + name() + "\" is not serializable");
  }
};

using OperatorPtr = std::shared_ptr<const Operator>;

/// Mixin for commutative ops whose parameters are per-feature so they can be
/// applied to a column subset of the concatenated feature matrix (needed when
/// cascades evaluate only the efficient IFVs through a post-concatenation
/// commutative chain).
class ColumnSliceable {
 public:
  virtual ~ColumnSliceable() = default;

  /// Apply the op to `m`, whose local column j corresponds to global feature
  /// column `global_cols[j]` of the full concatenated layout.
  virtual data::FeatureMatrix apply_columns(
      const data::FeatureMatrix& m, std::span<const std::size_t> global_cols) const = 0;
};

}  // namespace willump::ops
