#pragma once

#include <span>

#include "common/arena.hpp"
#include "data/matrix.hpp"
#include "data/value.hpp"
#include "kernels/dispatch.hpp"

namespace willump::ops {

/// Tuned feature-op choices threaded through the blocked execution path
/// (the executor owns the pipeline-level FeatureOpConfig). `arena`, when
/// set, is the calling worker's per-batch bump allocator: ops may stage
/// trivially-destructible scratch (bucket arrays, densify buffers) there
/// instead of the heap; the executor resets it between batches. Null means
/// no arena is threaded (interpreted engine, tests) — ops must fall back
/// to their own allocation.
struct BlockExecContext {
  kernels::FeatureOpConfig cfg;
  common::Arena* arena = nullptr;
};

/// Mixin for ops whose output is a dense block of known width: the executor
/// preallocates the downstream model's whole input matrix and the op writes
/// its columns straight into it — no per-op DenseMatrix, no hconcat copy.
class DenseBlockWriter {
 public:
  virtual ~DenseBlockWriter() = default;

  /// Write `rows` output rows into `dst`, a row-major window with `stride`
  /// doubles per row; dst points at this op's first column of row 0. The
  /// values written must be bit-identical to eval_batch's dense output.
  virtual void write_block(std::span<const data::Value> inputs,
                           const BlockExecContext& ctx, double* dst,
                           std::size_t rows, std::size_t stride) const = 0;
};

/// Mixin for ops that produce sparse blocks: emit the whole batch as CSR in
/// one pass using the tuned lookup strategy and per-worker scratch. The
/// executor moves the result out (single-generator plans) or streams it
/// through the fused k-way concat. Rows must be bit-identical to
/// eval_batch's sparse output.
class SparseBlockEmitter {
 public:
  virtual ~SparseBlockEmitter() = default;

  virtual data::CsrMatrix emit_batch(std::span<const data::Value> inputs,
                                     const BlockExecContext& ctx) const = 0;

  /// Emit into a caller-owned CSR whose backing arrays persist across
  /// batches: the op reset()s `out` to its own column count (keeping the
  /// arrays' capacity) and appends this batch's rows, so the steady-state
  /// request path reuses capacity instead of allocating a fresh matrix per
  /// batch. Default delegates to emit_batch; ops with reusable scratch
  /// override.
  virtual void emit_into(std::span<const data::Value> inputs,
                         const BlockExecContext& ctx,
                         data::CsrMatrix& out) const {
    out = emit_batch(inputs, ctx);
  }
};

}  // namespace willump::ops
