#pragma once

#include <span>

#include "data/matrix.hpp"
#include "data/value.hpp"
#include "kernels/dispatch.hpp"

namespace willump::ops {

/// Tuned feature-op choices threaded through the blocked execution path
/// (the executor owns the pipeline-level FeatureOpConfig).
struct BlockExecContext {
  kernels::FeatureOpConfig cfg;
};

/// Mixin for ops whose output is a dense block of known width: the executor
/// preallocates the downstream model's whole input matrix and the op writes
/// its columns straight into it — no per-op DenseMatrix, no hconcat copy.
class DenseBlockWriter {
 public:
  virtual ~DenseBlockWriter() = default;

  /// Write `rows` output rows into `dst`, a row-major window with `stride`
  /// doubles per row; dst points at this op's first column of row 0. The
  /// values written must be bit-identical to eval_batch's dense output.
  virtual void write_block(std::span<const data::Value> inputs,
                           const BlockExecContext& ctx, double* dst,
                           std::size_t rows, std::size_t stride) const = 0;
};

/// Mixin for ops that produce sparse blocks: emit the whole batch as CSR in
/// one pass using the tuned lookup strategy and per-worker scratch. The
/// executor moves the result out (single-generator plans) or streams it
/// through the fused k-way concat. Rows must be bit-identical to
/// eval_batch's sparse output.
class SparseBlockEmitter {
 public:
  virtual ~SparseBlockEmitter() = default;

  virtual data::CsrMatrix emit_batch(std::span<const data::Value> inputs,
                                     const BlockExecContext& ctx) const = 0;
};

}  // namespace willump::ops
