#pragma once

#include <memory>

#include "ops/block_kernels.hpp"
#include "ops/operator.hpp"
#include "store/kv_store.hpp"

namespace willump::ops {

/// Fetch per-entity feature rows for an integer key column from a feature
/// table (local or simulated-remote) — the paper's "remote data lookup /
/// data join" operator family (Music, Credit, Tracking; Table 1).
///
/// All keys of one batch are fetched in a single pipelined round trip,
/// matching the paper's asynchronous Redis queries (§6.3). The op is NOT
/// compilable: it is external I/O ("Willump does not compile RPC
/// processing"), so it never joins a fused block and its cost dominates when
/// the table is remote.
class TableLookupOp final : public Operator, public DenseBlockWriter {
 public:
  explicit TableLookupOp(std::shared_ptr<store::TableClient> client)
      : client_(std::move(client)) {}

  std::string name() const override {
    return "lookup_" + client_->table().name();
  }
  data::Value eval_batch(std::span<const data::Value> inputs) const override;
  void write_block(std::span<const data::Value> inputs,
                   const BlockExecContext& ctx, double* dst, std::size_t rows,
                   std::size_t stride) const override;
  bool compilable() const override { return false; }
  std::string_view serial_tag() const override { return "table_lookup"; }
  /// Writes the table name and network model; the table's contents travel
  /// in the artifact's table section (see serialize/op_registry.hpp).
  void save(serialize::Writer& w) const override;

  const store::TableClient& client() const { return *client_; }

 private:
  std::shared_ptr<store::TableClient> client_;
};

}  // namespace willump::ops
