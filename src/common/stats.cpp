#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace willump::common {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double binomial_ci95_half_width(double accuracy, std::size_t n) {
  if (n == 0) return 1.0;
  const double p = std::clamp(accuracy, 0.0, 1.0);
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

bool accuracy_within_ci95(double acc_a, double acc_b, std::size_t n) {
  return std::abs(acc_a - acc_b) <= binomial_ci95_half_width(acc_b, n);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double LatencyRecorder::percentile(double p) const {
  return common::percentile(samples_, p);
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  s.mean = mean(samples);
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  s.median = percentile(samples, 50.0);
  s.p99 = percentile(std::move(samples), 99.0);
  return s;
}

}  // namespace willump::common
