#pragma once

#include <cstdint>
#include <vector>

namespace willump::common {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
///
/// All synthetic-workload generation and model training in this repository
/// goes through this generator so every experiment is reproducible bit-for-bit
/// from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) (bound must be > 0).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double next_gaussian();

  /// Bernoulli draw with probability p of true.
  bool next_bernoulli(double p) { return next_double() < p; }

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_cache_ = 0.0;
};

/// Zipf-distributed sampler over [0, n) with exponent `s`.
///
/// Used to model skewed entity popularity (users, songs, IPs) so that
/// feature-level caching sees realistic repeat rates (paper Table 2).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draw a rank in [0, n); rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace willump::common
