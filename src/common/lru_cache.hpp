#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace willump::common {

/// Fixed-capacity LRU cache.
///
/// Willump allocates one of these per independent feature vector (IFV); the
/// key is the tuple of the IFV's feature-generator sources and the value is
/// the computed feature row (paper §4.5). It is also reused by the Clipper
/// simulator's end-to-end prediction cache.
template <typename K, typename V>
class LruCache {
 public:
  /// capacity == 0 means unbounded (the paper's Table 2/3 configuration).
  explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Look up `key`; refreshes recency on hit.
  std::optional<V> get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert or overwrite `key`; evicts the least-recently-used entry when full.
  void put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
    if (capacity_ != 0 && map_.size() > capacity_) {
      auto& back = order_.back();
      map_.erase(back.first);
      order_.pop_back();
      ++evictions_;
    }
  }

  bool contains(const K& key) const { return map_.find(key) != map_.end(); }

  void clear() {
    map_.clear();
    order_.clear();
    hits_ = misses_ = evictions_ = 0;
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t evictions() const { return evictions_; }

  double hit_rate() const {
    const std::size_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace willump::common
