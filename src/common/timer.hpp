#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace willump::common {

/// Monotonic stopwatch used by the cost model and the benchmark harness.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_micros() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Busy-wait for `micros` microseconds on a monotonic clock.
///
/// The store and serving simulators use this to model network/RPC time with
/// real (deterministically measurable) wall-clock delay instead of a sleep,
/// which would be scheduler-noisy at the 100 µs scale the paper operates at.
void spin_wait_micros(double micros);

/// Run `fn` `reps` times and return the median per-run seconds.
double time_median_seconds(int reps, const std::function<void()>& fn);

}  // namespace willump::common
