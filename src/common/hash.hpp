#pragma once

#include <cstdint>
#include <string_view>

namespace willump::common {

/// FNV-1a 64-bit hash of a byte string; stable across platforms and runs,
/// unlike std::hash, so cache keys and hashed features are reproducible.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Mix two 64-bit hashes (boost::hash_combine-style, 64-bit constants).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  a ^= b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4);
  return a;
}

/// Hash an integer key (splitmix64 finalizer over an offset input, so that
/// 0 does not map to 0).
constexpr std::uint64_t hash_u64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace willump::common
