#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace willump::common {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Median (copies and partially sorts); 0 for empty input.
double median(std::vector<double> xs);

/// p-th percentile with linear interpolation, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Half-width of the 95% normal-approximation confidence interval for a
/// binomial proportion observed as `accuracy` over `n` trials.
///
/// The paper (§6.3) declares a cascade's accuracy loss "not statistically
/// significant" when it falls inside this interval for the full model's
/// test-set accuracy; we apply the identical criterion.
double binomial_ci95_half_width(double accuracy, std::size_t n);

/// True when |acc_a - acc_b| lies within the 95% CI of acc_b over n trials.
bool accuracy_within_ci95(double acc_a, double acc_b, std::size_t n);

/// Pearson correlation; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Summary of repeated timing measurements, in the units of the samples.
struct Summary {
  double mean = 0.0;
  double median = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::vector<double> samples);

/// Accumulates per-query latency samples and reduces them to percentile
/// summaries — the accounting behind every "p50/p99 vs offered load" report
/// in the serving benchmarks.
///
/// Not internally synchronized: concurrent recorders (the serving engine,
/// closed-loop clients) guard it with their own lock or record into
/// per-thread instances and merge().
class LatencyRecorder {
 public:
  void record(double seconds) { samples_.push_back(seconds); }
  void merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// p-th percentile of the recorded samples, p in [0, 100].
  double percentile(double p) const;

  /// Mean/median/p99/min/max over everything recorded so far.
  Summary summary() const { return summarize(samples_); }

  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

}  // namespace willump::common
