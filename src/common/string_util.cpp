#include "common/string_util.hpp"

#include <cctype>

namespace willump::common {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string strip_punct(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (std::ispunct(static_cast<unsigned char>(c))) c = ' ';
  }
  return out;
}

std::size_t count_occurrences(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

double upper_ratio(std::string_view s) {
  std::size_t alpha = 0, upper = 0;
  for (char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalpha(uc)) {
      ++alpha;
      if (std::isupper(uc)) ++upper;
    }
  }
  return alpha == 0 ? 0.0 : static_cast<double>(upper) / static_cast<double>(alpha);
}

double digit_ratio(std::string_view s) {
  if (s.empty()) return 0.0;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  return static_cast<double>(digits) / static_cast<double>(s.size());
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace willump::common
