#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace willump::common {

/// Bump-pointer arena for per-batch request scratch (the abseil-style
/// container/memory split: containers describe layout, the arena owns the
/// bytes). Allocation is a pointer bump within the current chunk; `reset()`
/// rewinds every chunk cursor without freeing, so after the first few
/// batches have grown the chunk list to the workload's high-water mark the
/// steady-state request path performs zero heap allocations through it.
///
/// Only trivially-destructible payloads belong here: reset() never runs
/// destructors. Not thread-safe — one arena per worker thread (the serving
/// layer hands each worker its own instance).
class Arena {
 public:
  explicit Arena(std::size_t first_chunk_bytes = 1u << 18)
      : next_chunk_bytes_(first_chunk_bytes < 64 ? 64 : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `bytes` aligned to `align` (a power of two). The pointer is
  /// valid until reset() or destruction.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    if (cur_ < chunks_.size()) {
      std::uint8_t* p = aligned_cursor(align);
      if (p != nullptr && bytes <= chunk_remaining(p)) {
        off_ = static_cast<std::size_t>(p - chunks_[cur_].data.get()) + bytes;
        bytes_in_use_ += bytes;
        return p;
      }
      // Try later retained chunks before growing.
      while (++cur_ < chunks_.size()) {
        off_ = 0;
        std::uint8_t* q = aligned_cursor(align);
        if (q != nullptr && bytes <= chunk_remaining(q)) {
          off_ = static_cast<std::size_t>(q - chunks_[cur_].data.get()) + bytes;
          bytes_in_use_ += bytes;
          return q;
        }
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Typed uninitialized span of `n` elements (T must be trivially
  /// destructible — reset() runs no destructors).
  template <typename T>
  std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructors");
    return {static_cast<T*>(allocate(n * sizeof(T), alignof(T))), n};
  }

  /// Rewind all cursors, retaining every chunk for reuse.
  void reset() {
    cur_ = 0;
    off_ = 0;
    bytes_in_use_ = 0;
  }

  /// Free every chunk (a fresh arena).
  void release() {
    chunks_.clear();
    chunks_.shrink_to_fit();
    reset();
  }

  /// Bytes handed out since the last reset().
  std::size_t bytes_in_use() const { return bytes_in_use_; }
  /// Total bytes reserved from the heap across all retained chunks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }
  /// Heap allocations the arena itself has performed (chunk acquisitions);
  /// flat across batches once the chunk list has reached steady state.
  std::uint64_t chunk_allocations() const { return chunk_allocations_; }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  std::uint8_t* aligned_cursor(std::size_t align) const {
    // Align the absolute address, not the chunk offset: chunk bases carry
    // only operator new[]'s alignment, which can be smaller than `align`.
    const Chunk& c = chunks_[cur_];
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(c.data.get());
    const std::uintptr_t aligned = (base + off_ + (align - 1)) & ~(align - 1);
    if (aligned - base > c.size) return nullptr;
    return reinterpret_cast<std::uint8_t*>(aligned);
  }

  std::size_t chunk_remaining(const std::uint8_t* cursor) const {
    const Chunk& c = chunks_[cur_];
    return c.size - static_cast<std::size_t>(cursor - c.data.get());
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    std::size_t want = bytes + align;
    if (want < next_chunk_bytes_) want = next_chunk_bytes_;
    Chunk c;
    c.data = std::make_unique<std::uint8_t[]>(want);
    c.size = want;
    ++chunk_allocations_;
    next_chunk_bytes_ = want * 2;  // geometric growth caps chunk count
    chunks_.push_back(std::move(c));
    cur_ = chunks_.size() - 1;
    off_ = 0;
    std::uint8_t* p = aligned_cursor(align);
    off_ = static_cast<std::size_t>(p - chunks_[cur_].data.get()) + bytes;
    bytes_in_use_ += bytes;
    return p;
  }

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;   // chunk the cursor lives in
  std::size_t off_ = 0;   // byte offset within chunks_[cur_]
  std::size_t next_chunk_bytes_;
  std::size_t bytes_in_use_ = 0;
  std::uint64_t chunk_allocations_ = 0;
};

}  // namespace willump::common
