#include "common/timer.hpp"

#include <vector>

#include "common/stats.hpp"

namespace willump::common {

void spin_wait_micros(double micros) {
  if (micros <= 0.0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(static_cast<std::int64_t>(micros * 1e3));
  while (std::chrono::steady_clock::now() < deadline) {
    // Intentional busy loop; see header.
  }
}

double time_median_seconds(int reps, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    samples.push_back(t.elapsed_seconds());
  }
  return median(std::move(samples));
}

}  // namespace willump::common
