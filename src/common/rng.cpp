#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace willump::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_gauss_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling; bias negligible for our use.
  // __extension__ keeps -Wpedantic quiet about the GCC/Clang 128-bit type.
  __extension__ typedef unsigned __int128 u128;
  return static_cast<std::uint64_t>((static_cast<u128>(next_u64()) * bound) >>
                                    64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::next_gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_cache_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_cache_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace willump::common
