#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace willump::common {

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string_view> split_ws(std::string_view s);

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Remove ASCII punctuation, replacing it with spaces.
std::string strip_punct(std::string_view s);

/// Count occurrences of `needle` in `haystack` (non-overlapping).
std::size_t count_occurrences(std::string_view haystack, std::string_view needle);

/// Fraction of alphabetic characters that are uppercase; 0 if none.
double upper_ratio(std::string_view s);

/// Fraction of characters that are digits.
double digit_ratio(std::string_view s);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace willump::common
