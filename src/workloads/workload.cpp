#include "workloads/workload.hpp"

#include <numeric>
#include <stdexcept>

namespace willump::workloads {

void split_labeled(const data::Batch& inputs, const std::vector<double>& targets,
                   const SplitSizes& sizes, Workload& out) {
  if (inputs.num_rows() != targets.size() || inputs.num_rows() < sizes.total()) {
    throw std::invalid_argument("split_labeled: size mismatch");
  }
  auto take = [&](std::size_t begin, std::size_t count) {
    std::vector<std::size_t> idx(count);
    std::iota(idx.begin(), idx.end(), begin);
    core::LabeledData d;
    d.inputs = inputs.select_rows(idx);
    d.targets.assign(targets.begin() + static_cast<std::ptrdiff_t>(begin),
                     targets.begin() + static_cast<std::ptrdiff_t>(begin + count));
    return d;
  };
  out.train = take(0, sizes.train);
  out.valid = take(sizes.train, sizes.valid);
  out.test = take(sizes.train + sizes.valid, sizes.test);
}

store::NetworkModel default_remote_network() {
  return store::NetworkModel{.rtt_micros = 120.0, .per_key_micros = 1.0};
}

}  // namespace willump::workloads
