#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "serving/router.hpp"
#include "serving/server.hpp"
#include "workloads/workload.hpp"

namespace willump::workloads {

/// Samples pointwise queries (single-row batches) for a workload with
/// Zipf-skewed popularity over its test split, so a serving stream repeats
/// hot entities the way production traffic does (and end-to-end caches see
/// realistic hit rates; paper Table 2 uses the same skew).
class QuerySampler {
 public:
  /// `zipf_s` = 0 draws uniformly; larger values concentrate on hot rows.
  QuerySampler(const Workload& wl, double zipf_s, std::uint64_t seed);

  /// Draw the next single-row query batch.
  data::Batch next();

 private:
  const Workload* wl_;
  common::Rng rng_;
  double zipf_s_;
  common::ZipfSampler zipf_;
  std::vector<std::size_t> rank_to_row_;  // decorrelate popularity from index
};

/// Inter-arrival gaps of a Poisson process at `qps` queries/second:
/// i.i.d. exponential with mean 1/qps. Sum-prefix to get arrival times.
std::vector<double> poisson_interarrival_seconds(std::size_t n, double qps,
                                                 common::Rng& rng);

/// Result of driving one traffic run against a serving engine (either one
/// model's share of a mixed run, or the aggregate).
struct TrafficResult {
  std::size_t completed = 0;  // resolved with a prediction
  std::size_t errors = 0;     // completions that delivered a real execution
                              // error (typed overload rejections and
                              // expiries are counted separately below)
  /// Typed admission rejections (queue-full, shed-best-effort,
  /// predicted-miss): requests the engine refused to run. Zero unless the
  /// target model bounds its queue or enables load control.
  std::size_t rejected = 0;
  /// Typed kExpired completions: requests dropped dead-on-arrival by a
  /// worker after their deadline passed. Counted as attainment misses.
  std::size_t expired = 0;
  double duration_seconds = 0.0;
  double offered_qps = 0.0;   // 0 for closed-loop runs (load is self-clocked)
  double achieved_qps = 0.0;
  common::Summary latency;    // client-observed per-query seconds
  std::size_t cache_hits = 0;
  double mean_batch_rows = 0.0;
  /// SLO attainment of this slice, measured client-side: how many of the
  /// completed queries finished within `deadline_micros` (the slice's
  /// ModelTraffic::deadline_micros; 0 = not tracked, hits stay 0).
  double deadline_micros = 0.0;
  std::size_t deadline_hits = 0;
  /// Longest any single submit() call blocked the dispatcher, seconds
  /// (open-loop drivers only; the overload bench's no-blocked-producer
  /// watchdog asserts on this). 0 for closed-loop runs.
  double max_submit_seconds = 0.0;

  /// Fraction of queries that reached a deadline verdict and met it:
  /// expiries are misses (they waited past the deadline and were dropped),
  /// counted exactly once. Admission rejections are excluded — the engine
  /// never accepted them against a deadline. 0 when nothing completed or
  /// no deadline was set.
  double attainment() const {
    const std::size_t den = completed + expired;
    return den == 0 ? 0.0
                    : static_cast<double>(deadline_hits) /
                          static_cast<double>(den);
  }
  /// Fraction of offered queries the engine shed or expired instead of
  /// serving (the overload report's shed rate).
  double shed_rate() const {
    const std::size_t offered = completed + errors + rejected + expired;
    return offered == 0 ? 0.0
                        : static_cast<double>(rejected + expired) /
                              static_cast<double>(offered);
  }
};

/// One model's slice of a mixed multi-model traffic run.
struct ModelTraffic {
  std::string model;          // registered name in the serving engine
  const Workload* wl = nullptr;
  double zipf_s = 0.0;        // per-model entity skew
  /// Open loop: this model's share of the Poisson arrival stream
  /// (normalized over all slices).
  double weight = 1.0;
  /// Closed loop: how many self-clocked client threads hit this model.
  std::size_t clients = 1;
  /// SLO-class deadline to measure this slice's attainment against,
  /// microseconds (client-observed submit-to-completion). 0 = don't
  /// track. Typically copied from the model's SloClass::deadline_micros
  /// so the driver report matches the scheduler's objective.
  double deadline_micros = 0.0;
};

/// Per-model and aggregate results of a mixed run.
struct MixedTrafficResult {
  TrafficResult aggregate;
  std::vector<std::pair<std::string, TrafficResult>> per_model;
};

/// Closed-loop traffic against one registered model: `clients` threads each
/// issue `queries_per_client` pointwise queries back-to-back — the next
/// query is submitted only when the previous completes. Measures the engine
/// at self-clocked saturation.
TrafficResult run_closed_loop(serving::Server& server, const std::string& model,
                              const Workload& wl, std::size_t clients,
                              std::size_t queries_per_client, double zipf_s,
                              std::uint64_t seed);

/// Single-model convenience: closed loop against the first registered model.
TrafficResult run_closed_loop(serving::Server& server, const Workload& wl,
                              std::size_t clients,
                              std::size_t queries_per_client, double zipf_s,
                              std::uint64_t seed);

/// Open-loop traffic against one registered model: one dispatcher submits
/// `n_queries` at Poisson arrival times paced to `qps`, never waiting for
/// completions (arrivals do not slow down when the engine falls behind),
/// then waits for everything to finish. Uses the engine's async completion
/// path: per-query latency is recorded by the completion callback at the
/// moment it fires, with no thread or future per in-flight request.
TrafficResult run_open_loop(serving::Server& server, const std::string& model,
                            const Workload& wl, std::size_t n_queries,
                            double qps, double zipf_s, std::uint64_t seed);

/// Single-model convenience: open loop against the first registered model.
TrafficResult run_open_loop(serving::Server& server, const Workload& wl,
                            std::size_t n_queries, double qps, double zipf_s,
                            std::uint64_t seed);

/// Mixed closed-loop traffic: every slice's clients hammer their model
/// concurrently (sum of all `clients` threads), so the engine serves all
/// registered models at self-clocked saturation at once. Slices with a
/// `deadline_micros` report per-class SLO attainment.
MixedTrafficResult run_mixed_closed_loop(serving::Server& server,
                                         const std::vector<ModelTraffic>& mix,
                                         std::size_t queries_per_client,
                                         std::uint64_t seed);

/// Mixed open-loop traffic: one dispatcher draws a single Poisson arrival
/// process at `total_qps` and routes each arrival to a slice with
/// probability proportional to its `weight`, sampling that slice's workload
/// at its own Zipf skew — several workloads sharing one frontend, the
/// Clipper deployment shape. This is the driver for two-class SLO
/// experiments: give each slice its class deadline and read per-class
/// attainment from the per-model results. The drivers are rejection-aware:
/// typed overload rejections and expiries from a load-controlled engine
/// are recorded as per-slice shed/expired rates (TrafficResult::rejected /
/// ::expired), not as errors, and every submit still gets exactly one
/// resolution.
MixedTrafficResult run_mixed_open_loop(serving::Server& server,
                                       const std::vector<ModelTraffic>& mix,
                                       std::size_t n_queries, double total_qps,
                                       std::uint64_t seed);

/// Router-fronted variants: identical semantics, but every submit goes
/// through the router's consistent-hash placement (and the async
/// completions come back through its forwarding wrapper), so a run
/// exercises the full multi-registry path.
TrafficResult run_closed_loop(serving::Router& router, const std::string& model,
                              const Workload& wl, std::size_t clients,
                              std::size_t queries_per_client, double zipf_s,
                              std::uint64_t seed);
TrafficResult run_open_loop(serving::Router& router, const std::string& model,
                            const Workload& wl, std::size_t n_queries,
                            double qps, double zipf_s, std::uint64_t seed);
MixedTrafficResult run_mixed_closed_loop(serving::Router& router,
                                         const std::vector<ModelTraffic>& mix,
                                         std::size_t queries_per_client,
                                         std::uint64_t seed);
MixedTrafficResult run_mixed_open_loop(serving::Router& router,
                                       const std::vector<ModelTraffic>& mix,
                                       std::size_t n_queries, double total_qps,
                                       std::uint64_t seed);

}  // namespace willump::workloads
