#pragma once

#include "workloads/workload.hpp"

namespace willump::workloads {

/// Configuration for the Toxic workload generator.
struct ToxicConfig {
  SplitSizes sizes{};
  std::uint64_t seed = 202;
  double toxic_fraction = 0.25;
  /// Fraction of toxic comments containing explicit curse words (the easy
  /// inputs of the paper's §1 motivating example).
  double cursing_fraction = 0.7;
  int word_tfidf_features = 2000;
  int char_tfidf_features = 3000;
  /// Comment length range in words; the parallelization experiment
  /// (Figure 8) uses longer comments so generator cost dominates dispatch.
  std::size_t words_min = 8;
  std::size_t words_max = 28;
};

/// Toxic: classify comments as toxic or not (the paper's Jigsaw Kaggle
/// entry; Table 1: string processing, n-grams, TF-IDF; linear model).
///
/// Graph (3 IFVs, Figure 4b shape):
///   comment --------------------------> [curse keyword counts] (FG1, ~free)
///   comment -> lowercase(shared) ------> word tfidf            (FG2, medium)
///                                  \---> char 3-5gram tfidf    (FG3, expensive)
///
/// Planted structure: most toxic comments contain curse words — FG1 decides
/// them instantly, the paper's canonical cascade example; subtly toxic
/// comments use insult words (FG2) or hostile character patterns (FG3).
Workload make_toxic(const ToxicConfig& cfg = {});

/// Rebuild the Toxic workload from already-materialized splits (e.g. a
/// cached WSPL split bundle) instead of regenerating the text. The pipeline
/// is re-fitted on the provided train split exactly as make_toxic fits it on
/// freshly generated data, so a round-tripped split set yields a
/// bit-identical pipeline; only the expensive text generation is skipped.
Workload make_toxic_from_splits(const ToxicConfig& cfg, core::LabeledData train,
                                core::LabeledData valid, core::LabeledData test);

/// The curse-word vocabulary the generator and FG1 share (synthetic tokens).
const std::vector<std::string>& toxic_curse_vocab();

}  // namespace willump::workloads
