#pragma once

#include "workloads/workload.hpp"

namespace willump::workloads {

/// Configuration for the Price workload generator.
struct PriceConfig {
  SplitSizes sizes{.train = 5000, .valid = 1500, .test = 1500};
  std::uint64_t seed = 505;
  std::size_t n_brands = 600;
  std::size_t n_categories = 150;
  int name_tfidf_features = 2000;
};

/// Price: predict product prices for online sellers (the paper's Mercari
/// Kaggle winner; Table 1: feature encoding, string processing, TF-IDF;
/// neural net, REGRESSION — cascades never apply, top-K filtering does).
///
/// Graph (5 IFVs, Figure 4d shape):
///   name ----------------------------> [string stats]     (FG1, ~free)
///   name -> lowercase(shared preproc) -> word tfidf        (FG2, expensive)
///   brand_id ------------------------> [one-hot hash 256]  (FG3, cheap)
///   category_id ---------------------> [one-hot hash 64]   (FG4, cheap)
///   shipping, condition -------------> [numeric assembly]  (FG5, ~free)
///
/// The model is a sparse-input MLP; per the paper (§4.2) its IFV
/// importances come from a GBDT proxy, which this workload exercises.
/// Target: log1p(price) with planted brand/category/keyword effects.
Workload make_price(const PriceConfig& cfg = {});

}  // namespace willump::workloads
