#include "workloads/price.hpp"

#include <cmath>

#include "common/string_util.hpp"
#include "models/mlp.hpp"
#include "ops/concat.hpp"
#include "ops/encoders.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"
#include "workloads/text_gen.hpp"

namespace willump::workloads {

Workload make_price(const PriceConfig& cfg) {
  common::Rng rng(cfg.seed);
  const auto noun_vocab = TextGen::make_vocab(500, 0xC1);
  const auto premium_vocab = TextGen::make_vocab(25, 0xC2);  // "leather, gold..."
  const auto budget_vocab = TextGen::make_vocab(25, 0xC3);   // "used, broken..."

  std::vector<double> brand_premium(cfg.n_brands);
  for (auto& b : brand_premium) b = rng.next_gaussian() * 0.35;
  std::vector<double> category_base(cfg.n_categories);
  for (auto& c : category_base) c = 2.5 + rng.next_gaussian() * 1.0;

  const std::size_t n = cfg.sizes.total();
  data::StringColumn names;
  data::IntColumn brands, categories, shippings, conditions;
  std::vector<double> log_price;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t brand = rng.next_below(cfg.n_brands);
    const std::size_t cat = rng.next_below(cfg.n_categories);
    const std::int64_t shipping = rng.next_bernoulli(0.45) ? 1 : 0;
    const std::int64_t condition = rng.next_int(1, 5);

    std::string name = TextGen::make_doc(noun_vocab, 3 + rng.next_below(6), rng);
    double keyword_effect = 0.0;
    if (rng.next_bernoulli(0.3)) {
      name += " " + TextGen::pick(premium_vocab, rng);
      keyword_effect += 0.6;
    }
    if (rng.next_bernoulli(0.2)) {
      name = TextGen::pick(budget_vocab, rng) + " " + name;
      keyword_effect -= 0.5;
    }

    const double y = category_base[cat] + brand_premium[brand] + keyword_effect +
                     0.08 * static_cast<double>(condition) -
                     0.1 * static_cast<double>(shipping) +
                     rng.next_gaussian() * 0.25;
    names.push_back(std::move(name));
    brands.push_back(static_cast<std::int64_t>(brand));
    categories.push_back(static_cast<std::int64_t>(cat));
    shippings.push_back(shipping);
    conditions.push_back(condition);
    log_price.push_back(y);
  }

  data::StringColumn train_corpus(
      names.begin(), names.begin() + static_cast<std::ptrdiff_t>(cfg.sizes.train));
  for (auto& doc : train_corpus) doc = common::to_lower(doc);

  ops::TfIdfConfig word_cfg;
  word_cfg.analyzer = ops::Analyzer::Word;
  word_cfg.ngrams = {1, 2};
  word_cfg.max_features = cfg.name_tfidf_features;
  auto word_model = std::make_shared<ops::TfIdfModel>(
      ops::TfIdfModel::fit(train_corpus, word_cfg));

  Workload w;
  w.name = "price";
  w.classification = false;

  core::Graph& g = w.pipeline.graph;
  const int name = g.add_source("name", data::ColumnType::String);
  const int brand = g.add_source("brand_id", data::ColumnType::Int);
  const int category = g.add_source("category_id", data::ColumnType::Int);
  const int shipping = g.add_source("shipping", data::ColumnType::Int);
  const int condition = g.add_source("condition", data::ColumnType::Int);

  const int stats =
      g.add_transform("stats", std::make_shared<ops::StringStatsOp>(), {name});
  const int lower =
      g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {name});
  const int name_tfidf = g.add_transform(
      "name_tfidf", std::make_shared<ops::TfIdfOp>(word_model, "name_tfidf"),
      {lower});
  const int brand_oh = g.add_transform(
      "brand_onehot",
      std::make_shared<ops::OneHotHashOp>(1024, 0xBEEF, "brand_onehot"), {brand});
  const int cat_oh = g.add_transform(
      "category_onehot",
      std::make_shared<ops::OneHotHashOp>(256, 0xCAFE, "category_onehot"),
      {category});
  const int numeric = g.add_transform(
      "numeric", std::make_shared<ops::NumericColumnsOp>("numeric"),
      {shipping, condition});
  const int concat =
      g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                      {stats, name_tfidf, brand_oh, cat_oh, numeric});
  g.set_output(concat);

  models::MlpConfig mlp;
  mlp.hidden = 64;
  mlp.epochs = 25;
  mlp.learning_rate = 0.015;
  mlp.classification = false;
  w.pipeline.model_proto = std::make_shared<models::Mlp>(mlp);

  data::Batch inputs;
  inputs.add("name", data::Column(std::move(names)));
  inputs.add("brand_id", data::Column(std::move(brands)));
  inputs.add("category_id", data::Column(std::move(categories)));
  inputs.add("shipping", data::Column(std::move(shippings)));
  inputs.add("condition", data::Column(std::move(conditions)));
  split_labeled(inputs, log_price, cfg.sizes, w);
  return w;
}

}  // namespace willump::workloads
