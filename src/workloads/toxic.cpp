#include "workloads/toxic.hpp"

#include "common/string_util.hpp"
#include "models/linear.hpp"
#include "ops/concat.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"
#include "workloads/text_gen.hpp"

namespace willump::workloads {

const std::vector<std::string>& toxic_curse_vocab() {
  static const std::vector<std::string> vocab = TextGen::make_vocab(12, 0xB1);
  return vocab;
}

namespace {

/// Fit the TF-IDF vectorizers on `w.train` and build the toxic graph +
/// model prototype. Shared by the generator and the from-splits rebuild so
/// both produce bit-identical pipelines from the same train split.
void build_toxic_pipeline(const ToxicConfig& cfg, Workload& w) {
  data::StringColumn train_corpus = w.train.inputs.get("comment").strings();
  for (auto& doc : train_corpus) doc = common::to_lower(doc);

  ops::TfIdfConfig word_cfg;
  word_cfg.analyzer = ops::Analyzer::Word;
  word_cfg.ngrams = {1, 1};
  word_cfg.max_features = cfg.word_tfidf_features;
  auto word_model = std::make_shared<ops::TfIdfModel>(
      ops::TfIdfModel::fit(train_corpus, word_cfg));

  ops::TfIdfConfig char_cfg;
  char_cfg.analyzer = ops::Analyzer::Char;
  char_cfg.ngrams = {3, 5};
  char_cfg.max_features = cfg.char_tfidf_features;
  auto char_model = std::make_shared<ops::TfIdfModel>(
      ops::TfIdfModel::fit(train_corpus, char_cfg));

  core::Graph& g = w.pipeline.graph;
  const int comment = g.add_source("comment", data::ColumnType::String);
  const int curses = g.add_transform(
      "curse_count", std::make_shared<ops::KeywordCountOp>(toxic_curse_vocab()),
      {comment});
  const int lower =
      g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {comment});
  const int word_tfidf = g.add_transform(
      "word_tfidf", std::make_shared<ops::TfIdfOp>(word_model, "word_tfidf"),
      {lower});
  const int char_tfidf = g.add_transform(
      "char_tfidf", std::make_shared<ops::TfIdfOp>(char_model, "char_tfidf"),
      {lower});
  const int concat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                     {curses, word_tfidf, char_tfidf});
  g.set_output(concat);

  models::LinearConfig lin;
  lin.epochs = 10;
  w.pipeline.model_proto = std::make_shared<models::LogisticRegression>(lin);
}

}  // namespace

Workload make_toxic(const ToxicConfig& cfg) {
  common::Rng rng(cfg.seed);
  const auto common_vocab = TextGen::make_vocab(600, 0xB2);
  const auto insult_vocab = TextGen::make_vocab(30, 0xB3);
  const auto& curse_vocab = toxic_curse_vocab();

  const std::size_t n = cfg.sizes.total();
  data::StringColumn comments;
  std::vector<double> labels;
  comments.reserve(n);
  labels.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const bool toxic = rng.next_bernoulli(cfg.toxic_fraction);
    std::string comment = TextGen::make_doc(
        common_vocab, cfg.words_min + rng.next_below(cfg.words_max - cfg.words_min),
        rng);
    if (toxic) {
      if (rng.next_bernoulli(cfg.cursing_fraction)) {
        // Easy: explicit curse words, often repeated and shouted.
        const int curses = 1 + static_cast<int>(rng.next_below(3));
        for (int k = 0; k < curses; ++k) {
          comment += " " + TextGen::pick(curse_vocab, rng);
        }
        if (rng.next_bernoulli(0.4)) TextGen::shout(comment, 0.6, rng);
      } else if (rng.next_bernoulli(0.6)) {
        // Subtle: insult vocabulary without curses (word identity, FG2).
        comment += " " + TextGen::pick(insult_vocab, rng) + " " +
                   TextGen::pick(insult_vocab, rng);
      } else {
        // Hostile character pattern: stretched vowels + exclamations that
        // only char n-grams capture.
        comment += " " + TextGen::pick(common_vocab, rng) + "aaaaa!!!";
      }
    } else if (rng.next_bernoulli(0.03)) {
      // Hard negative: quotes an insult word in a benign context.
      comment += " " + TextGen::pick(insult_vocab, rng);
    }
    comments.push_back(std::move(comment));
    labels.push_back(toxic ? 1.0 : 0.0);
  }

  Workload w;
  w.name = "toxic";
  w.classification = true;

  data::Batch inputs;
  inputs.add("comment", data::Column(std::move(comments)));
  split_labeled(inputs, labels, cfg.sizes, w);
  build_toxic_pipeline(cfg, w);
  return w;
}

Workload make_toxic_from_splits(const ToxicConfig& cfg, core::LabeledData train,
                                core::LabeledData valid,
                                core::LabeledData test) {
  Workload w;
  w.name = "toxic";
  w.classification = true;
  w.train = std::move(train);
  w.valid = std::move(valid);
  w.test = std::move(test);
  build_toxic_pipeline(cfg, w);
  return w;
}

}  // namespace willump::workloads
