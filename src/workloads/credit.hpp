#pragma once

#include "workloads/workload.hpp"

namespace willump::workloads {

/// Configuration for the Credit workload generator.
struct CreditConfig {
  SplitSizes sizes{.train = 5000, .valid = 1500, .test = 1500};
  std::uint64_t seed = 404;
  std::size_t n_clients = 5000;
  double client_zipf = 0.8;  // mild repeat-query skew
};

/// Credit: predict the probability a client defaults on a loan (the paper's
/// Home Credit Kaggle entry; Table 1: remote data lookup, data joins; GBDT,
/// REGRESSION — so cascades never apply, but the automatic top-K filter
/// model does, Table 4).
///
/// Graph (4 IFVs + a post-concatenation standardizing scaler, which
/// exercises Willump's handling of commutative transforms between the
/// concat node and the model, §5.1):
///   income, amount, annuity -> [numeric assembly]           (FG1, ~free)
///   client_id -> [client_features lookup]                   (FG2)
///   client_id -> [bureau_features lookup]                   (FG3)
///   client_id -> [prev_application_features lookup]         (FG4)
///   concat -> scale -> model
Workload make_credit(const CreditConfig& cfg = {});

}  // namespace willump::workloads
