#include "workloads/music.hpp"

#include <cmath>

#include "models/gbdt.hpp"
#include "ops/concat.hpp"
#include "ops/lookup.hpp"

namespace willump::workloads {

namespace {

/// All per-entity state of the synthetic music universe.
struct MusicWorld {
  std::vector<std::vector<double>> user_latent;
  std::vector<std::vector<double>> song_latent;
  std::vector<std::size_t> song_genre;
  std::vector<std::size_t> song_artist;
  std::vector<double> genre_affinity;   // per-genre base like rate shift
  std::vector<double> artist_quality;
  std::vector<double> user_activity;
  std::vector<double> song_popularity;
};

std::vector<double> random_unit(common::Rng& rng, int dim) {
  std::vector<double> v(static_cast<std::size_t>(dim));
  double norm = 0.0;
  for (auto& x : v) {
    x = rng.next_gaussian();
    norm += x * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : v) x /= norm;
  return v;
}

MusicWorld make_world(const MusicConfig& cfg, common::Rng& rng) {
  MusicWorld w;
  w.user_latent.reserve(cfg.n_users);
  for (std::size_t u = 0; u < cfg.n_users; ++u) {
    w.user_latent.push_back(random_unit(rng, cfg.latent_dim));
  }
  w.song_latent.reserve(cfg.n_songs);
  for (std::size_t s = 0; s < cfg.n_songs; ++s) {
    w.song_latent.push_back(random_unit(rng, cfg.latent_dim));
    w.song_genre.push_back(rng.next_below(cfg.n_genres));
    w.song_artist.push_back(rng.next_below(cfg.n_artists));
    w.song_popularity.push_back(rng.next_gaussian() * 0.4);
  }
  for (std::size_t g = 0; g < cfg.n_genres; ++g) {
    w.genre_affinity.push_back(rng.next_gaussian() * 0.8);
  }
  for (std::size_t a = 0; a < cfg.n_artists; ++a) {
    w.artist_quality.push_back(rng.next_gaussian() * 0.3);
  }
  for (std::size_t u = 0; u < cfg.n_users; ++u) {
    w.user_activity.push_back(rng.next_gaussian() * 0.2);
  }
  return w;
}

/// P(like) for a (user, song) pair — the planted ground truth. The latent
/// dot product and genre affinity dominate; artist/stats features add a
/// small correction (so their IFVs carry little prediction importance).
double like_probability(const MusicWorld& w, std::size_t u, std::size_t s) {
  double z = 0.0;
  for (std::size_t k = 0; k < w.user_latent[u].size(); ++k) {
    z += w.user_latent[u][k] * w.song_latent[s][k];
  }
  z = 3.0 * z + w.genre_affinity[w.song_genre[s]] +
      0.4 * w.artist_quality[w.song_artist[s]] + 0.3 * w.song_popularity[s] +
      0.2 * w.user_activity[u];
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace

Workload make_music(const MusicConfig& cfg) {
  common::Rng rng(cfg.seed);
  MusicWorld world = make_world(cfg, rng);

  // Build the feature tables. The "features" are noisy views of the planted
  // entity state (as precomputed latent factors would be in the real
  // KKBox pipeline).
  auto tables = std::make_shared<store::TableRegistry>();
  auto make_table = [&](const std::string& name, std::size_t keys,
                        std::size_t dim, auto&& fill) {
    auto t = std::make_shared<store::FeatureTable>(name, dim);
    for (std::size_t k = 0; k < keys; ++k) {
      data::DenseVector row(dim);
      fill(k, row);
      t->put(static_cast<std::int64_t>(k), std::move(row));
    }
    return tables->add(std::move(t), store::NetworkModel{});
  };

  const auto ld = static_cast<std::size_t>(cfg.latent_dim);
  auto user_client = make_table(
      "user_features", cfg.n_users, ld + 4, [&](std::size_t u, auto& row) {
        for (std::size_t k = 0; k < ld; ++k) row[k] = world.user_latent[u][k];
        row[ld] = world.user_activity[u];
        for (std::size_t k = 1; k < 4; ++k) row[ld + k] = rng.next_gaussian();
      });
  auto song_client = make_table(
      "song_features", cfg.n_songs, ld + 4, [&](std::size_t s, auto& row) {
        for (std::size_t k = 0; k < ld; ++k) row[k] = world.song_latent[s][k];
        row[ld] = world.song_popularity[s];
        for (std::size_t k = 1; k < 4; ++k) row[ld + k] = rng.next_gaussian();
      });
  auto genre_client = make_table(
      "genre_features", cfg.n_genres, 6, [&](std::size_t gid, auto& row) {
        row[0] = world.genre_affinity[gid];
        for (std::size_t k = 1; k < 6; ++k) row[k] = rng.next_gaussian() * 0.2;
      });
  auto artist_client = make_table(
      "artist_features", cfg.n_artists, 8, [&](std::size_t a, auto& row) {
        row[0] = world.artist_quality[a];
        for (std::size_t k = 1; k < 8; ++k) row[k] = rng.next_gaussian() * 0.2;
      });
  auto user_stats_client = make_table(
      "user_stats", cfg.n_users, 6, [&](std::size_t u, auto& row) {
        row[0] = world.user_activity[u] + rng.next_gaussian() * 0.3;
        for (std::size_t k = 1; k < 6; ++k) row[k] = rng.next_gaussian() * 0.2;
      });
  auto song_stats_client = make_table(
      "song_stats", cfg.n_songs, 6, [&](std::size_t s, auto& row) {
        row[0] = world.song_popularity[s] + rng.next_gaussian() * 0.3;
        for (std::size_t k = 1; k < 6; ++k) row[k] = rng.next_gaussian() * 0.2;
      });

  // Sample labeled interactions with Zipf-skewed popularity.
  common::ZipfSampler user_sampler(cfg.n_users, cfg.user_zipf);
  common::ZipfSampler song_sampler(cfg.n_songs, cfg.song_zipf);

  const std::size_t n = cfg.sizes.total();
  data::IntColumn user_ids, song_ids, genre_ids, artist_ids;
  std::vector<double> labels;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t u = user_sampler.sample(rng);
    const std::size_t s = song_sampler.sample(rng);
    user_ids.push_back(static_cast<std::int64_t>(u));
    song_ids.push_back(static_cast<std::int64_t>(s));
    genre_ids.push_back(static_cast<std::int64_t>(world.song_genre[s]));
    artist_ids.push_back(static_cast<std::int64_t>(world.song_artist[s]));
    labels.push_back(rng.next_bernoulli(like_probability(world, u, s)) ? 1.0 : 0.0);
  }

  Workload w;
  w.name = "music";
  w.classification = true;
  w.tables = tables;

  core::Graph& g = w.pipeline.graph;
  const int user = g.add_source("user_id", data::ColumnType::Int);
  const int song = g.add_source("song_id", data::ColumnType::Int);
  const int genre = g.add_source("genre_id", data::ColumnType::Int);
  const int artist = g.add_source("artist_id", data::ColumnType::Int);
  const int uf = g.add_transform(
      "user_lookup", std::make_shared<ops::TableLookupOp>(user_client), {user});
  const int sf = g.add_transform(
      "song_lookup", std::make_shared<ops::TableLookupOp>(song_client), {song});
  const int gf = g.add_transform(
      "genre_lookup", std::make_shared<ops::TableLookupOp>(genre_client), {genre});
  const int af = g.add_transform(
      "artist_lookup", std::make_shared<ops::TableLookupOp>(artist_client),
      {artist});
  const int us = g.add_transform(
      "user_stats_lookup", std::make_shared<ops::TableLookupOp>(user_stats_client),
      {user});
  const int ss = g.add_transform(
      "song_stats_lookup", std::make_shared<ops::TableLookupOp>(song_stats_client),
      {song});
  const int concat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                     {uf, sf, gf, af, us, ss});
  g.set_output(concat);

  models::GbdtConfig gbdt;
  gbdt.n_trees = 40;
  gbdt.max_depth = 4;
  w.pipeline.model_proto = std::make_shared<models::Gbdt>(gbdt);

  data::Batch inputs;
  inputs.add("user_id", data::Column(std::move(user_ids)));
  inputs.add("song_id", data::Column(std::move(song_ids)));
  inputs.add("genre_id", data::Column(std::move(genre_ids)));
  inputs.add("artist_id", data::Column(std::move(artist_ids)));
  split_labeled(inputs, labels, cfg.sizes, w);

  // Serving stream with the same popularity skew (fresh draws, so caches
  // are exercised by genuine repetition, not test-set reuse).
  const auto song_genre = world.song_genre;
  const auto song_artist = world.song_artist;
  w.query_sampler = [user_sampler, song_sampler, song_genre,
                     song_artist](std::size_t count, common::Rng& qrng) {
    data::IntColumn u, s, ge, ar;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t ui = user_sampler.sample(qrng);
      const std::size_t si = song_sampler.sample(qrng);
      u.push_back(static_cast<std::int64_t>(ui));
      s.push_back(static_cast<std::int64_t>(si));
      ge.push_back(static_cast<std::int64_t>(song_genre[si]));
      ar.push_back(static_cast<std::int64_t>(song_artist[si]));
    }
    data::Batch b;
    b.add("user_id", data::Column(std::move(u)));
    b.add("song_id", data::Column(std::move(s)));
    b.add("genre_id", data::Column(std::move(ge)));
    b.add("artist_id", data::Column(std::move(ar)));
    return b;
  };
  return w;
}

}  // namespace willump::workloads
