#include "workloads/credit.hpp"

#include <cmath>

#include "models/gbdt.hpp"
#include "ops/concat.hpp"
#include "ops/encoders.hpp"
#include "ops/lookup.hpp"
#include "ops/scale.hpp"

namespace willump::workloads {

namespace {

struct ClientState {
  double credit_history;  // higher = better
  double debt_ratio;
  double prev_defaults;
  double employment_years;
};

}  // namespace

Workload make_credit(const CreditConfig& cfg) {
  common::Rng rng(cfg.seed);

  std::vector<ClientState> clients(cfg.n_clients);
  for (auto& c : clients) {
    c.credit_history = rng.next_gaussian();
    c.debt_ratio = std::abs(rng.next_gaussian());
    c.prev_defaults = rng.next_bernoulli(0.2) ? 1.0 + rng.next_below(3) : 0.0;
    c.employment_years = std::abs(rng.next_gaussian()) * 8.0;
  }

  auto tables = std::make_shared<store::TableRegistry>();
  auto client_table = std::make_shared<store::FeatureTable>("client_features", 15);
  auto bureau_table = std::make_shared<store::FeatureTable>("bureau_features", 10);
  auto prev_table =
      std::make_shared<store::FeatureTable>("prev_application_features", 8);
  for (std::size_t k = 0; k < cfg.n_clients; ++k) {
    const auto& c = clients[k];
    data::DenseVector cf(15), bf(10), pf(8);
    cf[0] = c.credit_history;
    cf[1] = c.employment_years;
    cf[2] = c.debt_ratio + rng.next_gaussian() * 0.1;
    for (std::size_t i = 3; i < 15; ++i) cf[i] = rng.next_gaussian() * 0.3;
    bf[0] = c.debt_ratio;
    bf[1] = c.credit_history + rng.next_gaussian() * 0.2;
    for (std::size_t i = 2; i < 10; ++i) bf[i] = rng.next_gaussian() * 0.3;
    pf[0] = c.prev_defaults;
    for (std::size_t i = 1; i < 8; ++i) pf[i] = rng.next_gaussian() * 0.3;
    client_table->put(static_cast<std::int64_t>(k), std::move(cf));
    bureau_table->put(static_cast<std::int64_t>(k), std::move(bf));
    prev_table->put(static_cast<std::int64_t>(k), std::move(pf));
  }
  auto client_client = tables->add(client_table, store::NetworkModel{});
  auto bureau_client = tables->add(bureau_table, store::NetworkModel{});
  auto prev_client = tables->add(prev_table, store::NetworkModel{});

  // Sample loan applications.
  common::ZipfSampler client_sampler(cfg.n_clients, cfg.client_zipf);
  const std::size_t n = cfg.sizes.total();
  data::IntColumn client_ids;
  data::DoubleColumn incomes, amounts, annuities;
  std::vector<double> risk;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = client_sampler.sample(rng);
    const auto& c = clients[k];
    const double income = 30.0 + std::abs(rng.next_gaussian()) * 40.0;
    const double amount = 50.0 + std::abs(rng.next_gaussian()) * 150.0;
    const double annuity = amount / (6.0 + rng.next_below(18));
    // Planted default-risk surface (the regression target in [0, 1]). The
    // loan-burden ratio (annuity / income) dominates the upper tail, as
    // affordability does in the real Home Credit data; this is what makes a
    // cheap filter model over the raw numeric IFV highly precise on top-K
    // queries (the paper reports Credit filter precision 0.99, Table 4).
    // Coefficients keep even the top percentile inside sigmoid's responsive
    // range (the paper's true top-100 average value is 0.78, i.e.
    // unsaturated) so that top-K ranking stays meaningful.
    const double burden = annuity / std::max(income, 1.0) * 2.5;
    const double z = -2.2 - 0.3 * c.credit_history + 0.25 * c.debt_ratio +
                     0.25 * c.prev_defaults - 0.012 * c.employment_years +
                     1.3 * burden + 0.002 * amount / std::max(income, 1.0) +
                     rng.next_gaussian() * 0.12;
    client_ids.push_back(static_cast<std::int64_t>(k));
    incomes.push_back(income);
    amounts.push_back(amount);
    annuities.push_back(annuity);
    risk.push_back(1.0 / (1.0 + std::exp(-z)));
  }

  Workload w;
  w.name = "credit";
  w.classification = false;
  w.tables = tables;

  core::Graph& g = w.pipeline.graph;
  const int client = g.add_source("client_id", data::ColumnType::Int);
  const int income = g.add_source("income", data::ColumnType::Double);
  const int amount = g.add_source("amount", data::ColumnType::Double);
  const int annuity = g.add_source("annuity", data::ColumnType::Double);
  // Derived affordability ratios, as the real Home Credit kernels compute
  // (burden = annuity/income is the dominant risk driver); they live inside
  // the numeric feature generator as exclusive ancestor nodes.
  const int burden = g.add_transform(
      "burden_ratio", std::make_shared<ops::ColumnMathOp>(ops::ColumnMathOp::Kind::Div),
      {annuity, income});
  const int leverage = g.add_transform(
      "leverage_ratio",
      std::make_shared<ops::ColumnMathOp>(ops::ColumnMathOp::Kind::Div),
      {amount, income});
  const int numeric =
      g.add_transform("numeric", std::make_shared<ops::NumericColumnsOp>("numeric"),
                      {income, amount, annuity, burden, leverage});
  const int cf = g.add_transform(
      "client_lookup", std::make_shared<ops::TableLookupOp>(client_client),
      {client});
  const int bf = g.add_transform(
      "bureau_lookup", std::make_shared<ops::TableLookupOp>(bureau_client),
      {client});
  const int pf = g.add_transform(
      "prev_lookup", std::make_shared<ops::TableLookupOp>(prev_client), {client});
  const int concat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                     {numeric, cf, bf, pf});
  // Post-concat standardizer: parameters derived from the known generator
  // distributions (analytic rather than fitted, so the graph is static).
  std::vector<double> scale(5 + 15 + 10 + 8, 1.0);
  std::vector<double> offset(scale.size(), 0.0);
  scale[0] = 1.0 / 40.0;   // income
  scale[1] = 1.0 / 150.0;  // amount
  scale[2] = 1.0 / 15.0;   // annuity
  offset[0] = 30.0;
  offset[1] = 50.0;
  const int scaled = g.add_transform(
      "scale", std::make_shared<ops::ScaleOp>(std::move(scale), std::move(offset)),
      {concat});
  g.set_output(scaled);

  models::GbdtConfig gbdt;
  gbdt.n_trees = 60;
  gbdt.max_depth = 4;
  gbdt.classification = false;
  gbdt.n_bins = 64;
  gbdt.learning_rate = 0.1;
  w.pipeline.model_proto = std::make_shared<models::Gbdt>(gbdt);

  data::Batch inputs;
  inputs.add("client_id", data::Column(std::move(client_ids)));
  inputs.add("income", data::Column(std::move(incomes)));
  inputs.add("amount", data::Column(std::move(amounts)));
  inputs.add("annuity", data::Column(std::move(annuities)));
  split_labeled(inputs, risk, cfg.sizes, w);
  return w;
}

}  // namespace willump::workloads
