#include "workloads/tracking.hpp"

#include <cmath>

#include "models/gbdt.hpp"
#include "ops/concat.hpp"
#include "ops/encoders.hpp"
#include "ops/lookup.hpp"

namespace willump::workloads {

Workload make_tracking(const TrackingConfig& cfg) {
  common::Rng rng(cfg.seed);

  std::vector<double> ip_reputation(cfg.n_ips);
  for (auto& v : ip_reputation) v = rng.next_gaussian();
  std::vector<double> app_ctr(cfg.n_apps);
  for (auto& v : app_ctr) v = rng.next_gaussian() * 1.4;
  std::vector<double> channel_quality(cfg.n_channels);
  for (auto& v : channel_quality) v = rng.next_gaussian() * 1.1;
  std::vector<double> device_factor(cfg.n_devices);
  for (auto& v : device_factor) v = rng.next_gaussian() * 0.2;
  std::vector<double> os_factor(cfg.n_os);
  for (auto& v : os_factor) v = rng.next_gaussian() * 0.2;

  auto tables = std::make_shared<store::TableRegistry>();
  auto make_table = [&](const std::string& name, const std::vector<double>& base,
                        std::size_t dim) {
    auto t = std::make_shared<store::FeatureTable>(name, dim);
    for (std::size_t k = 0; k < base.size(); ++k) {
      data::DenseVector row(dim);
      row[0] = base[k];
      for (std::size_t i = 1; i < dim; ++i) row[i] = rng.next_gaussian() * 0.25;
      t->put(static_cast<std::int64_t>(k), std::move(row));
    }
    return tables->add(std::move(t), store::NetworkModel{});
  };
  auto ip_client = make_table("ip_features", ip_reputation, 8);
  auto app_client = make_table("app_features", app_ctr, 6);
  auto channel_client = make_table("channel_features", channel_quality, 6);
  auto device_client = make_table("device_features", device_factor, 4);
  auto os_client = make_table("os_features", os_factor, 4);

  common::ZipfSampler ip_sampler(cfg.n_ips, cfg.ip_zipf);
  common::ZipfSampler app_sampler(cfg.n_apps, 1.0);
  common::ZipfSampler channel_sampler(cfg.n_channels, 1.0);

  // Captures by value so the sampler stays valid inside Workload::query_sampler
  // after this function returns.
  auto sample_rows = [cfg, ip_sampler, app_sampler, channel_sampler, ip_reputation,
                      app_ctr, channel_quality, device_factor,
                      os_factor](std::size_t count, common::Rng& r,
                                 data::Batch& out, std::vector<double>* labels) {
    data::IntColumn ips, apps, channels, devices, oss;
    data::DoubleColumn hours;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t ip = ip_sampler.sample(r);
      const std::size_t app = app_sampler.sample(r);
      const std::size_t channel = channel_sampler.sample(r);
      const std::size_t device = r.next_below(cfg.n_devices);
      const std::size_t os = r.next_below(cfg.n_os);
      const double hour = static_cast<double>(r.next_below(24));
      if (labels != nullptr) {
        const double night_bonus = (hour >= 1.0 && hour <= 6.0) ? 0.4 : 0.0;
        const double z = -1.1 + app_ctr[app] + channel_quality[channel] +
                         0.5 * ip_reputation[ip] + device_factor[device] +
                         os_factor[os] + night_bonus + r.next_gaussian() * 0.3;
        const double p = 1.0 / (1.0 + std::exp(-z));
        labels->push_back(r.next_bernoulli(p) ? 1.0 : 0.0);
      }
      ips.push_back(static_cast<std::int64_t>(ip));
      apps.push_back(static_cast<std::int64_t>(app));
      channels.push_back(static_cast<std::int64_t>(channel));
      devices.push_back(static_cast<std::int64_t>(device));
      oss.push_back(static_cast<std::int64_t>(os));
      hours.push_back(hour);
    }
    out.add("ip_id", data::Column(std::move(ips)));
    out.add("app_id", data::Column(std::move(apps)));
    out.add("channel_id", data::Column(std::move(channels)));
    out.add("device_id", data::Column(std::move(devices)));
    out.add("os_id", data::Column(std::move(oss)));
    out.add("hour", data::Column(std::move(hours)));
  };

  data::Batch inputs;
  std::vector<double> labels;
  sample_rows(cfg.sizes.total(), rng, inputs, &labels);

  Workload w;
  w.name = "tracking";
  w.classification = true;
  w.tables = tables;

  core::Graph& g = w.pipeline.graph;
  const int ip = g.add_source("ip_id", data::ColumnType::Int);
  const int app = g.add_source("app_id", data::ColumnType::Int);
  const int channel = g.add_source("channel_id", data::ColumnType::Int);
  const int device = g.add_source("device_id", data::ColumnType::Int);
  const int os = g.add_source("os_id", data::ColumnType::Int);
  const int hour = g.add_source("hour", data::ColumnType::Double);

  const int ipf = g.add_transform(
      "ip_lookup", std::make_shared<ops::TableLookupOp>(ip_client), {ip});
  const int appf = g.add_transform(
      "app_lookup", std::make_shared<ops::TableLookupOp>(app_client), {app});
  const int chf = g.add_transform(
      "channel_lookup", std::make_shared<ops::TableLookupOp>(channel_client),
      {channel});
  const int devf = g.add_transform(
      "device_lookup", std::make_shared<ops::TableLookupOp>(device_client),
      {device});
  const int osf = g.add_transform(
      "os_lookup", std::make_shared<ops::TableLookupOp>(os_client), {os});
  const int hour_bucket = g.add_transform(
      "hour_bucket",
      std::make_shared<ops::BucketizeOp>(std::vector<double>{6.0, 12.0, 18.0}),
      {hour});
  const int hourf = g.add_transform(
      "hour_numeric", std::make_shared<ops::NumericColumnsOp>("hour_numeric"),
      {hour_bucket, hour});
  const int concat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                     {ipf, appf, chf, devf, osf, hourf});
  g.set_output(concat);

  models::GbdtConfig gbdt;
  gbdt.n_trees = 40;
  gbdt.max_depth = 4;
  w.pipeline.model_proto = std::make_shared<models::Gbdt>(gbdt);

  split_labeled(inputs, labels, cfg.sizes, w);

  w.query_sampler = [sample_rows](std::size_t count, common::Rng& qrng) mutable {
    data::Batch b;
    sample_rows(count, qrng, b, nullptr);
    return b;
  };
  return w;
}

}  // namespace willump::workloads
