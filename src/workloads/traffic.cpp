#include "workloads/traffic.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "common/timer.hpp"

namespace willump::workloads {

namespace {

/// How one submit resolved, from the driver's point of view: a prediction,
/// a typed overload rejection (shed at admission), a typed expiry (dropped
/// dead-on-arrival by a worker), or a real execution error.
enum class Outcome { kOk, kRejected, kExpired, kError };

Outcome classify(const std::exception_ptr& error) {
  if (error == nullptr) return Outcome::kOk;
  try {
    std::rethrow_exception(error);
  } catch (const serving::RejectedError& e) {
    return e.reason() == serving::RejectReason::kExpired ? Outcome::kExpired
                                                         : Outcome::kRejected;
  } catch (...) {
    return Outcome::kError;
  }
}

/// Per-slice non-latency outcome counts of one run.
struct OutcomeCounts {
  std::size_t errors = 0;
  std::size_t rejected = 0;
  std::size_t expired = 0;
};

/// Shared TrafficResult assembly from serving-stats deltas and client-side
/// latencies (offered_qps stays 0 unless the caller sets it). Works for
/// both per-model (ModelStats) and aggregate (ServerStats) snapshots,
/// which share their counter fields. `deadline_micros` > 0 additionally
/// counts the recorded latencies that met the deadline (client-side SLO
/// attainment).
template <typename Stats>
TrafficResult make_result(const Stats& before, const Stats& after,
                          const common::LatencyRecorder& latencies,
                          double duration, OutcomeCounts counts = {},
                          double deadline_micros = 0.0) {
  TrafficResult res;
  res.completed = latencies.count();
  res.errors = counts.errors;
  res.rejected = counts.rejected;
  res.expired = counts.expired;
  res.duration_seconds = duration;
  res.achieved_qps =
      duration > 0.0 ? static_cast<double>(res.completed) / duration : 0.0;
  res.latency = latencies.summary();
  res.cache_hits = after.cache_hits - before.cache_hits;
  const std::size_t batches = after.batches - before.batches;
  res.mean_batch_rows =
      batches == 0 ? 0.0
                   : static_cast<double>(after.rows - before.rows) /
                         static_cast<double>(batches);
  res.deadline_micros = deadline_micros;
  if (deadline_micros > 0.0) {
    const double deadline_seconds = deadline_micros * 1e-6;
    for (double s : latencies.samples()) {
      if (s <= deadline_seconds) ++res.deadline_hits;
    }
  }
  return res;
}

/// Aggregate serving counters of either engine type: a Server's own stats,
/// or the fleet-wide sum a Router reports for its shards.
serving::ServerStats engine_aggregate(serving::Server& server) {
  return server.stats();
}
serving::ServerStats engine_aggregate(serving::Router& router) {
  return router.stats().serving;
}

/// Completion rendezvous of the open-loop drivers: callbacks record their
/// slice's latency at the moment they fire (on the executing worker), and
/// the dispatcher blocks on the condition variable until every in-flight
/// request has completed — no thread or future per request.
class CompletionBoard {
 public:
  explicit CompletionBoard(std::size_t slices)
      : latencies_(slices), counts_(slices) {}

  void launched() {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }

  /// Record exactly one resolution per launched submit. Latency is only
  /// recorded for real predictions: typed rejections and expiries are
  /// counted as shed load (they carry no service latency worth averaging),
  /// and execution errors as errors.
  void finish(std::size_t slice, double seconds, Outcome outcome) {
    std::lock_guard<std::mutex> lock(mu_);
    switch (outcome) {
      case Outcome::kOk:
        latencies_[slice].record(seconds);
        break;
      case Outcome::kRejected:
        ++counts_[slice].rejected;
        break;
      case Outcome::kExpired:
        ++counts_[slice].expired;
        break;
      case Outcome::kError:
        ++counts_[slice].errors;
        break;
    }
    if (--pending_ == 0) all_done_.notify_all();
  }

  void wait_all() {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
  }

  const common::LatencyRecorder& latencies(std::size_t slice) const {
    return latencies_[slice];
  }
  OutcomeCounts counts(std::size_t slice) const { return counts_[slice]; }

  common::LatencyRecorder merged() const {
    common::LatencyRecorder all;
    for (const auto& r : latencies_) all.merge(r);
    return all;
  }
  OutcomeCounts total_counts() const {
    OutcomeCounts n;
    for (const auto& c : counts_) {
      n.errors += c.errors;
      n.rejected += c.rejected;
      n.expired += c.expired;
    }
    return n;
  }

 private:
  std::mutex mu_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;
  std::vector<common::LatencyRecorder> latencies_;
  std::vector<OutcomeCounts> counts_;
};

/// Dispatch one Poisson-paced open-loop stream against either engine type
/// (Server or Router; both expose the async submit). `pick_slice` chooses
/// the mixed-traffic slice for each arrival; `samplers` and `models` are
/// indexed by slice.
/// Returns the longest any single submit() call blocked the dispatcher,
/// seconds — the no-blocked-producer watchdog signal of the overload bench.
template <typename Engine>
double dispatch_open_loop(Engine& engine,
                          const std::vector<std::string>& models,
                          std::vector<QuerySampler>& samplers,
                          const std::function<std::size_t()>& pick_slice,
                          std::size_t n_queries, double qps, std::uint64_t seed,
                          CompletionBoard& board) {
  common::Rng arrival_rng(seed ^ 0xA881);
  const auto gaps = poisson_interarrival_seconds(n_queries, qps, arrival_rng);

  double max_submit_seconds = 0.0;
  const auto start = std::chrono::steady_clock::now();
  double next_arrival = 0.0;
  for (std::size_t q = 0; q < n_queries; ++q) {
    next_arrival += gaps[q];
    const auto when =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(next_arrival));
    std::this_thread::sleep_until(when);

    const std::size_t slice = pick_slice();
    const auto submitted = std::chrono::steady_clock::now();
    board.launched();
    try {
      engine.submit(models[slice], samplers[slice].next(),
                    [&board, slice, submitted](double /*prediction*/,
                                               std::exception_ptr error) {
                      const double secs =
                          std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - submitted)
                              .count();
                      board.finish(slice, secs, classify(error));
                    });
    } catch (...) {
      // Thrown at submission (engine shut down mid-run): account it as an
      // errored completion so wait_all() still terminates. Typed overload
      // rejections never take this path — they arrive via the callback.
      board.finish(slice, 0.0, Outcome::kError);
    }
    max_submit_seconds = std::max(
        max_submit_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      submitted)
            .count());
  }
  board.wait_all();
  return max_submit_seconds;
}

template <typename Engine>
MixedTrafficResult run_mixed_closed_loop_impl(
    Engine& engine, const std::vector<ModelTraffic>& mix,
    std::size_t queries_per_client, std::uint64_t seed) {
  struct ClientSlot {
    std::size_t slice;
    common::LatencyRecorder latencies;
    OutcomeCounts counts;
  };
  std::vector<ClientSlot> slots;
  for (std::size_t s = 0; s < mix.size(); ++s) {
    for (std::size_t c = 0; c < mix[s].clients; ++c) {
      slots.push_back({s, {}, {}});
    }
  }

  std::vector<serving::ModelStats> before_model;
  before_model.reserve(mix.size());
  for (const auto& t : mix) before_model.push_back(engine.stats(t.model));
  const auto before_all = engine_aggregate(engine);

  std::vector<std::thread> threads;
  threads.reserve(slots.size());
  common::Timer wall;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    threads.emplace_back([&, i] {
      const ModelTraffic& t = mix[slots[i].slice];
      // Per-client sampler: deterministic run-to-run regardless of thread
      // interleaving.
      QuerySampler sampler(*t.wl, t.zipf_s, seed + 0x9E3779B9u * (i + 1));
      for (std::size_t q = 0; q < queries_per_client; ++q) {
        common::Timer timer;
        try {
          engine.submit(t.model, sampler.next()).get();
          slots[i].latencies.record(timer.elapsed_seconds());
        } catch (const serving::RejectedError& e) {
          // A load-controlled engine sheds instead of queueing: keep the
          // client loop self-clocking and record the typed outcome.
          if (e.reason() == serving::RejectReason::kExpired) {
            ++slots[i].counts.expired;
          } else {
            ++slots[i].counts.rejected;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double duration = wall.elapsed_seconds();

  MixedTrafficResult out;
  common::LatencyRecorder all;
  OutcomeCounts all_counts;
  for (std::size_t s = 0; s < mix.size(); ++s) {
    common::LatencyRecorder model_lat;
    OutcomeCounts model_counts;
    for (const auto& slot : slots) {
      if (slot.slice != s) continue;
      model_lat.merge(slot.latencies);
      model_counts.errors += slot.counts.errors;
      model_counts.rejected += slot.counts.rejected;
      model_counts.expired += slot.counts.expired;
    }
    all.merge(model_lat);
    all_counts.errors += model_counts.errors;
    all_counts.rejected += model_counts.rejected;
    all_counts.expired += model_counts.expired;
    out.per_model.emplace_back(
        mix[s].model,
        make_result(before_model[s], engine.stats(mix[s].model), model_lat,
                    duration, model_counts, mix[s].deadline_micros));
  }
  out.aggregate = make_result(before_all, engine_aggregate(engine), all,
                              duration, all_counts);
  return out;
}

template <typename Engine>
MixedTrafficResult run_mixed_open_loop_impl(Engine& engine,
                                            const std::vector<ModelTraffic>& mix,
                                            std::size_t n_queries,
                                            double total_qps,
                                            std::uint64_t seed) {
  std::vector<std::string> models;
  std::vector<QuerySampler> samplers;
  std::vector<double> cumulative;
  double total_weight = 0.0;
  for (std::size_t s = 0; s < mix.size(); ++s) {
    models.push_back(mix[s].model);
    samplers.emplace_back(*mix[s].wl, mix[s].zipf_s,
                          seed + 0x51ED2705u * (s + 1));
    total_weight += mix[s].weight;
    cumulative.push_back(total_weight);
  }

  std::vector<serving::ModelStats> before_model;
  before_model.reserve(mix.size());
  for (const auto& t : mix) before_model.push_back(engine.stats(t.model));
  const auto before_all = engine_aggregate(engine);

  common::Rng route_rng(seed ^ 0xB07E);
  CompletionBoard board(mix.size());
  common::Timer wall;
  const double max_submit = dispatch_open_loop(
      engine, models, samplers,
      [&]() -> std::size_t {
        const double u = route_rng.next_double() * total_weight;
        for (std::size_t s = 0; s < cumulative.size(); ++s) {
          if (u < cumulative[s]) return s;
        }
        return cumulative.size() - 1;
      },
      n_queries, total_qps, seed, board);
  const double duration = wall.elapsed_seconds();

  MixedTrafficResult out;
  for (std::size_t s = 0; s < mix.size(); ++s) {
    TrafficResult r = make_result(before_model[s], engine.stats(mix[s].model),
                                  board.latencies(s), duration,
                                  board.counts(s), mix[s].deadline_micros);
    r.offered_qps = total_qps * mix[s].weight / total_weight;
    r.max_submit_seconds = max_submit;
    out.per_model.emplace_back(mix[s].model, std::move(r));
  }
  out.aggregate = make_result(before_all, engine_aggregate(engine),
                              board.merged(), duration, board.total_counts());
  out.aggregate.offered_qps = total_qps;
  out.aggregate.max_submit_seconds = max_submit;
  return out;
}

ModelTraffic single_slice(const std::string& model, const Workload& wl,
                          double zipf_s, std::size_t clients, double weight) {
  ModelTraffic t;
  t.model = model;
  t.wl = &wl;
  t.zipf_s = zipf_s;
  t.clients = clients;
  t.weight = weight;
  return t;
}

}  // namespace

QuerySampler::QuerySampler(const Workload& wl, double zipf_s,
                           std::uint64_t seed)
    : wl_(&wl),
      rng_(seed),
      zipf_s_(zipf_s),
      zipf_(std::max<std::size_t>(wl.test.inputs.num_rows(), 1),
            zipf_s > 0.0 ? zipf_s : 1.0),
      rank_to_row_(rng_.permutation(wl.test.inputs.num_rows())) {}

data::Batch QuerySampler::next() {
  const std::size_t n = wl_->test.inputs.num_rows();
  const std::size_t rank = zipf_s_ > 0.0
                               ? zipf_.sample(rng_)
                               : static_cast<std::size_t>(rng_.next_below(n));
  return wl_->test.inputs.row(rank_to_row_[rank]);
}

std::vector<double> poisson_interarrival_seconds(std::size_t n, double qps,
                                                 common::Rng& rng) {
  std::vector<double> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Inverse-CDF sampling; 1 - u avoids log(0).
    gaps.push_back(-std::log(1.0 - rng.next_double()) / qps);
  }
  return gaps;
}

TrafficResult run_closed_loop(serving::Server& server, const std::string& model,
                              const Workload& wl, std::size_t clients,
                              std::size_t queries_per_client, double zipf_s,
                              std::uint64_t seed) {
  const std::vector<ModelTraffic> mix{
      single_slice(model, wl, zipf_s, clients, 1.0)};
  auto res = run_mixed_closed_loop(server, mix, queries_per_client, seed);
  return res.per_model.front().second;
}

TrafficResult run_closed_loop(serving::Server& server, const Workload& wl,
                              std::size_t clients,
                              std::size_t queries_per_client, double zipf_s,
                              std::uint64_t seed) {
  return run_closed_loop(server, server.model_names().front(), wl, clients,
                         queries_per_client, zipf_s, seed);
}

TrafficResult run_open_loop(serving::Server& server, const std::string& model,
                            const Workload& wl, std::size_t n_queries,
                            double qps, double zipf_s, std::uint64_t seed) {
  const std::vector<ModelTraffic> mix{
      single_slice(model, wl, zipf_s, /*clients=*/0, 1.0)};
  auto res = run_mixed_open_loop(server, mix, n_queries, qps, seed);
  return res.per_model.front().second;
}

TrafficResult run_open_loop(serving::Server& server, const Workload& wl,
                            std::size_t n_queries, double qps, double zipf_s,
                            std::uint64_t seed) {
  return run_open_loop(server, server.model_names().front(), wl, n_queries,
                       qps, zipf_s, seed);
}

MixedTrafficResult run_mixed_closed_loop(serving::Server& server,
                                         const std::vector<ModelTraffic>& mix,
                                         std::size_t queries_per_client,
                                         std::uint64_t seed) {
  return run_mixed_closed_loop_impl(server, mix, queries_per_client, seed);
}

MixedTrafficResult run_mixed_open_loop(serving::Server& server,
                                       const std::vector<ModelTraffic>& mix,
                                       std::size_t n_queries, double total_qps,
                                       std::uint64_t seed) {
  return run_mixed_open_loop_impl(server, mix, n_queries, total_qps, seed);
}

TrafficResult run_closed_loop(serving::Router& router, const std::string& model,
                              const Workload& wl, std::size_t clients,
                              std::size_t queries_per_client, double zipf_s,
                              std::uint64_t seed) {
  const std::vector<ModelTraffic> mix{
      single_slice(model, wl, zipf_s, clients, 1.0)};
  auto res = run_mixed_closed_loop(router, mix, queries_per_client, seed);
  return res.per_model.front().second;
}

TrafficResult run_open_loop(serving::Router& router, const std::string& model,
                            const Workload& wl, std::size_t n_queries,
                            double qps, double zipf_s, std::uint64_t seed) {
  const std::vector<ModelTraffic> mix{
      single_slice(model, wl, zipf_s, /*clients=*/0, 1.0)};
  auto res = run_mixed_open_loop(router, mix, n_queries, qps, seed);
  return res.per_model.front().second;
}

MixedTrafficResult run_mixed_closed_loop(serving::Router& router,
                                         const std::vector<ModelTraffic>& mix,
                                         std::size_t queries_per_client,
                                         std::uint64_t seed) {
  return run_mixed_closed_loop_impl(router, mix, queries_per_client, seed);
}

MixedTrafficResult run_mixed_open_loop(serving::Router& router,
                                       const std::vector<ModelTraffic>& mix,
                                       std::size_t n_queries, double total_qps,
                                       std::uint64_t seed) {
  return run_mixed_open_loop_impl(router, mix, n_queries, total_qps, seed);
}

}  // namespace willump::workloads
