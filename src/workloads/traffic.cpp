#include "workloads/traffic.hpp"

#include <chrono>
#include <cmath>
#include <future>
#include <thread>

#include "common/timer.hpp"

namespace willump::workloads {

namespace {

/// Shared TrafficResult assembly from server-stats deltas and client-side
/// latencies (offered_qps stays 0 unless the caller sets it).
TrafficResult make_result(const serving::ServerStats& before,
                          const serving::ServerStats& after,
                          const common::LatencyRecorder& latencies,
                          double duration) {
  TrafficResult res;
  res.completed = latencies.count();
  res.duration_seconds = duration;
  res.achieved_qps =
      duration > 0.0 ? static_cast<double>(res.completed) / duration : 0.0;
  res.latency = latencies.summary();
  res.cache_hits = after.cache_hits - before.cache_hits;
  const std::size_t batches = after.batches - before.batches;
  res.mean_batch_rows =
      batches == 0 ? 0.0
                   : static_cast<double>(after.rows - before.rows) /
                         static_cast<double>(batches);
  return res;
}

}  // namespace

QuerySampler::QuerySampler(const Workload& wl, double zipf_s,
                           std::uint64_t seed)
    : wl_(&wl),
      rng_(seed),
      zipf_s_(zipf_s),
      zipf_(std::max<std::size_t>(wl.test.inputs.num_rows(), 1),
            zipf_s > 0.0 ? zipf_s : 1.0),
      rank_to_row_(rng_.permutation(wl.test.inputs.num_rows())) {}

data::Batch QuerySampler::next() {
  const std::size_t n = wl_->test.inputs.num_rows();
  const std::size_t rank = zipf_s_ > 0.0
                               ? zipf_.sample(rng_)
                               : static_cast<std::size_t>(rng_.next_below(n));
  return wl_->test.inputs.row(rank_to_row_[rank]);
}

std::vector<double> poisson_interarrival_seconds(std::size_t n, double qps,
                                                 common::Rng& rng) {
  std::vector<double> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Inverse-CDF sampling; 1 - u avoids log(0).
    gaps.push_back(-std::log(1.0 - rng.next_double()) / qps);
  }
  return gaps;
}

TrafficResult run_closed_loop(serving::Server& server, const Workload& wl,
                              std::size_t clients,
                              std::size_t queries_per_client, double zipf_s,
                              std::uint64_t seed) {
  std::vector<common::LatencyRecorder> per_client(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);

  const auto before = server.stats();
  common::Timer wall;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Per-client sampler: deterministic run-to-run regardless of thread
      // interleaving.
      QuerySampler sampler(wl, zipf_s, seed + 0x9E3779B9u * (c + 1));
      for (std::size_t q = 0; q < queries_per_client; ++q) {
        common::Timer t;
        server.submit(sampler.next()).get();
        per_client[c].record(t.elapsed_seconds());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double duration = wall.elapsed_seconds();
  const auto after = server.stats();

  common::LatencyRecorder all;
  for (const auto& r : per_client) all.merge(r);
  return make_result(before, after, all, duration);
}

TrafficResult run_open_loop(serving::Server& server, const Workload& wl,
                            std::size_t n_queries, double qps, double zipf_s,
                            std::uint64_t seed) {
  QuerySampler sampler(wl, zipf_s, seed);
  common::Rng arrival_rng(seed ^ 0xA881);
  const auto gaps = poisson_interarrival_seconds(n_queries, qps, arrival_rng);

  struct InFlight {
    std::future<double> future;
    std::chrono::steady_clock::time_point submitted;
  };
  std::vector<InFlight> in_flight;
  in_flight.reserve(n_queries);

  const auto before = server.stats();
  common::Timer wall;
  const auto start = std::chrono::steady_clock::now();
  double next_arrival = 0.0;
  for (std::size_t q = 0; q < n_queries; ++q) {
    next_arrival += gaps[q];
    const auto when =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(next_arrival));
    std::this_thread::sleep_until(when);
    in_flight.push_back({server.submit(sampler.next()),
                         std::chrono::steady_clock::now()});
  }

  common::LatencyRecorder all;
  for (auto& f : in_flight) {
    f.future.wait();
    // Completion observed in submission order: a query that finished while
    // an earlier one was still pending is charged its true completion only
    // approximately (bounded by the earlier wait). The engine's own stats
    // record exact per-query latency if needed.
    all.record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             f.submitted)
                   .count());
  }
  const double duration = wall.elapsed_seconds();
  const auto after = server.stats();

  TrafficResult res = make_result(before, after, all, duration);
  res.offered_qps = qps;
  return res;
}

}  // namespace willump::workloads
