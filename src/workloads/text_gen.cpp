#include "workloads/text_gen.hpp"

#include <cctype>
#include <unordered_set>

namespace willump::workloads {

namespace {

const char* kConsonants[] = {"b", "d",  "f", "g", "k",  "l",  "m",
                             "n", "p",  "r", "s", "t",  "v",  "z",
                             "ch", "sh", "th", "br", "st", "tr"};
const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ou", "ea"};

std::string make_syllable(common::Rng& rng) {
  std::string s = kConsonants[rng.next_below(std::size(kConsonants))];
  s += kVowels[rng.next_below(std::size(kVowels))];
  return s;
}

}  // namespace

std::vector<std::string> TextGen::make_vocab(std::size_t n, std::uint64_t salt) {
  common::Rng rng(0x7E87 ^ salt);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(n);
  while (out.size() < n) {
    const std::size_t syllables = 2 + rng.next_below(3);
    std::string w;
    for (std::size_t i = 0; i < syllables; ++i) w += make_syllable(rng);
    if (seen.insert(w).second) out.push_back(std::move(w));
  }
  return out;
}

const std::string& TextGen::pick(const std::vector<std::string>& vocab,
                                 common::Rng& rng) {
  return vocab[rng.next_below(vocab.size())];
}

std::string TextGen::make_doc(const std::vector<std::string>& vocab,
                              std::size_t n_words, common::Rng& rng) {
  std::string out;
  for (std::size_t i = 0; i < n_words; ++i) {
    if (i > 0) out.push_back(' ');
    out += pick(vocab, rng);
  }
  return out;
}

void TextGen::shout(std::string& s, double fraction, common::Rng& rng) {
  for (char& c : s) {
    if (std::isalpha(static_cast<unsigned char>(c)) &&
        rng.next_double() < fraction) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
}

}  // namespace willump::workloads
