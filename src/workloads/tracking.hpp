#pragma once

#include "workloads/workload.hpp"

namespace willump::workloads {

/// Configuration for the Tracking workload generator.
struct TrackingConfig {
  SplitSizes sizes{.train = 6000, .valid = 2000, .test = 2000};
  std::uint64_t seed = 606;
  std::size_t n_ips = 8000;
  std::size_t n_apps = 200;
  std::size_t n_channels = 100;
  std::size_t n_devices = 50;
  std::size_t n_os = 30;
  double ip_zipf = 1.1;
};

/// Tracking: predict whether a user downloads an app after clicking a
/// mobile-app ad (the paper's TalkingData Kaggle entry; Table 1: remote
/// data lookup, data joins; GBDT).
///
/// Graph (6 IFVs; one generator is a multi-node chain — bucketize(hour) ->
/// numeric — exercising generators with more than one transform):
///   ip_id      -> [ip_features lookup]        (reputation/click counts)
///   app_id     -> [app_features lookup]       (historical CTR)
///   channel_id -> [channel_features lookup]
///   device_id  -> [device_features lookup]
///   os_id      -> [os_features lookup]
///   hour       -> bucketize -> [numeric]      (time-of-day)
///
/// Planted structure: app CTR and channel quality dominate (many clicks are
/// trivially fraud/not-fraud — the paper notes "many dataset elements have
/// positive class probability 1", which is why Tracking is excluded from
/// the top-K evaluation); ip popularity is Zipf-skewed for the caching
/// experiments.
Workload make_tracking(const TrackingConfig& cfg = {});

}  // namespace willump::workloads
