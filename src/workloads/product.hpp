#pragma once

#include "workloads/workload.hpp"

namespace willump::workloads {

/// Configuration for the Product workload generator.
struct ProductConfig {
  SplitSizes sizes{};
  std::uint64_t seed = 101;
  /// Fraction of titles classifiable from cheap surface statistics alone
  /// (the "easy" inputs cascades short-circuit).
  double easy_fraction = 0.72;
  int word_tfidf_features = 1500;
  int char_tfidf_features = 2500;
};

/// Product: classify product titles as concise or not (the paper's CIKM
/// AnalytiCup 2017 Lazada entry; Table 1: string processing, n-grams,
/// TF-IDF; linear model).
///
/// Graph (3 IFVs, Figure 4a shape):
///   title ---------------------> [string_stats]             (FG1, cheap)
///   title -> lowercase(shared) -> strip_punct -> word tfidf (FG2, medium)
///                              \-> char 2-4gram tfidf       (FG3, expensive)
///
/// Planted structure: "concise" titles are short, calm, low-digit; easy
/// negatives are long/shouty/spammy (visible to FG1); hard cases hinge on
/// specific spam words (FG2) or punctuation-burst character patterns that
/// survive only in FG3's un-stripped input.
Workload make_product(const ProductConfig& cfg = {});

}  // namespace willump::workloads
