#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "core/optimizer.hpp"
#include "store/kv_store.hpp"

namespace willump::workloads {

/// One benchmark workload: a pipeline, labeled train/valid/test splits, and
/// (for lookup workloads) the feature tables behind it.
///
/// These are synthetic stand-ins for the paper's six Kaggle/CIKM/WSDM
/// benchmarks (Table 1). Each generator plants the statistical structure
/// the corresponding optimization exploits: an easy/hard input mixture for
/// cascades, Zipf-skewed entity popularity for feature caching, and
/// high-score concentration for top-K filtering. See DESIGN.md §1.
struct Workload {
  std::string name;
  core::Pipeline pipeline;
  core::LabeledData train;
  core::LabeledData valid;
  core::LabeledData test;
  bool classification = true;

  /// Feature tables (lookup workloads only); experiments flip these between
  /// local and remote via tables->set_network(...).
  std::shared_ptr<store::TableRegistry> tables;

  /// Draw a fresh serving stream with realistic entity-popularity skew
  /// (lookup workloads; null for pure string workloads).
  std::function<data::Batch(std::size_t n, common::Rng&)> query_sampler;
};

/// Split sizes shared by the workload generators.
struct SplitSizes {
  std::size_t train = 4000;
  std::size_t valid = 1500;
  std::size_t test = 1500;
  std::size_t total() const { return train + valid + test; }
};

/// Split `inputs`/`targets` (already shuffled by generation) into
/// train/valid/test according to `sizes`.
void split_labeled(const data::Batch& inputs, const std::vector<double>& targets,
                   const SplitSizes& sizes, Workload& out);

/// The default remote-network model used by the remote-table experiments:
/// one pipelined round trip costs ~120 µs plus 1 µs per key, approximating
/// same-datacenter Redis as in the paper's setup (§6.1).
store::NetworkModel default_remote_network();

}  // namespace willump::workloads
