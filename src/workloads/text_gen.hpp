#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace willump::workloads {

/// Deterministic synthetic-vocabulary text generation.
///
/// Words are pronounceable consonant-vowel syllable sequences so that char
/// n-gram features carry real signal (shared stems, affixes) the way they do
/// on natural-language data. Vocabularies are disjoint across calls with
/// different salts.
class TextGen {
 public:
  /// Generate `n` distinct words of 2-4 syllables.
  static std::vector<std::string> make_vocab(std::size_t n, std::uint64_t salt);

  /// One random word from `vocab`.
  static const std::string& pick(const std::vector<std::string>& vocab,
                                 common::Rng& rng);

  /// A document of `n_words` drawn from `vocab`, space-separated.
  static std::string make_doc(const std::vector<std::string>& vocab,
                              std::size_t n_words, common::Rng& rng);

  /// Uppercase a fraction of characters (shouting), in place.
  static void shout(std::string& s, double fraction, common::Rng& rng);
};

}  // namespace willump::workloads
