#include "workloads/synthetic.hpp"

#include "common/string_util.hpp"
#include "models/linear.hpp"
#include "ops/concat.hpp"
#include "ops/tfidf.hpp"
#include "workloads/text_gen.hpp"

namespace willump::workloads {

Workload make_synthetic_parallel(const SyntheticParallelConfig& cfg) {
  common::Rng rng(cfg.seed);
  const auto vocab = TextGen::make_vocab(400, 0xD1);
  const auto marker_vocab = TextGen::make_vocab(20, 0xD2);

  const std::size_t n = cfg.sizes.total();
  data::StringColumn docs;
  std::vector<double> labels;
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.next_bernoulli(0.5);
    std::string doc = TextGen::make_doc(
        vocab,
        cfg.doc_words_min + rng.next_below(cfg.doc_words_max - cfg.doc_words_min),
        rng);
    if (positive) {
      // Two marker words so positives carry a strong n-gram signal.
      doc += " " + TextGen::pick(marker_vocab, rng) + " " +
             TextGen::pick(marker_vocab, rng);
    }
    docs.push_back(std::move(doc));
    labels.push_back(positive ? 1.0 : 0.0);
  }

  data::StringColumn train_corpus(
      docs.begin(), docs.begin() + static_cast<std::ptrdiff_t>(cfg.sizes.train));

  // The Toxic benchmark's char-TF-IDF configuration.
  ops::TfIdfConfig char_cfg;
  char_cfg.analyzer = ops::Analyzer::Char;
  char_cfg.ngrams = {3, 5};
  char_cfg.max_features = cfg.tfidf_features;
  auto model = std::make_shared<ops::TfIdfModel>(
      ops::TfIdfModel::fit(train_corpus, char_cfg));

  Workload w;
  w.name = "synthetic_parallel";
  w.classification = true;

  core::Graph& g = w.pipeline.graph;
  const int doc = g.add_source("doc", data::ColumnType::String);
  std::vector<int> fgs;
  for (int k = 0; k < cfg.n_generators; ++k) {
    fgs.push_back(g.add_transform(
        "tfidf_" + std::to_string(k),
        std::make_shared<ops::TfIdfOp>(model, "tfidf_" + std::to_string(k)),
        {doc}));
  }
  const int concat =
      g.add_transform("concat", std::make_shared<ops::ConcatOp>(), fgs);
  g.set_output(concat);

  models::LinearConfig lin;
  lin.epochs = 6;
  w.pipeline.model_proto = std::make_shared<models::LogisticRegression>(lin);

  data::Batch inputs;
  inputs.add("doc", data::Column(std::move(docs)));
  split_labeled(inputs, labels, cfg.sizes, w);
  return w;
}

}  // namespace willump::workloads
