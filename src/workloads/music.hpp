#pragma once

#include "workloads/workload.hpp"

namespace willump::workloads {

/// Configuration for the Music workload generator.
struct MusicConfig {
  SplitSizes sizes{.train = 6000, .valid = 2000, .test = 2000};
  std::uint64_t seed = 303;
  std::size_t n_users = 4000;
  std::size_t n_songs = 3000;
  std::size_t n_genres = 40;
  std::size_t n_artists = 800;
  /// Popularity skew of the serving stream (higher = more cache hits).
  double user_zipf = 1.05;
  double song_zipf = 1.15;
  int latent_dim = 8;
};

/// Music: predict whether a user will like a song (the paper's WSDM Cup
/// 2018 KKBox entry; Table 1: remote data lookup, data joins; GBDT). The
/// paper's Figure 1 diagrams a simplified version of exactly this pipeline.
///
/// Graph (6 IFVs — the classification benchmark with the most IFVs, used
/// for the §6.4 γ-rule ablation):
///   user_id   -> [user_features lookup]    (latent factors + demographics)
///   song_id   -> [song_features lookup]    (latent factors + audio stats)
///   genre_id  -> [genre_features lookup]
///   artist_id -> [artist_features lookup]
///   user_id   -> [user_stats lookup]       (listening counts)
///   song_id   -> [song_stats lookup]       (play/skip counts)
///
/// Planted structure: the label is driven mostly by the user/song latent
/// dot product plus genre affinity, so the user/song/genre IFVs form a
/// natural efficient set; user/song popularity is Zipf-distributed so the
/// per-IFV feature caches see realistic repeat rates (paper Table 2).
Workload make_music(const MusicConfig& cfg = {});

}  // namespace willump::workloads
