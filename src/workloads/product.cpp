#include "workloads/product.hpp"

#include "common/string_util.hpp"
#include "models/linear.hpp"
#include "ops/concat.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"
#include "workloads/text_gen.hpp"

namespace willump::workloads {

Workload make_product(const ProductConfig& cfg) {
  common::Rng rng(cfg.seed);
  const auto common_vocab = TextGen::make_vocab(400, 0xA1);
  const auto brand_vocab = TextGen::make_vocab(80, 0xA2);
  const auto spam_vocab = TextGen::make_vocab(40, 0xA3);

  const std::size_t n = cfg.sizes.total();
  data::StringColumn titles;
  std::vector<double> labels;
  titles.reserve(n);
  labels.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const bool concise = rng.next_bernoulli(0.5);
    const bool easy = rng.next_bernoulli(cfg.easy_fraction);
    std::string title;
    if (concise) {
      if (easy) {
        // Short, calm title: surface stats suffice.
        title = TextGen::pick(brand_vocab, rng) + " " +
                TextGen::make_doc(common_vocab, 2 + rng.next_below(4), rng);
      } else {
        // Long but still concise: length alone misleads; the absence of
        // spam words (FG2) resolves it.
        title = TextGen::pick(brand_vocab, rng) + " " +
                TextGen::make_doc(common_vocab, 9 + rng.next_below(6), rng);
      }
    } else {
      if (easy) {
        // Long, shouty, digit-ridden spam: surface stats suffice.
        title = TextGen::make_doc(common_vocab, 8 + rng.next_below(8), rng);
        for (int k = 0; k < 3; ++k) {
          title += " " + TextGen::pick(spam_vocab, rng);
        }
        title += " " + std::to_string(rng.next_below(9000) + 1000);
        TextGen::shout(title, 0.5, rng);
      } else if (rng.next_bernoulli(0.5)) {
        // Short but contains spam words: needs word identity (FG2).
        title = TextGen::pick(spam_vocab, rng) + " " +
                TextGen::make_doc(common_vocab, 3 + rng.next_below(3), rng);
      } else {
        // Short and calm but with punctuation bursts: only the char n-gram
        // view of the un-stripped string (FG3) sees "!!" / "$$".
        title = TextGen::pick(brand_vocab, rng) + " " +
                TextGen::make_doc(common_vocab, 3 + rng.next_below(3), rng);
        title += rng.next_bernoulli(0.5) ? "!!" : "$$";
      }
    }
    titles.push_back(std::move(title));
    labels.push_back(concise ? 1.0 : 0.0);
  }

  // Fit the vectorizers on the training slice only.
  data::StringColumn train_corpus(titles.begin(),
                                  titles.begin() + static_cast<std::ptrdiff_t>(
                                                       cfg.sizes.train));
  for (auto& doc : train_corpus) doc = common::to_lower(doc);

  ops::TfIdfConfig word_cfg;
  word_cfg.analyzer = ops::Analyzer::Word;
  word_cfg.ngrams = {1, 2};
  word_cfg.max_features = cfg.word_tfidf_features;
  data::StringColumn stripped_corpus = train_corpus;
  for (auto& doc : stripped_corpus) doc = common::strip_punct(doc);
  auto word_model = std::make_shared<ops::TfIdfModel>(
      ops::TfIdfModel::fit(stripped_corpus, word_cfg));

  ops::TfIdfConfig char_cfg;
  char_cfg.analyzer = ops::Analyzer::Char;
  char_cfg.ngrams = {2, 4};
  char_cfg.max_features = cfg.char_tfidf_features;
  auto char_model = std::make_shared<ops::TfIdfModel>(
      ops::TfIdfModel::fit(train_corpus, char_cfg));

  Workload w;
  w.name = "product";
  w.classification = true;

  core::Graph& g = w.pipeline.graph;
  const int title = g.add_source("title", data::ColumnType::String);
  const int stats =
      g.add_transform("stats", std::make_shared<ops::StringStatsOp>(), {title});
  const int lower =
      g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {title});
  const int strip =
      g.add_transform("strip", std::make_shared<ops::StripPunctOp>(), {lower});
  const int word_tfidf = g.add_transform(
      "word_tfidf", std::make_shared<ops::TfIdfOp>(word_model, "word_tfidf"),
      {strip});
  const int char_tfidf = g.add_transform(
      "char_tfidf", std::make_shared<ops::TfIdfOp>(char_model, "char_tfidf"),
      {lower});
  const int concat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                     {stats, word_tfidf, char_tfidf});
  g.set_output(concat);

  models::LinearConfig lin;
  lin.epochs = 10;
  w.pipeline.model_proto = std::make_shared<models::LogisticRegression>(lin);

  data::Batch inputs;
  inputs.add("title", data::Column(std::move(titles)));
  split_labeled(inputs, labels, cfg.sizes, w);
  return w;
}

}  // namespace willump::workloads
