#pragma once

#include "workloads/workload.hpp"

namespace willump::workloads {

/// Configuration for the synthetic linearly-parallelizable workload.
struct SyntheticParallelConfig {
  SplitSizes sizes{.train = 1200, .valid = 400, .test = 400};
  std::uint64_t seed = 707;
  /// Number of identical feature generators (the paper uses four copies of
  /// the Toxic benchmark's TF-IDF vectorizer, §6.4 Parallelization).
  int n_generators = 4;
  /// Large enough that the rare class-marker n-grams stay in vocabulary.
  int tfidf_features = 9000;
  /// Document length range; longer documents make each generator heavier,
  /// which is what lets per-input parallelization approach linear speedup
  /// (fixed dispatch overhead amortizes).
  std::size_t doc_words_min = 80;
  std::size_t doc_words_max = 140;
};

/// The paper's synthetic parallelization benchmark (Figure 8, right): the
/// same expensive feature-computing operator (a char TF-IDF vectorizer
/// taken from the Toxic benchmark) run `n_generators` times on the same
/// input, concatenated, and fed to a linear model. Every generator costs
/// the same, so per-input parallelization should scale near-linearly.
Workload make_synthetic_parallel(const SyntheticParallelConfig& cfg = {});

}  // namespace willump::workloads
