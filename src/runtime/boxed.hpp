#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "data/value.hpp"

namespace willump::runtime::boxed {

/// A Python-like boxed object: every scalar lives behind a reference-counted
/// heap allocation, and aggregates are vectors of references.
///
/// The interpreted executor materializes every transformation-graph edge as
/// lists of these boxes and evaluates operators row-at-a-time through them.
/// This reproduces — with real work, not sleeps — the mechanisms that make
/// the paper's unoptimized Python baseline slow: per-element allocation,
/// reference counting, dynamic type dispatch, string copies, and
/// dictionary-based name lookups. Compilation then removes exactly these
/// overheads, as Weld does in the paper.
struct Box;
using BoxPtr = std::shared_ptr<Box>;

struct Box {
  std::variant<std::int64_t, double, std::string, std::vector<BoxPtr>> payload;
};

BoxPtr make_int(std::int64_t v);
BoxPtr make_double(double v);
BoxPtr make_string(std::string v);
BoxPtr make_list(std::vector<BoxPtr> v);

/// A Python-frame-like environment: names resolved through a string-keyed
/// dictionary, as the CPython interpreter resolves locals/globals.
class Namespace {
 public:
  void set(const std::string& name, BoxPtr value) { vars_[name] = std::move(value); }
  const BoxPtr& get(const std::string& name) const;
  bool has(const std::string& name) const { return vars_.count(name) != 0; }
  std::size_t size() const { return vars_.size(); }

 private:
  std::unordered_map<std::string, BoxPtr> vars_;
};

/// Box one row of a raw column (allocates; strings are copied).
BoxPtr box_row(const data::Column& col, std::size_t row);

/// Box an entire column into a list of per-row boxes.
std::vector<BoxPtr> box_column(const data::Column& col);

/// Box one row of a feature matrix as a list-of-doubles box (dense) or a
/// list of [index, value] pair boxes (sparse) — like a Python list of floats
/// or a scipy COO row.
BoxPtr box_feature_row(const data::FeatureMatrix& m, std::size_t row);

/// Rebuild a raw single-row column from a boxed row (unboxing copies back).
data::Column unbox_to_column(const BoxPtr& box, data::ColumnType type);

/// Rebuild a single-row feature matrix from a boxed feature row.
data::FeatureMatrix unbox_to_features(const BoxPtr& box, bool sparse,
                                      std::size_t cols);

}  // namespace willump::runtime::boxed
