#include "runtime/boxed.hpp"

#include <stdexcept>

namespace willump::runtime::boxed {

BoxPtr make_int(std::int64_t v) { return std::make_shared<Box>(Box{v}); }
BoxPtr make_double(double v) { return std::make_shared<Box>(Box{v}); }
BoxPtr make_string(std::string v) { return std::make_shared<Box>(Box{std::move(v)}); }
BoxPtr make_list(std::vector<BoxPtr> v) { return std::make_shared<Box>(Box{std::move(v)}); }

const BoxPtr& Namespace::get(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    throw std::out_of_range("Namespace: undefined name " + name);
  }
  return it->second;
}

BoxPtr box_row(const data::Column& col, std::size_t row) {
  switch (col.type()) {
    case data::ColumnType::Int:
      return make_int(col.ints()[row]);
    case data::ColumnType::Double:
      return make_double(col.doubles()[row]);
    case data::ColumnType::String:
      return make_string(col.strings()[row]);
  }
  throw std::logic_error("box_row: unknown column type");
}

std::vector<BoxPtr> box_column(const data::Column& col) {
  std::vector<BoxPtr> out;
  out.reserve(col.size());
  for (std::size_t r = 0; r < col.size(); ++r) out.push_back(box_row(col, r));
  return out;
}

BoxPtr box_feature_row(const data::FeatureMatrix& m, std::size_t row) {
  std::vector<BoxPtr> items;
  if (m.is_dense()) {
    auto rv = m.dense().row(row);
    items.reserve(rv.size());
    for (double v : rv) items.push_back(make_double(v));
  } else {
    auto rv = m.sparse().row(row);
    items.reserve(rv.nnz());
    for (std::size_t k = 0; k < rv.nnz(); ++k) {
      std::vector<BoxPtr> pair;
      pair.push_back(make_int(rv.indices[k]));
      pair.push_back(make_double(rv.values[k]));
      items.push_back(make_list(std::move(pair)));
    }
  }
  return make_list(std::move(items));
}

data::Column unbox_to_column(const BoxPtr& box, data::ColumnType type) {
  switch (type) {
    case data::ColumnType::Int:
      return data::Column(data::IntColumn{std::get<std::int64_t>(box->payload)});
    case data::ColumnType::Double:
      return data::Column(data::DoubleColumn{std::get<double>(box->payload)});
    case data::ColumnType::String:
      return data::Column(data::StringColumn{std::get<std::string>(box->payload)});
  }
  throw std::logic_error("unbox_to_column: unknown column type");
}

data::FeatureMatrix unbox_to_features(const BoxPtr& box, bool sparse,
                                      std::size_t cols) {
  const auto& items = std::get<std::vector<BoxPtr>>(box->payload);
  if (!sparse) {
    data::DenseMatrix m(1, cols);
    auto row = m.mutable_row(0);
    for (std::size_t i = 0; i < items.size() && i < cols; ++i) {
      row[i] = std::get<double>(items[i]->payload);
    }
    return data::FeatureMatrix(std::move(m));
  }
  data::CsrMatrix m(static_cast<std::int32_t>(cols));
  std::vector<data::SparseEntry> entries;
  entries.reserve(items.size());
  for (const auto& item : items) {
    const auto& pair = std::get<std::vector<BoxPtr>>(item->payload);
    entries.push_back(
        {static_cast<std::int32_t>(std::get<std::int64_t>(pair[0]->payload)),
         std::get<double>(pair[1]->payload)});
  }
  m.append_row(entries);
  return data::FeatureMatrix(std::move(m));
}

}  // namespace willump::runtime::boxed
