#include "runtime/thread_pool.hpp"

namespace willump::runtime {

namespace {

/// Spin iterations before falling back to blocking (roughly two
/// milliseconds of polling — long enough that a serving thread stays hot
/// across consecutive example-at-a-time queries).
constexpr int kSpinRounds = 150000;
/// Poll the (locked) queue every this many spin iterations.
constexpr int kPollEvery = 64;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::try_pop(std::function<void()>& task) {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock() || queue_.empty()) return false;
  task = std::move(queue_.front());
  queue_.pop();
  return true;
}

void ThreadPool::run_one(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: wake a caller that fell back to blocking.
    std::lock_guard<std::mutex> lock(mu_);
    done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    bool got = false;

    // Spin phase: poll for work without sleeping.
    for (int i = 0; i < kSpinRounds && !got; ++i) {
      if (i % kPollEvery == 0) {
        if (stop_.load(std::memory_order_relaxed)) break;
        got = try_pop(task);
      }
      if (!got) cpu_relax();
    }

    if (!got) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_.load()) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    run_one(task);
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Keep the last task for the calling thread; enqueue the rest.
  std::function<void()> local = std::move(tasks.back());
  tasks.pop_back();
  {
    std::lock_guard<std::mutex> lock(mu_);
    first_error_ = nullptr;
    in_flight_.fetch_add(tasks.size() + 1, std::memory_order_acq_rel);
    for (auto& t : tasks) queue_.push(std::move(t));
  }
  cv_.notify_all();

  run_one(local);

  // Spin-wait for stragglers, then block if they are genuinely slow.
  for (int i = 0; i < kSpinRounds; ++i) {
    if (in_flight_.load(std::memory_order_acquire) == 0) break;
    cpu_relax();
  }
  if (in_flight_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return in_flight_.load() == 0; });
  }

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace willump::runtime
