#include "runtime/thread_pool.hpp"

namespace willump::runtime {

namespace {

/// Poll the (locked) queue every this many spin iterations.
constexpr int kPollEvery = 64;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Per-run_all completion state. Heap-allocated and shared with every
/// enqueued wrapper so a worker finishing the last task can safely notify
/// even after the calling thread has already observed completion via the
/// spin path and returned.
struct TaskGroup {
  std::atomic<std::size_t> remaining{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr first_error;

  void run(std::function<void()>& task) {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = std::current_exception();
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task: wake a caller that fell back to blocking.
      std::lock_guard<std::mutex> lock(mu);
      done_cv.notify_all();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, int spin_rounds)
    : spin_rounds_(spin_rounds < 0 ? 0 : spin_rounds) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Holding mu_ while setting stop_ closes the window where a worker has
    // evaluated the wait predicate (stop_ false, queue empty) but not yet
    // blocked: it would miss this notify and sleep through the join.
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true);
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::try_pop(std::function<void()>& task) {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock() || queue_.empty()) return false;
  task = std::move(queue_.front());
  queue_.pop();
  return true;
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    bool got = false;

    // Short backoff: poll briefly for the next task of a tight pointwise
    // loop, then park on the condition variable instead of burning a core.
    for (int i = 0; i < spin_rounds_ && !got; ++i) {
      if (i % kPollEvery == 0) {
        if (stop_.load(std::memory_order_relaxed)) break;
        got = try_pop(task);
      }
      if (!got) cpu_relax();
    }

    if (!got) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ set and nothing left to drain: exit. Draining first keeps
        // every submit() future satisfied through shutdown.
        if (stop_.load()) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    // Queued items capture their own error handling (TaskGroup::run for
    // run_all tasks, packaged_task for submit tasks), so a plain call
    // suffices and nothing a task throws can kill the worker.
    task();
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto group = std::make_shared<TaskGroup>();
  group->remaining.store(tasks.size(), std::memory_order_relaxed);
  {
    // Keep the last task for the calling thread; enqueue the rest. The
    // wrappers reference `tasks` elements directly, which stay alive
    // because this call does not return before remaining hits zero.
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
      queue_.push([group, t = &tasks[i]] { group->run(*t); });
    }
  }
  cv_.notify_all();

  group->run(tasks.back());

  // Short backoff for stragglers, then block on the group CV if they are
  // genuinely slow — same polling budget as the worker idle loop.
  for (int i = 0; i < spin_rounds_; ++i) {
    if (group->remaining.load(std::memory_order_acquire) == 0) break;
    cpu_relax();
  }
  if (group->remaining.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(group->mu);
    group->done_cv.wait(lock, [&group] {
      return group->remaining.load(std::memory_order_acquire) == 0;
    });
  }

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(group->mu);
    err = group->first_error;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace willump::runtime
