#pragma once

#include <map>
#include <string>
#include <vector>

namespace willump::runtime {

/// Accumulates per-node wall-clock during graph execution.
///
/// Willump's cost model measures the runtime of each feature generator's
/// nodes while computing training features (§4.2, "Computing IFV
/// Statistics"); the profiler is how those measurements are collected.
class Profiler {
 public:
  void record(int node_id, double seconds) {
    auto& e = entries_[node_id];
    e.total_seconds += seconds;
    ++e.calls;
  }

  double total_seconds(int node_id) const {
    auto it = entries_.find(node_id);
    return it == entries_.end() ? 0.0 : it->second.total_seconds;
  }

  std::size_t calls(int node_id) const {
    auto it = entries_.find(node_id);
    return it == entries_.end() ? 0 : it->second.calls;
  }

  void clear() { entries_.clear(); }

  /// All (node, total seconds) pairs, for reports.
  std::vector<std::pair<int, double>> totals() const;

 private:
  struct Entry {
    double total_seconds = 0.0;
    std::size_t calls = 0;
  };
  std::map<int, Entry> entries_;
};

}  // namespace willump::runtime
