#include "runtime/request_queue.hpp"

namespace willump::runtime {

QueueClosedError::QueueClosedError()
    : std::runtime_error(
          "request queue closed: the serving engine is shutting down and no "
          "longer accepts work") {}

}  // namespace willump::runtime
