#include "runtime/profiler.hpp"

namespace willump::runtime {

std::vector<std::pair<int, double>> Profiler::totals() const {
  std::vector<std::pair<int, double>> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) out.emplace_back(id, e.total_seconds);
  return out;
}

}  // namespace willump::runtime
