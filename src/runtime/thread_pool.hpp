#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace willump::runtime {

/// A small low-latency thread pool.
///
/// Willump parallelizes example-at-a-time queries by running feature
/// generators concurrently on worker threads (§4.4). The tasks are
/// microseconds long, so condition-variable wakeups (tens to hundreds of
/// microseconds on a loaded box) would swamp the gains; workers therefore
/// spin briefly polling for work before blocking, and the caller spins
/// briefly waiting for completion before blocking — the handoff pattern of
/// low-latency runtimes like Weld's, which the paper relies on.
///
/// Two entry points share the worker threads:
///  - run_all(): fork-join execution of a task set, caller participates.
///    Completion state lives in a per-call group, so concurrent run_all()
///    calls (e.g. from several serving workers sharing one pipeline) do not
///    observe each other's tasks or exceptions.
///  - submit(): fire-and-forget enqueue of one task whose result (or
///    exception) is delivered through the returned future. This is the
///    request-level entry the serving engine builds on.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Run all tasks, using the calling thread for one share of the work, and
  /// block until every task completed. Exceptions in tasks propagate (the
  /// first one observed is rethrown). Safe to call concurrently from
  /// multiple threads.
  void run_all(std::vector<std::function<void()>> tasks);

  /// Enqueue one task for asynchronous execution and return a future for
  /// its result. Unlike run_all, the caller does not participate and does
  /// not block; exceptions propagate through the future. Tasks still queued
  /// at destruction are drained before the workers exit, so every returned
  /// future is eventually satisfied.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop();
  bool try_pop(std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::atomic<bool> stop_{false};
};

}  // namespace willump::runtime
