#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace willump::runtime {

/// A small low-latency thread pool.
///
/// Willump parallelizes example-at-a-time queries by running feature
/// generators concurrently on worker threads (§4.4). The tasks are
/// microseconds long, so condition-variable wakeups (tens to hundreds of
/// microseconds on a loaded box) would swamp the gains; workers therefore
/// spin briefly polling for work before blocking, and the caller spins
/// briefly waiting for completion before blocking — the handoff pattern of
/// low-latency runtimes like Weld's, which the paper relies on.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Run all tasks, using the calling thread for one share of the work, and
  /// block until every task completed. Exceptions in tasks propagate (the
  /// first one observed is rethrown).
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();
  bool try_pop(std::function<void()>& task);
  void run_one(std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> queue_;
  std::atomic<std::size_t> in_flight_{0};
  std::exception_ptr first_error_;
  std::atomic<bool> stop_{false};
};

}  // namespace willump::runtime
