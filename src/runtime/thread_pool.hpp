#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace willump::runtime {

/// A small low-latency thread pool.
///
/// Willump parallelizes example-at-a-time queries by running feature
/// generators concurrently on worker threads (§4.4). The tasks are
/// microseconds long, so going straight to a condition-variable wakeup
/// (tens to hundreds of microseconds on a loaded box) would swamp the
/// gains; workers therefore poll for work through a *short* backoff spin
/// (tens of microseconds) before blocking on the condition variable, and
/// the run_all caller waits for stragglers the same way. The backoff keeps
/// the low-latency handoff of runtimes like Weld's for back-to-back
/// pointwise queries while idle workers park on the CV instead of burning
/// a core — on few-core serving hosts a long spin visibly starves the
/// open-loop dispatcher (the ROADMAP noise item this bounds).
///
/// `spin_rounds` scales the backoff: 0 blocks immediately, larger values
/// trade idle CPU for handoff latency.
///
/// Two entry points share the worker threads:
///  - run_all(): fork-join execution of a task set, caller participates.
///    Completion state lives in a per-call group, so concurrent run_all()
///    calls (e.g. from several serving workers sharing one pipeline) do not
///    observe each other's tasks or exceptions.
///  - submit(): fire-and-forget enqueue of one task whose result (or
///    exception) is delivered through the returned future. This is the
///    request-level entry the serving engine builds on.
class ThreadPool {
 public:
  /// Roughly 50 us of polling before a worker parks on the condition
  /// variable — long enough to catch the next task of a tight
  /// example-at-a-time loop, short enough that an idle pool is invisible
  /// to the scheduler.
  static constexpr int kDefaultSpinRounds = 4096;

  explicit ThreadPool(std::size_t num_threads,
                      int spin_rounds = kDefaultSpinRounds);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Run all tasks, using the calling thread for one share of the work, and
  /// block until every task completed. Exceptions in tasks propagate (the
  /// first one observed is rethrown). Safe to call concurrently from
  /// multiple threads.
  void run_all(std::vector<std::function<void()>> tasks);

  /// Enqueue one task for asynchronous execution and return a future for
  /// its result. Unlike run_all, the caller does not participate and does
  /// not block; exceptions propagate through the future. Tasks still queued
  /// at destruction are drained before the workers exit, so every returned
  /// future is eventually satisfied.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop();
  bool try_pop(std::function<void()>& task);

  const int spin_rounds_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::atomic<bool> stop_{false};
};

}  // namespace willump::runtime
