#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace willump::runtime {

/// Thrown by serving-layer entry points when work is offered to a queue (or
/// an engine draining one) that has been closed.
class QueueClosedError : public std::runtime_error {
 public:
  QueueClosedError();
};

/// Outcome of a bounded-wait push (see RequestQueue::try_push_for): the
/// admission-control paths need "full" and "closed" distinguished, because
/// a full queue is a typed load-shedding rejection while a closed one is a
/// shutdown error.
enum class PushResult { kPushed, kFull, kClosed };

/// A bounded, blocking, multi-producer/multi-consumer FIFO queue.
///
/// This is the admission-control point of the serving engine: client
/// threads push pointwise requests, worker threads drain them into
/// micro-batches. A bounded capacity turns overload into either producer
/// back-pressure (blocking push()) or — what the serving engine's submit
/// paths use — a bounded-wait try_push_for() whose kFull outcome becomes a
/// typed load-shedding rejection, instead of unbounded memory growth (the
/// standard serving-frontend design; Clipper, NSDI 2017, batches its
/// request queues the same way).
///
/// close() initiates shutdown: pending and subsequent pushes return false,
/// while pops continue to drain remaining items and return nullopt only
/// once the queue is empty — so no accepted request is ever dropped.
template <typename T>
class RequestQueue {
 public:
  /// capacity 0 = unbounded.
  explicit RequestQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Block until there is space, then enqueue. Returns false (dropping
  /// `item`) if the queue is, or becomes, closed while waiting.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || !full_locked(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Bounded-wait push — the submit-path primitive of an admission-
  /// controlled engine: wait at most `timeout` for space instead of
  /// blocking indefinitely like push(). On kFull or kClosed, `item` is
  /// left untouched so the caller still owns its completion channel
  /// (promise/callback) and can resolve it with a typed rejection instead
  /// of silently dropping it. A zero or negative timeout degrades to a
  /// non-blocking try.
  PushResult try_push_for(T& item, std::chrono::steady_clock::duration timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (timeout > std::chrono::steady_clock::duration::zero() && !closed_ &&
        full_locked()) {
      not_full_.wait_for(lock, timeout,
                         [this] { return closed_ || !full_locked(); });
    }
    if (closed_) return PushResult::kClosed;
    if (full_locked()) return PushResult::kFull;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kPushed;
  }

  /// Enqueue without blocking. Returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || full_locked()) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available and dequeue it. Returns nullopt only
  /// when the queue is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return pop_locked(lock);
  }

  /// Dequeue without blocking; nullopt when empty.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    return pop_locked(lock);
  }

  /// Apply `f` to the oldest queued item under the queue lock, without
  /// dequeuing it, and return the result; nullopt when empty. This is the
  /// primitive behind priority-aware multi-queue draining: a scheduler
  /// peeks each queue's head (e.g. its accept timestamp) to decide which
  /// queue to drain next, paying one lock and no element move per
  /// candidate. `f` must be cheap and must not re-enter the queue — it
  /// runs with the queue lock held.
  template <typename F>
  auto peek_front(F&& f) const
      -> std::optional<std::invoke_result_t<F&, const T&>> {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    return f(items_.front());
  }

  /// Bulk non-blocking dequeue: move up to `max_items` items into `out`
  /// under a single lock acquisition. Returns how many were taken. This is
  /// the coalescing fast path of an adaptive-batching worker — one lock per
  /// micro-batch instead of one per request — and what lets a multi-queue
  /// engine drain a whole backlog in one sweep.
  std::size_t drain(std::vector<T>& out, std::size_t max_items) {
    std::size_t taken = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (taken < max_items && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
    }
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  /// Block until an item is available or `deadline` passes. A deadline in
  /// the past degrades to try_pop. This is what an adaptive-batching worker
  /// uses to wait out the remainder of a batch's flush window.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    return pop_locked(lock);
  }

  /// Close the queue: wake every blocked producer (their pushes fail) and
  /// consumer (their pops drain, then report exhaustion). Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

  std::size_t capacity() const { return capacity_; }

 private:
  bool full_locked() const {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  std::optional<T> pop_locked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace willump::runtime
