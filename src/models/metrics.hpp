#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace willump::models {

/// Classification accuracy of probabilistic predictions vs {0,1} labels.
double accuracy(std::span<const double> probas, std::span<const double> labels);

/// Mean squared error.
double mse(std::span<const double> preds, std::span<const double> targets);

/// Coefficient of determination (R^2); can be negative for bad fits.
double r2(std::span<const double> preds, std::span<const double> targets);

/// Area under the ROC curve via rank statistic. Returns 0.5 when degenerate.
double auc(std::span<const double> scores, std::span<const double> labels);

/// Indices of the K highest-scoring elements, best first (stable on ties by
/// lower index). K is clamped to the input size.
std::vector<std::size_t> top_k_indices(std::span<const double> scores, std::size_t k);

/// Precision of `predicted` top-K vs `truth` top-K: |intersection| / K.
double precision_at_k(std::span<const std::size_t> predicted,
                      std::span<const std::size_t> truth);

/// Mean average precision of a predicted ranking against a truth set
/// (the paper's "mAP relative to the unoptimized query", Table 4).
double mean_average_precision(std::span<const std::size_t> predicted,
                              std::span<const std::size_t> truth);

/// Mean of true scores over a predicted top-K (the paper's "average value").
double average_value(std::span<const std::size_t> predicted,
                     std::span<const double> true_scores);

}  // namespace willump::models
