#pragma once

#include <memory>
#include <span>
#include <vector>

#include "models/model.hpp"

namespace willump::models {

/// Hyperparameters shared by the linear model family.
struct LinearConfig {
  int epochs = 12;
  double learning_rate = 0.2;   // Adagrad base step
  double l2 = 1e-6;             // L2 regularization strength
  std::uint64_t seed = 7;       // shuffling seed
};

/// Generalized linear model trained with Adagrad SGD.
///
/// Supports dense and CSR feature matrices (sparse training touches only
/// nonzero coordinates). Serves as the paper's "Linear" model family for the
/// Product and Toxic benchmarks. Feature importances are |w_i| * mean|x_i|,
/// exactly the paper's definition for linear models (§4.2).
class LinearModelBase : public Model {
 public:
  explicit LinearModelBase(LinearConfig cfg) : cfg_(cfg) {}

  void fit(const data::FeatureMatrix& x, std::span<const double> y) override;
  std::vector<double> predict(const data::FeatureMatrix& x) const override;
  void predict_into(const data::FeatureMatrix& x,
                    std::span<double> out) const override;
  std::vector<double> feature_importances() const override;
  void save(serialize::Writer& w) const override;

  std::span<const double> weights() const { return w_; }
  double bias() const { return b_; }

 protected:
  /// Reads what save() wrote (config first, then trained state); shared by
  /// the derived classes' registry loaders.
  static LinearConfig load_config(serialize::Reader& r);
  void load_state(serialize::Reader& r);

  /// Link function applied to the raw margin (identity or sigmoid).
  virtual double link(double margin) const = 0;
  /// d(loss)/d(margin) for one example: prediction - target for both
  /// squared loss with identity link and log loss with sigmoid link.
  double gradient(double margin, double target) const { return link(margin) - target; }

  double margin_dense(std::span<const double> row) const;
  double margin_sparse(const data::CsrMatrix::RowView& row) const;

  LinearConfig cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> mean_abs_;  // mean |x_i| recorded at fit time
};

class LogisticRegression final : public LinearModelBase {
 public:
  explicit LogisticRegression(LinearConfig cfg = {}) : LinearModelBase(cfg) {}
  bool is_classifier() const override { return true; }
  std::unique_ptr<Model> clone_untrained() const override {
    return std::make_unique<LogisticRegression>(cfg_);
  }
  std::string name() const override { return "logistic_regression"; }

  static std::unique_ptr<LogisticRegression> load(serialize::Reader& r);

 protected:
  double link(double margin) const override;
};

class LinearRegression final : public LinearModelBase {
 public:
  explicit LinearRegression(LinearConfig cfg = {}) : LinearModelBase(cfg) {}
  bool is_classifier() const override { return false; }
  std::unique_ptr<Model> clone_untrained() const override {
    return std::make_unique<LinearRegression>(cfg_);
  }
  std::string name() const override { return "linear_regression"; }

  static std::unique_ptr<LinearRegression> load(serialize::Reader& r);

 protected:
  double link(double margin) const override { return margin; }
};

}  // namespace willump::models
