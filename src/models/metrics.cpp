#include "models/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/stats.hpp"

namespace willump::models {

double accuracy(std::span<const double> probas, std::span<const double> labels) {
  if (probas.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < probas.size(); ++i) {
    const double pred = probas[i] > 0.5 ? 1.0 : 0.0;
    if (pred == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(probas.size());
}

double mse(std::span<const double> preds, std::span<const double> targets) {
  if (preds.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const double d = preds[i] - targets[i];
    acc += d * d;
  }
  return acc / static_cast<double>(preds.size());
}

double r2(std::span<const double> preds, std::span<const double> targets) {
  if (preds.size() < 2) return 0.0;
  const double m = common::mean(targets);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    ss_res += (targets[i] - preds[i]) * (targets[i] - preds[i]);
    ss_tot += (targets[i] - m) * (targets[i] - m);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double auc(std::span<const double> scores, std::span<const double> labels) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  // Rank-sum (Mann-Whitney U) with midranks for ties.
  std::vector<double> ranks(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] > 0.5) {
      rank_sum_pos += ranks[k];
      ++n_pos;
    }
  }
  const std::size_t n_neg = labels.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = rank_sum_pos - static_cast<double>(n_pos) *
                                      (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

std::vector<std::size_t> top_k_indices(std::span<const double> scores, std::size_t k) {
  k = std::min(k, scores.size());
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

double precision_at_k(std::span<const std::size_t> predicted,
                      std::span<const std::size_t> truth) {
  if (predicted.empty()) return 0.0;
  std::unordered_set<std::size_t> truth_set(truth.begin(), truth.end());
  std::size_t hits = 0;
  for (std::size_t p : predicted) {
    if (truth_set.count(p) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

double mean_average_precision(std::span<const std::size_t> predicted,
                              std::span<const std::size_t> truth) {
  if (predicted.empty() || truth.empty()) return 0.0;
  std::unordered_set<std::size_t> truth_set(truth.begin(), truth.end());
  double ap = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (truth_set.count(predicted[i]) != 0) {
      ++hits;
      ap += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return ap / static_cast<double>(truth.size());
}

double average_value(std::span<const std::size_t> predicted,
                     std::span<const double> true_scores) {
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t p : predicted) acc += true_scores[p];
  return acc / static_cast<double>(predicted.size());
}

}  // namespace willump::models
