#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kernels/tree.hpp"
#include "models/model.hpp"

namespace willump::models {

/// Hyperparameters for gradient-boosted decision trees.
struct GbdtConfig {
  int n_trees = 40;
  int max_depth = 4;
  double learning_rate = 0.15;
  int min_samples_leaf = 10;
  int n_bins = 32;              // histogram bins per feature
  double lambda = 1.0;          // L2 on leaf values
  double subsample = 1.0;       // row subsample per tree
  bool classification = true;   // log loss vs squared loss
  std::uint64_t seed = 11;
  /// Rows sampled for fit-time permutation importance (0 disables).
  std::size_t permutation_rows = 1500;
};

/// One node of a regression tree (leaf when feature < 0).
struct TreeNode {
  std::int32_t feature = -1;
  double threshold = 0.0;   // go left when x[feature] <= threshold
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;       // leaf output
};

/// A single regression tree over raw (unbinned) feature values.
class Tree {
 public:
  double predict_row(std::span<const double> row) const;
  std::vector<TreeNode>& nodes() { return nodes_; }
  const std::vector<TreeNode>& nodes() const { return nodes_; }

 private:
  std::vector<TreeNode> nodes_;
};

/// Histogram gradient-boosted decision trees (XGBoost-style second-order
/// boosting for classification, first-order for regression).
///
/// This is the paper's "GBDT" model family (Music, Credit, Tracking). Two
/// importance measures are computed during construction, matching §4.2:
///  - gain importance: total split gain attributed to each feature;
///  - permutation importance: increase in loss when a feature's column is
///    permuted on a training sample ("automatically computed during ensemble
///    construction", the random-forest-style measure the paper cites).
/// `feature_importances()` returns the permutation importances (falling back
/// to gain when permutation is disabled).
class Gbdt final : public Model {
 public:
  explicit Gbdt(GbdtConfig cfg = {}) : cfg_(cfg) {}

  void fit(const data::FeatureMatrix& x, std::span<const double> y) override;
  std::vector<double> predict(const data::FeatureMatrix& x) const override;
  void predict_into(const data::FeatureMatrix& x,
                    std::span<double> out) const override;
  void predict_cascade(const data::FeatureMatrix& x, double threshold,
                       std::span<double> preds,
                       std::span<std::uint8_t> hard) const override;
  bool is_classifier() const override { return cfg_.classification; }
  std::vector<double> feature_importances() const override;
  std::unique_ptr<Model> clone_untrained() const override {
    return std::make_unique<Gbdt>(cfg_);
  }
  std::string name() const override { return "gbdt"; }
  void save(serialize::Writer& w) const override;

  static std::unique_ptr<Gbdt> load(serialize::Reader& r);

  std::span<const double> gain_importances() const { return gain_importance_; }
  std::span<const double> permutation_importances() const {
    return perm_importance_;
  }
  std::size_t num_trees() const { return trees_.size(); }

 private:
  double predict_margin_row(std::span<const double> row) const;
  void compute_permutation_importance(const data::DenseMatrix& x,
                                      std::span<const double> y);
  /// Flatten trees_ into the SoA traversal layout (end of fit and load).
  void rebuild_forest();
  /// Batched margins over a row-major block via the flat-forest kernel.
  void margins_block(const double* x, std::size_t rows, std::size_t stride,
                     double* out) const;

  GbdtConfig cfg_;
  double base_score_ = 0.0;  // initial margin
  std::vector<Tree> trees_;
  /// Flattened SoA traversal layout, rebuilt from trees_ (not serialized).
  /// Immutable once built and shared: replicas loading byte-identical
  /// model payloads intern to one forest instead of N private copies.
  std::shared_ptr<const kernels::FlatForest> forest_;
  std::vector<double> gain_importance_;
  std::vector<double> perm_importance_;
};

}  // namespace willump::models
