#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/matrix.hpp"

namespace willump::serialize {
class Reader;
class Writer;
}

namespace willump::models {

/// Abstract trainable model over feature matrices.
///
/// Classifiers return P(class = 1) from `predict`; the predicted label is
/// `p > 0.5` and the confidence used by Willump's cascades is max(p, 1-p).
/// Regressors return the raw score. Every model exposes per-feature
/// prediction importances, which Willump's cascade optimizer aggregates into
/// per-IFV importances (paper §4.2, stage 1).
class Model {
 public:
  virtual ~Model() = default;

  /// Train on `x` with targets `y` (labels in {0,1} for classifiers).
  virtual void fit(const data::FeatureMatrix& x, std::span<const double> y) = 0;

  /// Per-row probability (classifier) or score (regressor).
  virtual std::vector<double> predict(const data::FeatureMatrix& x) const = 0;

  /// Whether `predict` returns probabilities of the positive class.
  virtual bool is_classifier() const = 0;

  /// Per-feature prediction importances (same length as training columns).
  ///
  /// Strategy follows the paper: linear models report |w_i| * mean|x_i|;
  /// ensembles report importances computed during construction; models with
  /// no native notion (the MLP) report none and callers fall back to a
  /// GBDT proxy (see core::Importance).
  virtual std::vector<double> feature_importances() const = 0;

  /// Untrained copy with identical hyperparameters (used to train the small
  /// model of a cascade from the same model family).
  virtual std::unique_ptr<Model> clone_untrained() const = 0;

  virtual std::string name() const = 0;

  /// Write hyperparameters and trained state so the model registry
  /// (serialize/model_registry.hpp) can rebuild this model under the type
  /// tag name() returns. Built-in models override this; the default keeps
  /// user-defined models compiling until they implement the contract.
  virtual void save(serialize::Writer& w) const {
    (void)w;
    throw std::logic_error("model \"" + name() + "\" is not serializable");
  }
};

/// Binary prediction threshold shared across the library.
inline double predicted_label(double proba) { return proba > 0.5 ? 1.0 : 0.0; }

/// Confidence of a binary probabilistic prediction: max(p, 1-p).
inline double confidence(double proba) { return proba > 0.5 ? proba : 1.0 - proba; }

}  // namespace willump::models
