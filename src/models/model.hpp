#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/matrix.hpp"
#include "kernels/dispatch.hpp"

namespace willump::serialize {
class Reader;
class Writer;
}

namespace willump::models {

/// Abstract trainable model over feature matrices.
///
/// Classifiers return P(class = 1) from `predict`; the predicted label is
/// `p > 0.5` and the confidence used by Willump's cascades is max(p, 1-p).
/// Regressors return the raw score. Every model exposes per-feature
/// prediction importances, which Willump's cascade optimizer aggregates into
/// per-IFV importances (paper §4.2, stage 1).
class Model {
 public:
  virtual ~Model() = default;

  /// Train on `x` with targets `y` (labels in {0,1} for classifiers).
  virtual void fit(const data::FeatureMatrix& x, std::span<const double> y) = 0;

  /// Per-row probability (classifier) or score (regressor).
  virtual std::vector<double> predict(const data::FeatureMatrix& x) const = 0;

  /// Batched prediction into caller-owned storage (`out.size()` must be
  /// x.rows()). The kernel-backed built-ins override this allocation-free —
  /// it is the serving batch path, where per-request allocations dominate
  /// small-model cost — while the default wraps predict() so user models
  /// keep working unchanged.
  virtual void predict_into(const data::FeatureMatrix& x,
                            std::span<double> out) const {
    const std::vector<double> p = predict(x);
    std::copy(p.begin(), p.end(), out.begin());
  }

  /// Cascade-aware prediction: fill `preds` and mark hard[i] = 1 exactly
  /// when confidence(preds[i]) <= threshold (the rows the cascade must send
  /// to the full model, paper §4.2). hard[i] = 1 permits a PARTIAL value in
  /// preds[i] — the cascade overwrites hard rows, so models may short-
  /// circuit their own evaluation once a row is provably hard (the GBDT
  /// does, via per-tree margin bounds). Defined out of line after
  /// confidence(); default evaluates fully then thresholds.
  virtual void predict_cascade(const data::FeatureMatrix& x, double threshold,
                               std::span<double> preds,
                               std::span<std::uint8_t> hard) const;

  /// Kernel-variant selection used by the batched prediction paths of the
  /// built-in models (ignored by models without kernels). Set by the
  /// optimizer's autotuner and serialized with the model so a loaded
  /// artifact reproduces the tuned pipeline's exact arithmetic.
  const kernels::KernelConfig& kernel_config() const { return kcfg_; }
  void set_kernel_config(const kernels::KernelConfig& c) { kcfg_ = c; }

  /// Whether `predict` returns probabilities of the positive class.
  virtual bool is_classifier() const = 0;

  /// Per-feature prediction importances (same length as training columns).
  ///
  /// Strategy follows the paper: linear models report |w_i| * mean|x_i|;
  /// ensembles report importances computed during construction; models with
  /// no native notion (the MLP) report none and callers fall back to a
  /// GBDT proxy (see core::Importance).
  virtual std::vector<double> feature_importances() const = 0;

  /// Untrained copy with identical hyperparameters (used to train the small
  /// model of a cascade from the same model family).
  virtual std::unique_ptr<Model> clone_untrained() const = 0;

  virtual std::string name() const = 0;

  /// Write hyperparameters and trained state so the model registry
  /// (serialize/model_registry.hpp) can rebuild this model under the type
  /// tag name() returns. Built-in models override this; the default keeps
  /// user-defined models compiling until they implement the contract.
  virtual void save(serialize::Writer& w) const {
    (void)w;
    throw std::logic_error("model \"" + name() + "\" is not serializable");
  }

 protected:
  kernels::KernelConfig kcfg_ = kernels::native_config();
};

/// Binary prediction threshold shared across the library.
inline double predicted_label(double proba) { return proba > 0.5 ? 1.0 : 0.0; }

/// Confidence of a binary probabilistic prediction: max(p, 1-p).
inline double confidence(double proba) { return proba > 0.5 ? proba : 1.0 - proba; }

inline void Model::predict_cascade(const data::FeatureMatrix& x,
                                   double threshold, std::span<double> preds,
                                   std::span<std::uint8_t> hard) const {
  predict_into(x, preds);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    hard[i] = confidence(preds[i]) <= threshold ? 1 : 0;
  }
}

}  // namespace willump::models
