#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "models/model.hpp"

namespace willump::models {

/// Hyperparameters for the two-layer perceptron.
struct MlpConfig {
  int hidden = 32;
  int epochs = 8;
  double learning_rate = 1e-2;  // Adam step size
  double l2 = 1e-6;
  bool classification = false;  // Price (the paper's NN workload) is regression
  std::uint64_t seed = 5;
};

/// Two-layer perceptron: (dense|sparse) input -> ReLU hidden -> scalar output,
/// trained with Adam. The input layer multiplies CSR rows without
/// densification, which is what makes a TF-IDF-fed NN (the paper's Price
/// benchmark) practical.
///
/// The MLP has no native feature-importance measure; per the paper (§4.2),
/// Willump trains a GBDT proxy on the same features and uses its importances
/// (see core/importance.cpp). `feature_importances()` therefore returns {}.
class Mlp final : public Model {
 public:
  explicit Mlp(MlpConfig cfg = {}) : cfg_(cfg) {}

  void fit(const data::FeatureMatrix& x, std::span<const double> y) override;
  std::vector<double> predict(const data::FeatureMatrix& x) const override;
  void predict_into(const data::FeatureMatrix& x,
                    std::span<double> out) const override;
  bool is_classifier() const override { return cfg_.classification; }
  std::vector<double> feature_importances() const override { return {}; }
  std::unique_ptr<Model> clone_untrained() const override {
    return std::make_unique<Mlp>(cfg_);
  }
  std::string name() const override { return "mlp"; }
  void save(serialize::Writer& w) const override;

  static std::unique_ptr<Mlp> load(serialize::Reader& r);

 private:
  /// Forward pass for one row; fills `hidden_buf` with post-ReLU activations.
  double forward_dense(std::span<const double> row,
                       std::vector<double>& hidden_buf) const;
  double forward_sparse(const data::CsrMatrix::RowView& row,
                        std::vector<double>& hidden_buf) const;
  double output_of(double z) const;

  MlpConfig cfg_;
  std::size_t in_dim_ = 0;
  std::vector<double> w1_;  // hidden x in, row-major
  std::vector<double> b1_;  // hidden
  std::vector<double> w2_;  // hidden
  double b2_ = 0.0;
};

}  // namespace willump::models
