#include "models/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "serialize/buffer.hpp"
#include "serialize/intern.hpp"

namespace willump::models {

namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

/// Per-feature histogram bin edges built from (sampled) training quantiles.
struct Binner {
  // edges[f] has at most n_bins-1 ascending thresholds; bin = upper_bound.
  std::vector<std::vector<double>> edges;

  static Binner build(const data::DenseMatrix& x, int n_bins, common::Rng& rng) {
    Binner b;
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    b.edges.resize(d);
    const std::size_t sample_n = std::min<std::size_t>(n, 4000);
    auto sample_idx = rng.permutation(n);
    sample_idx.resize(sample_n);
    std::vector<double> col;
    col.reserve(sample_n);
    for (std::size_t f = 0; f < d; ++f) {
      col.clear();
      for (std::size_t i : sample_idx) col.push_back(x(i, f));
      std::sort(col.begin(), col.end());
      auto& e = b.edges[f];
      for (int q = 1; q < n_bins; ++q) {
        const std::size_t pos =
            std::min(sample_n - 1, sample_n * static_cast<std::size_t>(q) /
                                       static_cast<std::size_t>(n_bins));
        const double v = col[pos];
        if (e.empty() || v > e.back()) e.push_back(v);
      }
      if (e.empty()) e.push_back(col.empty() ? 0.0 : col[0]);
    }
    return b;
  }

  /// Bin a whole contiguous column at once: out[r] = count of edges e with
  /// !(col[r] < e) — exactly the index std::upper_bound would return per
  /// element (NaN fails every `<` and lands past the last edge in both
  /// formulations). One sequential pass per edge over a contiguous column
  /// auto-vectorizes; the per-element binary search it replaces paid an
  /// unpredictable branch per probe.
  void bin_column(std::size_t f, std::span<const double> col,
                  std::span<std::uint8_t> out) const {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    for (const double e : edges[f]) {
      for (std::size_t r = 0; r < col.size(); ++r) {
        out[r] = static_cast<std::uint8_t>(out[r] + (col[r] < e ? 0 : 1));
      }
    }
  }

  /// Raw threshold value corresponding to "bin <= b" for feature f.
  double threshold_of(std::size_t f, int b) const { return edges[f][static_cast<std::size_t>(b)]; }

  int bins_of(std::size_t f) const { return static_cast<int>(edges[f].size()) + 1; }
};

struct HistBin {
  double grad = 0.0;
  double hess = 0.0;
  std::int32_t count = 0;
};

struct SplitDecision {
  double gain = 0.0;
  std::int32_t feature = -1;
  int bin = -1;  // go left when binned value <= bin
  double grad_left = 0.0, hess_left = 0.0;
  std::int32_t count_left = 0;
};

}  // namespace

double Tree::predict_row(std::span<const double> row) const {
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const auto& nd = nodes_[static_cast<std::size_t>(node)];
    node = row[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                     : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

void Gbdt::fit(const data::FeatureMatrix& xin, std::span<const double> y) {
  // GBDT consumes dense tabular features; densify sparse inputs.
  const data::DenseMatrix x = xin.is_dense() ? xin.dense() : xin.sparse().to_dense();
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  trees_.clear();
  gain_importance_.assign(d, 0.0);
  perm_importance_.assign(d, 0.0);

  common::Rng rng(cfg_.seed);
  const Binner binner = Binner::build(x, cfg_.n_bins, rng);

  // Pre-bin all columns (column-major uint8 codes). Each column is gathered
  // into one contiguous buffer so bin_column streams it edge-at-a-time.
  std::vector<std::vector<std::uint8_t>> codes(d, std::vector<std::uint8_t>(n));
  {
    std::vector<double> colbuf(n);
    for (std::size_t f = 0; f < d; ++f) {
      for (std::size_t r = 0; r < n; ++r) colbuf[r] = x(r, f);
      binner.bin_column(f, colbuf, codes[f]);
    }
  }

  // Initial margin.
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= std::max<std::size_t>(n, 1);
  if (cfg_.classification) {
    const double p = std::clamp(mean_y, 1e-6, 1.0 - 1e-6);
    base_score_ = std::log(p / (1.0 - p));
  } else {
    base_score_ = mean_y;
  }

  std::vector<double> margin(n, base_score_);
  std::vector<double> grad(n), hess(n);
  std::vector<std::size_t> all_rows(n);
  for (std::size_t i = 0; i < n; ++i) all_rows[i] = i;

  for (int t = 0; t < cfg_.n_trees; ++t) {
    // Gradients/hessians of the loss at the current margin.
    for (std::size_t i = 0; i < n; ++i) {
      if (cfg_.classification) {
        const double p = sigmoid(margin[i]);
        grad[i] = p - y[i];
        hess[i] = std::max(p * (1.0 - p), 1e-6);
      } else {
        grad[i] = margin[i] - y[i];
        hess[i] = 1.0;
      }
    }

    std::vector<std::size_t> rows;
    if (cfg_.subsample < 1.0) {
      rows.reserve(static_cast<std::size_t>(static_cast<double>(n) * cfg_.subsample));
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.next_double() < cfg_.subsample) rows.push_back(i);
      }
      if (rows.empty()) rows = all_rows;
    } else {
      rows = all_rows;
    }

    Tree tree;
    auto& nodes = tree.nodes();
    nodes.push_back({});

    // Frontier of (node index, rows) pairs grown breadth-first.
    struct Work {
      std::int32_t node;
      std::vector<std::size_t> rows;
      int depth;
    };
    std::vector<Work> frontier;
    frontier.push_back({0, std::move(rows), 0});

    while (!frontier.empty()) {
      Work w = std::move(frontier.back());
      frontier.pop_back();

      double gsum = 0.0, hsum = 0.0;
      for (std::size_t r : w.rows) {
        gsum += grad[r];
        hsum += hess[r];
      }
      const double leaf_value = -gsum / (hsum + cfg_.lambda);

      auto make_leaf = [&]() {
        nodes[static_cast<std::size_t>(w.node)].feature = -1;
        nodes[static_cast<std::size_t>(w.node)].value =
            cfg_.learning_rate * leaf_value;
      };

      if (w.depth >= cfg_.max_depth ||
          w.rows.size() < 2 * static_cast<std::size_t>(cfg_.min_samples_leaf)) {
        make_leaf();
        continue;
      }

      // Histogram split search over all features.
      SplitDecision best;
      const double parent_score = gsum * gsum / (hsum + cfg_.lambda);
      std::vector<HistBin> hist;
      for (std::size_t f = 0; f < d; ++f) {
        const int nb = binner.bins_of(f);
        hist.assign(static_cast<std::size_t>(nb), {});
        const auto& code_f = codes[f];
        for (std::size_t r : w.rows) {
          auto& hb = hist[code_f[r]];
          hb.grad += grad[r];
          hb.hess += hess[r];
          ++hb.count;
        }
        double gl = 0.0, hl = 0.0;
        std::int32_t cl = 0;
        for (int b = 0; b + 1 < nb; ++b) {
          gl += hist[static_cast<std::size_t>(b)].grad;
          hl += hist[static_cast<std::size_t>(b)].hess;
          cl += hist[static_cast<std::size_t>(b)].count;
          const std::int32_t cr = static_cast<std::int32_t>(w.rows.size()) - cl;
          if (cl < cfg_.min_samples_leaf || cr < cfg_.min_samples_leaf) continue;
          const double gr = gsum - gl;
          const double hr = hsum - hl;
          const double gain = gl * gl / (hl + cfg_.lambda) +
                              gr * gr / (hr + cfg_.lambda) - parent_score;
          if (gain > best.gain) {
            best = {gain, static_cast<std::int32_t>(f), b, gl, hl, cl};
          }
        }
      }

      if (best.feature < 0 || best.gain < 1e-9) {
        make_leaf();
        continue;
      }

      gain_importance_[static_cast<std::size_t>(best.feature)] += best.gain;

      // Partition rows by the chosen split.
      std::vector<std::size_t> left_rows, right_rows;
      left_rows.reserve(static_cast<std::size_t>(best.count_left));
      right_rows.reserve(w.rows.size() - static_cast<std::size_t>(best.count_left));
      const auto& code_f = codes[static_cast<std::size_t>(best.feature)];
      for (std::size_t r : w.rows) {
        if (code_f[r] <= best.bin) {
          left_rows.push_back(r);
        } else {
          right_rows.push_back(r);
        }
      }

      const std::int32_t left_id = static_cast<std::int32_t>(nodes.size());
      const std::int32_t right_id = left_id + 1;
      nodes.push_back({});
      nodes.push_back({});
      // Note: take the reference only after both push_backs (reallocation).
      TreeNode& nd = nodes[static_cast<std::size_t>(w.node)];
      nd.feature = best.feature;
      nd.threshold =
          binner.threshold_of(static_cast<std::size_t>(best.feature), best.bin);
      nd.left = left_id;
      nd.right = right_id;
      frontier.push_back({left_id, std::move(left_rows), w.depth + 1});
      frontier.push_back({right_id, std::move(right_rows), w.depth + 1});
    }

    // Update margins with the new tree.
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += tree.predict_row(x.row(i));
    }
    trees_.push_back(std::move(tree));
  }

  if (cfg_.permutation_rows > 0) {
    compute_permutation_importance(x, y);
  } else {
    perm_importance_ = gain_importance_;
  }

  rebuild_forest();
}

void Gbdt::rebuild_forest() {
  auto forest = std::make_shared<kernels::FlatForest>();
  forest->reset(base_score_);
  std::vector<std::int32_t> feature, left, right;
  std::vector<double> threshold, value;
  for (const auto& tree : trees_) {
    const auto& nodes = tree.nodes();
    feature.clear();
    threshold.clear();
    left.clear();
    right.clear();
    value.clear();
    feature.reserve(nodes.size());
    threshold.reserve(nodes.size());
    left.reserve(nodes.size());
    right.reserve(nodes.size());
    value.reserve(nodes.size());
    for (const auto& nd : nodes) {
      feature.push_back(nd.feature);
      threshold.push_back(nd.threshold);
      left.push_back(nd.left);
      right.push_back(nd.right);
      value.push_back(nd.value);
    }
    forest->add_tree(feature, threshold, left, right, value);
  }
  forest->finalize();
  forest_ = std::move(forest);
}

double Gbdt::predict_margin_row(std::span<const double> row) const {
  double m = base_score_;
  for (const auto& t : trees_) m += t.predict_row(row);
  return m;
}

std::vector<double> Gbdt::predict(const data::FeatureMatrix& xin) const {
  std::vector<double> out(xin.rows());
  predict_into(xin, out);
  return out;
}

void Gbdt::margins_block(const double* x, std::size_t rows, std::size_t stride,
                         double* out) const {
  forest_->margins(kcfg_.tree, kcfg_.tree_block, x, rows, stride, out);
}

void Gbdt::predict_into(const data::FeatureMatrix& xin,
                        std::span<double> out) const {
  const std::size_t n = xin.rows();
  if (forest_ == nullptr || forest_->num_trees() != trees_.size()) {
    // Forest not rebuilt (shouldn't happen via fit/load): row-wise fallback.
    const data::DenseMatrix x =
        xin.is_dense() ? xin.dense() : xin.sparse().to_dense();
    for (std::size_t r = 0; r < n; ++r) out[r] = predict_margin_row(x.row(r));
  } else if (xin.is_dense()) {
    const auto& x = xin.dense();
    margins_block(x.data().data(), n, x.cols(), out.data());
  } else if (static_cast<std::size_t>(xin.cols()) >= kcfg_.sparse_cutoff) {
    // Wide-sparse inputs (TF-IDF tails): traverse the CSR rows directly.
    // Each tree probes O(depth) columns by binary search over a row's
    // entries, so skipping the densify/re-zero sweep over all columns wins
    // once the matrix is wide; the autotuner pins the cutoff per model.
    const auto& s = xin.sparse();
    forest_->margins_csr(s.indptr().data(), s.indices().data(),
                         s.values().data(), n, out.data());
  } else {
    // Densify kMaxTreeBlock rows at a time into reused thread-local scratch
    // (scatter entries, run the block kernel, scatter zeros back), instead
    // of materializing the whole matrix per call as to_dense() did.
    const auto& s = xin.sparse();
    const std::size_t d = static_cast<std::size_t>(s.cols());
    const auto indptr = s.indptr();
    const auto indices = s.indices();
    const auto values = s.values();
    constexpr std::size_t kBlock = kernels::kMaxTreeBlock;
    thread_local std::vector<double> scratch;  // invariant: all zeros between calls
    if (scratch.size() < kBlock * d) scratch.assign(kBlock * d, 0.0);
    for (std::size_t r0 = 0; r0 < n; r0 += kBlock) {
      const std::size_t bsz = std::min(kBlock, n - r0);
      for (std::size_t b = 0; b < bsz; ++b) {
        for (std::size_t k = indptr[r0 + b]; k < indptr[r0 + b + 1]; ++k) {
          scratch[b * d + static_cast<std::size_t>(indices[k])] = values[k];
        }
      }
      margins_block(scratch.data(), bsz, d, out.data() + r0);
      for (std::size_t b = 0; b < bsz; ++b) {
        for (std::size_t k = indptr[r0 + b]; k < indptr[r0 + b + 1]; ++k) {
          scratch[b * d + static_cast<std::size_t>(indices[k])] = 0.0;
        }
      }
    }
  }
  if (cfg_.classification) {
    for (std::size_t r = 0; r < n; ++r) out[r] = sigmoid(out[r]);
  }
}

void Gbdt::predict_cascade(const data::FeatureMatrix& xin, double threshold,
                           std::span<double> preds,
                           std::span<std::uint8_t> hard) const {
  if (!cfg_.classification || forest_ == nullptr ||
      forest_->num_trees() != trees_.size() || !xin.is_dense()) {
    Model::predict_cascade(xin, threshold, preds, hard);
    return;
  }
  // hard ⟺ max(p, 1-p) <= t ⟺ |margin| <= logit(t). threshold 1.0 gives
  // bound = +inf: every row is provably hard before the first tree.
  const double bound =
      threshold >= 1.0 ? std::numeric_limits<double>::infinity()
                       : std::log(threshold / (1.0 - threshold));
  const auto& x = xin.dense();
  const std::size_t n = xin.rows();
  forest_->cascade_margins(kcfg_.tree_block, x.data().data(), n, x.cols(),
                           bound, preds.data(), hard.data());
  for (std::size_t i = 0; i < n; ++i) {
    // Hard rows carry sigmoid of a partial margin (callers overwrite them);
    // completed rows get the same sigmoid-confidence test the row-wise
    // cascade applies, so knife-edge rows match it bit-for-bit.
    preds[i] = sigmoid(preds[i]);
    if (!hard[i]) hard[i] = confidence(preds[i]) <= threshold ? 1 : 0;
  }
}

void Gbdt::compute_permutation_importance(const data::DenseMatrix& x,
                                          std::span<const double> y) {
  common::Rng rng(cfg_.seed + 1);
  const std::size_t n = std::min(x.rows(), cfg_.permutation_rows);
  auto sample = rng.permutation(x.rows());
  sample.resize(n);

  auto loss_of = [&](const data::DenseMatrix& m) {
    double loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double margin = predict_margin_row(m.row(i));
      const double target = y[sample[i]];
      if (cfg_.classification) {
        const double p = std::clamp(sigmoid(margin), 1e-9, 1.0 - 1e-9);
        loss += -(target * std::log(p) + (1.0 - target) * std::log(1.0 - p));
      } else {
        loss += (margin - target) * (margin - target);
      }
    }
    return loss / static_cast<double>(n);
  };

  data::DenseMatrix sub = x.select_rows(sample);
  const double base_loss = loss_of(sub);

  std::vector<double> saved(n);
  auto perm = rng.permutation(n);
  for (std::size_t f = 0; f < x.cols(); ++f) {
    for (std::size_t i = 0; i < n; ++i) saved[i] = sub(i, f);
    rng.shuffle(perm);
    for (std::size_t i = 0; i < n; ++i) sub(i, f) = saved[perm[i]];
    perm_importance_[f] = std::max(0.0, loss_of(sub) - base_loss);
    for (std::size_t i = 0; i < n; ++i) sub(i, f) = saved[i];
  }
}

std::vector<double> Gbdt::feature_importances() const {
  if (cfg_.permutation_rows > 0) return perm_importance_;
  return gain_importance_;
}

void Gbdt::save(serialize::Writer& w) const {
  w.i32(cfg_.n_trees);
  w.i32(cfg_.max_depth);
  w.f64(cfg_.learning_rate);
  w.i32(cfg_.min_samples_leaf);
  w.i32(cfg_.n_bins);
  w.f64(cfg_.lambda);
  w.f64(cfg_.subsample);
  w.u8(cfg_.classification ? 1 : 0);
  w.u64(cfg_.seed);
  w.u64(cfg_.permutation_rows);
  w.f64(base_score_);
  w.u64(trees_.size());
  for (const auto& tree : trees_) {
    const auto& nodes = tree.nodes();
    w.u64(nodes.size());
    for (const auto& n : nodes) {
      w.i32(n.feature);
      w.f64(n.threshold);
      w.i32(n.left);
      w.i32(n.right);
      w.f64(n.value);
    }
  }
  w.doubles(gain_importance_);
  w.doubles(perm_importance_);
  kernels::save_kernel_config(w, kcfg_);
}

std::unique_ptr<Gbdt> Gbdt::load(serialize::Reader& r) {
  const std::size_t wire_start = r.position();
  GbdtConfig cfg;
  cfg.n_trees = r.i32();
  cfg.max_depth = r.i32();
  cfg.learning_rate = r.f64();
  cfg.min_samples_leaf = r.i32();
  cfg.n_bins = r.i32();
  cfg.lambda = r.f64();
  cfg.subsample = r.f64();
  cfg.classification = r.u8() != 0;
  cfg.seed = r.u64();
  cfg.permutation_rows = static_cast<std::size_t>(r.u64());
  auto m = std::make_unique<Gbdt>(cfg);
  m->base_score_ = r.f64();
  const std::uint64_t n_trees = r.length(8, "gbdt trees");
  m->trees_.resize(static_cast<std::size_t>(n_trees));
  std::int32_t max_feature = -1;
  for (auto& tree : m->trees_) {
    const std::uint64_t n_nodes = r.length(28, "gbdt tree nodes");
    if (n_nodes == 0) {
      throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                      "gbdt tree has no nodes");
    }
    auto& nodes = tree.nodes();
    nodes.resize(static_cast<std::size_t>(n_nodes));
    const auto count = static_cast<std::int32_t>(n_nodes);
    for (std::int32_t i = 0; i < count; ++i) {
      auto& n = nodes[static_cast<std::size_t>(i)];
      n.feature = r.i32();
      n.threshold = r.f64();
      n.left = r.i32();
      n.right = r.i32();
      n.value = r.f64();
      // predict_row walks child indices unchecked; an out-of-range child
      // would read out of bounds, and a back/self edge would loop forever.
      // Trees are built root-first, so children of a valid tree always sit
      // at strictly larger indices — enforce exactly that.
      if (n.feature >= 0 &&
          (n.left <= i || n.right <= i || n.left >= count || n.right >= count)) {
        throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                        "gbdt tree node indices invalid");
      }
      max_feature = std::max(max_feature, n.feature);
    }
  }
  m->gain_importance_ = r.doubles();
  m->perm_importance_ = r.doubles();
  // Split features index into predict-time rows; the per-feature gain
  // vector recorded at fit time carries the training width to check
  // against. fit() always sizes it, so trees with internal nodes but no
  // recorded width are themselves corrupt — don't let an emptied vector
  // disable the bound check.
  if (max_feature >= 0 &&
      max_feature >= static_cast<std::int32_t>(m->gain_importance_.size())) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "gbdt split feature exceeds training width");
  }
  // The flat forest derives purely from the bytes read so far (trees +
  // base score); the kernel config that follows is per-artifact tuning and
  // stays private. Snapshot the window before reading it.
  const auto forest_bytes = r.window(wire_start);
  m->kcfg_ = kernels::load_kernel_config(r);
  m->rebuild_forest();
  m->forest_ = serialize::InternPool::instance().intern<kernels::FlatForest>(
      "forest", forest_bytes, std::move(m->forest_));
  return m;
}

}  // namespace willump::models
