#include "models/mlp.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "kernels/gemv.hpp"
#include "serialize/buffer.hpp"

namespace willump::models {

namespace {

/// Adam state for one parameter tensor.
struct Adam {
  std::vector<double> m, v;
  double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  int t = 0;

  explicit Adam(std::size_t n) : m(n, 0.0), v(n, 0.0) {}

  void step_begin() { ++t; }

  double update(std::size_t i, double g, double lr) {
    m[i] = beta1 * m[i] + (1 - beta1) * g;
    v[i] = beta2 * v[i] + (1 - beta2) * g * g;
    const double mh = m[i] / (1 - std::pow(beta1, t));
    const double vh = v[i] / (1 - std::pow(beta2, t));
    return lr * mh / (std::sqrt(vh) + eps);
  }
};

}  // namespace

double Mlp::output_of(double z) const {
  return cfg_.classification ? 1.0 / (1.0 + std::exp(-z)) : z;
}

double Mlp::forward_dense(std::span<const double> row,
                          std::vector<double>& h) const {
  const auto hidden = static_cast<std::size_t>(cfg_.hidden);
  h.assign(hidden, 0.0);
  for (std::size_t j = 0; j < hidden; ++j) {
    double acc = b1_[j];
    const double* wrow = w1_.data() + j * in_dim_;
    for (std::size_t i = 0; i < row.size(); ++i) acc += wrow[i] * row[i];
    h[j] = acc > 0.0 ? acc : 0.0;
  }
  double z = b2_;
  for (std::size_t j = 0; j < hidden; ++j) z += w2_[j] * h[j];
  return z;
}

double Mlp::forward_sparse(const data::CsrMatrix::RowView& row,
                           std::vector<double>& h) const {
  const auto hidden = static_cast<std::size_t>(cfg_.hidden);
  h.assign(hidden, 0.0);
  for (std::size_t j = 0; j < hidden; ++j) {
    double acc = b1_[j];
    const double* wrow = w1_.data() + j * in_dim_;
    for (std::size_t k = 0; k < row.nnz(); ++k) {
      acc += wrow[static_cast<std::size_t>(row.indices[k])] * row.values[k];
    }
    h[j] = acc > 0.0 ? acc : 0.0;
  }
  double z = b2_;
  for (std::size_t j = 0; j < hidden; ++j) z += w2_[j] * h[j];
  return z;
}

void Mlp::fit(const data::FeatureMatrix& x, std::span<const double> y) {
  const std::size_t n = x.rows();
  in_dim_ = x.cols();
  const auto hidden = static_cast<std::size_t>(cfg_.hidden);

  common::Rng rng(cfg_.seed);
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim_ + 1));
  w1_.assign(hidden * in_dim_, 0.0);
  for (auto& w : w1_) w = rng.next_gaussian() * scale;
  b1_.assign(hidden, 0.0);
  w2_.assign(hidden, 0.0);
  for (auto& w : w2_) w = rng.next_gaussian() * std::sqrt(2.0 / static_cast<double>(hidden));
  b2_ = 0.0;

  Adam opt_w1(w1_.size()), opt_b1(b1_.size()), opt_w2(w2_.size()), opt_b2(1);

  std::vector<double> h;
  std::vector<double> dh(hidden);

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng.permutation(n);
    for (std::size_t r : order) {
      double z;
      data::CsrMatrix::RowView srow{};
      std::span<const double> drow;
      const bool dense = x.is_dense();
      if (dense) {
        drow = x.dense().row(r);
        z = forward_dense(drow, h);
      } else {
        srow = x.sparse().row(r);
        z = forward_sparse(srow, h);
      }
      const double pred = output_of(z);
      // d(loss)/dz is (pred - y) for both squared loss (identity output,
      // up to a factor of 2 folded into the learning rate) and log loss.
      const double dz = pred - y[r];

      opt_w1.step_begin();
      opt_b1.step_begin();
      opt_w2.step_begin();
      opt_b2.step_begin();

      for (std::size_t j = 0; j < hidden; ++j) {
        dh[j] = h[j] > 0.0 ? dz * w2_[j] : 0.0;
        const double gw2 = dz * h[j] + cfg_.l2 * w2_[j];
        w2_[j] -= opt_w2.update(j, gw2, cfg_.learning_rate);
      }
      b2_ -= opt_b2.update(0, dz, cfg_.learning_rate);

      for (std::size_t j = 0; j < hidden; ++j) {
        if (dh[j] == 0.0) continue;
        double* wrow = w1_.data() + j * in_dim_;
        if (dense) {
          for (std::size_t i = 0; i < drow.size(); ++i) {
            const double g = dh[j] * drow[i] + cfg_.l2 * wrow[i];
            wrow[i] -= opt_w1.update(j * in_dim_ + i, g, cfg_.learning_rate);
          }
        } else {
          for (std::size_t k = 0; k < srow.nnz(); ++k) {
            const auto i = static_cast<std::size_t>(srow.indices[k]);
            const double g = dh[j] * srow.values[k] + cfg_.l2 * wrow[i];
            wrow[i] -= opt_w1.update(j * in_dim_ + i, g, cfg_.learning_rate);
          }
        }
        b1_[j] -= opt_b1.update(j, dh[j], cfg_.learning_rate);
      }
    }
  }
}

std::vector<double> Mlp::predict(const data::FeatureMatrix& x) const {
  std::vector<double> out(x.rows());
  predict_into(x, out);
  return out;
}

void Mlp::predict_into(const data::FeatureMatrix& x,
                       std::span<double> out) const {
  const std::size_t n = x.rows();
  const auto hidden = static_cast<std::size_t>(cfg_.hidden);
  if (!x.is_dense()) {
    // CSR rows gather into the hidden layer without densification; the
    // dense-block kernels don't apply. Reuse one post-ReLU buffer.
    thread_local std::vector<double> hbuf;
    for (std::size_t r = 0; r < n; ++r) {
      out[r] = output_of(forward_sparse(x.sparse().row(r), hbuf));
    }
    return;
  }

  // Blocked GEMM shape: run a block of rows through the hidden layer
  // (each weight row streams once per block), then the output layer over
  // the contiguous activations.
  const auto& m = x.dense();
  const std::size_t stride = m.cols();
  constexpr std::size_t kRows = 32;
  const auto ev = kernels::effective_dot(kcfg_.dot);
  thread_local std::vector<double> h;
  if (h.size() < kRows * hidden) h.resize(kRows * hidden);
  for (std::size_t r0 = 0; r0 < n; r0 += kRows) {
    const std::size_t bsz = std::min(kRows, n - r0);
    kernels::hidden_relu(ev, m.data().data() + r0 * stride, bsz, stride,
                         w1_.data(), b1_.data(), hidden, in_dim_, h.data());
    for (std::size_t b = 0; b < bsz; ++b) {
      const double* hb = h.data() + b * hidden;
      double z;
      if (ev == kernels::DotVariant::Scalar) {
        // Reference order: bias-seeded accumulator (the pre-kernel loop).
        z = b2_;
        for (std::size_t j = 0; j < hidden; ++j) z += w2_[j] * hb[j];
      } else {
        z = b2_ + kernels::dot(ev, w2_.data(), hb, hidden);
      }
      out[r0 + b] = output_of(z);
    }
  }
}

void Mlp::save(serialize::Writer& w) const {
  w.i32(cfg_.hidden);
  w.i32(cfg_.epochs);
  w.f64(cfg_.learning_rate);
  w.f64(cfg_.l2);
  w.u8(cfg_.classification ? 1 : 0);
  w.u64(cfg_.seed);
  w.u64(in_dim_);
  w.doubles(w1_);
  w.doubles(b1_);
  w.doubles(w2_);
  w.f64(b2_);
  kernels::save_kernel_config(w, kcfg_);
}

std::unique_ptr<Mlp> Mlp::load(serialize::Reader& r) {
  MlpConfig cfg;
  cfg.hidden = r.i32();
  cfg.epochs = r.i32();
  cfg.learning_rate = r.f64();
  cfg.l2 = r.f64();
  cfg.classification = r.u8() != 0;
  cfg.seed = r.u64();
  if (cfg.hidden < 0) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "mlp hidden size negative");
  }
  auto m = std::make_unique<Mlp>(cfg);
  m->in_dim_ = static_cast<std::size_t>(r.u64());
  m->w1_ = r.doubles();
  m->b1_ = r.doubles();
  m->w2_ = r.doubles();
  m->b2_ = r.f64();
  const auto hidden = static_cast<std::size_t>(cfg.hidden);
  // Shape check by division, not multiplication: hidden * in_dim_ can wrap
  // for absurd in_dim_ values and make an undersized w1_ "match".
  const bool w1_ok = hidden == 0
                         ? m->w1_.empty()
                         : (m->w1_.size() % hidden == 0 &&
                            m->w1_.size() / hidden == m->in_dim_);
  if (!w1_ok || m->b1_.size() != hidden || m->w2_.size() != hidden) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "mlp layer shapes inconsistent");
  }
  m->kcfg_ = kernels::load_kernel_config(r);
  return m;
}

}  // namespace willump::models
