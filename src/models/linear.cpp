#include "models/linear.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "kernels/gemv.hpp"
#include "serialize/buffer.hpp"

namespace willump::models {

double LogisticRegression::link(double margin) const {
  return 1.0 / (1.0 + std::exp(-margin));
}

double LinearModelBase::margin_dense(std::span<const double> row) const {
  double acc = b_;
  for (std::size_t i = 0; i < row.size(); ++i) acc += row[i] * w_[i];
  return acc;
}

double LinearModelBase::margin_sparse(const data::CsrMatrix::RowView& row) const {
  double acc = b_;
  for (std::size_t k = 0; k < row.nnz(); ++k) {
    acc += row.values[k] * w_[static_cast<std::size_t>(row.indices[k])];
  }
  return acc;
}

void LinearModelBase::fit(const data::FeatureMatrix& x, std::span<const double> y) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;
  mean_abs_.assign(d, 0.0);

  // Record mean |x_i| for the paper's linear importance definition.
  if (x.is_dense()) {
    const auto& m = x.dense();
    for (std::size_t r = 0; r < n; ++r) {
      auto row = m.row(r);
      for (std::size_t c = 0; c < d; ++c) mean_abs_[c] += std::abs(row[c]);
    }
  } else {
    const auto& m = x.sparse();
    for (std::size_t r = 0; r < n; ++r) {
      auto row = m.row(r);
      for (std::size_t k = 0; k < row.nnz(); ++k) {
        mean_abs_[static_cast<std::size_t>(row.indices[k])] += std::abs(row.values[k]);
      }
    }
  }
  if (n > 0) {
    for (auto& v : mean_abs_) v /= static_cast<double>(n);
  }

  std::vector<double> g2(d, 1e-8);  // Adagrad accumulators
  double g2b = 1e-8;
  common::Rng rng(cfg_.seed);

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng.permutation(n);
    for (std::size_t r : order) {
      if (x.is_dense()) {
        auto row = x.dense().row(r);
        const double g = gradient(margin_dense(row), y[r]);
        for (std::size_t c = 0; c < d; ++c) {
          const double gi = g * row[c] + cfg_.l2 * w_[c];
          g2[c] += gi * gi;
          w_[c] -= cfg_.learning_rate * gi / std::sqrt(g2[c]);
        }
        g2b += g * g;
        b_ -= cfg_.learning_rate * g / std::sqrt(g2b);
      } else {
        auto row = x.sparse().row(r);
        const double g = gradient(margin_sparse(row), y[r]);
        for (std::size_t k = 0; k < row.nnz(); ++k) {
          const auto c = static_cast<std::size_t>(row.indices[k]);
          const double gi = g * row.values[k] + cfg_.l2 * w_[c];
          g2[c] += gi * gi;
          w_[c] -= cfg_.learning_rate * gi / std::sqrt(g2[c]);
        }
        g2b += g * g;
        b_ -= cfg_.learning_rate * g / std::sqrt(g2b);
      }
    }
  }
}

std::vector<double> LinearModelBase::predict(const data::FeatureMatrix& x) const {
  std::vector<double> out(x.rows());
  predict_into(x, out);
  return out;
}

void LinearModelBase::predict_into(const data::FeatureMatrix& x,
                                   std::span<double> out) const {
  const std::size_t n = x.rows();
  if (x.is_dense()) {
    const auto& m = x.dense();
    kernels::dense_margins(kcfg_.dot, m.data().data(), n, m.cols(), w_.data(),
                           m.cols(), b_, out.data());
  } else {
    const auto& m = x.sparse();
    kernels::csr_margins(kcfg_.dot, m.indptr().data(), m.indices().data(),
                         m.values().data(), w_.data(), b_, n, out.data());
  }
  for (std::size_t r = 0; r < n; ++r) out[r] = link(out[r]);
}

std::vector<double> LinearModelBase::feature_importances() const {
  std::vector<double> imp(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i) {
    imp[i] = std::abs(w_[i]) * mean_abs_[i];
  }
  return imp;
}

void LinearModelBase::save(serialize::Writer& w) const {
  w.i32(cfg_.epochs);
  w.f64(cfg_.learning_rate);
  w.f64(cfg_.l2);
  w.u64(cfg_.seed);
  w.doubles(w_);
  w.f64(b_);
  w.doubles(mean_abs_);
  kernels::save_kernel_config(w, kcfg_);
}

LinearConfig LinearModelBase::load_config(serialize::Reader& r) {
  LinearConfig cfg;
  cfg.epochs = r.i32();
  cfg.learning_rate = r.f64();
  cfg.l2 = r.f64();
  cfg.seed = r.u64();
  return cfg;
}

void LinearModelBase::load_state(serialize::Reader& r) {
  w_ = r.doubles();
  b_ = r.f64();
  mean_abs_ = r.doubles();
  if (mean_abs_.size() != w_.size()) {
    throw serialize::SerializeError(serialize::ErrorCode::CorruptData,
                                    "linear model weight/mean size mismatch");
  }
  kcfg_ = kernels::load_kernel_config(r);
}

std::unique_ptr<LogisticRegression> LogisticRegression::load(
    serialize::Reader& r) {
  auto m = std::make_unique<LogisticRegression>(load_config(r));
  m->load_state(r);
  return m;
}

std::unique_ptr<LinearRegression> LinearRegression::load(serialize::Reader& r) {
  auto m = std::make_unique<LinearRegression>(load_config(r));
  m->load_state(r);
  return m;
}

}  // namespace willump::models
