#!/usr/bin/env python3
"""Markdown lint for this repo's docs: dead relative links and stale file
references.

Checks every tracked *.md file for:

1. **Dead relative links** — `[text](path)` targets that are neither
   absolute URLs nor anchors must exist on disk (relative to the file).
2. **Stale file references** — inline-code mentions of repo paths
   (`src/...`, `tests/...`, `bench/...`, `examples/...`, `tools/...`,
   `ci.sh`, `CMakeLists.txt`, `*.md`) must name files or directories that
   actually exist, so README/DESIGN/ROADMAP cannot drift from the tree.

Exits non-zero listing every violation; CI (and the `docs` ctest entry)
fails the build on breakage. Stdlib only — no pip dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Markdown files under version control (skip build trees and externals).
SKIP_DIRS = {"build", "build-tsan", "build-asan", ".git", ".claude"}
# Externally supplied context (task text, scraped paper/related-work dumps):
# not maintained by this repo's doc passes, so not linted.
SKIP_FILES = {"ISSUE.md", "PAPER.md", "PAPERS.md", "SNIPPETS.md"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
# A repo path inside a code span: starts with a known top-level dir or is a
# known top-level file. Trailing punctuation and glob-ish tails excluded.
PATH_RE = re.compile(
    r"^(?:src|tests|bench|examples|tools|\.github)/[\w./\-]+$|"
    r"^(?:ci\.sh|CMakeLists\.txt|[A-Z][A-Z_]+\.md|DESIGN\.md|README\.md)$"
)
# Pseudo-paths documentation legitimately uses: placeholders, build outputs,
# artifact names, and expansion patterns that are not tracked files.
IGNORE_SUBSTRINGS = (
    "*",
    "<",
    "...",
    ".wlmp",
    "fixture-cache",
    "$",
)


def md_files() -> list[Path]:
    out = []
    for p in sorted(REPO.rglob("*.md")):
        if any(part in SKIP_DIRS for part in p.relative_to(REPO).parts):
            continue
        if p.name in SKIP_FILES:
            continue
        out.append(p)
    return out


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(REPO)

    # Strip fenced code blocks: their contents are example code, not claims
    # about the tree (inline `code spans` ARE checked — that is where docs
    # reference real files).
    stripped_lines = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            stripped_lines.append(line)
    prose = "\n".join(stripped_lines)

    for m in LINK_RE.finditer(prose):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target_path = (path.parent / target.split("#")[0]).resolve()
        if not target_path.exists():
            errors.append(f"{rel}: dead relative link -> {target}")

    for m in CODE_SPAN_RE.finditer(prose):
        span = m.group(1).strip().rstrip(".,;:")
        if any(s in span for s in IGNORE_SUBSTRINGS):
            continue
        # `a.{hpp,cpp}` shorthand expands to both members.
        candidates = []
        brace = re.match(r"^(.*)\{([\w,]+)\}(.*)$", span)
        if brace:
            for alt in brace.group(2).split(","):
                candidates.append(brace.group(1) + alt + brace.group(3))
        else:
            candidates.append(span)
        for cand in candidates:
            if not PATH_RE.match(cand):
                continue
            if not (REPO / cand).exists():
                errors.append(f"{rel}: stale file reference -> {cand}")
    return errors


def main() -> int:
    all_errors: list[str] = []
    files = md_files()
    for f in files:
        all_errors.extend(check_file(f))
    if all_errors:
        print(f"docs lint: {len(all_errors)} problem(s) in {len(files)} files")
        for e in all_errors:
            print(f"  {e}")
        return 1
    print(f"docs lint: {len(files)} markdown files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
