#!/usr/bin/env bash
# Tier-1 verification: exactly the command from ROADMAP.md.
# Configure, build everything (library, 37 test suites, 18 benches,
# 4 examples), then run the full ctest tree — unit suites plus the
# bench/example smoke tests.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j
cd build
# Valueless `ctest -j` only works on CMake >= 3.29 (older ctest silently
# drops it, or swallows the next flag as its value) — pass a count.
ctest --output-on-failure -j "$(nproc)"
