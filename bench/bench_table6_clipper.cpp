// Table 6: end-to-end query latency of a Clipper-like model-serving
// frontend with and without Willump optimization, at batch sizes 1/10/100,
// on the two classification benchmarks that query no remote tables
// (Product, Toxic). Willump's speedup should grow with batch size (fixed
// RPC overheads amortize) but stay below the single-node speedup (Clipper's
// serialization overhead is outside Willump's reach).

#include "bench_util.hpp"
#include "serving/clipper_sim.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

double mean_serve_ms(serving::ClipperSim& clipper,
                     const std::vector<data::Batch>& queries) {
  // Warmup one query, then time the stream.
  (void)clipper.serve(queries[0]);
  common::Timer t;
  for (const auto& q : queries) (void)clipper.serve(q);
  return t.elapsed_seconds() * 1e3 / static_cast<double>(queries.size());
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Clipper integration: end-to-end latency (ms)",
               "Willump paper, Table 6");
  TablePrinter table({"benchmark", "batch", "clipper", "clipper+willump",
                      "speedup"},
                     16);
  table.print_header();

  for (const auto& name : {std::string("product"), std::string("toxic")}) {
    const auto wl = make_workload(name);
    const auto python = optimize(wl, python_config());
    const auto willump = optimize(wl, cascades_config());

    for (std::size_t batch_size : {std::size_t{1}, std::size_t{10}, std::size_t{100}}) {
      // A stream of query batches cut from the test set.
      std::vector<data::Batch> queries;
      std::size_t n_queries = batch_size == 1 ? 60 : (batch_size == 10 ? 30 : 10);
      if (smoke()) n_queries = 5;
      for (std::size_t q = 0; q < n_queries; ++q) {
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < batch_size; ++i) {
          idx.push_back((q * batch_size + i) % wl.test.inputs.num_rows());
        }
        queries.push_back(wl.test.inputs.select_rows(idx));
      }

      serving::ClipperConfig cfg;  // defaults: RPC ~900us + real serialization
      serving::ClipperSim baseline(&python, cfg);
      serving::ClipperSim optimized(&willump, cfg);

      const double base_ms = mean_serve_ms(baseline, queries);
      const double opt_ms = mean_serve_ms(optimized, queries);
      table.print_row({name, fmt("%.0f", static_cast<double>(batch_size)),
                       fmt("%.2f", base_ms), fmt("%.2f", opt_ms),
                       fmt("%.2fx", base_ms / opt_ms)});
    }
  }

  // ---- One frontend hosting both optimized models (the fleet shape). ----
  std::printf("\nMulti-model frontend: one Clipper hosting product + toxic "
              "(Willump-optimized), interleaved batch-10 streams\n\n");
  {
    const auto product_wl = make_workload("product");
    const auto toxic_wl = make_workload("toxic");
    const auto product_opt = optimize(product_wl, cascades_config());
    const auto toxic_opt = optimize(toxic_wl, cascades_config());

    serving::ClipperConfig cfg;
    serving::ClipperSim clipper(cfg);
    clipper.add_model("product", &product_opt);
    clipper.add_model("toxic", &toxic_opt);

    const std::size_t n_queries = smoke() ? 4 : 30;
    const std::size_t batch_size = 10;
    auto cut = [&](const workloads::Workload& wl, std::size_t q) {
      std::vector<std::size_t> idx;
      for (std::size_t i = 0; i < batch_size; ++i) {
        idx.push_back((q * batch_size + i) % wl.test.inputs.num_rows());
      }
      return wl.test.inputs.select_rows(idx);
    };

    double product_secs = 0.0, toxic_secs = 0.0;
    common::Timer wall;
    for (std::size_t q = 0; q < n_queries; ++q) {
      product_secs += clipper.serve_timed("product", cut(product_wl, q));
      toxic_secs += clipper.serve_timed("toxic", cut(toxic_wl, q));
    }
    const double secs = wall.elapsed_seconds();

    TablePrinter multi({"model", "rows", "mean_ms/query", "inference_s"}, 16);
    multi.print_header();
    const std::pair<const char*, double> streams[] = {
        {"product", product_secs}, {"toxic", toxic_secs}};
    for (const auto& [name, model_secs] : streams) {
      const auto ms = clipper.server().stats(name);
      multi.print_row(
          {name, fmt("%.0f", static_cast<double>(ms.rows)),
           fmt("%.2f", model_secs * 1e3 / static_cast<double>(n_queries)),
           fmt("%.3f", ms.inference_seconds)});
    }
    std::printf("\naggregate: %zu queries over both models in %.2f s "
                "(%.0f rows/s) through one registry\n",
                2 * n_queries, secs,
                static_cast<double>(2 * n_queries * batch_size) / secs);
  }

  std::printf(
      "\nPaper shape: 1.7-2.7x at batch size 1 growing to 3.0-6.8x at batch\n"
      "size 100; gains are smaller than single-node speedups because Clipper's\n"
      "serialization overhead is not Willump-reducible.\n");
  return 0;
}
