// Table 4: top-K (K=100) query performance and accuracy with automatically
// constructed filter models. For each benchmark except Tracking (whose
// top-K is ill-defined — many elements have positive-class probability ~1):
// Python / compiled / compiled+filtered throughput, plus precision, mAP,
// and average value of the filtered top-K relative to the unoptimized
// (full-model) query. Lookup workloads store tables remotely.

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Top-K (K=100) filter models", "Willump paper, Table 4");
  TablePrinter table({"benchmark", "py_tput", "c_tput", "filt_tput", "precision",
                      "mAP", "avg_value", "full_avg"},
                     12);
  table.print_header();

  constexpr std::size_t kK = 100;
  for (const auto& name :
       {std::string("product"), std::string("toxic"), std::string("price"),
        std::string("music"), std::string("credit")}) {
    auto wl = make_workload(name, topk_batch_rows());
    if (wl.tables) wl.tables->set_network(workloads::default_remote_network());

    const auto& batch = wl.test.inputs;
    const std::size_t rows = batch.num_rows();

    const auto python = optimize(wl, python_config());
    core::OptimizeOptions filt_opts;
    filt_opts.topk_filter = true;
    const auto filtered = optimize(wl, filt_opts);

    // Exact top-K reference: the unoptimized query (full model on all rows).
    const auto full_scores = filtered.predict_full(batch);
    const auto exact = models::top_k_indices(full_scores, kK);

    const double py_tput = throughput_rows_per_sec(rows, 2, [&] {
      (void)models::top_k_indices(python.predict(batch), kK);
    });
    const double c_tput = throughput_rows_per_sec(rows, 2, [&] {
      (void)models::top_k_indices(filtered.predict_full(batch), kK);
    });
    std::vector<std::size_t> predicted;
    const double f_tput = throughput_rows_per_sec(
        rows, 2, [&] { predicted = filtered.top_k(batch, kK); });

    const auto acc = topk_accuracy(predicted, exact, full_scores);
    const double full_avg = models::average_value(exact, full_scores);

    table.print_row({name, fmt("%.0f", py_tput), fmt("%.0f", c_tput),
                     fmt("%.0f", f_tput), fmt("%.2f", acc.precision),
                     fmt("%.2f", acc.map), fmt("%.4f", acc.average_value),
                     fmt("%.4f", full_avg)});
  }

  std::printf(
      "\nPaper shape: filtering improves top-K throughput 1.3-5.8x over\n"
      "compiled; precision 0.49-1.0 and mAP 0.28-1.0 relative to the exact\n"
      "query, with the average value of the predicted top-100 within ~0.03%%\n"
      "of the true top-100 even on the least precise benchmarks.\n");
  return 0;
}
