// Serving-engine throughput/latency across batching policies and the
// multi-model registry. This is the frontend-side experiment the paper's
// Table 6 presupposes: adaptive micro-batching amortizes fixed per-query
// overheads (Clipper, NSDI 2017 §4.3), so throughput at saturation should
// grow with max_batch while batch-size-1 serving pays full per-call
// overhead per row — and the AIMD controller should discover a competitive
// max_batch on its own instead of having it hand-tuned.
//
// The primary workload is Music with remote feature tables (the paper's
// §6.1 setup): every pipeline execution pays one pipelined round trip per
// table regardless of batch size, so coalescing K pointwise queries divides
// the fixed RTT cost by K — the same amortization Tables 3 and 6 measure.
// The multi-model sections co-host Credit (also remote, a different schema
// and cost profile) behind the same registry, the way a Clipper fleet
// serves several workloads from one frontend.
//
// Three sections probe the production-scheduling layer: a two-class SLO
// experiment (a saturating best-effort stream sharing the engine with a
// latency-critical model, SLO-aware priority/EDF dequeue vs the FIFO
// baseline, attainment asserted with the CI-based statistical criterion),
// an overload experiment at 3x saturation (admission control + typed
// shedding over bounded queues vs a no-shedding FIFO engine, with a
// no-blocked-producer watchdog), a replica-scaling experiment (1 vs 3
// execution replicas behind one name over a blocking-sleep remote network,
// where concurrency is real wall-clock overlap even on one core), and an
// autoscale step-load experiment (offered rate steps past one replica's
// capacity: a fixed 1-replica baseline fails the latency-critical CI
// criterion while the embedded controller grows the group, converges, and
// passes — with a resize-count ceiling asserting no oscillation).
//
// `--trend` runs at an intermediate scale and asserts the paper-shaped
// trends (micro-batching >= batch-size-1 at saturation; AIMD-tuned
// multi-model aggregate >= the fixed-cap single-model baseline; SLO
// attainment within CI at FIFO-comparable throughput; under 3x overload
// the shedding engine passes the attainment CI while the FIFO baseline
// fails it and no submit blocks past 1 s; >= 2x throughput from a
// 3-replica group; post-step the fixed arm fails and the autoscaled arm
// passes the attainment CI within the resize ceiling); the nightly ctest
// tier drives it this way.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "serialize/artifact.hpp"
#include "serving/server.hpp"
#include "workloads/traffic.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

constexpr std::uint64_t kSeed = 0x5E21;
constexpr double kZipf = 1.1;

std::string us(double seconds) { return fmt("%.0f", seconds * 1e6); }

serving::ModelConfig fixed_policy(std::size_t max_batch) {
  serving::ModelConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_delay_micros = 0.0;  // closed loop: never hold a partial batch
  return cfg;
}

/// AIMD policy starting from a deliberately small cap: the controller has
/// to *discover* the amortization-friendly batch size online.
serving::ModelConfig aimd_policy() {
  serving::ModelConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay_micros = 0.0;
  cfg.aimd.enabled = true;
  cfg.aimd.slo_micros = 50e3;  // 50 ms batch-latency SLO: generous at bench scale
  cfg.aimd.additive_step = 2;
  cfg.aimd.max_batch = 64;
  return cfg;
}

int failures = 0;

void check_trend(bool ok, const char* what) {
  if (!trend()) return;
  if (!ok) {
    std::printf("TREND VIOLATION: %s\n", what);
    ++failures;
  } else {
    std::printf("trend ok: %s\n", what);
  }
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner(
      "Serving registry: throughput and latency vs batching policy",
      "Clipper-style multi-model frontend for Willump paper, Table 6 setup");

  auto music = make_workload("music");
  music.tables->set_network(workloads::default_remote_network());
  common::Timer train_timer;
  const auto music_pipeline = optimize(music, compiled_config());
  const double music_train_seconds = train_timer.elapsed_seconds();

  auto credit = make_workload("credit");
  credit.tables->set_network(workloads::default_remote_network());
  const auto credit_pipeline = optimize(credit, compiled_config());

  // ---- Registry cold start: load_model from artifact vs in-process train. --
  //
  // The production deployment question: a serving instance coming up should
  // deserialize trained artifacts, not replay workload generation + model
  // training. The in-process time above includes exactly what an artifact
  // spares a cold registry (feature fitting + model training); the artifact
  // path pays file read + parse + graph/model reconstruction.
  const auto artifact_dir =
      std::filesystem::temp_directory_path() / "willump-bench-artifacts";
  const std::string music_artifact = (artifact_dir / "music.wlmp").string();
  const std::string credit_artifact = (artifact_dir / "credit.wlmp").string();
  serialize::save_pipeline(music_pipeline, music_artifact);
  serialize::save_pipeline(credit_pipeline, credit_artifact);

  std::printf("\nRegistry cold start (music): artifact load vs in-process "
              "train\n\n");
  TablePrinter cold({"path", "seconds", "speedup"}, 14);
  cold.print_header();
  common::Timer load_timer;
  {
    serving::Server cold_server(serving::ServerConfig{.num_workers = 0});
    cold_server.load_model("music", music_artifact);
    cold_server.load_model("credit", credit_artifact);
    // One real inference proves the loaded registry serves, and keeps lazy
    // costs inside the measured window.
    (void)cold_server.predict_batch("music", music.test.inputs.row(0));
  }
  const double cold_load_seconds = load_timer.elapsed_seconds();
  cold.print_row({"in-process train", fmt("%.3f", music_train_seconds), "1.0x"});
  cold.print_row({"load_model x2 + first predict", fmt("%.3f", cold_load_seconds),
                  fmt("%.1fx", cold_load_seconds > 0.0
                                   ? music_train_seconds / cold_load_seconds
                                   : 0.0)});
  std::printf("\nartifact sizes: music %.0f KiB, credit %.0f KiB\n",
              static_cast<double>(
                  std::filesystem::file_size(music_artifact)) / 1024.0,
              static_cast<double>(
                  std::filesystem::file_size(credit_artifact)) / 1024.0);
  check_trend(cold_load_seconds < music_train_seconds,
              "registry cold start from artifacts beats in-process training");

  const std::size_t clients = smoke() ? 4 : 16;
  const std::size_t queries_per_client = smoke() ? 10 : (trend() ? 100 : 200);

  // ---- Closed loop, one model: fixed policies vs the AIMD controller. ----
  std::printf("\nClosed loop (music): %zu clients x %zu queries, 2 workers, "
              "drain-only flush\n\n",
              clients, queries_per_client);
  TablePrinter closed(
      {"policy", "qps", "p50_us", "p99_us", "mean_batch", "final_cap"}, 13);
  closed.print_header();

  struct Policy {
    const char* label;
    serving::ModelConfig cfg;
  };
  const std::vector<Policy> policies = {
      {"batch-1", fixed_policy(1)},
      {"batch-16", fixed_policy(16)},
      {"batch-32", fixed_policy(32)},
      {"aimd", aimd_policy()},
  };

  double batch1_qps = 0.0, fixed16_qps = 0.0, best_micro_qps = 0.0,
         capacity_qps = 0.0;
  for (const auto& p : policies) {
    serving::ServerConfig cfg;
    cfg.num_workers = 2;
    serving::Server server(&music_pipeline, cfg, p.cfg);
    // Warmup one round so lazy one-time costs stay out of the measurement.
    (void)workloads::run_closed_loop(server, music, clients, 2, kZipf, kSeed);
    const auto res = workloads::run_closed_loop(
        server, music, clients, queries_per_client, kZipf, kSeed);
    closed.print_row(
        {p.label, fmt("%.0f", res.achieved_qps), us(res.latency.median),
         us(res.latency.p99), fmt("%.1f", res.mean_batch_rows),
         fmt("%.0f", static_cast<double>(server.current_max_batch("default")))});
    if (std::string_view(p.label) == "batch-1") batch1_qps = res.achieved_qps;
    if (std::string_view(p.label) == "batch-16") fixed16_qps = res.achieved_qps;
    if (std::string_view(p.label) != "batch-1") {
      best_micro_qps = std::max(best_micro_qps, res.achieved_qps);
    }
    capacity_qps = std::max(capacity_qps, res.achieved_qps);
  }
  std::printf("\nmicro-batching speedup at saturation (best vs batch-1): "
              "%.2fx\n",
              batch1_qps > 0.0 ? best_micro_qps / batch1_qps : 0.0);

  // ---- Closed loop, two models behind one registry, AIMD everywhere. ----
  std::printf("\nMulti-model closed loop: music + credit, %zu clients each, "
              "2 workers, AIMD-tuned caps\n\n",
              clients);
  {
    serving::ServerConfig cfg;
    cfg.num_workers = 2;
    serving::Server server(cfg);
    server.register_model("music", &music_pipeline, aimd_policy());
    server.register_model("credit", &credit_pipeline, aimd_policy());

    std::vector<workloads::ModelTraffic> mix(2);
    mix[0] = {.model = "music", .wl = &music, .zipf_s = kZipf, .weight = 1.0,
              .clients = clients};
    mix[1] = {.model = "credit", .wl = &credit, .zipf_s = kZipf, .weight = 1.0,
              .clients = clients};
    (void)workloads::run_mixed_closed_loop(server, mix, 2, kSeed);  // warmup
    server.reset_stats();
    const auto res =
        workloads::run_mixed_closed_loop(server, mix, queries_per_client, kSeed);

    TablePrinter multi({"model", "qps", "p50_us", "p99_us", "mean_batch",
                        "final_cap", "stolen"},
                       12);
    multi.print_header();
    for (const auto& [name, r] : res.per_model) {
      const auto ms = server.stats(name);
      multi.print_row({name, fmt("%.0f", r.achieved_qps),
                       us(r.latency.median), us(r.latency.p99),
                       fmt("%.1f", r.mean_batch_rows),
                       fmt("%.0f", static_cast<double>(ms.current_max_batch)),
                       fmt("%.0f", static_cast<double>(ms.stolen_batches))});
    }
    multi.print_row({"aggregate", fmt("%.0f", res.aggregate.achieved_qps),
                     us(res.aggregate.latency.median),
                     us(res.aggregate.latency.p99),
                     fmt("%.1f", res.aggregate.mean_batch_rows), "-", "-"});

    // The acceptance trend: a registry serving two models with AIMD-tuned
    // caps should not lose to the old hand-tuned single-model engine. The
    // 0.95 factor absorbs scheduler noise on small CI machines; the
    // expected margin is well above it (credit rows are cheaper than music
    // rows, and the caps converge high).
    check_trend(res.aggregate.achieved_qps >= 0.95 * fixed16_qps,
                "AIMD multi-model aggregate qps >= fixed-batch-16 "
                "single-model baseline");
  }

  // ---- Open loop: mixed Poisson arrivals at fractions of capacity. ----
  const std::size_t n_open = smoke() ? 40 : (trend() ? 600 : 1500);
  std::printf("\nMixed open loop: Poisson arrivals routed 60/40 music/credit, "
              "Zipf(s=%.1f) entities, %zu queries per point, async "
              "completions\n\n",
              kZipf, n_open);
  TablePrinter open({"model", "offered_qps", "achieved", "p50_us", "p99_us",
                     "mean_batch"},
                    13);
  open.print_header();

  for (double frac : {0.5, 1.2}) {
    const double qps = std::max(2.0, capacity_qps * frac);
    serving::ServerConfig cfg;
    cfg.num_workers = 2;
    auto open_policy = aimd_policy();
    // A small flush window lets under-loaded arrivals coalesce without
    // adding visible idle latency at this timescale.
    open_policy.max_delay_micros = 200.0;
    serving::Server server(cfg);
    server.register_model("music", &music_pipeline, open_policy);
    server.register_model("credit", &credit_pipeline, open_policy);

    std::vector<workloads::ModelTraffic> mix(2);
    mix[0] = {.model = "music", .wl = &music, .zipf_s = kZipf, .weight = 0.6,
              .clients = 0};
    mix[1] = {.model = "credit", .wl = &credit, .zipf_s = kZipf, .weight = 0.4,
              .clients = 0};
    const auto res =
        workloads::run_mixed_open_loop(server, mix, n_open, qps, kSeed);
    for (const auto& [name, r] : res.per_model) {
      open.print_row({name, fmt("%.0f", r.offered_qps),
                      fmt("%.0f", r.achieved_qps), us(r.latency.median),
                      us(r.latency.p99), fmt("%.1f", r.mean_batch_rows)});
    }
    open.print_row({"aggregate", fmt("%.0f", res.aggregate.offered_qps),
                    fmt("%.0f", res.aggregate.achieved_qps),
                    us(res.aggregate.latency.median),
                    us(res.aggregate.latency.p99),
                    fmt("%.1f", res.aggregate.mean_batch_rows)});
  }

  // ---- Hot reload: swap_model under open-loop load, zero dropped requests. --
  //
  // A model version rollout must not shed traffic: requests in flight finish
  // on the version they started on, later requests run the new one, and the
  // queue/batching/AIMD state carries across the swap.
  {
    const std::size_t n_swap = smoke() ? 40 : (trend() ? 400 : 1000);
    const double qps = std::max(2.0, 0.6 * capacity_qps);
    serving::ServerConfig cfg;
    cfg.num_workers = 2;
    serving::Server server(cfg);
    auto policy = aimd_policy();
    policy.max_delay_micros = 200.0;
    server.load_model("music", music_artifact, policy);

    std::atomic<bool> stop{false};
    std::size_t swaps = 0;
    std::thread swapper([&] {
      // Alternate between the artifact-loaded version and the in-process
      // pipeline for the duration of the run.
      bool use_artifact = false;
      while (!stop.load(std::memory_order_acquire)) {
        if (use_artifact) {
          server.swap_model("music", music_artifact);
        } else {
          server.swap_model(
              "music", std::shared_ptr<const core::OptimizedPipeline>(
                           &music_pipeline, [](const core::OptimizedPipeline*) {}));
        }
        use_artifact = !use_artifact;
        ++swaps;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    const auto res =
        workloads::run_open_loop(server, "music", music, n_swap, qps, kZipf,
                                 kSeed ^ 0x5A5A);
    stop.store(true, std::memory_order_release);
    swapper.join();
    server.shutdown();

    std::printf("\nHot reload under open loop (music @ %.0f qps): %zu queries, "
                "%zu swaps, completed %zu, errors %zu, p99 %s us\n",
                qps, n_swap, swaps, res.completed, res.errors,
                us(res.latency.p99).c_str());
    check_trend(res.completed == n_swap && res.errors == 0,
                "swap_model under open-loop load drops no requests");
  }

  // ---- Two-class SLO scheduling: latency-critical vs saturating batch. ---
  //
  // The isolation question behind per-model SLO classes: when a best-effort
  // model saturates the engine, does a latency-critical model sharing the
  // process still meet its deadline — without giving up aggregate
  // throughput? Run the identical mixed open-loop load under the legacy
  // FIFO/steal scheduler and under SLO-aware priority/EDF dequeue.
  {
    // Calibrate the deadline to this machine: the non-preemptive bound is
    // one in-flight best-effort batch; grant ~30 batch-times of headroom.
    common::Timer calib;
    (void)music_pipeline.predict(music.test.inputs.select_rows(
        std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
    const double music_batch_seconds = std::max(1e-4, calib.elapsed_seconds());
    const double deadline_micros =
        std::max(50e3, 30.0 * music_batch_seconds * 1e6);
    const std::size_t n_slo = smoke() ? 60 : (trend() ? 500 : 1200);
    const double slo_qps = std::max(4.0, 1.5 * capacity_qps);

    std::printf("\nTwo-class SLO scheduling: music best-effort (saturating, "
                "80%% of %0.f qps) + credit latency-critical (deadline "
                "%.0f ms), 2 workers\n\n",
                slo_qps, deadline_micros / 1e3);
    TablePrinter slo_table({"scheduler", "model", "achieved", "p50_us",
                            "p99_us", "attainment"},
                           13);
    slo_table.print_header();

    double fifo_agg_qps = 0.0, slo_agg_qps = 0.0;
    double critical_attainment = 0.0;
    std::size_t critical_completed = 0;
    for (const bool slo_scheduling : {false, true}) {
      serving::ServerConfig cfg;
      cfg.num_workers = 2;
      cfg.slo_scheduling = slo_scheduling;
      serving::Server server(cfg);

      serving::ModelConfig best_effort = aimd_policy();
      best_effort.slo = serving::SloClass::best_effort();
      best_effort.max_delay_micros = 200.0;
      serving::ModelConfig critical = aimd_policy();
      critical.aimd.slo_micros = 0.0;  // derive the batch target from the class
      critical.slo = serving::SloClass::latency_critical(deadline_micros);
      critical.max_delay_micros = 200.0;
      server.register_model("music", &music_pipeline, best_effort);
      server.register_model("credit", &credit_pipeline, critical);

      std::vector<workloads::ModelTraffic> mix(2);
      mix[0] = {.model = "music", .wl = &music, .zipf_s = kZipf, .weight = 0.8,
                .clients = 0, .deadline_micros = 0.0};
      mix[1] = {.model = "credit", .wl = &credit, .zipf_s = kZipf,
                .weight = 0.2, .clients = 0,
                .deadline_micros = deadline_micros};
      const auto res =
          workloads::run_mixed_open_loop(server, mix, n_slo, slo_qps, kSeed);

      const char* label = slo_scheduling ? "slo-edf" : "fifo";
      for (const auto& [name, r] : res.per_model) {
        slo_table.print_row(
            {label, name, fmt("%.0f", r.achieved_qps), us(r.latency.median),
             us(r.latency.p99),
             r.deadline_micros > 0.0 ? fmt("%.3f", r.attainment())
                                     : std::string("-")});
      }
      if (slo_scheduling) {
        slo_agg_qps = res.aggregate.achieved_qps;
        critical_attainment = res.per_model[1].second.attainment();
        critical_completed = res.per_model[1].second.completed;
      } else {
        fifo_agg_qps = res.aggregate.achieved_qps;
      }
    }

    // p99-within-deadline, asserted statistically: the attainment over the
    // run must be consistent with a 0.99 hit rate at this sample size
    // (the paper's §6.3 CI acceptance rule applied to latency SLOs).
    check_trend(critical_attainment >= 0.99 ||
                    common::accuracy_within_ci95(critical_attainment, 0.99,
                                                 critical_completed),
                "latency-critical p99 meets its deadline under saturating "
                "best-effort load (CI criterion)");
    check_trend(slo_agg_qps >= 0.9 * fifo_agg_qps,
                "SLO-aware scheduling keeps aggregate throughput within 10% "
                "of the FIFO baseline");
  }

  // ---- Overload: admission control + typed shedding vs naive FIFO. -------
  //
  // Past saturation the question is no longer "who goes first" but "what
  // happens to the excess". The baseline engine (legacy FIFO/steal
  // scheduler, no load control, unbounded queues) accepts everything: the
  // backlog grows for the whole run and the latency-critical class misses
  // its deadline wholesale. The load-controlled engine (SLO-aware dequeue
  // plus the admission -> shed -> expire pipeline over bounded queues)
  // sheds the excess with typed rejections and keeps the critical class's
  // attainment statistically at target — and no submit ever blocks: the
  // old blocking push would park the open-loop dispatcher behind the
  // saturated queue, which the max-submit watchdog asserts cannot happen.
  {
    common::Timer calib;
    (void)music_pipeline.predict(music.test.inputs.select_rows(
        std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                 13, 14, 15}));
    const double batch16_seconds = std::max(1e-4, calib.elapsed_seconds());
    // Tight enough that the FIFO backlog (the best-effort stream drains
    // for many tens of milliseconds ahead of the critical queue) blows it,
    // generous enough that priority dequeue + shedding (critical wait ~
    // one in-flight batch) meets it with two orders of magnitude to spare.
    const double over_deadline_micros =
        std::max(20e3, 10.0 * batch16_seconds * 1e6);
    const std::size_t n_over = smoke() ? 60 : (trend() ? 2500 : 5000);
    const double over_qps = std::max(6.0, 3.0 * fixed16_qps);

    std::printf("\nOverload (3x saturation): music best-effort (85%% of "
                "%.0f qps) + credit latency-critical (deadline %.0f ms), "
                "1 worker, fixed batch cap 16\n\n",
                over_qps, over_deadline_micros / 1e3);
    TablePrinter over_table({"engine", "model", "achieved", "p99_us",
                             "attainment", "shed", "expired", "max_submit_s"},
                            13);
    over_table.print_header();

    double fifo_attainment = 0.0, shed_attainment = 0.0;
    std::size_t fifo_critical_n = 0, shed_critical_n = 0;
    double worst_submit_seconds = 0.0;
    for (const bool shedding : {false, true}) {
      serving::ServerConfig cfg;
      // One worker makes the schedule maximally contended: the legacy
      // scheduler homes it on the first-registered (best-effort) model and
      // only visits the critical queue when that queue is momentarily
      // empty — which a 3x stream never allows. With two workers each
      // model gets a home worker and even FIFO hides the overload.
      cfg.num_workers = 1;
      cfg.slo_scheduling = shedding;  // baseline arm: legacy FIFO/steal
      serving::Server server(cfg);

      serving::ModelConfig best_effort = fixed_policy(16);
      best_effort.slo = serving::SloClass::best_effort();
      best_effort.max_delay_micros = 200.0;
      serving::ModelConfig critical = fixed_policy(16);
      critical.slo = serving::SloClass::latency_critical(over_deadline_micros);
      critical.max_delay_micros = 200.0;
      if (shedding) {
        best_effort.queue_capacity = 32;  // ~2 batches of backlog, then shed
        best_effort.load_control.enabled = true;
        critical.queue_capacity = 64;
        critical.load_control.enabled = true;
      }
      server.register_model("music", &music_pipeline, best_effort);
      server.register_model("credit", &credit_pipeline, critical);

      std::vector<workloads::ModelTraffic> mix(2);
      mix[0] = {.model = "music", .wl = &music, .zipf_s = kZipf,
                .weight = 0.85, .clients = 0, .deadline_micros = 0.0};
      mix[1] = {.model = "credit", .wl = &credit, .zipf_s = kZipf,
                .weight = 0.15, .clients = 0,
                .deadline_micros = over_deadline_micros};
      const auto res =
          workloads::run_mixed_open_loop(server, mix, n_over, over_qps, kSeed);

      const char* label = shedding ? "slo-edf+shed" : "fifo";
      for (const auto& [name, r] : res.per_model) {
        over_table.print_row(
            {label, name, fmt("%.0f", r.achieved_qps), us(r.latency.p99),
             r.deadline_micros > 0.0 ? fmt("%.3f", r.attainment())
                                     : std::string("-"),
             fmt("%.0f", static_cast<double>(r.rejected)),
             fmt("%.0f", static_cast<double>(r.expired)),
             fmt("%.3f", r.max_submit_seconds)});
      }
      worst_submit_seconds =
          std::max(worst_submit_seconds, res.aggregate.max_submit_seconds);
      const auto& critical_res = res.per_model[1].second;
      if (shedding) {
        shed_attainment = critical_res.attainment();
        shed_critical_n = critical_res.completed + critical_res.expired;
        std::printf("\nshed arm: aggregate shed rate %.2f, recommended "
                    "replicas music=%zu credit=%zu\n",
                    res.aggregate.shed_rate(),
                    server.recommended_replicas("music"),
                    server.recommended_replicas("credit"));
      } else {
        fifo_attainment = critical_res.attainment();
        fifo_critical_n = critical_res.completed + critical_res.expired;
      }
    }

    // The overload acceptance pair, both via the §6.3 CI criterion: the
    // no-shedding FIFO baseline must FAIL the attainment target (proof the
    // load genuinely breaks a naive engine) while the load-controlled
    // engine passes it on the same stream.
    check_trend(!(fifo_attainment >= 0.99 ||
                  common::accuracy_within_ci95(fifo_attainment, 0.99,
                                               std::max<std::size_t>(
                                                   fifo_critical_n, 1))),
                "no-shedding FIFO baseline fails the latency-critical "
                "attainment target at 3x load (CI criterion)");
    check_trend(shed_attainment >= 0.99 ||
                    common::accuracy_within_ci95(shed_attainment, 0.99,
                                                 std::max<std::size_t>(
                                                     shed_critical_n, 1)),
                "admission control + typed shedding keeps latency-critical "
                "attainment at target under the same 3x load (CI criterion)");
    check_trend(worst_submit_seconds < 1.0,
                "no submit blocked past the 1 s producer watchdog in either "
                "arm");
  }

  // ---- Replica scaling: 1 vs 3 execution replicas behind one name. ------
  //
  // A replica runs one batch at a time (the Clipper model-container
  // execution model); N replicas admit N concurrent batches, balanced by
  // least outstanding requests. Over a *blocking* remote network (the
  // fetch sleeps instead of spinning, as a real remote store would) the
  // concurrency is real wall-clock overlap even on a single core, so a
  // 3-replica group should approach 3x the 1-replica throughput.
  {
    // A 4 ms RTT keeps the batch dominated by the (overlappable) remote
    // wait rather than by local compute, which serializes on few-core
    // machines and would otherwise cap the measurable replica speedup. A
    // small fixed cap with plenty of closed-loop clients keeps batches
    // full in both arms — otherwise the 1-replica baseline amortizes each
    // round trip over a deeper backlog and the ratio understates the
    // concurrency win.
    music.tables->set_network(store::NetworkModel{
        .rtt_micros = 4000.0, .per_key_micros = 1.0, .blocking = true});
    const std::size_t rep_clients = smoke() ? 6 : 16;
    const std::size_t rep_queries = smoke() ? 8 : (trend() ? 40 : 80);
    std::printf("\nReplica scaling (music, blocking 4 ms RTT): %zu clients x "
                "%zu queries, 4 workers, fixed batch cap 4\n\n",
                rep_clients, rep_queries);
    TablePrinter rep_table({"replicas", "qps", "p50_us", "p99_us",
                            "mean_batch", "speedup"},
                           13);
    rep_table.print_header();

    double one_replica_qps = 0.0, three_replica_qps = 0.0;
    for (const std::size_t replicas : {std::size_t{1}, std::size_t{3}}) {
      serving::ServerConfig cfg;
      cfg.num_workers = 4;
      serving::Server server(cfg);
      serving::ModelConfig mc = fixed_policy(4);
      mc.replicas = replicas;
      server.register_model("music", &music_pipeline, mc);
      (void)workloads::run_closed_loop(server, "music", music, rep_clients, 2,
                                       kZipf, kSeed);  // warmup
      const auto res = workloads::run_closed_loop(
          server, "music", music, rep_clients, rep_queries, kZipf, kSeed);
      if (replicas == 1) one_replica_qps = res.achieved_qps;
      if (replicas == 3) three_replica_qps = res.achieved_qps;
      rep_table.print_row(
          {fmt("%.0f", static_cast<double>(replicas)),
           fmt("%.0f", res.achieved_qps), us(res.latency.median),
           us(res.latency.p99), fmt("%.1f", res.mean_batch_rows),
           fmt("%.2fx", one_replica_qps > 0.0
                            ? res.achieved_qps / one_replica_qps
                            : 0.0)});
    }
    check_trend(three_replica_qps >= 2.0 * one_replica_qps,
                "3-replica group >= 2x the 1-replica throughput");
  }

  // ---- Autoscale under a step load: fixed 1 replica vs the closed loop. --
  //
  // The question the controller exists to answer: when the offered rate
  // steps past one replica's capacity, does the engine converge to a group
  // size that meets the latency-critical deadline — without oscillating?
  // Both arms ride the same blocking remote network as the replica-scaling
  // section (still installed), so extra replicas buy real wall-clock
  // overlap. The fixed arm is the FIFO baseline: one replica forever. The
  // autoscaled arm starts at one replica with the controller enabled; the
  // step phase is an unmeasured transition window, and only the tail phase
  // is judged by the CI criterion.
  {
    common::Timer cap_timer;
    (void)music_pipeline.predict(music.test.inputs.select_rows(
        std::vector<std::size_t>{0, 1, 2, 3}));
    const double batch4_seconds = std::max(1e-4, cap_timer.elapsed_seconds());
    const double replica_qps = 4.0 / batch4_seconds;
    const double warm_qps = 0.5 * replica_qps;
    const double step_qps = 2.5 * replica_qps;
    const double as_deadline_micros =
        std::max(50e3, 10.0 * batch4_seconds * 1e6);
    const std::size_t n_warm = smoke() ? 20 : (trend() ? 150 : 300);
    const std::size_t n_step = smoke() ? 20 : (trend() ? 400 : 800);
    const std::size_t n_meas = smoke() ? 20 : (trend() ? 400 : 800);

    std::printf("\nAutoscale step load (music, blocking 4 ms RTT): %.0f qps "
                "warm, step to %.0f qps (~2.5x one replica), deadline "
                "%.0f ms, 4 workers\n\n",
                warm_qps, step_qps, as_deadline_micros / 1e3);
    TablePrinter as_table({"arm", "achieved", "attainment", "shed",
                           "replicas", "ups", "downs"},
                          12);
    as_table.print_header();

    double fixed_att = 0.0, scaled_att = 0.0;
    std::size_t fixed_n = 0, scaled_n = 0;
    std::size_t scale_ups = 0, scale_downs = 0, final_replicas = 1;
    for (const bool autoscaled : {false, true}) {
      serving::ServerConfig cfg;
      cfg.num_workers = 4;
      if (autoscaled) {
        cfg.autoscale.enabled = true;
        cfg.autoscale.interval_micros = 10e3;
        cfg.autoscale.max_replicas = 4;
        cfg.autoscale.scale_up_streak = 2;
        cfg.autoscale.cooldown_micros = 40e3;
        cfg.autoscale.min_observations = 5;
      }
      serving::Server server(cfg);
      serving::ModelConfig mc = fixed_policy(4);
      mc.max_delay_micros = 500.0;
      mc.slo = serving::SloClass::latency_critical(as_deadline_micros);
      if (autoscaled) {
        // Bounded queue + admission control: the transition window sheds
        // with typed rejections instead of banking an unbounded backlog,
        // and the controller reads the LoadController it feeds.
        mc.queue_capacity = 64;
        mc.load_control.enabled = true;
      }
      server.register_model("music", &music_pipeline, mc);

      std::vector<workloads::ModelTraffic> mix(1);
      mix[0] = {.model = "music", .wl = &music, .zipf_s = kZipf, .weight = 1.0,
                .clients = 0, .deadline_micros = as_deadline_micros};
      // Warm: under one replica's capacity — estimators fill, the
      // controller holds (already at min_replicas).
      (void)workloads::run_mixed_open_loop(server, mix, n_warm, warm_qps,
                                           kSeed);
      // Step: the controller reacts inside this unmeasured window.
      (void)workloads::run_mixed_open_loop(server, mix, n_step, step_qps,
                                           kSeed + 1);
      // Measured tail at the stepped rate.
      const auto res = workloads::run_mixed_open_loop(server, mix, n_meas,
                                                      step_qps, kSeed + 2);

      const auto stats = server.stats("music");
      const std::size_t replicas = server.replica_count("music");
      const auto& r = res.per_model[0].second;
      as_table.print_row(
          {autoscaled ? "autoscaled" : "fixed-1", fmt("%.0f", r.achieved_qps),
           fmt("%.3f", r.attainment()),
           fmt("%.0f", static_cast<double>(r.rejected)),
           fmt("%.0f", static_cast<double>(replicas)),
           fmt("%.0f", static_cast<double>(stats.scale_ups)),
           fmt("%.0f", static_cast<double>(stats.scale_downs))});
      if (autoscaled) {
        scaled_att = r.attainment();
        scaled_n = r.completed + r.expired;
        scale_ups = stats.scale_ups;
        scale_downs = stats.scale_downs;
        final_replicas = replicas;
      } else {
        fixed_att = r.attainment();
        fixed_n = r.completed + r.expired;
      }
      server.shutdown();
    }
    // Stable one-line resize report (the CI job summary greps this).
    std::printf("\nautoscale resizes: scale_ups=%zu scale_downs=%zu "
                "final_replicas=%zu\n",
                scale_ups, scale_downs, final_replicas);

    check_trend(!(fixed_att >= 0.99 ||
                  common::accuracy_within_ci95(
                      fixed_att, 0.99, std::max<std::size_t>(fixed_n, 1))),
                "fixed 1-replica baseline fails the latency-critical "
                "attainment target after the load step (CI criterion)");
    check_trend(scaled_att >= 0.99 ||
                    common::accuracy_within_ci95(
                        scaled_att, 0.99, std::max<std::size_t>(scaled_n, 1)),
                "autoscaled group converges and passes the attainment target "
                "on the same step (CI criterion)");
    check_trend(scale_ups >= 1 && final_replicas > 1,
                "the controller actually grew the group after the step");
    check_trend(scale_ups + scale_downs <= 6,
                "resize count stays under the no-oscillation ceiling (<= 6)");
  }

  check_trend(best_micro_qps >= batch1_qps,
              "micro-batching >= batch-size-1 throughput at saturation");

  std::printf(
      "\nExpected shape: at saturation, micro-batching (max_batch >= 16)\n"
      "beats batch-size-1 serving on throughput because per-call overheads\n"
      "(here: one simulated RTT per feature table per pipeline call)\n"
      "amortize over coalesced rows, and the AIMD controller discovers a\n"
      "competitive cap from max_batch=2 without hand-tuning. The registry\n"
      "serves both models concurrently: an idle model's workers steal from\n"
      "the hot model's queue, and the aggregate matches or beats the\n"
      "single-model fixed-cap engine. Open loop: offered rate is tracked\n"
      "below capacity; absolute latencies are noisy on few-core machines.\n"
      "SLO scheduling: the latency-critical class meets its deadline (CI\n"
      "criterion) under a saturating best-effort stream at FIFO-level\n"
      "aggregate throughput. Overload at 3x: the FIFO engine queues the\n"
      "excess and the critical class misses wholesale, while admission\n"
      "control sheds best-effort load with typed rejections, keeps the\n"
      "critical class at target, and never blocks a producer. 3 replicas\n"
      "behind one name deliver >= 2x the 1-replica throughput over the\n"
      "blocking remote network. Step load: the fixed 1-replica arm misses\n"
      "its deadline wholesale after the step, while the autoscaler grows\n"
      "the group under the CI criterion with hysteresis and the measured\n"
      "tail passes at target without resize oscillation.\n");

  if (trend() && failures > 0) {
    std::printf("\n%d trend assertion(s) FAILED\n", failures);
    return 1;
  }
  return 0;
}
