// Serving-engine throughput/latency: closed-loop saturation and open-loop
// (Poisson-arrival, Zipf-entity) sweeps over the request-level engine, by
// batching policy. This is the frontend-side experiment the paper's Table 6
// presupposes: adaptive micro-batching amortizes fixed per-query overheads
// (Clipper, NSDI 2017 §4.3), so throughput at saturation should grow with
// max_batch while batch-size-1 serving pays full per-call overhead per row.
//
// The workload is Music with remote feature tables (the paper's §6.1
// setup): every pipeline execution pays one pipelined round trip per table
// regardless of batch size, so coalescing K pointwise queries divides the
// fixed RTT cost by K — the same amortization Tables 3 and 6 measure.

#include "bench_util.hpp"
#include "serving/server.hpp"
#include "workloads/traffic.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

constexpr std::uint64_t kSeed = 0x5E21;
constexpr double kZipf = 1.1;

struct Policy {
  std::size_t max_batch;
  const char* label;
};

std::string us(double seconds) { return fmt("%.0f", seconds * 1e6); }

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Serving engine: throughput and latency vs batching policy",
               "Clipper-style frontend for Willump paper, Table 6 setup");

  auto wl = make_workload("music");
  wl.tables->set_network(workloads::default_remote_network());
  const auto pipeline = optimize(wl, compiled_config());

  const std::size_t clients = smoke() ? 4 : 16;
  const std::size_t queries_per_client = smoke() ? 10 : 200;
  const std::vector<Policy> policies = {
      {1, "batch-1"}, {16, "batch-16"}, {32, "batch-32"}};

  // ---- Closed loop: self-clocked saturation, per batching policy. ----
  std::printf("\nClosed loop: %zu clients x %zu queries, 2 workers, "
              "drain-only flush\n\n",
              clients, queries_per_client);
  TablePrinter closed({"policy", "qps", "p50_us", "p99_us", "mean_batch"}, 14);
  closed.print_header();

  double batch1_qps = 0.0, best_micro_qps = 0.0, capacity_qps = 0.0;
  for (const auto& p : policies) {
    serving::ServerConfig cfg;
    cfg.num_workers = 2;
    cfg.max_batch = p.max_batch;
    cfg.max_delay_micros = 0.0;  // closed loop: never hold a partial batch
    serving::Server server(&pipeline, cfg);
    // Warmup one round so lazy one-time costs stay out of the measurement.
    (void)workloads::run_closed_loop(server, wl, clients, 2, kZipf, kSeed);
    const auto res = workloads::run_closed_loop(
        server, wl, clients, queries_per_client, kZipf, kSeed);
    closed.print_row({p.label, fmt("%.0f", res.achieved_qps),
                      us(res.latency.median), us(res.latency.p99),
                      fmt("%.1f", res.mean_batch_rows)});
    if (p.max_batch == 1) batch1_qps = res.achieved_qps;
    if (p.max_batch >= 16) best_micro_qps = std::max(best_micro_qps, res.achieved_qps);
    capacity_qps = std::max(capacity_qps, res.achieved_qps);
  }
  std::printf("\nmicro-batching speedup at saturation (max_batch>=16 vs 1): "
              "%.2fx\n",
              batch1_qps > 0.0 ? best_micro_qps / batch1_qps : 0.0);

  // ---- Open loop: Poisson arrivals at fractions of measured capacity. ----
  const std::size_t n_open = smoke() ? 40 : 1500;
  std::printf("\nOpen loop: Poisson arrivals, Zipf(s=%.1f) entities, "
              "%zu queries per point\n\n", kZipf, n_open);
  TablePrinter open({"policy", "offered_qps", "achieved", "p50_us", "p99_us",
                     "mean_batch"},
                    14);
  open.print_header();

  for (const auto& p : {policies.front(), policies.back()}) {
    for (double frac : {0.5, 0.8, 1.2}) {
      const double qps = std::max(1.0, capacity_qps * frac);
      serving::ServerConfig cfg;
      cfg.num_workers = 2;
      cfg.max_batch = p.max_batch;
      // A small flush window lets under-loaded arrivals coalesce without
      // adding visible idle latency at this timescale.
      cfg.max_delay_micros = 200.0;
      serving::Server server(&pipeline, cfg);
      const auto res = workloads::run_open_loop(server, wl, n_open, qps,
                                                kZipf, kSeed);
      open.print_row({p.label, fmt("%.0f", res.offered_qps),
                      fmt("%.0f", res.achieved_qps), us(res.latency.median),
                      us(res.latency.p99), fmt("%.1f", res.mean_batch_rows)});
    }
  }

  std::printf(
      "\nExpected shape: at saturation, micro-batching (max_batch >= 16)\n"
      "beats batch-size-1 serving on throughput because per-call overheads\n"
      "(here: one simulated RTT per feature table per pipeline call)\n"
      "amortize over coalesced rows. Open loop: batch-1 caps out near its\n"
      "closed-loop capacity while micro-batching tracks the offered rate;\n"
      "absolute open-loop latencies are noisy on few-core machines, where\n"
      "the dispatcher competes with spin-waiting workers for CPU.\n");
  return 0;
}
