#pragma once

// Shared harness utilities for the paper-reproduction benchmarks. Each bench
// binary regenerates one table or figure of the Willump paper (see DESIGN.md
// §3 for the experiment index); these helpers provide workload construction
// at "bench scale", timing, and table formatting.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/optimizer.hpp"
#include "models/metrics.hpp"
#include "workloads/credit.hpp"
#include "workloads/music.hpp"
#include "workloads/price.hpp"
#include "workloads/product.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/toxic.hpp"
#include "workloads/tracking.hpp"

namespace willump::bench {

/// Smoke mode: tiny workloads and single-rep timing so CI can drive every
/// bench binary end-to-end in seconds. The numbers it prints are NOT
/// paper-comparable; it only verifies the binaries run. Enabled by the
/// `--smoke` flag or the WILLUMP_BENCH_SMOKE environment variable.
inline bool& smoke_flag() {
  static bool v = std::getenv("WILLUMP_BENCH_SMOKE") != nullptr;
  return v;
}

inline bool smoke() { return smoke_flag(); }

/// Trend mode: run at an intermediate scale and *assert* the paper-shaped
/// trend the bench reproduces (exit non-zero on violation) instead of only
/// printing numbers. This is what the nightly-labeled ctest tier runs —
/// strong enough to catch a regression, cheap enough for CI. Enabled by
/// `--trend` or the WILLUMP_BENCH_TREND environment variable; benches that
/// have no trend assertions ignore it.
inline bool& trend_flag() {
  static bool v = std::getenv("WILLUMP_BENCH_TREND") != nullptr;
  return v;
}

inline bool trend() { return trend_flag(); }

/// Parse shared bench CLI flags (--smoke, --trend), removing the ones
/// recognized here so binaries with their own flag parsing (Google
/// Benchmark) don't see them. Call first in every main().
inline void parse_args(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke_flag() = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--trend") {
      trend_flag() = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;  // restore the argv[argc] == NULL sentinel
}

/// Split sizes used for every workload under smoke mode.
inline workloads::SplitSizes smoke_sizes() {
  return {.train = 600, .valid = 250, .test = 250};
}

/// Build a benchmark workload by name at default (paper-shaped) scale.
/// `test_rows` of 0 keeps each workload's default test-split size; top-K
/// benches pass a large value so that K=100 is small relative to the
/// dataset, as in the paper's evaluation.
inline workloads::Workload make_workload(const std::string& name,
                                         std::size_t test_rows = 0) {
  if (name == "product") {
    workloads::ProductConfig c;
    if (smoke()) c.sizes = smoke_sizes();
    if (test_rows != 0) c.sizes.test = test_rows;
    return workloads::make_product(c);
  }
  if (name == "toxic") {
    workloads::ToxicConfig c;
    if (smoke()) c.sizes = smoke_sizes();
    if (test_rows != 0) c.sizes.test = test_rows;
    return workloads::make_toxic(c);
  }
  if (name == "music") {
    workloads::MusicConfig c;
    if (smoke()) c.sizes = smoke_sizes();
    if (test_rows != 0) c.sizes.test = test_rows;
    return workloads::make_music(c);
  }
  if (name == "credit") {
    workloads::CreditConfig c;
    if (smoke()) c.sizes = smoke_sizes();
    if (test_rows != 0) c.sizes.test = test_rows;
    return workloads::make_credit(c);
  }
  if (name == "price") {
    workloads::PriceConfig c;
    if (smoke()) c.sizes = smoke_sizes();
    if (test_rows != 0) c.sizes.test = test_rows;
    return workloads::make_price(c);
  }
  if (name == "tracking") {
    workloads::TrackingConfig c;
    if (smoke()) c.sizes = smoke_sizes();
    if (test_rows != 0) c.sizes.test = test_rows;
    return workloads::make_tracking(c);
  }
  if (name == "synthetic") {
    workloads::SyntheticParallelConfig c;
    if (smoke()) c.sizes = smoke_sizes();
    return workloads::make_synthetic_parallel(c);
  }
  std::fprintf(stderr, "unknown workload %s\n", name.c_str());
  std::abort();
}

/// Test-batch size used by the top-K benches (Tables 4, 5, 7); shrunk in
/// smoke mode so K=100 queries still fit.
inline std::size_t topk_batch_rows() { return smoke() ? 800 : 8000; }

inline const std::vector<std::string>& all_workloads() {
  static const std::vector<std::string> names{"product", "music",   "toxic",
                                              "credit",  "price",   "tracking"};
  return names;
}

inline const std::vector<std::string>& classification_workloads() {
  static const std::vector<std::string> names{"product", "toxic", "music",
                                              "tracking"};
  return names;
}

/// Median batch throughput (rows/second) of `fn` over `reps` runs processing
/// `rows` rows per run.
inline double throughput_rows_per_sec(std::size_t rows, int reps,
                                      const std::function<void()>& fn) {
  fn();  // warmup
  const double secs = common::time_median_seconds(smoke() ? 1 : reps, fn);
  return static_cast<double>(rows) / secs;
}

/// Median per-query latency in microseconds of `fn` over `reps` runs.
inline double latency_micros(int reps, const std::function<void()>& fn) {
  fn();  // warmup
  return common::time_median_seconds(smoke() ? 1 : reps, fn) * 1e6;
}

/// Mean per-query latency in microseconds over a query stream of `n` calls.
inline double mean_latency_micros(std::size_t n,
                                  const std::function<void(std::size_t)>& fn) {
  common::Timer t;
  for (std::size_t i = 0; i < n; ++i) fn(i);
  return t.elapsed_micros() / static_cast<double>(n);
}

/// Optimize a workload under a given configuration (convenience wrapper).
inline core::OptimizedPipeline optimize(const workloads::Workload& wl,
                                        const core::OptimizeOptions& opts) {
  return core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
}

inline core::OptimizeOptions python_config() {
  core::OptimizeOptions o;
  o.compile = false;
  return o;
}

inline core::OptimizeOptions compiled_config() { return {}; }

inline core::OptimizeOptions cascades_config(double accuracy_target = 0.001) {
  core::OptimizeOptions o;
  o.cascades = true;
  o.cascade_cfg.accuracy_target = accuracy_target;
  return o;
}

/// Accuracy of a predicted top-K against the exact full-model top-K: the
/// three metrics of the paper's Table 4.
struct TopKAccuracy {
  double precision = 0.0;
  double map = 0.0;
  double average_value = 0.0;
};

inline TopKAccuracy topk_accuracy(const std::vector<std::size_t>& predicted,
                                  const std::vector<std::size_t>& exact,
                                  const std::vector<double>& full_scores) {
  return {models::precision_at_k(predicted, exact),
          models::mean_average_precision(predicted, exact),
          models::average_value(predicted, full_scores)};
}

/// Simple fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%-*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int c = 0; c < width_ - 2; ++c) std::printf("-");
      std::printf("  ");
    }
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

inline void print_banner(const char* title, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace willump::bench
