// Table 5: automatically constructed top-K filter models versus random
// sampling on the benchmarks where filter models were least accurate
// (Music, Product, Credit). The sampling ratio is chosen so the sampled
// query costs about the same as the filtered query; the comparison is then
// purely about accuracy at equal compute.

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

constexpr std::size_t kK = 100;

/// Exact top-K over a random sample of the batch of the given ratio.
std::vector<std::size_t> sampled_top_k(const core::OptimizedPipeline& p,
                                       const data::Batch& batch, double ratio,
                                       common::Rng& rng) {
  const std::size_t n = batch.num_rows();
  const auto keep = static_cast<std::size_t>(static_cast<double>(n) / ratio);
  auto perm = rng.permutation(n);
  perm.resize(std::max(keep, kK));
  std::sort(perm.begin(), perm.end());
  const auto scores = p.predict_full(batch.select_rows(perm));
  const auto local = models::top_k_indices(scores, kK);
  std::vector<std::size_t> out;
  out.reserve(local.size());
  for (std::size_t i : local) out.push_back(perm[i]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Filter models vs random sampling", "Willump paper, Table 5");
  TablePrinter table({"metric", "music", "product", "credit"}, 22);
  table.print_header();

  std::vector<std::string> ratio_row{"Sampling Ratio"};
  std::vector<std::string> sp_row{"Sampled Precision"}, fp_row{"Filtered Precision"};
  std::vector<std::string> sm_row{"Sampled mAP"}, fm_row{"Filtered mAP"};
  std::vector<std::string> sa_row{"Sampled Avg Value"}, fa_row{"Filtered Avg Value"};
  std::vector<std::string> ta_row{"True Avg Value"};

  for (const auto& name :
       {std::string("music"), std::string("product"), std::string("credit")}) {
    auto wl = make_workload(name, topk_batch_rows());
    if (wl.tables) wl.tables->set_network(workloads::default_remote_network());
    const auto& batch = wl.test.inputs;
    const std::size_t rows = batch.num_rows();

    core::OptimizeOptions filt_opts;
    filt_opts.topk_filter = true;
    const auto p = optimize(wl, filt_opts);

    const auto full_scores = p.predict_full(batch);
    const auto exact = models::top_k_indices(full_scores, kK);

    // Time the filtered and full queries to derive the equal-cost ratio.
    std::vector<std::size_t> filtered;
    const double filt_tput = throughput_rows_per_sec(
        rows, 2, [&] { filtered = p.top_k(batch, kK); });
    const double full_tput = throughput_rows_per_sec(rows, 2, [&] {
      (void)models::top_k_indices(p.predict_full(batch), kK);
    });
    const double ratio = std::max(1.0, filt_tput / full_tput);

    common::Rng rng(55);
    const auto sampled = sampled_top_k(p, batch, ratio, rng);

    const auto facc = topk_accuracy(filtered, exact, full_scores);
    const auto sacc = topk_accuracy(sampled, exact, full_scores);

    ratio_row.push_back(fmt("%.1fx", ratio));
    sp_row.push_back(fmt("%.2f", sacc.precision));
    fp_row.push_back(fmt("%.2f", facc.precision));
    sm_row.push_back(fmt("%.2f", sacc.map));
    fm_row.push_back(fmt("%.2f", facc.map));
    sa_row.push_back(fmt("%.4f", sacc.average_value));
    fa_row.push_back(fmt("%.4f", facc.average_value));
    ta_row.push_back(fmt("%.4f", models::average_value(exact, full_scores)));
  }

  for (const auto& r : {ratio_row, sp_row, fp_row, sm_row, fm_row, sa_row,
                        fa_row, ta_row}) {
    table.print_row(r);
  }

  std::printf(
      "\nPaper shape: at matched cost, automatically constructed filter\n"
      "models beat random sampling by a wide margin on every metric (e.g.\n"
      "Music precision 0.92 vs 0.30, mAP 0.83 vs 0.04).\n");
  return 0;
}
