// §6.4 "Cascade threshold robustness": pick the cascade threshold on one
// validation set, then evaluate cascade accuracy on a second, disjoint
// validation set. The accuracy loss on the new set should stay within the
// 0.1% target (and within the full model's 95% CI — the paper's
// statistical-significance criterion).

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Cascade threshold robustness across validation sets",
               "Willump paper, §6.4");
  TablePrinter table({"benchmark", "threshold", "acc_valA", "acc_valB",
                      "full_valB", "within_ci"},
                     13);
  table.print_header();

  for (const auto& name : classification_workloads()) {
    auto wl = make_workload(name);
    // Split the validation set in half: A picks the threshold, B audits it.
    const std::size_t n = wl.valid.inputs.num_rows();
    std::vector<std::size_t> ia, ib;
    for (std::size_t i = 0; i < n; ++i) (i % 2 == 0 ? ia : ib).push_back(i);
    core::LabeledData valid_a{wl.valid.inputs.select_rows(ia), {}};
    core::LabeledData valid_b{wl.valid.inputs.select_rows(ib), {}};
    for (std::size_t i : ia) valid_a.targets.push_back(wl.valid.targets[i]);
    for (std::size_t i : ib) valid_b.targets.push_back(wl.valid.targets[i]);

    const auto p = core::WillumpOptimizer::optimize(wl.pipeline, wl.train,
                                                    valid_a, cascades_config());
    if (!p.cascades_enabled()) {
      table.print_row({name, "-", "-", "-", "-", "n/a"});
      continue;
    }

    const double acc_a = models::accuracy(p.predict(valid_a.inputs), valid_a.targets);
    const double acc_b = models::accuracy(p.predict(valid_b.inputs), valid_b.targets);
    const double full_b =
        models::accuracy(p.predict_full(valid_b.inputs), valid_b.targets);
    const bool ok = common::accuracy_within_ci95(acc_b, full_b,
                                                 valid_b.targets.size());
    table.print_row({name, fmt("%.1f", p.cascade().threshold), fmt("%.4f", acc_a),
                     fmt("%.4f", acc_b), fmt("%.4f", full_b), ok ? "yes" : "NO"});
  }

  std::printf(
      "\nPaper shape: thresholds picked on one validation set keep accuracy\n"
      "loss statistically insignificant (within the 95%% CI) on another.\n");
  return 0;
}
