// Figure 7: throughput-versus-accuracy tradeoff of end-to-end cascades on
// the four classification benchmarks, produced by sweeping the cascade
// threshold. The full model (blue circle in the paper) is the high-accuracy,
// low-throughput endpoint; the small model alone (orange X) is the
// low-accuracy, high-throughput endpoint; cascaded models with intermediate
// thresholds trace the curve between them.

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Cascade threshold sweep: throughput vs accuracy",
               "Willump paper, Figure 7");

  for (const auto& name : classification_workloads()) {
    const auto wl = make_workload(name);
    core::OptimizeOptions opts = cascades_config();
    auto p = optimize(wl, opts);
    if (!p.cascades_enabled()) {
      std::printf("\n--- %s: cascades not applicable (no efficient subset)\n",
                  name.c_str());
      continue;
    }

    std::printf("\n--- %s ---\n", name.c_str());
    TablePrinter table({"threshold", "tput(rows/s)", "accuracy", "smallfrac"});
    table.print_header();

    const auto& batch = wl.test.inputs;
    const std::size_t rows = batch.num_rows();

    // Full model endpoint (threshold above 1.0: nothing short-circuits).
    auto eval_at = [&](double threshold, const char* label) {
      core::TrainedCascade c = p.cascade();
      c.threshold = threshold;
      core::CascadeRunStats stats;
      std::vector<double> preds;
      const double tput = throughput_rows_per_sec(rows, 2, [&] {
        stats = {};
        preds = core::cascade_predict(p.executor(), c, batch, {}, &stats);
      });
      table.print_row({label, fmt("%.0f", tput),
                       fmt("%.4f", models::accuracy(preds, wl.test.targets)),
                       fmt("%.2f", stats.short_circuit_rate())});
    };

    eval_at(1.01, "full(o)");
    for (double t = 1.0; t >= 0.5 - 1e-9; t -= 0.1) {
      eval_at(t, fmt("%.1f", t).c_str());
    }
    // Small model alone (threshold 0: every prediction short-circuits;
    // confidence is always > 0).
    eval_at(0.0, "small(x)");
  }

  std::printf(
      "\nPaper shape: high thresholds match full-model accuracy at much\n"
      "higher throughput; accuracy falls off as the threshold decreases; the\n"
      "small model alone is fast but inaccurate.\n");
  return 0;
}
