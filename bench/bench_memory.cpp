// Memory-efficiency benchmark (DESIGN.md §11): the fleet-scale cost axes
// the latency benches don't see. Four sections:
//
//   1. Steady-state allocations/request on the serving path, arena scratch
//      on vs off, with bit-identical predictions either way.
//   2. Per-replica heap cost of loading the same artifact N times with the
//      content-hash intern pool on vs off (CoW fitted state).
//   3. Artifact bytes under the WLMP v4 per-section codecs vs the v3
//      fixed-width layout, for a text pipeline (toxic) and a tables+GBDT
//      pipeline (music).
//   4. Cold-start: pipeline_from_bytes latency on v4 vs v3 artifacts.
//
// Heap accounting replaces the global operator new/delete with counting
// wrappers (glibc malloc_usable_size gives the live-byte delta without a
// size map), so the replica and allocation numbers are deterministic —
// unlike VmRSS, which is printed for context but never asserted on.
//
// `--trend` asserts the floors; the nightly ctest tier drives it this way.
// `--smoke` only proves the binary runs end-to-end.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string>
#include <vector>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#define WILLUMP_HAVE_USABLE_SIZE 1
#else
#define WILLUMP_HAVE_USABLE_SIZE 0
#endif

#include "bench_util.hpp"
#include "core/executors.hpp"
#include "kernels/dispatch.hpp"
#include "serialize/artifact.hpp"
#include "serialize/intern.hpp"

// --- counting heap hooks ---------------------------------------------------
// Replacing the plain forms is sufficient: libstdc++'s default operator
// new[], nothrow and sized variants all forward to these replaceable ones.

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::int64_t> g_live_bytes{0};

std::size_t usable(void* p) {
#if WILLUMP_HAVE_USABLE_SIZE
  return malloc_usable_size(p);
#else
  (void)p;
  return 0;
#endif
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_add(static_cast<std::int64_t>(usable(p)),
                         std::memory_order_relaxed);
  return p;
}

void* operator new(std::size_t n, std::align_val_t al) {
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;  // aligned_alloc contract
  void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded);
  if (p == nullptr) throw std::bad_alloc();
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_add(static_cast<std::int64_t>(usable(p)),
                         std::memory_order_relaxed);
  return p;
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(static_cast<std::int64_t>(usable(p)),
                         std::memory_order_relaxed);
  std::free(p);
}

void operator delete(void* p, std::align_val_t) noexcept { operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  operator delete(p);
}

using namespace willump;
using namespace willump::bench;

namespace {

int failures = 0;

void check_trend(bool ok, const char* what) {
  if (!trend()) return;
  if (!ok) {
    std::printf("TREND VIOLATION: %s\n", what);
    ++failures;
  } else {
    std::printf("trend ok: %s\n", what);
  }
}

std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
std::int64_t live_now() { return g_live_bytes.load(std::memory_order_relaxed); }

/// VmRSS / VmHWM in KiB from /proc/self/status; 0 when unavailable. Context
/// only — assertions use the deterministic hook counters above.
std::size_t proc_status_kib(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t out = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      out = static_cast<std::size_t>(std::strtoull(line + key_len + 1, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return out;
}

double mib(double bytes) { return bytes / (1024.0 * 1024.0); }

/// Section 1: steady-state allocations/request, per-worker arena scratch on
/// vs off. Music is the all-numeric shape (table lookups + GBDT; both the
/// feature assembly and the tree traversal reuse persistent scratch) where
/// the arena path should hit zero heap traffic; toxic materializes a
/// lowercased string column and its n-gram staging per request (strings
/// fundamentally allocate), so its calibrated floor is a halving of the
/// fresh-state count rather than zero.
void bench_allocations(const workloads::Workload& wl,
                       const core::OptimizedPipeline& p, bool expect_zero) {
  std::printf("\n-- %s: allocations per request (arena on vs off) --\n",
              wl.name.c_str());
  const std::size_t n =
      std::min<std::size_t>(wl.test.inputs.num_rows(), smoke() ? 64 : 512);

  // Pre-extract single-row batches so request extraction isn't counted.
  std::vector<data::Batch> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx[] = {i};
    rows.push_back(wl.test.inputs.select_rows(idx));
  }

  std::vector<double> preds_on(n), preds_off(n);
  double out_one[1];

  const auto run = [&](std::vector<double>& preds) {
    for (std::size_t i = 0; i < n; ++i) {
      p.predict_into(rows[i], {out_one, 1});
      preds[i] = out_one[0];
    }
  };

  core::set_request_scratch_enabled(true);
  run(preds_on);  // warmup: faults scratch, grows capacities to steady state
  run(preds_on);
  const std::uint64_t a0 = allocs_now();
  run(preds_on);
  const double arena_per_req =
      static_cast<double>(allocs_now() - a0) / static_cast<double>(n);

  core::set_request_scratch_enabled(false);
  run(preds_off);  // warmup for symmetric treatment
  const std::uint64_t b0 = allocs_now();
  run(preds_off);
  const double plain_per_req =
      static_cast<double>(allocs_now() - b0) / static_cast<double>(n);
  core::set_request_scratch_enabled(true);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (preds_on[i] != preds_off[i]) ++mismatches;
  }

  TablePrinter table({"path", "allocs/request"});
  table.print_header();
  table.print_row({"arena scratch", fmt("%.2f", arena_per_req)});
  table.print_row({"fresh state", fmt("%.2f", plain_per_req)});
  std::printf("parity: %zu mismatched predictions (must be 0)\n", mismatches);

  check_trend(mismatches == 0, "arena-path predictions bit-exact with fresh-state");
  if (expect_zero) {
    check_trend(arena_per_req == 0.0,
                "numeric-pipeline arena path allocation-free per request");
  } else {
    check_trend(arena_per_req <= 0.5 * plain_per_req,
                "text-pipeline arena path <= 50% of fresh-state allocations");
  }
}

/// Section 2: N-replica heap cost. Every replica deserializes the same
/// artifact bytes; with the intern pool on, the heavy fitted state (feature
/// tables, flattened forest) dedups to one live copy, so replicas 2..N pay
/// only their private executor/layout state.
void bench_replicas(const std::vector<std::uint8_t>& artifact) {
  std::printf("\n-- music: per-replica heap (intern pool on vs off) --\n");
  const int n_replicas = 3;

  struct Run {
    std::int64_t one = 0;
    std::int64_t three = 0;
  };
  Run on_run, off_run;

  for (const bool intern_on : {true, false}) {
    serialize::InternPool::set_enabled(intern_on);
    serialize::InternPool::instance().clear();
    std::vector<core::OptimizedPipeline> replicas;
    replicas.reserve(n_replicas);
    const std::int64_t before = live_now();
    replicas.push_back(serialize::pipeline_from_bytes(artifact));
    const std::int64_t one = live_now() - before;
    for (int i = 1; i < n_replicas; ++i) {
      replicas.push_back(serialize::pipeline_from_bytes(artifact));
    }
    const std::int64_t three = live_now() - before;
    (intern_on ? on_run : off_run) = {one, three};
  }
  serialize::InternPool::set_enabled(true);
  serialize::InternPool::instance().clear();

  const auto ratio = [](const Run& r) {
    return r.one > 0 ? static_cast<double>(r.three) / static_cast<double>(r.one)
                     : 0.0;
  };
  TablePrinter table({"intern", "1-replica MiB", "3-replica MiB", "3x/1x"});
  table.print_header();
  table.print_row({"on", fmt("%.2f", mib(static_cast<double>(on_run.one))),
                   fmt("%.2f", mib(static_cast<double>(on_run.three))),
                   fmt("%.2fx", ratio(on_run))});
  table.print_row({"off", fmt("%.2f", mib(static_cast<double>(off_run.one))),
                   fmt("%.2f", mib(static_cast<double>(off_run.three))),
                   fmt("%.2fx", ratio(off_run))});
  std::printf("process VmRSS %.1f MiB, VmHWM %.1f MiB\n",
              static_cast<double>(proc_status_kib("VmRSS")) / 1024.0,
              static_cast<double>(proc_status_kib("VmHWM")) / 1024.0);

  check_trend(on_run.three <= (on_run.one * 3) / 2,
              "3-replica heap <= 1.5x 1-replica with intern pool on");
  check_trend(on_run.three < off_run.three,
              "intern pool strictly cheaper than private copies at 3 replicas");
}

/// Sections 3+4: artifact bytes v4 vs v3, plus cold-start parity. toxic's
/// TF-IDF vocabularies front-code and its index streams delta-encode, so it
/// compresses hard; music is dominated by ~1 MiB of incompressible gaussian
/// table payloads, so its honest floor is modest (ISSUE.md's premise that
/// music carries a TF-IDF vocabulary is wrong — it is tables+GBDT — and the
/// floors below are calibrated to what the codecs actually achieve).
void bench_artifact(const workloads::Workload& wl,
                    const core::OptimizedPipeline& p, double max_ratio,
                    std::vector<std::uint8_t>* v4_out = nullptr) {
  std::printf("\n-- %s: artifact bytes + cold start (v4 codecs vs v3) --\n",
              wl.name.c_str());
  const std::vector<std::uint8_t> v4 = serialize::pipeline_to_bytes(p);
  const std::vector<std::uint8_t> v3 = serialize::pipeline_to_bytes(p, 3);
  const double ratio =
      static_cast<double>(v4.size()) / static_cast<double>(v3.size());

  core::OptimizedPipeline from_v3 = serialize::pipeline_from_bytes(v3);
  core::OptimizedPipeline from_v4 = serialize::pipeline_from_bytes(v4);
  // Cold start is compared in *thread CPU time*, interleaved, min-of-reps:
  // the full ctest tree runs this bench alongside 8-way suites, where wall
  // clock inflates ~6x with scheduler noise that lands asymmetrically on
  // the two arms. CPU time measures the decode work itself.
  const int reps = smoke() ? 1 : 9;
  double load_v3 = 1e300;
  double load_v4 = 1e300;
  const auto cpu_load_micros = [](const std::vector<std::uint8_t>& bytes) {
    timespec t0, t1;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
    (void)serialize::pipeline_from_bytes(bytes);
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
    return static_cast<double>(t1.tv_sec - t0.tv_sec) * 1e6 +
           static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-3;
  };
  for (int r = 0; r < reps; ++r) {
    load_v3 = std::min(load_v3, cpu_load_micros(v3));
    load_v4 = std::min(load_v4, cpu_load_micros(v4));
  }

  const std::vector<double> ref = p.predict(wl.test.inputs);
  const std::vector<double> got_v3 = from_v3.predict(wl.test.inputs);
  const std::vector<double> got_v4 = from_v4.predict(wl.test.inputs);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i] != got_v3[i] || ref[i] != got_v4[i]) ++mismatches;
  }

  TablePrinter table({"format", "bytes", "vs v3", "load cpu us"});
  table.print_header();
  table.print_row({"v3 fixed-width", fmt("%.0f", static_cast<double>(v3.size())),
                   "1.00x", fmt("%.0f", load_v3)});
  table.print_row({"v4 codecs", fmt("%.0f", static_cast<double>(v4.size())),
                   fmt("%.2fx", ratio), fmt("%.0f", load_v4)});
  std::printf("parity: %zu mismatched predictions across formats (must be 0)\n",
              mismatches);

  check_trend(mismatches == 0, "v3/v4 loads predict bit-identically");
  char what[128];
  std::snprintf(what, sizeof what, "%s v4 artifact <= %.2fx v3 bytes",
                wl.name.c_str(), max_ratio);
  if (trend()) {
    if (ratio <= max_ratio) {
      std::printf("trend ok: %s\n", what);
    } else {
      std::printf("TREND VIOLATION: %s (got %.2fx)\n", what, ratio);
      ++failures;
    }
  }
  check_trend(load_v4 <= 1.3 * load_v3 + 500.0,
              "v4 cold-start no slower than v3 (30% + 500us tolerance)");
  if (v4_out != nullptr) *v4_out = v4;
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner(
      "Memory efficiency (request arenas, CoW fitted state, WLMP v4 codecs)",
      "DESIGN.md §11 (fleet-scale memory cost of the serving path)");

  const auto wl_music = make_workload("music");
  const auto wl_toxic = make_workload("toxic");
  // Pin the kernel/feature-op configs instead of autotuning: the tuner
  // picks by *timing*, so under a loaded machine (parallel ctest) it can
  // install a different plan — e.g. zero-copy off — which changes the
  // allocation profile of both arms. A memory bench measures the intended
  // serving path, deterministically; pinning also keeps the artifact bytes
  // identical run to run (no measured timings in the KERN section).
  auto opts = compiled_config();
  opts.kernel_config = kernels::KernelConfig{};
  opts.featureop_config = kernels::FeatureOpConfig{};
  const auto music = optimize(wl_music, opts);
  const auto toxic = optimize(wl_toxic, opts);

  bench_allocations(wl_music, music, /*expect_zero=*/true);
  bench_allocations(wl_toxic, toxic, /*expect_zero=*/false);

  std::vector<std::uint8_t> music_v4;
  bench_artifact(wl_music, music, /*max_ratio=*/0.95, &music_v4);
  bench_artifact(wl_toxic, toxic, /*max_ratio=*/0.70);

  bench_replicas(music_v4);

  if (trend() && failures > 0) {
    std::printf("\n%d trend assertion(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\ndone.\n");
  return 0;
}
