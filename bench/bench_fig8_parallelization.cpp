// Figure 8: per-input (example-at-a-time) parallelization. Left: the real
// Product and Toxic benchmarks, where one expensive IFV dominates and
// Amdahl's law caps the gain near 1.1-1.2x. Right: the synthetic benchmark
// with four identical TF-IDF feature generators, where speedup should be
// near-linear up to four threads.

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

double pointwise_latency(const core::OptimizedPipeline& p,
                         const data::Batch& test, std::size_t n_queries) {
  std::vector<data::Batch> rows;
  rows.reserve(n_queries);
  for (std::size_t i = 0; i < n_queries; ++i) {
    rows.push_back(test.row(i % test.num_rows()));
  }
  return mean_latency_micros(n_queries,
                             [&](std::size_t i) { (void)p.predict_one(rows[i]); });
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Per-input parallelization speedup", "Willump paper, Figure 8");

  std::printf("\n--- real benchmarks (left plot) ---\n");
  TablePrinter table({"benchmark", "threads", "latency_us", "speedup"});
  table.print_header();

  const std::size_t kQueries = smoke() ? 50 : 250;
  for (const auto& name : {std::string("toxic"), std::string("product")}) {
    // Paragraph-length comments for Toxic, as in the paper's dataset
    // (Wikipedia talk pages), so generator cost dominates thread dispatch.
    workloads::Workload wl;
    if (name == "toxic") {
      workloads::ToxicConfig cfg;
      if (smoke()) cfg.sizes = smoke_sizes();
      cfg.words_min = 80;
      cfg.words_max = 200;
      wl = workloads::make_toxic(cfg);
    } else {
      wl = make_workload(name);
    }
    double base_lat = 0.0;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      core::OptimizeOptions opts;
      opts.parallel_threads = threads;
      const auto p = optimize(wl, opts);
      const double lat = pointwise_latency(p, wl.test.inputs, kQueries);
      if (threads == 1) base_lat = lat;
      table.print_row({name, fmt("%.0f", static_cast<double>(threads)),
                       fmt("%.1f", lat), fmt("%.2fx", base_lat / lat)});
    }
  }

  std::printf("\n--- synthetic 4x TF-IDF benchmark (right plot) ---\n");
  TablePrinter table2({"threads", "latency_us", "speedup", "ideal"});
  table2.print_header();
  {
    const auto wl = make_workload("synthetic");
    double base_lat = 0.0;
    for (std::size_t threads = 1; threads <= 4; ++threads) {
      core::OptimizeOptions opts;
      opts.parallel_threads = threads;
      const auto p = optimize(wl, opts);
      const double lat = pointwise_latency(p, wl.test.inputs, kQueries);
      if (threads == 1) base_lat = lat;
      table2.print_row({fmt("%.0f", static_cast<double>(threads)),
                        fmt("%.1f", lat), fmt("%.2fx", base_lat / lat),
                        fmt("%.2fx", static_cast<double>(threads))});
    }
  }

  std::printf(
      "\nPaper shape: real benchmarks gain up to ~1.2x (a single IFV\n"
      "dominates; Amdahl); the synthetic equal-cost benchmark scales\n"
      "near-linearly to 4 threads.\n");
  return 0;
}
