// Table 3: average per-input latency of the Music and Tracking benchmarks
// with remotely stored feature tables, under the unoptimized pipeline and
// the four caching/cascading configurations of Table 2.

#include "bench_util.hpp"
#include "serving/e2e_cache.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

inline std::size_t n_queries() { return willump::bench::smoke() ? 150 : 1500; }

double serve_mean_latency_ms(const core::OptimizedPipeline& p,
                             const std::vector<data::Batch>& stream,
                             bool e2e_cache) {
  serving::EndToEndCache cache(0);
  common::Timer t;
  for (const auto& q : stream) {
    if (e2e_cache) {
      if (auto hit = cache.get(q)) continue;
      cache.put(q, p.predict_one(q));
    } else {
      (void)p.predict_one(q);
    }
  }
  return t.elapsed_seconds() * 1e3 / static_cast<double>(stream.size());
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Average per-input latency, remote tables (ms)",
               "Willump paper, Table 3");
  TablePrinter table({"configuration", "music", "tracking"}, 34);
  table.print_header();

  struct Config {
    const char* label;
    bool python, e2e_cache, feature_cache, cascades;
  };
  const Config configs[] = {
      {"Unoptimized", true, false, false, false},
      {"End-to-end Caching + No Cascades", false, true, false, false},
      {"Feature-Level Caching + No Cascades", false, false, true, false},
      {"No Caching + Cascades", false, false, false, true},
      {"Feature-Level Caching + Cascades", false, false, true, true},
  };

  std::vector<std::vector<std::string>> rows(5);
  for (int i = 0; i < 5; ++i) rows[static_cast<std::size_t>(i)].push_back(configs[i].label);

  for (const auto& name : {std::string("music"), std::string("tracking")}) {
    auto wl = make_workload(name);
    wl.tables->set_network(workloads::default_remote_network());

    common::Rng rng(77);
    std::vector<data::Batch> stream;
    const std::size_t kQueries = n_queries();
    stream.reserve(kQueries);
    const auto batch = wl.query_sampler(kQueries, rng);
    for (std::size_t i = 0; i < kQueries; ++i) stream.push_back(batch.row(i));

    for (int i = 0; i < 5; ++i) {
      core::OptimizeOptions opts;
      opts.compile = !configs[i].python;
      opts.cascades = configs[i].cascades;
      opts.feature_cache = configs[i].feature_cache;
      const auto p = optimize(wl, opts);
      const double ms = serve_mean_latency_ms(p, stream, configs[i].e2e_cache);
      rows[static_cast<std::size_t>(i)].push_back(fmt("%.3f", ms));
    }
  }

  for (const auto& r : rows) table.print_row(r);
  std::printf(
      "\nPaper shape (Music/Tracking): unoptimized 10.56/8.47 ms; e2e caching\n"
      "barely helps (10.48/6.61); feature caching 2.95/5.10; cascades\n"
      "7.52/4.99; combined best at 2.85/3.34. Absolute numbers differ (our\n"
      "simulated RTT is ~120us); the ordering is the reproduction target.\n");
  return 0;
}
