// Figure 6: example-at-a-time query latency of the six benchmarks under the
// Python baseline, Willump compilation, and compilation + cascades. Tables
// stored locally. Latency is the mean over a stream of single-row queries.

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

double pointwise_latency_micros(const core::OptimizedPipeline& p,
                                const data::Batch& test, std::size_t n_queries) {
  const std::size_t n = test.num_rows();
  // Pre-slice rows so slicing cost is not measured.
  std::vector<data::Batch> rows;
  rows.reserve(n_queries);
  for (std::size_t i = 0; i < n_queries; ++i) rows.push_back(test.row(i % n));
  return mean_latency_micros(n_queries,
                             [&](std::size_t i) { (void)p.predict_one(rows[i]); });
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Example-at-a-time latency (us/query)",
               "Willump paper, Figure 6");
  TablePrinter table(
      {"benchmark", "python", "compiled", "+cascades", "speedupC", "speedupK"});
  table.print_header();

  const std::size_t kQueries = smoke() ? 50 : 300;
  for (const auto& name : all_workloads()) {
    const auto wl = make_workload(name);

    const auto python = optimize(wl, python_config());
    const auto compiled = optimize(wl, compiled_config());

    const double py_lat = pointwise_latency_micros(python, wl.test.inputs, kQueries);
    const double c_lat = pointwise_latency_micros(compiled, wl.test.inputs, kQueries);

    double k_lat = 0.0;
    if (wl.classification) {
      const auto cascaded = optimize(wl, cascades_config());
      k_lat = pointwise_latency_micros(cascaded, wl.test.inputs, kQueries);
    }

    table.print_row({name, fmt("%.0f", py_lat), fmt("%.0f", c_lat),
                     wl.classification ? fmt("%.0f", k_lat) : "N/A",
                     fmt("%.1fx", py_lat / c_lat),
                     wl.classification ? fmt("%.2fx", c_lat / k_lat) : "-"});
  }

  std::printf(
      "\nPaper shape: compilation reduces latency by 1-2 orders of magnitude\n"
      "(boxed interpretation dominates single-row queries); cascades add\n"
      "1.8-4.3x on Product/Toxic, little on Music/Tracking with local tables.\n");
  return 0;
}
