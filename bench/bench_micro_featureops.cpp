// Microbenchmark of the feature-operator kernel layer (DESIGN.md §10): the
// batched TF-IDF transform, the sparse-GBDT traversal that skips per-block
// densification, and the zero-copy planned feature assembly — the
// feature-side counterpart of bench_micro_kernels' model-side sections.
// Each section times the same fitted state under the pre-kernel code shape
// (per-document std::string n-grams + unordered_map counts + append_row;
// densify-then-traverse; per-op blocks + pairwise hconcat) against the
// blocked kernels, verifying bit-exact outputs along the way.
//
// `--trend` asserts the layer's acceptance floors: blocked TF-IDF >= 2x the
// per-document scalar reference, CSR GBDT traversal >= 1.3x densify on
// wide-sparse inputs, music feature stage >= 1.5x and end-to-end music
// >= 1.3x over the zero-copy-off reference with bit-exact predictions, and
// the op-level autotuned pipeline never losing to the forced reference.
// The nightly ctest tier drives it this way; `--smoke` only proves the
// binary runs end-to-end.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "core/executors.hpp"
#include "kernels/autotune.hpp"
#include "kernels/dispatch.hpp"
#include "models/gbdt.hpp"
#include "ops/tfidf.hpp"
#include "ops/tokenizer.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

int failures = 0;

void check_trend(bool ok, const char* what) {
  if (!trend()) return;
  if (!ok) {
    std::printf("TREND VIOLATION: %s\n", what);
    ++failures;
  } else {
    std::printf("trend ok: %s\n", what);
  }
}

int reps() { return smoke() ? 1 : 5; }

// --- synthetic text corpus -------------------------------------------------

std::vector<std::string> word_pool(std::size_t n, common::Rng& rng) {
  std::vector<std::string> pool(n);
  for (auto& w : pool) {
    const std::size_t len = 3 + static_cast<std::size_t>(rng.next_double() * 6);
    w.resize(len);
    for (auto& ch : w) {
      ch = static_cast<char>('a' + static_cast<int>(rng.next_double() * 26));
    }
  }
  return pool;
}

data::StringColumn make_docs(std::size_t n, const std::vector<std::string>& pool,
                             common::Rng& rng, std::size_t words_per_doc) {
  data::StringColumn docs(n);
  for (auto& doc : docs) {
    const std::size_t len =
        1 + static_cast<std::size_t>(rng.next_double() *
                                     static_cast<double>(words_per_doc));
    for (std::size_t i = 0; i < len; ++i) {
      if (i != 0) doc += ' ';
      // Zipf-ish reuse so document frequencies spread across the vocabulary.
      const double u = rng.next_double();
      doc += pool[static_cast<std::size_t>(u * u * static_cast<double>(pool.size()))];
    }
  }
  return docs;
}

/// The pre-kernel per-document transform shape: a fresh n-gram std::string
/// vector per document, an unordered_map<string, count>, a vocabulary probe
/// per gram, entries sorted and normalized per row, append_row per row.
/// The bench fits with use_idf=false so this reference needs no access to
/// the model's private idf table; with idf weights all 1.0 the arithmetic
/// (index-ordered tf + l2) is bit-identical to the blocked kernel's — only
/// the allocation/lookup shape differs, which is what the section times.
data::CsrMatrix transform_old_shape(const ops::TfIdfModel& m,
                                    const data::StringColumn& docs) {
  data::CsrMatrix out(m.vocabulary_size());
  for (const auto& doc : docs) {
    const std::vector<std::string> grams =
        ops::ngrams_of(doc, m.config().analyzer, m.config().ngrams);
    std::unordered_map<std::string, double> counts;
    for (const auto& g : grams) counts[g] += 1.0;
    std::vector<data::SparseEntry> entries;
    entries.reserve(counts.size());
    for (const auto& [term, c] : counts) {
      const std::int32_t idx = m.term_index(term);
      if (idx < 0) continue;
      entries.push_back({idx, m.config().sublinear_tf ? 1.0 + std::log(c) : c});
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.index < b.index; });
    if (m.config().l2_normalize) {
      double sq = 0.0;
      for (const auto& e : entries) sq += e.value * e.value;
      const double norm = std::sqrt(sq);
      if (norm > 0.0) {
        const double inv = 1.0 / norm;
        for (auto& e : entries) e.value *= inv;
      }
    }
    out.append_row(entries);
  }
  return out;
}

/// Section 1: blocked TF-IDF vs the per-document reference. The blocked
/// kernel reuses one scratch (dense counts + touched list + string_view
/// tokenization) across the whole column; the reference pays a gram vector,
/// a count map, and a row allocation per document.
void bench_tfidf() {
  std::printf("\n-- TF-IDF transform (blocked vs per-document) --\n");
  common::Rng rng(31);
  const auto pool = word_pool(3000, rng);
  const std::size_t fit_docs = smoke() ? 400 : 4000;
  const std::size_t bench_docs = smoke() ? 500 : 8000;

  ops::TfIdfConfig cfg;
  cfg.min_df = 1;
  cfg.max_features = 4000;
  cfg.use_idf = false;  // lets the reference skip the private idf table
  const ops::TfIdfModel model =
      ops::TfIdfModel::fit(make_docs(fit_docs, pool, rng, 40), cfg);
  const data::StringColumn docs = make_docs(bench_docs, pool, rng, 40);
  const std::span<const std::string> span(docs.data(), docs.size());

  // Parity first: the timed paths must agree bit-exactly.
  const data::CsrMatrix ref_rows = transform_old_shape(model, docs);
  std::size_t mismatches = 0;
  for (const auto lookup : {kernels::LookupVariant::HashMap,
                            kernels::LookupVariant::SortedVocab}) {
    ops::TfIdfScratch scratch;
    data::CsrMatrix blocked(model.vocabulary_size());
    model.transform_into(span, lookup, scratch, blocked);
    for (std::size_t r = 0; r < docs.size(); ++r) {
      if (!(blocked.row_vector(r) == ref_rows.row_vector(r))) ++mismatches;
    }
  }
  std::printf("parity: %zu mismatched rows (must be 0)\n", mismatches);
  check_trend(mismatches == 0, "blocked TF-IDF bit-exact with per-doc rows");

  TablePrinter table({"path", "docs/s", "vs per-doc"});
  table.print_header();
  const double per_doc = throughput_rows_per_sec(
      bench_docs, reps(), [&] { (void)transform_old_shape(model, docs); });
  table.print_row({"per-doc", fmt("%.0f", per_doc), "1.00x"});

  double best = 0.0;
  for (const auto lookup : {kernels::LookupVariant::HashMap,
                            kernels::LookupVariant::SortedVocab}) {
    ops::TfIdfScratch scratch;
    const double qps = throughput_rows_per_sec(bench_docs, reps(), [&] {
      data::CsrMatrix out(model.vocabulary_size());
      model.transform_into(span, lookup, scratch, out);
    });
    best = std::max(best, qps);
    table.print_row({std::string("blocked/") + kernels::variant_name(lookup),
                     fmt("%.0f", qps), fmt("%.2fx", qps / per_doc)});
  }
  check_trend(best >= 2.0 * per_doc,
              "blocked TF-IDF >= 2x per-document scalar");
}

/// Section 2: wide-sparse GBDT traversal. The densify path scatters each
/// row's entries into a kMaxTreeBlock x cols scratch, runs the blocked
/// kernel, and scatters zeros back — on a TF-IDF-wide matrix that scratch
/// is tens of MiB and every touch misses cache. The CSR path probes each
/// node's feature by binary search over the row's L1-resident entry list.
/// The forest references a few hundred informative columns (the realistic
/// shape: trees pick the discriminative terms of a huge vocabulary), but
/// the input rows carry entries across the full width.
void bench_sparse_gbdt() {
  std::printf("\n-- GBDT traversal on wide-sparse input (CSR vs densify) --\n");
  common::Rng rng(37);
  const std::size_t signal_cols = 300;  // the columns trees can reference
  const std::size_t cols = smoke() ? 4096 : 65536;
  const std::size_t train_rows = smoke() ? 200 : 300;
  const std::size_t bench_rows = smoke() ? 500 : 2000;
  const std::size_t nnz_per_row = 60;

  data::DenseMatrix xtr(train_rows, signal_cols);
  std::vector<double> y(train_rows);
  for (std::size_t r = 0; r < train_rows; ++r) {
    for (std::size_t c = 0; c < signal_cols; ++c) {
      xtr(r, c) = rng.next_bernoulli(0.1) ? rng.next_double() : 0.0;
    }
    y[r] = xtr(r, 3) + xtr(r, 7) > xtr(r, 11) ? 1.0 : 0.0;
  }
  models::GbdtConfig cfg;
  cfg.n_trees = smoke() ? 20 : 50;
  cfg.max_depth = 6;
  cfg.permutation_rows = 0;
  models::Gbdt model(cfg);
  model.fit(data::FeatureMatrix(xtr), y);

  // Test rows at full TF-IDF width: a sprinkle of signal-column entries
  // plus tail entries spread over the whole vocabulary.
  data::CsrMatrix xs(static_cast<std::int32_t>(cols));
  std::vector<data::SparseEntry> row;
  for (std::size_t r = 0; r < bench_rows; ++r) {
    row.clear();
    std::vector<bool> used(cols, false);
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      const bool in_signal = rng.next_bernoulli(0.3);
      const std::size_t span = in_signal ? signal_cols : cols;
      const std::size_t c =
          static_cast<std::size_t>(rng.next_double() * static_cast<double>(span));
      if (used[c]) continue;
      used[c] = true;
      row.push_back({static_cast<std::int32_t>(c), rng.next_double()});
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.index < b.index; });
    xs.append_row(row);
  }
  const data::FeatureMatrix x(std::move(xs));
  std::vector<double> out_csr(bench_rows), out_dense(bench_rows);

  kernels::KernelConfig kc = model.kernel_config();
  kc.sparse_cutoff = std::numeric_limits<std::uint32_t>::max();
  model.set_kernel_config(kc);
  const double densify = throughput_rows_per_sec(
      bench_rows, reps(), [&] { model.predict_into(x, out_dense); });

  kc.sparse_cutoff = 0;
  model.set_kernel_config(kc);
  const double csr = throughput_rows_per_sec(
      bench_rows, reps(), [&] { model.predict_into(x, out_csr); });

  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < bench_rows; ++r) {
    if (out_csr[r] != out_dense[r]) ++mismatches;
  }

  TablePrinter table({"path", "rows/s", "vs densify"});
  table.print_header();
  table.print_row({"densify", fmt("%.0f", densify), "1.00x"});
  table.print_row({"csr", fmt("%.0f", csr), fmt("%.2fx", csr / densify)});
  std::printf("parity: %zu mismatched predictions (must be 0)\n", mismatches);

  check_trend(mismatches == 0, "CSR traversal bit-exact with densify");
  check_trend(csr >= 1.3 * densify,
              "CSR GBDT traversal >= 1.3x densify on wide-sparse");
}

/// Sections 3+4: feature-stage and end-to-end contribution on music
/// (Figure 5's shape: six table-lookup generators feeding a GBDT). All
/// arms share one forced model-kernel config so the pipelines differ ONLY
/// in the feature layer: the reference arm assembles per-op blocks with
/// the pairwise-hconcat fold (the pre-PR shape), the zero-copy arm writes
/// lookup rows straight into the final matrix, and the autotuned arm lets
/// the op-level tuner pick.
void bench_music() {
  std::printf("\n-- Music feature stage + end-to-end (zero-copy assembly) --\n");
  const auto wl = make_workload("music");
  const std::size_t rows = wl.test.inputs.num_rows();

  core::OptimizeOptions ref_opts = compiled_config();
  ref_opts.kernel_config = kernels::native_config();
  ref_opts.featureop_config =
      kernels::FeatureOpConfig{kernels::LookupVariant::HashMap, 256, false};
  const auto reference = optimize(wl, ref_opts);

  core::OptimizeOptions zc_opts = ref_opts;
  zc_opts.featureop_config =
      kernels::FeatureOpConfig{kernels::LookupVariant::HashMap, 256, true};
  const auto zero_copy = optimize(wl, zc_opts);

  core::OptimizeOptions tuned_opts = compiled_config();
  tuned_opts.kernel_config = kernels::native_config();  // isolate the op layer
  const auto tuned = optimize(wl, tuned_opts);

  const auto feature_tput = [&](const core::OptimizedPipeline& p) {
    return throughput_rows_per_sec(rows, reps(), [&] {
      (void)p.executor().compute_matrix(wl.test.inputs);
    });
  };
  const auto e2e_tput = [&](const core::OptimizedPipeline& p) {
    return throughput_rows_per_sec(
        rows, reps(), [&] { (void)p.predict(wl.test.inputs); });
  };

  const double ref_feat = feature_tput(reference);
  const double zc_feat = feature_tput(zero_copy);
  const double tuned_feat = feature_tput(tuned);
  const double ref_e2e = e2e_tput(reference);
  const double zc_e2e = e2e_tput(zero_copy);
  const double tuned_e2e = e2e_tput(tuned);

  TablePrinter table({"config", "feat rows/s", "e2e rows/s", "e2e speedup"});
  table.print_header();
  table.print_row({"reference", fmt("%.0f", ref_feat), fmt("%.0f", ref_e2e),
                   "1.00x"});
  table.print_row({"zero-copy", fmt("%.0f", zc_feat), fmt("%.0f", zc_e2e),
                   fmt("%.2fx", zc_e2e / ref_e2e)});
  table.print_row({"autotuned", fmt("%.0f", tuned_feat), fmt("%.0f", tuned_e2e),
                   fmt("%.2fx", tuned_e2e / ref_e2e)});

  const auto& ops_cfg = tuned.autotune_report().ops;
  std::printf("autotuned op config: lookup=%s block_rows=%u zero_copy=%s\n",
              kernels::variant_name(ops_cfg.lookup), ops_cfg.block_rows,
              ops_cfg.zero_copy ? "on" : "off");

  // Bit-exact predictions: identical features => identical training =>
  // identical models, so the arms must agree to the last bit.
  const std::vector<double> pred_ref = reference.predict(wl.test.inputs);
  const std::vector<double> pred_zc = zero_copy.predict(wl.test.inputs);
  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (pred_ref[r] != pred_zc[r]) ++mismatches;
  }
  std::printf("parity: %zu mismatched predictions (must be 0)\n", mismatches);

  check_trend(mismatches == 0, "zero-copy predictions bit-exact with reference");
  check_trend(zc_feat >= 1.5 * ref_feat,
              "music feature stage >= 1.5x with zero-copy assembly");
  check_trend(zc_e2e >= 1.3 * ref_e2e,
              "music end-to-end >= 1.3x over per-op-block reference");
  check_trend(tuned_e2e >= 0.95 * ref_e2e,
              "op-autotuned pipeline never loses to the forced reference");
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner(
      "Feature-operator kernels (blocked TF-IDF, sparse GBDT, zero-copy "
      "assembly)",
      "DESIGN.md §10 (feature layer under Figure 5's compiled config)");

  bench_tfidf();
  bench_sparse_gbdt();
  bench_music();

  if (trend() && failures > 0) {
    std::printf("\n%d trend assertion(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\ndone.\n");
  return 0;
}
