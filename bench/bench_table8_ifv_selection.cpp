// Table 8: comparison of Willump's efficient-IFV selection (Algorithm 1)
// against choosing the most important IFVs, the cheapest IFVs, and an
// oracle (exhaustive search over IFV subsets), on the two benchmarks with
// the most IFV cost variance (Product, Toxic). Also runs the paper's §6.4
// ablation of the gamma stopping rule on Music, the classification
// benchmark with the most IFVs.

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

/// Cascade throughput for an explicitly given efficient mask.
double masked_cascade_tput(const workloads::Workload& wl,
                           const core::OptimizedPipeline& base,
                           const std::vector<bool>& mask, double accuracy_target) {
  // Retrain small model on the masked IFVs and re-pick the threshold, then
  // measure serving throughput.
  const auto& ex = base.executor();
  core::TrainedCascade c = base.cascade();
  c.efficient_mask = mask;
  c.inefficient_mask.assign(mask.size(), false);
  for (std::size_t f = 0; f < mask.size(); ++f) c.inefficient_mask[f] = !mask[f];

  core::ExecOptions eff_opts;
  eff_opts.fg_mask = mask;
  auto small = std::shared_ptr<models::Model>(
      wl.pipeline.model_proto->clone_untrained());
  small->fit(ex.compute_matrix(wl.train.inputs, eff_opts), wl.train.targets);
  c.small_model = small;

  const auto small_p = small->predict(ex.compute_matrix(wl.valid.inputs, eff_opts));
  const auto full_p = c.full_model->predict(ex.compute_matrix(wl.valid.inputs));
  c.threshold = core::CascadeTrainer::select_threshold(small_p, full_p,
                                                       wl.valid.targets,
                                                       accuracy_target);

  const std::size_t rows = wl.test.inputs.num_rows();
  return throughput_rows_per_sec(rows, 2, [&] {
    (void)core::cascade_predict(ex, c, wl.test.inputs, {});
  });
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Efficient-IFV selection policies", "Willump paper, Table 8");
  TablePrinter table({"benchmark", "orig_tput", "willump", "important", "cheap",
                      "oracle"},
                     13);
  table.print_header();

  constexpr double kTarget = 0.001;
  for (const auto& name : {std::string("product"), std::string("toxic")}) {
    const auto wl = make_workload(name);
    const auto base = optimize(wl, cascades_config(kTarget));
    const auto& stats = base.cascade().stats;
    const std::size_t num_fg = stats.cost_seconds.size();

    const double orig_tput = throughput_rows_per_sec(
        wl.test.inputs.num_rows(), 2,
        [&] { (void)base.predict_full(wl.test.inputs); });

    auto policy_tput = [&](core::SelectionPolicy policy) {
      const auto sel = core::select_by_policy(policy, stats.importance,
                                              stats.cost_seconds, 0.25);
      if (sel.empty() || sel.num_selected() == num_fg) return orig_tput;
      return masked_cascade_tput(wl, base, sel.mask, kTarget);
    };

    const double willump_tput = policy_tput(core::SelectionPolicy::Willump);
    const double important_tput = policy_tput(core::SelectionPolicy::MostImportant);
    const double cheap_tput = policy_tput(core::SelectionPolicy::Cheapest);

    // Oracle: exhaustive search over proper non-empty subsets.
    double oracle_tput = orig_tput;
    for (std::uint32_t bits = 1; bits + 1 < (1u << num_fg); ++bits) {
      std::vector<bool> mask(num_fg);
      for (std::size_t f = 0; f < num_fg; ++f) mask[f] = (bits >> f) & 1u;
      oracle_tput = std::max(oracle_tput,
                             masked_cascade_tput(wl, base, mask, kTarget));
    }

    table.print_row({name, fmt("%.0f", orig_tput), fmt("%.0f", willump_tput),
                     fmt("%.0f", important_tput), fmt("%.0f", cheap_tput),
                     fmt("%.0f", oracle_tput)});
  }

  // gamma-rule ablation on Music with remote tables (where cascades matter).
  std::printf("\nGamma-rule ablation on Music (remote tables), speedup over "
              "compiled:\n");
  TablePrinter ab({"acc_target", "with_rule", "without_rule"}, 16);
  ab.print_header();
  for (double target : {0.001, 0.005}) {
    auto wl = make_workload("music");
    wl.tables->set_network(workloads::default_remote_network());
    const auto compiled = optimize(wl, compiled_config());
    const double base_tput = throughput_rows_per_sec(
        wl.test.inputs.num_rows(), 2,
        [&] { (void)compiled.predict(wl.test.inputs); });

    auto run = [&](bool disable_gamma) {
      core::OptimizeOptions opts = cascades_config(target);
      opts.cascade_cfg.disable_gamma_rule = disable_gamma;
      const auto p = optimize(wl, opts);
      return throughput_rows_per_sec(wl.test.inputs.num_rows(), 2, [&] {
        (void)p.predict(wl.test.inputs);
      });
    };
    ab.print_row({fmt("%.1f%%", target * 100.0),
                  fmt("%.2fx", run(false) / base_tput),
                  fmt("%.2fx", run(true) / base_tput)});
  }

  std::printf(
      "\nPaper shape: Willump matches the oracle and beats important-only\n"
      "selection; on Toxic it coincides with cheapest-first. With the gamma\n"
      "rule, Music cascades speed up 1.41x/1.75x vs 1.31x/1.47x without.\n");
  return 0;
}
