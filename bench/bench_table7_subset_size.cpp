// Table 7: effect of the top-K filtered-subset size on performance and
// accuracy for top-100 queries on Music (remote tables) and Toxic. When the
// subset is much smaller than the batch, shrinking it further barely helps
// throughput (the filter model dominates) but costs accuracy — the paper's
// justification for the 5%-of-batch minimum subset size.

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Top-K subset-size sweep (K=100)", "Willump paper, Table 7");
  TablePrinter table({"benchmark", "subset", "size", "tput", "precision", "mAP",
                      "avg_value"},
                     12);
  table.print_header();

  constexpr std::size_t kK = 100;
  for (const auto& name : {std::string("music"), std::string("toxic")}) {
    auto wl = make_workload(name, topk_batch_rows());
    if (wl.tables) wl.tables->set_network(workloads::default_remote_network());
    const auto& batch = wl.test.inputs;
    const std::size_t rows = batch.num_rows();

    const auto python = optimize(wl, python_config());
    core::OptimizeOptions filt_opts;
    filt_opts.topk_filter = true;
    auto p = optimize(wl, filt_opts);

    const auto full_scores = p.predict_full(batch);
    const auto exact = models::top_k_indices(full_scores, kK);

    // Python reference row.
    const double py_tput = throughput_rows_per_sec(rows, 2, [&] {
      (void)models::top_k_indices(python.predict(batch), kK);
    });
    table.print_row({name, "python", "-", fmt("%.0f", py_tput), "1.00", "1.00",
                     fmt("%.4f", models::average_value(exact, full_scores))});

    for (double frac : {0.05, 0.04, 0.03, 0.02, 0.01, 0.0055}) {
      core::TopKConfig cfg;
      cfg.ck = 0.0;  // isolate the fraction knob, as the paper's sweep does
      cfg.min_subset_frac = frac;
      core::TopKPipeline pipeline(
          std::shared_ptr<const core::Executor>(&p.executor(),
                                                [](const core::Executor*) {}),
          p.cascade(), cfg);

      std::vector<std::size_t> predicted;
      const double tput = throughput_rows_per_sec(
          rows, 2, [&] { predicted = pipeline.top_k(batch, kK); });
      const auto acc = topk_accuracy(predicted, exact, full_scores);
      table.print_row({name, fmt("%.2f%%", frac * 100.0),
                       fmt("%.0f", static_cast<double>(
                                       pipeline.subset_size(kK, rows))),
                       fmt("%.0f", tput), fmt("%.2f", acc.precision),
                       fmt("%.2f", acc.map), fmt("%.4f", acc.average_value)});
    }
  }

  std::printf(
      "\nPaper shape: below ~5%% of the batch, halving the subset changes\n"
      "throughput by ~10%% but costs large accuracy drops (Music mAP falls\n"
      "0.83 -> 0.21 from 5%% to 0.55%%); Toxic tolerates smaller subsets.\n");
  return 0;
}
