// §6.4 "Optimization Times": wall-clock cost of running the Willump
// optimizer itself (graph analysis, cost measurement, model training,
// threshold search) per benchmark and configuration. The paper reports
// under thirty seconds per benchmark (up to three minutes when in-memory
// data stores must be converted for Weld).

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Willump optimization times (s)", "Willump paper, §6.4");
  TablePrinter table({"benchmark", "compile_only", "cascades", "topk_filter"}, 16);
  table.print_header();

  bool all_under_30s = true;
  for (const auto& name : all_workloads()) {
    const auto wl = make_workload(name);

    common::Timer t1;
    (void)optimize(wl, compiled_config());
    const double compile_s = t1.elapsed_seconds();

    common::Timer t2;
    (void)optimize(wl, cascades_config());
    const double cascades_s = t2.elapsed_seconds();

    core::OptimizeOptions topk;
    topk.topk_filter = true;
    common::Timer t3;
    (void)optimize(wl, topk);
    const double topk_s = t3.elapsed_seconds();

    all_under_30s &= compile_s < 30.0 && cascades_s < 30.0 && topk_s < 30.0;
    table.print_row({name, fmt("%.2f", compile_s), fmt("%.2f", cascades_s),
                     fmt("%.2f", topk_s)});
  }

  std::printf("\nAll optimizations under 30 s: %s (paper: yes for all "
              "benchmarks)\n",
              all_under_30s ? "yes" : "NO");
  return 0;
}
