// Microbenchmark of the batched prediction kernels (DESIGN.md §9): the
// hardware-speed inner loops the paper's compiled configuration presupposes
// ("cascades cannot help unless the model itself runs at hardware speed").
// Four model-level sections time the same trained model under forced kernel
// configs — the bit-exact scalar/row-wise reference (the pre-kernel code
// shape) against the SIMD / blocked-traversal variants and the autotuned
// winner — plus an end-to-end section that optimizes one full workload
// twice (forced-reference config vs autotuned) so the kernel layer's
// contribution to Figure 5 throughput is recorded, not inferred.
//
// `--trend` asserts the acceptance floors of the kernel layer: batched
// blocked GBDT traversal >= 3x the row-at-a-time reference, SIMD linear
// margins >= 2x scalar, SIMD MLP forward >= 2x scalar, and the autotuned
// winner never losing to the reference it replaced. The nightly ctest tier
// drives it this way; `--smoke` only proves the binary runs end-to-end.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "kernels/autotune.hpp"
#include "kernels/dispatch.hpp"
#include "models/gbdt.hpp"
#include "models/linear.hpp"
#include "models/mlp.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

int failures = 0;

void check_trend(bool ok, const char* what) {
  if (!trend()) return;
  if (!ok) {
    std::printf("TREND VIOLATION: %s\n", what);
    ++failures;
  } else {
    std::printf("trend ok: %s\n", what);
  }
}

/// The bit-exact reference config: the arithmetic the models used before the
/// kernel layer existed (strict left-to-right sums, per-row tree walks).
kernels::KernelConfig reference_config() {
  return {kernels::DotVariant::Scalar, kernels::TreeVariant::RowWise, 1};
}

int reps() { return smoke() ? 1 : 5; }

/// Row-major gaussian feature block with a planted linear signal so
/// classifiers have something to fit.
data::DenseMatrix gaussian_matrix(std::size_t rows, std::size_t cols,
                                  common::Rng& rng) {
  data::DenseMatrix x(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) x(r, c) = rng.next_gaussian();
  }
  return x;
}

std::vector<double> planted_labels(const data::DenseMatrix& x,
                                   common::Rng& rng) {
  std::vector<double> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double m = 0.0;
    for (std::size_t c = 0; c < std::min<std::size_t>(x.cols(), 8); ++c) {
      m += (c % 2 == 0 ? 1.0 : -1.0) * x(r, c);
    }
    y[r] = (m + 0.5 * rng.next_gaussian()) > 0.0 ? 1.0 : 0.0;
  }
  return y;
}

double time_config(models::Model& model, const kernels::KernelConfig& cfg,
                   const data::FeatureMatrix& x, std::vector<double>& out,
                   int iters = 1) {
  model.set_kernel_config(cfg);
  return throughput_rows_per_sec(x.rows() * static_cast<std::size_t>(iters),
                                 reps(), [&, iters] {
                                   for (int i = 0; i < iters; ++i) {
                                     model.predict_into(x, out);
                                   }
                                 });
}

std::string cfg_name(const kernels::KernelConfig& c, bool tree_model) {
  std::string n = tree_model ? std::string(kernels::variant_name(c.tree))
                             : std::string(kernels::variant_name(c.dot));
  if (tree_model && c.tree == kernels::TreeVariant::Blocked) {
    n += "/" + std::to_string(c.tree_block);
  }
  return n;
}

/// Section 1: GBDT forest traversal. Row-at-a-time branchy walks (the
/// Tree::predict_row shape) vs blocked branch-free traversal at each block
/// size, plus the autotuned pick. The >= 3x floor is the tentpole claim:
/// batching rows through a tree level overlaps the per-node load->compare
/// dependency chains that serialize a row-at-a-time walk.
void bench_gbdt() {
  std::printf("\n-- GBDT forest traversal (batched margins) --\n");
  common::Rng rng(13);
  const std::size_t train_rows = smoke() ? 400 : 2500;
  const std::size_t bench_rows = smoke() ? 1000 : 16384;
  const std::size_t cols = 30;

  models::GbdtConfig cfg;
  cfg.n_trees = smoke() ? 20 : 100;
  cfg.max_depth = 6;
  cfg.permutation_rows = 0;  // importance is not what this bench times
  models::Gbdt model(cfg);

  const data::DenseMatrix xtr = gaussian_matrix(train_rows, cols, rng);
  const std::vector<double> y = planted_labels(xtr, rng);
  model.fit(data::FeatureMatrix(xtr), y);

  const data::FeatureMatrix x(gaussian_matrix(bench_rows, cols, rng));
  std::vector<double> out(bench_rows);

  TablePrinter table({"kernel", "rows/s", "vs rowwise"});
  table.print_header();
  const double rowwise = time_config(model, reference_config(), x, out);
  table.print_row({"rowwise", fmt("%.0f", rowwise), "1.00x"});

  double best_blocked = 0.0;
  for (std::uint32_t block : {8u, 16u, 32u, 64u}) {
    const double qps = time_config(
        model, {kernels::DotVariant::Scalar, kernels::TreeVariant::Blocked, block},
        x, out);
    best_blocked = std::max(best_blocked, qps);
    table.print_row({"blocked/" + std::to_string(block), fmt("%.0f", qps),
                     fmt("%.2fx", qps / rowwise)});
  }

  model.set_kernel_config(reference_config());
  kernels::AutotuneConfig tune;
  tune.reps = reps();
  const kernels::KernelConfig tuned =
      core::tune_model_kernels(model, x, tune, "gbdt", nullptr);
  const double tuned_qps = time_config(model, tuned, x, out);
  table.print_row({"tuned=" + cfg_name(tuned, true), fmt("%.0f", tuned_qps),
                   fmt("%.2fx", tuned_qps / rowwise)});

  check_trend(best_blocked >= 3.0 * rowwise,
              "blocked GBDT traversal >= 3x row-at-a-time");
  // The tuned pick must clear the same floor the sweep's winner does. (Not
  // asserted against best_blocked directly: on a 1-CPU machine two
  // time-separated measurements of near-identical configs jitter past any
  // tight ratio — the floor is what the acceptance criteria require.)
  check_trend(tuned_qps >= 3.0 * rowwise,
              "autotuned GBDT config clears the same 3x floor");
}

/// Section 2: cascade early-exit traversal. predict_cascade stops
/// accumulating trees for rows whose margin bound already proves them hard;
/// against an adversarially low threshold most rows retire early, so the
/// cascade path should beat full margins on the same forest.
void bench_gbdt_cascade() {
  std::printf("\n-- GBDT cascade early-exit (predict_cascade) --\n");
  common::Rng rng(17);
  const std::size_t bench_rows = smoke() ? 1000 : 16384;
  const std::size_t cols = 30;

  models::GbdtConfig cfg;
  cfg.n_trees = smoke() ? 20 : 100;
  cfg.max_depth = 6;
  cfg.permutation_rows = 0;
  models::Gbdt model(cfg);
  const data::DenseMatrix xtr =
      gaussian_matrix(smoke() ? 400 : 2500, cols, rng);
  model.fit(data::FeatureMatrix(xtr), planted_labels(xtr, rng));

  const data::FeatureMatrix x(gaussian_matrix(bench_rows, cols, rng));
  std::vector<double> preds(bench_rows);
  std::vector<std::uint8_t> hard(bench_rows);

  const double full = throughput_rows_per_sec(
      bench_rows, reps(), [&] { model.predict_into(x, preds); });

  TablePrinter table({"threshold", "rows/s", "vs full", "hard rows"});
  table.print_header();
  table.print_row({"full", fmt("%.0f", full), "1.00x", "-"});
  for (double thr : {0.6, 0.9, 1.0}) {
    const double qps = throughput_rows_per_sec(bench_rows, reps(), [&] {
      model.predict_cascade(x, thr, preds, hard);
    });
    std::size_t n_hard = 0;
    for (std::uint8_t h : hard) n_hard += h;
    table.print_row({fmt("%.2f", thr), fmt("%.0f", qps),
                     fmt("%.2fx", qps / full),
                     fmt("%.0f", static_cast<double>(n_hard))});
  }
  // threshold 1.0 marks every row hard before touching tree 0 — the
  // degenerate bound the early-exit must recognize without traversal.
  const double all_hard = throughput_rows_per_sec(bench_rows, reps(), [&] {
    model.predict_cascade(x, 1.0, preds, hard);
  });
  check_trend(all_hard >= full,
              "cascade threshold=1.0 short-circuits before traversal");
}

/// Section 3: linear margins (the GEMV shape). Scalar reference vs unrolled
/// and SIMD dot variants on a wide dense model; >= 2x is the acceptance
/// floor for the SIMD tier this machine supports.
void bench_linear() {
  std::printf("\n-- Linear margins (dense GEMV, d=512) --\n");
  common::Rng rng(23);
  const std::size_t d = 512;
  // L2-resident batch (256 x 512 doubles = 1 MiB) looped many times per
  // timed rep: the section measures the dot kernels' arithmetic, not DRAM
  // bandwidth — a multi-MB batch caps every SIMD variant at the same
  // streaming rate and the comparison dissolves into memory noise.
  const std::size_t bench_rows = 256;
  const int iters = smoke() ? 4 : 80;

  models::LogisticRegression model;
  const data::DenseMatrix xtr = gaussian_matrix(smoke() ? 300 : 1000, d, rng);
  model.fit(data::FeatureMatrix(xtr), planted_labels(xtr, rng));

  const data::FeatureMatrix x(gaussian_matrix(bench_rows, d, rng));
  std::vector<double> out(bench_rows);

  TablePrinter table({"kernel", "rows/s", "vs scalar"});
  table.print_header();
  kernels::KernelConfig c = reference_config();
  const double scalar = time_config(model, c, x, out, iters);
  table.print_row({"scalar", fmt("%.0f", scalar), "1.00x"});

  double best = scalar;
  for (kernels::DotVariant v : kernels::candidate_dots()) {
    if (v == kernels::DotVariant::Scalar) continue;
    c.dot = v;
    const double qps = time_config(model, c, x, out, iters);
    best = std::max(best, qps);
    table.print_row({kernels::variant_name(v), fmt("%.0f", qps),
                     fmt("%.2fx", qps / scalar)});
  }

  model.set_kernel_config(reference_config());
  kernels::AutotuneConfig tune;
  tune.reps = reps();
  const kernels::KernelConfig tuned =
      core::tune_model_kernels(model, x, tune, "linear", nullptr);
  const double tuned_qps = time_config(model, tuned, x, out, iters);
  table.print_row({"tuned=" + cfg_name(tuned, false), fmt("%.0f", tuned_qps),
                   fmt("%.2fx", tuned_qps / scalar)});

  check_trend(best >= 2.0 * scalar, "SIMD linear margins >= 2x scalar");
  // Floor, not a tight ratio against `best` — see the GBDT section.
  check_trend(tuned_qps >= 2.0 * scalar,
              "autotuned linear config clears the same 2x floor");
}

/// Section 4: MLP forward (the GEMM shape). The hidden layer dominates
/// (hidden x in_dim multiply-accumulates per row), so the dot variant's
/// speedup should carry through the whole forward pass.
void bench_mlp() {
  std::printf("\n-- MLP forward (in=256, hidden=64) --\n");
  common::Rng rng(29);
  const std::size_t d = 256;
  const std::size_t bench_rows = smoke() ? 500 : 8192;

  models::MlpConfig cfg;
  cfg.hidden = 64;
  cfg.epochs = smoke() ? 2 : 4;
  models::Mlp model(cfg);
  const data::DenseMatrix xtr = gaussian_matrix(smoke() ? 300 : 800, d, rng);
  model.fit(data::FeatureMatrix(xtr), planted_labels(xtr, rng));

  const data::FeatureMatrix x(gaussian_matrix(bench_rows, d, rng));
  std::vector<double> out(bench_rows);

  TablePrinter table({"kernel", "rows/s", "vs scalar"});
  table.print_header();
  kernels::KernelConfig c = reference_config();
  const double scalar = time_config(model, c, x, out);
  table.print_row({"scalar", fmt("%.0f", scalar), "1.00x"});

  double best = scalar;
  for (kernels::DotVariant v : kernels::candidate_dots()) {
    if (v == kernels::DotVariant::Scalar) continue;
    c.dot = v;
    const double qps = time_config(model, c, x, out);
    best = std::max(best, qps);
    table.print_row({kernels::variant_name(v), fmt("%.0f", qps),
                     fmt("%.2fx", qps / scalar)});
  }
  check_trend(best >= 2.0 * scalar, "SIMD MLP forward >= 2x scalar");
}

/// Section 5: end-to-end contribution. Optimize one GBDT workload twice —
/// kernel_config forced to the scalar/row-wise reference vs the default
/// autotuner — and record what the kernel layer adds to Figure 5's batch
/// throughput. Feature computation is part of both runs, so this ratio is
/// honest about Amdahl: it is the paper-visible gain, not the kernel-only
/// gain the sections above isolate.
void bench_end_to_end() {
  std::printf("\n-- End-to-end batch throughput (music, Figure 5 shape) --\n");
  const auto wl = make_workload("music");
  const std::size_t rows = wl.test.inputs.num_rows();

  core::OptimizeOptions ref_opts = compiled_config();
  ref_opts.kernel_config = reference_config();
  const auto reference = optimize(wl, ref_opts);

  core::OptimizeOptions tuned_opts = compiled_config();  // autotune on
  const auto tuned = optimize(wl, tuned_opts);

  const double ref_tput = throughput_rows_per_sec(
      rows, 3, [&] { (void)reference.predict(wl.test.inputs); });
  const double tuned_tput = throughput_rows_per_sec(
      rows, 3, [&] { (void)tuned.predict(wl.test.inputs); });

  TablePrinter table({"config", "rows/s", "speedup"});
  table.print_header();
  table.print_row({"reference", fmt("%.0f", ref_tput), "1.00x"});
  table.print_row({"autotuned", fmt("%.0f", tuned_tput),
                   fmt("%.2fx", tuned_tput / ref_tput)});
  const auto& rep = tuned.autotune_report();
  std::printf("autotuned full-model config: dot=%s tree=%s block=%u\n",
              kernels::variant_name(rep.full.dot),
              kernels::variant_name(rep.full.tree), rep.full.tree_block);
  check_trend(tuned_tput >= 0.95 * ref_tput,
              "autotuned pipeline does not lose end-to-end");
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Batched prediction kernels (scalar reference vs SIMD/blocked)",
               "DESIGN.md §9 (kernel layer under Figure 5's compiled config)");

  bench_gbdt();
  bench_gbdt_cascade();
  bench_linear();
  bench_mlp();
  bench_end_to_end();

  if (trend() && failures > 0) {
    std::printf("\n%d trend assertion(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\ndone.\n");
  return 0;
}
