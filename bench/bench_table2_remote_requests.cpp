// Table 2: percent reduction in remote feature-store requests for the
// Music and Tracking benchmarks under four optimization configurations,
// relative to the unoptimized pipeline, over a Zipf-skewed stream of
// example-at-a-time queries against remotely stored tables.

#include "bench_util.hpp"
#include "serving/e2e_cache.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

inline std::size_t n_queries() { return willump::bench::smoke() ? 300 : 4000; }

/// Serve the stream one query at a time; return total remote keys fetched.
std::uint64_t serve_and_count(const workloads::Workload& wl,
                              const core::OptimizedPipeline& p,
                              const std::vector<data::Batch>& stream,
                              bool e2e_cache) {
  wl.tables->reset_stats();
  serving::EndToEndCache cache(0);
  for (const auto& q : stream) {
    if (e2e_cache) {
      if (auto hit = cache.get(q)) continue;
      cache.put(q, p.predict_one(q));
    } else {
      (void)p.predict_one(q);
    }
  }
  std::uint64_t keys = 0;
  for (const auto& c : wl.tables->clients()) {
    keys += c->stats().keys_fetched.load();
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Reduction in remote requests (%)", "Willump paper, Table 2");
  TablePrinter table({"configuration", "music", "tracking"}, 34);
  table.print_header();

  struct Config {
    const char* label;
    bool e2e_cache, feature_cache, cascades;
  };
  const Config configs[] = {
      {"End-to-end Caching + No Cascades", true, false, false},
      {"Feature-Level Caching + No Cascades", false, true, false},
      {"No Caching + Cascades", false, false, true},
      {"Feature-Level Caching + Cascades", false, true, true},
  };

  std::vector<std::vector<std::string>> rows(4);
  for (auto& r : rows) r.reserve(3);
  for (int i = 0; i < 4; ++i) rows[i].push_back(configs[i].label);

  for (const auto& name : {std::string("music"), std::string("tracking")}) {
    auto wl = make_workload(name);
    wl.tables->set_network(workloads::default_remote_network());

    common::Rng rng(99);
    std::vector<data::Batch> stream;
    const std::size_t kQueries = n_queries();
    stream.reserve(kQueries);
    const auto batch = wl.query_sampler(kQueries, rng);
    for (std::size_t i = 0; i < kQueries; ++i) stream.push_back(batch.row(i));

    // Baseline: compiled pipeline, no caching, no cascades.
    const auto baseline_p = optimize(wl, compiled_config());
    const auto baseline_keys = serve_and_count(wl, baseline_p, stream, false);

    for (int i = 0; i < 4; ++i) {
      core::OptimizeOptions opts;
      opts.cascades = configs[i].cascades;
      opts.feature_cache = configs[i].feature_cache;
      const auto p = optimize(wl, opts);
      const auto keys = serve_and_count(wl, p, stream, configs[i].e2e_cache);
      const double reduction =
          100.0 * (1.0 - static_cast<double>(keys) /
                             static_cast<double>(baseline_keys));
      rows[static_cast<std::size_t>(i)].push_back(fmt("%.1f%%", reduction));
    }
  }

  for (const auto& r : rows) table.print_row(r);
  std::printf(
      "\nPaper shape: feature-level caching removes far more requests than\n"
      "end-to-end caching (92.3%% vs 0.8%% on Music, 50.1%% vs 22.1%% on\n"
      "Tracking); cascades alone remove 29-42%%; combined 71-93%%.\n");
  return 0;
}
