// §6.4 "Weld Drivers": overhead of the compiled engine's drivers (input
// marshaling / operand gathering around each fused block) as a fraction of
// total execution time, per benchmark. The paper reports at most 1.6% and
// under 0.5% for five of six benchmarks; our O(1)-view drivers should also
// be a small fraction. Implemented with google-benchmark for the timing
// loops plus a summary table.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

namespace {

struct Probe {
  std::string name;
  double overhead_fraction;
  std::size_t block_entries;
};

std::vector<Probe>& probes() {
  static std::vector<Probe> p;
  return p;
}

void bm_compiled_features(benchmark::State& state, const std::string& name) {
  const auto wl = make_workload(name);
  const auto p = optimize(wl, compiled_config());
  core::DriverStats drivers;
  core::ExecOptions opts;
  opts.drivers = &drivers;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.executor().compute_blocks(wl.test.inputs, opts));
  }
  probes().push_back({name, drivers.overhead_fraction(), drivers.block_entries});
  state.counters["driver_frac"] = drivers.overhead_fraction();
}

}  // namespace

int main(int argc, char** argv) {
  parse_args(argc, argv);
  for (const auto& name : all_workloads()) {
    benchmark::RegisterBenchmark(("drivers/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   bm_compiled_features(s, name);
                                 })
        ->Iterations(3)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  print_banner("Driver overhead per benchmark", "Willump paper, §6.4 (Weld Drivers)");
  TablePrinter table({"benchmark", "driver_overhead", "block_entries"}, 18);
  table.print_header();
  for (const auto& p : probes()) {
    table.print_row({p.name, fmt("%.2f%%", p.overhead_fraction * 100.0),
                     fmt("%.0f", static_cast<double>(p.block_entries))});
  }
  std::printf(
      "\nPaper shape: driver overhead never exceeds 1.6%% of runtime and is\n"
      "under 0.5%% for five of six benchmarks.\n");
  return 0;
}
