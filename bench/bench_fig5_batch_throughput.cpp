// Figure 5: batch-query throughput of the six benchmarks under three
// configurations — unoptimized Python baseline, Willump compilation, and
// Willump compilation + end-to-end cascades. Tables stored locally (so for
// Music/Tracking, feature computation is cheap and cascades should help
// little — the paper's "surprising" local-table result, §6.3).

#include "bench_util.hpp"

using namespace willump;
using namespace willump::bench;

int main(int argc, char** argv) {
  parse_args(argc, argv);
  print_banner("Batch-query throughput (rows/s)", "Willump paper, Figure 5");
  TablePrinter table(
      {"benchmark", "python", "compiled", "+cascades", "speedupC", "speedupK"});
  table.print_header();

  for (const auto& name : all_workloads()) {
    const auto wl = make_workload(name);
    const std::size_t rows = wl.test.inputs.num_rows();

    const auto python = optimize(wl, python_config());
    const auto compiled = optimize(wl, compiled_config());

    const double py_tput = throughput_rows_per_sec(
        rows, 3, [&] { (void)python.predict(wl.test.inputs); });
    const double c_tput = throughput_rows_per_sec(
        rows, 3, [&] { (void)compiled.predict(wl.test.inputs); });

    double k_tput = 0.0;
    if (wl.classification) {
      const auto cascaded = optimize(wl, cascades_config());
      k_tput = throughput_rows_per_sec(
          rows, 3, [&] { (void)cascaded.predict(wl.test.inputs); });
    }

    table.print_row({name, fmt("%.0f", py_tput), fmt("%.0f", c_tput),
                     wl.classification ? fmt("%.0f", k_tput) : "N/A",
                     fmt("%.2fx", c_tput / py_tput),
                     wl.classification ? fmt("%.2fx", k_tput / c_tput) : "-"});
  }

  std::printf(
      "\nspeedupC = compiled vs python; speedupK = cascades vs compiled.\n"
      "Paper shape: compilation 3.2-4.3x on Product/Music/Toxic/Tracking and\n"
      "1.1-1.4x on Credit/Price; cascades 2.1-4.1x on Product/Toxic but little\n"
      "on Music/Tracking with local tables (features <10%% of runtime).\n");
  return 0;
}
