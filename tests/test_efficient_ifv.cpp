#include "core/efficient_ifv.hpp"

#include <gtest/gtest.h>

namespace willump::core {
namespace {

TEST(EfficientIfv, PicksMostCostEffectiveUnderBudget) {
  // CE ratios: 10, 5, 0.1. Total cost 3: budget 1.5.
  const std::vector<double> imp{10.0, 5.0, 0.1};
  const std::vector<double> cost{1.0, 1.0, 1.0};
  const auto r = select_efficient_ifvs(imp, cost, 0.0);
  EXPECT_TRUE(r.mask[0]);
  // Adding a second unit of cost would hit 2.0 > 1.5: half-cost rule skips.
  EXPECT_FALSE(r.mask[1]);
  EXPECT_FALSE(r.mask[2]);
  EXPECT_DOUBLE_EQ(r.selected_cost, 1.0);
  EXPECT_DOUBLE_EQ(r.total_cost, 3.0);
}

TEST(EfficientIfv, HalfCostRuleSkipsButContinues) {
  // The most cost-effective candidate is too big, but a later cheap one fits.
  const std::vector<double> imp{100.0, 1.0, 0.5};
  const std::vector<double> cost{6.0, 1.0, 1.0};  // total 8, budget 4
  const auto r = select_efficient_ifvs(imp, cost, 0.0);
  EXPECT_FALSE(r.mask[0]);  // 6 > 4
  EXPECT_TRUE(r.mask[1]);
  EXPECT_TRUE(r.mask[2]);
}

TEST(EfficientIfv, GammaRuleStopsOnCostEffectivenessCliff) {
  // First IFV: CE 10. Later IFVs: CE 0.625 and 0.1. With gamma 0.25 the
  // next candidate falls below 0.25*10 and the loop breaks.
  const std::vector<double> imp{100.0, 1.0, 50.0};
  const std::vector<double> cost{10.0, 10.0, 80.0};  // total 100, budget 50
  const auto r = select_efficient_ifvs(imp, cost, 0.25);
  EXPECT_TRUE(r.mask[0]);
  EXPECT_FALSE(r.mask[1]);
  EXPECT_FALSE(r.mask[2]);
}

TEST(EfficientIfv, NearFreeIfvsAlwaysIncluded) {
  // IFV 0 costs under 2% of the pipeline: it joins the efficient set
  // unconditionally and does NOT poison the gamma-rule average, so the
  // substantive IFV 1 is still considered (and selected) afterwards.
  const std::vector<double> imp{5.0, 10.0, 8.0};
  const std::vector<double> cost{0.01, 1.0, 4.0};  // total 5.01, budget 2.5
  const auto r = select_efficient_ifvs(imp, cost, 0.25);
  EXPECT_TRUE(r.mask[0]);   // free
  EXPECT_TRUE(r.mask[1]);   // substantive, fits budget
  EXPECT_FALSE(r.mask[2]);  // would exceed the half-cost budget
}

TEST(EfficientIfv, GammaZeroDisablesCliffRule) {
  const std::vector<double> imp{100.0, 1.0};
  const std::vector<double> cost{1.0, 1.0};  // total 2, budget 1... both too big
  const auto r = select_efficient_ifvs(imp, cost, 0.0);
  // Budget allows only the first (cost 1 <= 1).
  EXPECT_TRUE(r.mask[0]);
  EXPECT_FALSE(r.mask[1]);
}

TEST(EfficientIfv, FirstCandidateAlwaysPassesGamma) {
  // avgCE is 0 for an empty set, so the gamma rule cannot reject the first.
  const std::vector<double> imp{0.001};
  const std::vector<double> cost{1.0};
  const auto r = select_efficient_ifvs(imp, cost, 0.9);
  // (Still rejected by the half-cost rule: 1 > 0.5.)
  EXPECT_TRUE(r.empty());
}

TEST(EfficientIfv, EmptyInput) {
  const auto r = select_efficient_ifvs({}, {}, 0.25);
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

TEST(EfficientIfv, TypicalTwoOfThreeSelection) {
  // Mirrors the Product shape: near-free informative stats (auto-included),
  // medium word-tfidf (selected on cost-effectiveness), expensive
  // char-tfidf (rejected by the half-cost budget).
  const std::vector<double> imp{3.0, 5.0, 4.0};
  const std::vector<double> cost{0.1, 1.0, 6.0};  // total 7.1, budget 3.55
  const auto r = select_efficient_ifvs(imp, cost, 0.1);
  EXPECT_TRUE(r.mask[0]);
  EXPECT_TRUE(r.mask[1]);
  EXPECT_FALSE(r.mask[2]);
  EXPECT_EQ(r.num_selected(), 2u);
}

TEST(SelectionPolicy, MostImportantIgnoresCost) {
  const std::vector<double> imp{10.0, 9.0, 1.0};
  const std::vector<double> cost{2.0, 5.0, 1.0};  // total 8, budget 4
  const auto r = select_by_policy(SelectionPolicy::MostImportant, imp, cost, 0.25);
  EXPECT_TRUE(r.mask[0]);   // most important fits (cost 2)
  EXPECT_FALSE(r.mask[1]);  // second would exceed budget (2+5 > 4)
  EXPECT_TRUE(r.mask[2]);   // least important but still fits (2+1 <= 4)
}

TEST(SelectionPolicy, CheapestIgnoresImportance) {
  const std::vector<double> imp{0.0, 0.0, 100.0};
  const std::vector<double> cost{1.0, 2.0, 10.0};  // total 13, budget 6.5
  const auto r = select_by_policy(SelectionPolicy::Cheapest, imp, cost, 0.25);
  EXPECT_TRUE(r.mask[0]);
  EXPECT_TRUE(r.mask[1]);
  EXPECT_FALSE(r.mask[2]);
}

TEST(SelectionPolicy, WillumpDelegatesToAlgorithm1) {
  const std::vector<double> imp{3.0, 5.0, 4.0};
  const std::vector<double> cost{0.1, 1.0, 6.0};
  const auto a = select_by_policy(SelectionPolicy::Willump, imp, cost, 0.25);
  const auto b = select_efficient_ifvs(imp, cost, 0.25);
  EXPECT_EQ(a.mask, b.mask);
}

}  // namespace
}  // namespace willump::core
