// Unit tests for the bump-pointer request arena and the per-worker
// ExecScratch built on it: alignment, chunk growth, reset/reuse semantics,
// and the accounting counters the memory bench asserts on.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/arena.hpp"
#include "core/executors.hpp"

namespace willump {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  common::Arena a(256);
  void* p1 = a.allocate(3, 1);
  void* p2 = a.allocate(8, 8);
  void* p3 = a.allocate(1, 64);
  EXPECT_NE(p1, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p3) % 64, 0u);
  // Disjoint: writing one region never touches another.
  std::memset(p1, 0xAA, 3);
  std::memset(p2, 0xBB, 8);
  std::memset(p3, 0xCC, 1);
  EXPECT_EQ(static_cast<std::uint8_t*>(p1)[0], 0xAA);
  EXPECT_EQ(static_cast<std::uint8_t*>(p2)[7], 0xBB);
  EXPECT_EQ(static_cast<std::uint8_t*>(p3)[0], 0xCC);
}

TEST(Arena, MakeSpanIsTypedAndSized) {
  common::Arena a;
  auto s = a.make_span<double>(17);
  ASSERT_EQ(s.size(), 17u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % alignof(double), 0u);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<double>(i);
  EXPECT_EQ(s[16], 16.0);
}

TEST(Arena, ResetReusesRetainedChunks) {
  common::Arena a(128);
  void* first = a.allocate(64, 8);
  const std::uint64_t chunks_after_warmup = a.chunk_allocations();
  a.reset();
  EXPECT_EQ(a.bytes_in_use(), 0u);
  // Same alignment + same request after reset lands on the same cursor; no
  // new chunk is acquired.
  void* again = a.allocate(64, 8);
  EXPECT_EQ(first, again);
  EXPECT_EQ(a.chunk_allocations(), chunks_after_warmup);
}

TEST(Arena, SteadyStateStopsAcquiringChunks) {
  common::Arena a(64);
  // Warm up to a high-water mark that spans several chunks.
  for (int round = 0; round < 3; ++round) {
    a.reset();
    for (int i = 0; i < 32; ++i) (void)a.allocate(48, 8);
  }
  const std::uint64_t settled = a.chunk_allocations();
  for (int round = 0; round < 10; ++round) {
    a.reset();
    for (int i = 0; i < 32; ++i) (void)a.allocate(48, 8);
  }
  EXPECT_EQ(a.chunk_allocations(), settled);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  common::Arena a(64);
  auto big = a.make_span<std::uint8_t>(10000);
  ASSERT_EQ(big.size(), 10000u);
  std::memset(big.data(), 0x5A, big.size());
  EXPECT_GE(a.bytes_reserved(), 10000u);
  EXPECT_GE(a.bytes_in_use(), 10000u);
}

TEST(Arena, ReleaseDropsEverything) {
  common::Arena a(128);
  (void)a.allocate(1000, 8);
  EXPECT_GT(a.bytes_reserved(), 0u);
  a.release();
  EXPECT_EQ(a.bytes_reserved(), 0u);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  // Still usable afterwards.
  EXPECT_NE(a.allocate(16, 8), nullptr);
}

TEST(ExecScratch, BeginResetsBindingsAndArenaButKeepsCapacity) {
  core::ExecScratch s(128);
  s.begin(4);
  ASSERT_EQ(s.store.size(), 4u);
  ASSERT_EQ(s.source_bound.size(), 4u);
  s.source_bound[2] = 1;
  (void)s.arena.allocate(64, 8);
  EXPECT_GT(s.arena.bytes_in_use(), 0u);

  s.begin(4);  // same graph: bindings cleared, store slots retained
  EXPECT_EQ(s.store.size(), 4u);
  EXPECT_EQ(s.source_bound[2], 0);
  EXPECT_EQ(s.arena.bytes_in_use(), 0u);

  s.begin(7);  // different graph: store resized
  EXPECT_EQ(s.store.size(), 7u);
  EXPECT_EQ(s.source_bound.size(), 7u);
}

TEST(ExecScratch, RequestScratchGateTogglesProcessWide) {
  core::set_request_scratch_enabled(false);
  EXPECT_EQ(core::request_scratch(), nullptr);
  core::set_request_scratch_enabled(true);
  core::ExecScratch* sc = core::request_scratch();
  ASSERT_NE(sc, nullptr);
  // thread_local: the same thread sees the same instance.
  EXPECT_EQ(core::request_scratch(), sc);
}

}  // namespace
}  // namespace willump
