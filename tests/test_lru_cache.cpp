#include "common/lru_cache.hpp"

#include <gtest/gtest.h>

#include <string>

namespace willump::common {
namespace {

TEST(LruCache, MissThenHit) {
  LruCache<int, std::string> c(4);
  EXPECT_FALSE(c.get(1).has_value());
  c.put(1, "one");
  const auto v = c.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  ASSERT_TRUE(c.get(1).has_value());  // 1 is now most recent
  c.put(3, 30);                       // evicts 2
  EXPECT_FALSE(c.get(2).has_value());
  EXPECT_TRUE(c.get(1).has_value());
  EXPECT_TRUE(c.get(3).has_value());
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruCache, PutRefreshesRecency) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(1, 11);  // overwrite refreshes 1
  c.put(3, 30);  // evicts 2
  EXPECT_FALSE(c.get(2).has_value());
  EXPECT_EQ(*c.get(1), 11);
}

TEST(LruCache, ZeroCapacityIsUnbounded) {
  LruCache<int, int> c(0);
  for (int i = 0; i < 1000; ++i) c.put(i, i);
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_EQ(c.evictions(), 0u);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(c.get(i).has_value());
  }
}

TEST(LruCache, OverwriteKeepsSize) {
  LruCache<int, int> c(4);
  c.put(1, 10);
  c.put(1, 20);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(*c.get(1), 20);
}

TEST(LruCache, ClearResetsEverything) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  (void)c.get(1);
  (void)c.get(2);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.contains(1));
}

TEST(LruCache, HitRate) {
  LruCache<int, int> c(8);
  c.put(1, 1);
  (void)c.get(1);
  (void)c.get(1);
  (void)c.get(2);
  EXPECT_NEAR(c.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(LruCache, CapacityOne) {
  LruCache<int, int> c(1);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(*c.get(2), 20);
}

}  // namespace
}  // namespace willump::common
