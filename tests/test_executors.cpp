#include "core/executors.hpp"

#include <gtest/gtest.h>

#include "ops/concat.hpp"
#include "ops/lookup.hpp"
#include "ops/scale.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"

namespace willump::core {
namespace {

std::shared_ptr<ops::TfIdfModel> tiny_tfidf(ops::Analyzer a) {
  ops::TfIdfConfig cfg;
  cfg.analyzer = a;
  cfg.min_df = 1;
  if (a == ops::Analyzer::Char) cfg.ngrams = {2, 3};
  return std::make_shared<ops::TfIdfModel>(ops::TfIdfModel::fit(
      {"red fox", "blue fox!", "red dog", "Big Blue Cat"}, cfg));
}

/// The shared test graph: stats + word tfidf (behind lower+strip) + char
/// tfidf (behind lower). `lower` is preprocessing.
Graph make_graph() {
  Graph g;
  const int title = g.add_source("title", data::ColumnType::String);
  const int stats =
      g.add_transform("stats", std::make_shared<ops::StringStatsOp>(), {title});
  const int lower =
      g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {title});
  const int strip =
      g.add_transform("strip", std::make_shared<ops::StripPunctOp>(), {lower});
  const int word = g.add_transform(
      "word", std::make_shared<ops::TfIdfOp>(tiny_tfidf(ops::Analyzer::Word)),
      {strip});
  const int chars = g.add_transform(
      "char", std::make_shared<ops::TfIdfOp>(tiny_tfidf(ops::Analyzer::Char)),
      {lower});
  const int cat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                  {stats, word, chars});
  g.set_output(cat);
  return g;
}

data::Batch make_batch() {
  data::Batch b;
  b.add("title", data::Column(data::StringColumn{
                     "Red FOX!", "blue cat", "", "dog dog dog", "Big Blue"}));
  return b;
}

void expect_matrices_equal(const data::FeatureMatrix& a,
                           const data::FeatureMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  const auto da = a.is_dense() ? a.dense() : a.sparse().to_dense();
  const auto db = b.is_dense() ? b.dense() : b.sparse().to_dense();
  for (std::size_t r = 0; r < da.rows(); ++r) {
    for (std::size_t c = 0; c < da.cols(); ++c) {
      ASSERT_NEAR(da(r, c), db(r, c), 1e-12) << "row " << r << " col " << c;
    }
  }
}

TEST(Executors, CompiledMatchesInterpreted) {
  Graph g = make_graph();
  CompiledExecutor compiled(g, analyze_ifvs(g));
  InterpretedExecutor interp(g, analyze_ifvs(g));
  const auto batch = make_batch();
  expect_matrices_equal(compiled.compute_matrix(batch),
                        interp.compute_matrix(batch));
}

TEST(Executors, MaskComputesOnlySelectedBlocks) {
  Graph g = make_graph();
  CompiledExecutor ex(g, analyze_ifvs(g));
  ExecOptions opts;
  opts.fg_mask = {true, false, true};
  const auto blocks = ex.compute_blocks(make_batch(), opts);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_GT(blocks[0].cols(), 0u);
  EXPECT_EQ(blocks[1].cols(), 0u);  // masked out
  EXPECT_GT(blocks[2].cols(), 0u);
}

TEST(Executors, SubsetAssemblyMatchesColumnSliceOfFull) {
  Graph g = make_graph();
  CompiledExecutor ex(g, analyze_ifvs(g));
  const auto batch = make_batch();
  ex.probe_layout(batch);

  const auto full = ex.compute_matrix(batch);
  ExecOptions opts;
  opts.fg_mask = {true, false, true};
  const auto subset = ex.compute_matrix(batch, opts);

  const auto cols = ex.analysis().columns_of(opts.fg_mask);
  ASSERT_EQ(subset.cols(), cols.size());
  const auto df = full.is_dense() ? full.dense() : full.sparse().to_dense();
  const auto ds = subset.is_dense() ? subset.dense() : subset.sparse().to_dense();
  for (std::size_t r = 0; r < df.rows(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      ASSERT_NEAR(ds(r, c), df(r, cols[c]), 1e-12);
    }
  }
}

TEST(Executors, ProbeLayoutRecordsWidths) {
  Graph g = make_graph();
  CompiledExecutor ex(g, analyze_ifvs(g));
  ex.probe_layout(make_batch());
  const auto& a = ex.analysis();
  ASSERT_EQ(a.block_cols.size(), 3u);
  EXPECT_EQ(a.block_cols[0], ops::StringStatsOp::kNumFeatures);
  EXPECT_EQ(a.col_begin[0], 0u);
  EXPECT_EQ(a.col_begin[1], a.block_cols[0]);
  EXPECT_EQ(a.total_cols(),
            a.block_cols[0] + a.block_cols[1] + a.block_cols[2]);
}

TEST(Executors, FusionChainsStringMaps) {
  Graph g = make_graph();
  const auto plan = compile_plan(g, analyze_ifvs(g));
  // FG "word" contains strip -> tfidf; strip alone is a 1-node step (lower
  // is preprocessing). Build a graph with lower+strip inside one generator
  // to see a fused chain.
  Graph g2;
  const int t = g2.add_source("t", data::ColumnType::String);
  const int stats = g2.add_transform("stats", std::make_shared<ops::StringStatsOp>(), {t});
  const int lo = g2.add_transform("lo", std::make_shared<ops::LowercaseOp>(), {t});
  const int st = g2.add_transform("st", std::make_shared<ops::StripPunctOp>(), {lo});
  const int w = g2.add_transform(
      "w", std::make_shared<ops::TfIdfOp>(tiny_tfidf(ops::Analyzer::Word)), {st});
  const int cat = g2.add_transform("cat", std::make_shared<ops::ConcatOp>(), {stats, w});
  g2.set_output(cat);

  const auto plan2 = compile_plan(g2, analyze_ifvs(g2));
  // Generator 1 (word) = fused(lo, st) + tfidf.
  ASSERT_EQ(plan2.fg_steps[1].size(), 2u);
  EXPECT_TRUE(plan2.fg_steps[1][0].fused());
  EXPECT_EQ(plan2.fg_steps[1][0].nodes.size(), 2u);
  EXPECT_FALSE(plan2.fg_steps[1][1].fused());
  (void)plan;

  // Fused execution must equal interpreted execution.
  CompiledExecutor compiled(g2, analyze_ifvs(g2));
  InterpretedExecutor interp(g2, analyze_ifvs(g2));
  const auto batch = make_batch();
  data::Batch b2;
  b2.add("t", batch.get("title"));
  expect_matrices_equal(compiled.compute_matrix(b2), interp.compute_matrix(b2));
}

TEST(Executors, SortingHoistsPythonNodes) {
  // Graph where a non-compilable lookup sits late in construction order but
  // can execute early: hoisting should reduce language transitions.
  auto table = std::make_shared<store::FeatureTable>("t", 2);
  table->put(0, data::DenseVector({1.0, 2.0}));
  auto client =
      std::make_shared<store::TableClient>(table, store::NetworkModel{});

  Graph g;
  const int key = g.add_source("key", data::ColumnType::Int);
  const int txt = g.add_source("txt", data::ColumnType::String);
  const int lo = g.add_transform("lo", std::make_shared<ops::LowercaseOp>(), {txt});
  const int w = g.add_transform(
      "w", std::make_shared<ops::TfIdfOp>(tiny_tfidf(ops::Analyzer::Word)), {lo});
  const int lk =
      g.add_transform("lk", std::make_shared<ops::TableLookupOp>(client), {key});
  const int cat = g.add_transform("cat", std::make_shared<ops::ConcatOp>(), {w, lk});
  g.set_output(cat);

  const auto plan = compile_plan(g, analyze_ifvs(g));
  EXPECT_LE(plan.transitions_after, plan.transitions_before);
  // lookup moved before the compilable run: compiled block is contiguous.
  EXPECT_EQ(plan.transitions_after, 1);
}

TEST(Executors, DriverOverheadIsSmallFraction) {
  Graph g = make_graph();
  CompiledExecutor ex(g, analyze_ifvs(g));
  // A reasonably large batch so kernels dominate.
  data::StringColumn col;
  for (int i = 0; i < 2000; ++i) col.push_back("the quick red fox " + std::to_string(i));
  data::Batch batch;
  batch.add("title", data::Column(std::move(col)));

  DriverStats drivers;
  ExecOptions opts;
  opts.drivers = &drivers;
  (void)ex.compute_blocks(batch, opts);
  EXPECT_GT(drivers.block_entries, 0u);
  EXPECT_LT(drivers.overhead_fraction(), 0.2);
}

TEST(Executors, ProfilerRecordsPerNodeCosts) {
  Graph g = make_graph();
  CompiledExecutor ex(g, analyze_ifvs(g));
  runtime::Profiler prof;
  ExecOptions opts;
  opts.profiler = &prof;
  (void)ex.compute_blocks(make_batch(), opts);
  // Every generator output node has a recorded time.
  for (const auto& fg : ex.analysis().generators) {
    EXPECT_GT(prof.calls(fg.output_node), 0u);
  }
}

TEST(Executors, ParallelPointwiseMatchesSequential) {
  Graph g = make_graph();
  CompiledExecutor ex(g, analyze_ifvs(g));
  ex.set_fg_costs({1.0, 2.0, 3.0});
  runtime::ThreadPool pool(2);
  const auto batch = make_batch().row(0);

  ExecOptions seq;
  ExecOptions par;
  par.pool = &pool;
  expect_matrices_equal(ex.compute_matrix(batch, seq),
                        ex.compute_matrix(batch, par));
}

TEST(Executors, ParallelBatchMatchesSequential) {
  Graph g = make_graph();
  CompiledExecutor ex(g, analyze_ifvs(g));
  runtime::ThreadPool pool(3);
  const auto batch = make_batch();
  ExecOptions par;
  par.pool = &pool;
  expect_matrices_equal(ex.compute_matrix(batch, {}),
                        ex.compute_matrix(batch, par));
}

TEST(Executors, PostChainAppliedToSubsets) {
  // graph: stats/keyword blocks -> concat -> scale -> output.
  Graph g;
  const int x = g.add_source("x", data::ColumnType::String);
  const int stats = g.add_transform("stats", std::make_shared<ops::StringStatsOp>(), {x});
  const int kw = g.add_transform(
      "kw", std::make_shared<ops::KeywordCountOp>(std::vector<std::string>{"fox"}),
      {x});
  const int cat = g.add_transform("cat", std::make_shared<ops::ConcatOp>(), {stats, kw});
  const std::size_t total = ops::StringStatsOp::kNumFeatures + 2;
  std::vector<double> scale(total);
  for (std::size_t i = 0; i < total; ++i) scale[i] = static_cast<double>(i + 1);
  const int sc = g.add_transform(
      "scale", std::make_shared<ops::ScaleOp>(scale, std::vector<double>(total, 0.0)),
      {cat});
  g.set_output(sc);

  CompiledExecutor ex(g, analyze_ifvs(g));
  data::Batch batch;
  batch.add("x", data::Column(data::StringColumn{"red fox jumps"}));
  ex.probe_layout(batch);

  const auto full = ex.compute_matrix(batch).dense();
  ExecOptions opts;
  opts.fg_mask = {false, true};  // keyword block only (global cols 6,7)
  const auto sub = ex.compute_matrix(batch, opts).dense();
  ASSERT_EQ(sub.cols(), 2u);
  EXPECT_NEAR(sub(0, 0), full(0, ops::StringStatsOp::kNumFeatures), 1e-12);
  EXPECT_NEAR(sub(0, 1), full(0, ops::StringStatsOp::kNumFeatures + 1), 1e-12);
}

TEST(Executors, EmptyBatchProducesEmptyBlocks) {
  Graph g = make_graph();
  CompiledExecutor ex(g, analyze_ifvs(g));
  data::Batch batch;
  batch.add("title", data::Column(data::StringColumn{}));
  const auto m = ex.compute_matrix(batch);
  EXPECT_EQ(m.rows(), 0u);
}

}  // namespace
}  // namespace willump::core
