#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "models/linear.hpp"
#include "models/metrics.hpp"
#include "test_support.hpp"

namespace willump::core {
namespace {

// Shared Product workload (generated once per process; see test_support).
const workloads::Workload& small_product() {
  return willump::testing::shared_product_wl();
}

// Shared small Toxic workload for the cascade-stats tests below.
const workloads::Workload& small_toxic() {
  static const workloads::Workload wl = willump::testing::small_toxic();
  return wl;
}

TEST(Optimizer, InterpretedAndCompiledAgree) {
  const auto& wl = small_product();
  OptimizeOptions interp_opts;
  interp_opts.compile = false;
  const auto interp =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, interp_opts);
  const auto compiled =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});

  const auto pi = interp.predict(wl.test.inputs);
  const auto pc = compiled.predict(wl.test.inputs);
  ASSERT_EQ(pi.size(), pc.size());
  for (std::size_t i = 0; i < pi.size(); ++i) {
    ASSERT_NEAR(pi[i], pc[i], 1e-9);
  }
}

TEST(Optimizer, CascadesKeepAccuracyWithinCi) {
  const auto& wl = small_product();
  OptimizeOptions opts;
  opts.cascades = true;
  const auto cascaded =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  const auto plain =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});

  const double acc_c =
      models::accuracy(cascaded.predict(wl.test.inputs), wl.test.targets);
  const double acc_f =
      models::accuracy(plain.predict(wl.test.inputs), wl.test.targets);
  EXPECT_TRUE(common::accuracy_within_ci95(acc_c, acc_f, wl.test.targets.size()));
}

TEST(Optimizer, PredictOneMatchesBatch) {
  const auto& wl = small_product();
  const auto p = WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});
  const auto batch_preds = p.predict(wl.test.inputs);
  for (std::size_t r : {std::size_t{0}, std::size_t{5}, std::size_t{99}}) {
    EXPECT_NEAR(p.predict_one(wl.test.inputs.row(r)), batch_preds[r], 1e-9);
  }
  EXPECT_THROW(p.predict_one(wl.test.inputs), std::invalid_argument);
}

TEST(Optimizer, ParallelPredictionsMatchSequential) {
  const auto& wl = small_product();
  OptimizeOptions par_opts;
  par_opts.parallel_threads = 3;
  const auto par =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, par_opts);
  const auto seq = WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(par.predict_one(wl.test.inputs.row(r)),
                seq.predict_one(wl.test.inputs.row(r)), 1e-9);
  }
}

TEST(Optimizer, TopKFilterProducesRanking) {
  const auto& wl = small_product();
  OptimizeOptions opts;
  opts.topk_filter = true;
  const auto p = WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  const auto top = p.top_k(wl.test.inputs, 25);
  EXPECT_EQ(top.size(), 25u);
  EXPECT_GT(p.topk_stats().subset_size, 25u);
  EXPECT_LT(p.topk_stats().subset_size, wl.test.inputs.num_rows());
}

TEST(Optimizer, RegressionPipelineNeverCascades) {
  // Toxic has a classifier; flip logic is covered elsewhere. Here: force a
  // regression prototype through the cascade flag and check it is ignored.
  auto wl = small_product();
  wl.pipeline.model_proto =
      std::make_shared<models::LinearRegression>(models::LinearConfig{});
  OptimizeOptions opts;
  opts.cascades = true;
  const auto p = WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  EXPECT_FALSE(p.cascades_enabled());
  // Predictions still work (full model path).
  EXPECT_EQ(p.predict(wl.test.inputs).size(), wl.test.inputs.num_rows());
}

TEST(Optimizer, RunStatsTrackShortCircuits) {
  const auto& wl = small_toxic();
  OptimizeOptions opts;
  opts.cascades = true;
  const auto p = WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  ASSERT_TRUE(p.cascades_enabled());
  (void)p.predict(wl.test.inputs);
  EXPECT_EQ(p.run_stats().total_rows, wl.test.inputs.num_rows());
  EXPECT_GT(p.run_stats().short_circuit_rate(), 0.0);
}

TEST(Optimizer, PredictFullIgnoresCascades) {
  const auto& wl = small_toxic();
  OptimizeOptions opts;
  opts.cascades = true;
  const auto p = WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  const auto full = p.predict_full(wl.test.inputs);
  const auto casc = p.predict(wl.test.inputs);
  // predict_full bypasses the cascade: raw scores differ on at least one
  // short-circuited row (those come from the small model).
  std::size_t score_differs = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] != casc[i]) ++score_differs;
  }
  EXPECT_GT(score_differs, 0u);
  // The accuracy bound is statistical, not a fixture-tuned constant: the
  // trainer guarantees the cascade's accuracy loss is within the configured
  // target, which the paper (§6.3) calls insignificant when it falls inside
  // the full model's binomial 95% CI on the evaluation set. Assert exactly
  // that criterion on the test split.
  const std::size_t n = wl.test.targets.size();
  const double acc_full = models::accuracy(full, wl.test.targets);
  const double acc_casc = models::accuracy(casc, wl.test.targets);
  EXPECT_TRUE(common::accuracy_within_ci95(acc_casc, acc_full, n))
      << "cascade accuracy " << acc_casc << " outside the 95% CI of full-model "
      << "accuracy " << acc_full << " over " << n << " trials";
}

}  // namespace
}  // namespace willump::core
