// Parity suite for the vectorized feature-operator kernels and the
// zero-copy blocked feature pipeline (DESIGN.md §10).
//
// The contract mirrors the prediction-kernel layer's (test_kernels.cpp):
// every feature-op variant is BIT-EXACT with its row-wise reference, so the
// assertions here are EXPECT_EQ on doubles, not tolerances —
//  - blocked TF-IDF (transform_into, either vocabulary-lookup strategy)
//    reproduces transform_one's arithmetic per document;
//  - the compiled executor's zero-copy planned assembly (dense plan,
//    single-sparse plan, mixed fused concat, any block_rows) produces the
//    same matrix as the reference compute_blocks + pairwise-hconcat path,
//    full and masked, including the post-concatenation chain;
//  - sparse GBDT CSR traversal == densify-block traversal == dense input;
//  - op-level configs round-trip exactly and corrupt bytes are rejected;
//  - a saved artifact cold-starts with the executor's tuned/forced
//    feature-op config installed.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "core/executors.hpp"
#include "core/ifv_analysis.hpp"
#include "core/optimizer.hpp"
#include "data/matrix.hpp"
#include "kernels/dispatch.hpp"
#include "models/gbdt.hpp"
#include "models/linear.hpp"
#include "ops/concat.hpp"
#include "ops/encoders.hpp"
#include "ops/scale.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"
#include "serialize/artifact.hpp"
#include "serialize/buffer.hpp"
#include "serialize/error.hpp"

namespace willump {
namespace {

using kernels::FeatureOpConfig;
using kernels::LookupVariant;

// --- corpus helpers --------------------------------------------------------

const std::vector<std::string>& word_pool() {
  static const std::vector<std::string> pool{
      "red",  "blue",  "fox",  "dog",  "cat",  "bird", "runs", "sat",
      "flew", "big",   "tiny", "old",  "fast", "slow", "the",  "a",
      "wild", "quiet", "loud", "hill", "lake", "tree", "road", "sky"};
  return pool;
}

std::string random_doc(common::Rng& rng, std::size_t max_words = 12) {
  const auto& pool = word_pool();
  const std::size_t n =
      1 + static_cast<std::size_t>(rng.next_double() * static_cast<double>(max_words));
  std::string doc;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) doc += ' ';
    doc += pool[static_cast<std::size_t>(rng.next_double() *
                                         static_cast<double>(pool.size()))];
  }
  return doc;
}

data::StringColumn random_docs(std::size_t n, common::Rng& rng) {
  data::StringColumn docs(n);
  for (auto& d : docs) d = random_doc(rng);
  return docs;
}

ops::TfIdfModel fitted_tfidf(ops::Analyzer a, common::Rng& rng) {
  ops::TfIdfConfig cfg;
  cfg.analyzer = a;
  cfg.min_df = 1;
  cfg.max_features = 500;
  if (a == ops::Analyzer::Char) cfg.ngrams = {2, 3};
  return ops::TfIdfModel::fit(random_docs(200, rng), cfg);
}

// --- matrix comparison -----------------------------------------------------

/// Bit-exact matrix equality including storage kind: the zero-copy planner
/// must be indistinguishable from the reference path, not merely close.
void expect_bit_equal(const data::FeatureMatrix& got,
                      const data::FeatureMatrix& ref) {
  ASSERT_EQ(got.rows(), ref.rows());
  ASSERT_EQ(got.cols(), ref.cols());
  ASSERT_EQ(got.is_dense(), ref.is_dense());
  if (got.is_dense()) {
    const auto& a = got.dense();
    const auto& b = ref.dense();
    for (std::size_t r = 0; r < a.rows(); ++r) {
      auto ra = a.row(r);
      auto rb = b.row(r);
      for (std::size_t c = 0; c < a.cols(); ++c) {
        ASSERT_EQ(ra[c], rb[c]) << "row " << r << " col " << c;
      }
    }
  } else {
    for (std::size_t r = 0; r < got.rows(); ++r) {
      ASSERT_EQ(got.sparse().row_vector(r), ref.sparse().row_vector(r))
          << "row " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked TF-IDF vs the per-document reference.
// ---------------------------------------------------------------------------

TEST(TfIdfBlocked, BothLookupsMatchTransformOneBitExact) {
  common::Rng rng(41);
  for (const auto analyzer : {ops::Analyzer::Word, ops::Analyzer::Char}) {
    const ops::TfIdfModel m = fitted_tfidf(analyzer, rng);
    for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
      const data::StringColumn docs = random_docs(n, rng);
      for (const auto lookup :
           {LookupVariant::HashMap, LookupVariant::SortedVocab}) {
        ops::TfIdfScratch scratch;
        data::CsrMatrix out(m.vocabulary_size());
        m.transform_into(docs, lookup, scratch, out);
        ASSERT_EQ(out.rows(), n);
        for (std::size_t r = 0; r < n; ++r) {
          ASSERT_EQ(out.row_vector(r), m.transform_one(docs[r]))
              << "n=" << n << " row=" << r
              << " lookup=" << kernels::variant_name(lookup);
        }
      }
    }
  }
}

TEST(TfIdfBlocked, BatchTransformDelegatesToBlockedPath) {
  common::Rng rng(43);
  const ops::TfIdfModel m = fitted_tfidf(ops::Analyzer::Word, rng);
  const data::StringColumn docs = random_docs(64, rng);
  const data::CsrMatrix batch = m.transform(docs);
  ASSERT_EQ(batch.rows(), docs.size());
  for (std::size_t r = 0; r < docs.size(); ++r) {
    EXPECT_EQ(batch.row_vector(r), m.transform_one(docs[r]));
  }
}

TEST(TfIdfBlocked, CopiedModelKeepsBothLookupStrategiesValid) {
  // terms_ holds views into the vocabulary's key nodes; a copy allocates
  // fresh nodes, so the copy must rebuild its index instead of dangling.
  common::Rng rng(47);
  const ops::TfIdfModel original = fitted_tfidf(ops::Analyzer::Word, rng);
  const ops::TfIdfModel copy = original;  // NOLINT(performance-unnecessary-copy)
  const data::StringColumn docs = random_docs(32, rng);
  for (const auto lookup :
       {LookupVariant::HashMap, LookupVariant::SortedVocab}) {
    ops::TfIdfScratch scratch;
    data::CsrMatrix out(copy.vocabulary_size());
    copy.transform_into(docs, lookup, scratch, out);
    for (std::size_t r = 0; r < docs.size(); ++r) {
      EXPECT_EQ(out.row_vector(r), original.transform_one(docs[r]));
    }
  }
}

// ---------------------------------------------------------------------------
// Zero-copy planned assembly vs the reference blocks+hconcat path.
// ---------------------------------------------------------------------------

std::shared_ptr<const ops::TfIdfModel> shared_tfidf(ops::Analyzer a,
                                                    std::uint64_t seed) {
  common::Rng rng(seed);
  return std::make_shared<const ops::TfIdfModel>(fitted_tfidf(a, rng));
}

/// Mixed graph: dense string stats + two sparse TF-IDF generators.
core::Graph mixed_graph() {
  core::Graph g;
  const int title = g.add_source("title", data::ColumnType::String);
  const int stats =
      g.add_transform("stats", std::make_shared<ops::StringStatsOp>(), {title});
  const int lower =
      g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {title});
  const int word = g.add_transform(
      "word", std::make_shared<ops::TfIdfOp>(shared_tfidf(ops::Analyzer::Word, 51)),
      {lower});
  const int chars = g.add_transform(
      "char", std::make_shared<ops::TfIdfOp>(shared_tfidf(ops::Analyzer::Char, 53)),
      {lower});
  const int cat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                  {stats, word, chars});
  g.set_output(cat);
  return g;
}

/// All-dense graph: two NumericColumnsOp generators (both DenseBlockWriter).
core::Graph dense_graph() {
  core::Graph g;
  const int a = g.add_source("a", data::ColumnType::Double);
  const int b = g.add_source("b", data::ColumnType::Double);
  const int k = g.add_source("k", data::ColumnType::Int);
  const int n1 = g.add_transform(
      "num1", std::make_shared<ops::NumericColumnsOp>("num1"), {a, b});
  const int n2 = g.add_transform(
      "num2", std::make_shared<ops::NumericColumnsOp>("num2"), {k});
  const int cat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                  {n1, n2});
  g.set_output(cat);
  return g;
}

/// Single sparse generator whose emitted CSR is the model input directly.
core::Graph single_sparse_graph() {
  core::Graph g;
  const int title = g.add_source("title", data::ColumnType::String);
  const int lower =
      g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {title});
  const int word = g.add_transform(
      "word", std::make_shared<ops::TfIdfOp>(shared_tfidf(ops::Analyzer::Word, 59)),
      {lower});
  g.set_output(word);
  return g;
}

data::Batch string_batch(std::size_t rows, std::uint64_t seed) {
  common::Rng rng(seed);
  data::Batch b;
  b.add("title", data::Column(random_docs(rows, rng)));
  return b;
}

data::Batch numeric_batch(std::size_t rows, std::uint64_t seed) {
  common::Rng rng(seed);
  data::Batch b;
  data::DoubleColumn a(rows), bb(rows);
  data::IntColumn k(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    a[i] = rng.next_gaussian();
    bb[i] = rng.next_bernoulli(0.3) ? 0.0 : rng.next_gaussian();
    k[i] = static_cast<std::int64_t>(i % 17);
  }
  b.add("a", data::Column(std::move(a)));
  b.add("b", data::Column(std::move(bb)));
  b.add("k", data::Column(std::move(k)));
  return b;
}

/// Compare the zero-copy planner against the forced-off reference on one
/// executor, full and masked, across lookup variants and block_rows sizes.
void expect_zero_copy_matches_reference(core::Graph g, const data::Batch& batch,
                                        const std::vector<bool>& mask) {
  core::CompiledExecutor ex(g, core::analyze_ifvs(g));
  ex.probe_layout(batch);
  core::ExecOptions opts;
  opts.fg_mask = mask;

  FeatureOpConfig off;
  off.zero_copy = false;
  ex.set_featureop_config(off);
  const data::FeatureMatrix ref = ex.compute_matrix(batch, opts);

  for (const auto lookup :
       {LookupVariant::HashMap, LookupVariant::SortedVocab}) {
    for (const std::uint32_t block_rows : {1u, 3u, 256u}) {
      FeatureOpConfig on{lookup, block_rows, true};
      ex.set_featureop_config(on);
      expect_bit_equal(ex.compute_matrix(batch, opts), ref);
    }
  }
}

TEST(ZeroCopy, MixedPlanMatchesReferenceBitExact) {
  expect_zero_copy_matches_reference(mixed_graph(), string_batch(37, 61), {});
}

TEST(ZeroCopy, MixedPlanMaskedSubsetsMatchReference) {
  const data::Batch batch = string_batch(29, 67);
  expect_zero_copy_matches_reference(mixed_graph(), batch,
                                     {true, false, true});
  expect_zero_copy_matches_reference(mixed_graph(), batch,
                                     {false, true, false});
}

TEST(ZeroCopy, DensePlanMatchesReferenceBitExact) {
  expect_zero_copy_matches_reference(dense_graph(), numeric_batch(41, 71), {});
  expect_zero_copy_matches_reference(dense_graph(), numeric_batch(17, 73),
                                     {true, false});
}

TEST(ZeroCopy, DensePlanStaysDense) {
  core::Graph g = dense_graph();
  core::CompiledExecutor ex(g, core::analyze_ifvs(g));
  const data::Batch batch = numeric_batch(23, 79);
  ex.probe_layout(batch);
  EXPECT_TRUE(ex.compute_matrix(batch).is_dense());
}

TEST(ZeroCopy, SingleSparseEmitterMatchesReference) {
  expect_zero_copy_matches_reference(single_sparse_graph(),
                                     string_batch(33, 83), {});
}

TEST(ZeroCopy, PostConcatChainStillApplies) {
  // Dense plan with a ScaleOp after the concat: the post-chain must run on
  // the planner's matrix exactly as on the reference path, full and masked
  // (the masked case exercises the ColumnSliceable slice application).
  core::Graph g;
  const int a = g.add_source("a", data::ColumnType::Double);
  const int k = g.add_source("k", data::ColumnType::Int);
  const int n1 = g.add_transform(
      "num1", std::make_shared<ops::NumericColumnsOp>("num1"), {a});
  const int n2 = g.add_transform(
      "num2", std::make_shared<ops::NumericColumnsOp>("num2"), {k});
  const int cat = g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                                  {n1, n2});
  const int scale = g.add_transform(
      "scale",
      std::make_shared<ops::ScaleOp>(std::vector<double>{2.0, 0.5},
                                     std::vector<double>{1.0, -3.0}),
      {cat});
  g.set_output(scale);

  data::Batch batch;
  common::Rng rng(89);
  data::DoubleColumn ca(19);
  data::IntColumn ck(19);
  for (std::size_t i = 0; i < 19; ++i) {
    ca[i] = rng.next_gaussian();
    ck[i] = static_cast<std::int64_t>(i);
  }
  batch.add("a", data::Column(std::move(ca)));
  batch.add("k", data::Column(std::move(ck)));

  expect_zero_copy_matches_reference(g, batch, {});
  expect_zero_copy_matches_reference(g, batch, {true, false});
}

// ---------------------------------------------------------------------------
// Sparse GBDT traversal dispatch.
// ---------------------------------------------------------------------------

TEST(GbdtSparse, CsrAndDensifyTraversalsMatchDenseBitExact) {
  common::Rng rng(97);
  const std::size_t d = 40;
  data::DenseMatrix xtr(400, d);
  for (std::size_t r = 0; r < xtr.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      xtr(r, c) = rng.next_bernoulli(0.7) ? 0.0 : rng.next_gaussian();
    }
  }
  std::vector<double> y(xtr.rows());
  for (std::size_t r = 0; r < xtr.rows(); ++r) {
    y[r] = xtr(r, 0) - xtr(r, 1) > 0.0 ? 1.0 : 0.0;
  }
  models::GbdtConfig cfg;
  cfg.n_trees = 20;
  cfg.max_depth = 4;
  cfg.permutation_rows = 0;
  models::Gbdt model(cfg);
  model.fit(data::FeatureMatrix(xtr), y);

  data::DenseMatrix xte(150, d);
  for (std::size_t r = 0; r < xte.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      xte(r, c) = rng.next_bernoulli(0.8) ? 0.0 : rng.next_gaussian();
    }
  }
  const data::FeatureMatrix dense(xte);
  const data::FeatureMatrix sparse(dense.to_csr());
  const std::vector<double> ref = model.predict(dense);

  kernels::KernelConfig kc = model.kernel_config();
  kc.sparse_cutoff = 0;  // force the CSR traversal
  model.set_kernel_config(kc);
  EXPECT_EQ(model.predict(sparse), ref);

  kc.sparse_cutoff = std::numeric_limits<std::uint32_t>::max();  // force densify
  model.set_kernel_config(kc);
  EXPECT_EQ(model.predict(sparse), ref);
}

// ---------------------------------------------------------------------------
// Config serialization.
// ---------------------------------------------------------------------------

TEST(FeatureOpConfigSerialize, RoundTripsExactly) {
  const FeatureOpConfig cfg{LookupVariant::SortedVocab, 4096, false};
  serialize::Writer w;
  kernels::save_featureop_config(w, cfg);
  serialize::Reader r(w.bytes());
  EXPECT_EQ(kernels::load_featureop_config(r), cfg);
}

TEST(FeatureOpConfigSerialize, RejectsOutOfRangeValues) {
  const auto corrupt = [](std::uint8_t lookup, std::uint32_t block_rows,
                          std::uint8_t zero_copy, std::uint8_t onehot = 0) {
    serialize::Writer w;
    w.u8(lookup);
    w.u32(block_rows);
    w.u8(zero_copy);
    w.u8(onehot);  // v4 wire carries the one-hot variant byte
    serialize::Reader r(w.bytes());
    try {
      kernels::load_featureop_config(r);
      return false;  // should have thrown
    } catch (const serialize::SerializeError& e) {
      return e.code() == serialize::ErrorCode::CorruptData;
    }
  };
  EXPECT_TRUE(corrupt(7, 256, 1));                          // unknown lookup
  EXPECT_TRUE(corrupt(0, 0, 1));                            // zero block_rows
  EXPECT_TRUE(corrupt(0, kernels::kMaxBlockRows + 1, 1));   // block_rows too big
  EXPECT_TRUE(corrupt(0, 256, 2));                          // bad bool
  EXPECT_TRUE(corrupt(0, 256, 1, 2));                       // unknown one-hot
}

// ---------------------------------------------------------------------------
// Op-level autotuning and artifact cold-start.
// ---------------------------------------------------------------------------

TEST(FeatureOpAutotune, InstallsWinnerAndRecordsCandidates) {
  core::Graph g = mixed_graph();
  core::CompiledExecutor ex(g, core::analyze_ifvs(g));
  const data::Batch batch = string_batch(48, 101);
  ex.probe_layout(batch);

  kernels::AutotuneConfig cfg;
  cfg.reps = 1;
  std::vector<kernels::VariantTiming> timings;
  const FeatureOpConfig winner =
      core::tune_feature_ops(ex, batch, cfg, &timings);
  EXPECT_EQ(ex.featureop_config(), winner);

  bool saw_lookup = false, saw_zero_copy = false;
  for (const auto& t : timings) {
    saw_lookup = saw_lookup || t.name.rfind("ops/lookup:", 0) == 0;
    saw_zero_copy = saw_zero_copy || t.name.rfind("ops/zero_copy:", 0) == 0;
  }
  EXPECT_TRUE(saw_lookup);  // the graph has TF-IDF, so lookup was timed
  EXPECT_TRUE(saw_zero_copy);
}

core::LabeledData labeled_strings(std::size_t rows, std::uint64_t seed) {
  core::LabeledData d;
  d.inputs = string_batch(rows, seed);
  const auto& docs = d.inputs.get("title").strings();
  d.targets.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    d.targets[i] = docs[i].size() % 2 == 0 ? 1.0 : 0.0;
  }
  return d;
}

TEST(FeatureOpArtifact, ForcedConfigColdStartsFromBytes) {
  core::Pipeline pipeline;
  pipeline.graph = mixed_graph();
  pipeline.model_proto = std::make_shared<models::LogisticRegression>();

  const core::LabeledData train = labeled_strings(120, 103);
  const core::LabeledData valid = labeled_strings(40, 107);

  core::OptimizeOptions opts;
  opts.autotune_kernels = false;
  const FeatureOpConfig forced{LookupVariant::SortedVocab, 64, false};
  opts.featureop_config = forced;

  const auto optimized =
      core::WillumpOptimizer::optimize(pipeline, train, valid, opts);
  EXPECT_TRUE(optimized.autotune_report().tuned_ops);
  EXPECT_EQ(optimized.autotune_report().ops, forced);

  const auto bytes = serialize::pipeline_to_bytes(optimized);
  const auto loaded = serialize::pipeline_from_bytes(bytes);
  const auto* compiled =
      dynamic_cast<const core::CompiledExecutor*>(&loaded.executor());
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->featureop_config(), forced);

  const data::Batch test = string_batch(25, 109);
  EXPECT_EQ(loaded.predict(test), optimized.predict(test));
}

TEST(FeatureOpArtifact, AutotunedConfigColdStartsFromBytes) {
  core::Pipeline pipeline;
  pipeline.graph = mixed_graph();
  pipeline.model_proto = std::make_shared<models::LogisticRegression>();

  const core::LabeledData train = labeled_strings(120, 113);
  const core::LabeledData valid = labeled_strings(40, 127);

  core::OptimizeOptions opts;
  opts.autotune.reps = 1;
  opts.autotune.sample_rows = 32;

  const auto optimized =
      core::WillumpOptimizer::optimize(pipeline, train, valid, opts);
  ASSERT_TRUE(optimized.autotune_report().tuned_ops);

  const auto loaded =
      serialize::pipeline_from_bytes(serialize::pipeline_to_bytes(optimized));
  const auto* compiled =
      dynamic_cast<const core::CompiledExecutor*>(&loaded.executor());
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->featureop_config(), optimized.autotune_report().ops);

  const data::Batch test = string_batch(25, 131);
  EXPECT_EQ(loaded.predict(test), optimized.predict(test));
}

}  // namespace
}  // namespace willump
