#include <gtest/gtest.h>

#include "data/value.hpp"

namespace willump::data {
namespace {

TEST(Column, TypeAndSize) {
  const Column ci(IntColumn{1, 2, 3});
  const Column cd(DoubleColumn{1.5});
  const Column cs(StringColumn{"a", "b"});
  EXPECT_EQ(ci.type(), ColumnType::Int);
  EXPECT_EQ(cd.type(), ColumnType::Double);
  EXPECT_EQ(cs.type(), ColumnType::String);
  EXPECT_EQ(ci.size(), 3u);
  EXPECT_EQ(cs.size(), 2u);
}

TEST(Column, SelectRows) {
  const Column c(StringColumn{"a", "b", "c"});
  const std::vector<std::size_t> idx{2, 0};
  const auto s = c.select_rows(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.strings()[0], "c");
  EXPECT_EQ(s.strings()[1], "a");
}

TEST(Value, EmptyByDefault) {
  const Value v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(Value, HoldsColumnAndFeatures) {
  const Value vc(Column(IntColumn{1, 2}));
  EXPECT_TRUE(vc.is_column());
  EXPECT_EQ(vc.size(), 2u);

  DenseMatrix m(3, 2);
  const Value vf{FeatureMatrix(m)};
  EXPECT_TRUE(vf.is_features());
  EXPECT_EQ(vf.size(), 3u);
}

TEST(Batch, AddAndGet) {
  Batch b;
  b.add("x", Column(IntColumn{1, 2}));
  b.add("y", Column(StringColumn{"a", "b"}));
  EXPECT_EQ(b.num_rows(), 2u);
  EXPECT_EQ(b.num_columns(), 2u);
  EXPECT_TRUE(b.has("x"));
  EXPECT_FALSE(b.has("z"));
  EXPECT_EQ(b.get("y").strings()[1], "b");
  EXPECT_THROW(b.get("z"), std::out_of_range);
}

TEST(Batch, LengthMismatchThrows) {
  Batch b;
  b.add("x", Column(IntColumn{1, 2}));
  EXPECT_THROW(b.add("y", Column(IntColumn{1})), std::invalid_argument);
}

TEST(Batch, SelectRowsAllColumns) {
  Batch b;
  b.add("x", Column(IntColumn{10, 20, 30}));
  b.add("y", Column(DoubleColumn{1.0, 2.0, 3.0}));
  const std::vector<std::size_t> idx{1};
  const auto s = b.select_rows(idx);
  EXPECT_EQ(s.num_rows(), 1u);
  EXPECT_EQ(s.get("x").ints()[0], 20);
  EXPECT_DOUBLE_EQ(s.get("y").doubles()[0], 2.0);
}

TEST(Batch, RowSlice) {
  Batch b;
  b.add("x", Column(IntColumn{10, 20, 30}));
  const auto r = b.row(2);
  EXPECT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.get("x").ints()[0], 30);
}

}  // namespace
}  // namespace willump::data
