#include "serving/e2e_cache.hpp"

#include <gtest/gtest.h>

namespace willump::serving {
namespace {

data::Batch row_isd(std::int64_t i, const std::string& s, double d) {
  data::Batch b;
  b.add("i", data::Column(data::IntColumn{i}));
  b.add("s", data::Column(data::StringColumn{s}));
  b.add("d", data::Column(data::DoubleColumn{d}));
  return b;
}

TEST(EndToEndCacheKey, StableForIdenticalRows) {
  EXPECT_EQ(EndToEndCache::key_of(row_isd(1, "a", 0.5)),
            EndToEndCache::key_of(row_isd(1, "a", 0.5)));
}

TEST(EndToEndCacheKey, AnySingleColumnChangeChangesKey) {
  // The cache's defining weakness (paper Table 2): ANY differing raw input
  // is a miss, so each column must feed the key.
  const auto base = EndToEndCache::key_of(row_isd(1, "a", 0.5));
  EXPECT_NE(base, EndToEndCache::key_of(row_isd(2, "a", 0.5)));
  EXPECT_NE(base, EndToEndCache::key_of(row_isd(1, "b", 0.5)));
  EXPECT_NE(base, EndToEndCache::key_of(row_isd(1, "a", 0.25)));
}

TEST(EndToEndCache, MissThenHit) {
  EndToEndCache cache;
  const auto row = row_isd(7, "q", 1.0);
  EXPECT_FALSE(cache.get(row).has_value());
  cache.put(row, 0.75);
  const auto got = cache.get(row);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(*got, 0.75);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(EndToEndCache, PutOverwritesPrediction) {
  EndToEndCache cache;
  const auto row = row_isd(7, "q", 1.0);
  cache.put(row, 0.25);
  cache.put(row, 0.75);
  ASSERT_TRUE(cache.get(row).has_value());
  EXPECT_DOUBLE_EQ(*cache.get(row), 0.75);
}

TEST(EndToEndCache, BoundedCapacityEvictsLru) {
  EndToEndCache cache(2);
  cache.put(row_isd(1, "a", 0.0), 0.1);
  cache.put(row_isd(2, "b", 0.0), 0.2);
  // Touch row 1 so row 2 is the LRU victim when row 3 arrives.
  ASSERT_TRUE(cache.get(row_isd(1, "a", 0.0)).has_value());
  cache.put(row_isd(3, "c", 0.0), 0.3);
  EXPECT_TRUE(cache.get(row_isd(1, "a", 0.0)).has_value());
  EXPECT_FALSE(cache.get(row_isd(2, "b", 0.0)).has_value());
  EXPECT_TRUE(cache.get(row_isd(3, "c", 0.0)).has_value());
}

TEST(EndToEndCache, UnboundedCapacityKeepsEverything) {
  EndToEndCache cache;  // capacity 0 = unbounded (paper Table 2/3 config)
  for (std::int64_t i = 0; i < 500; ++i) {
    cache.put(row_isd(i, "x", 0.0), static_cast<double>(i));
  }
  for (std::int64_t i = 0; i < 500; ++i) {
    const auto got = cache.get(row_isd(i, "x", 0.0));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_DOUBLE_EQ(*got, static_cast<double>(i));
  }
}

TEST(EndToEndCache, ClearDropsEntriesAndCounters) {
  EndToEndCache cache;
  const auto row = row_isd(7, "q", 1.0);
  cache.put(row, 0.75);
  ASSERT_TRUE(cache.get(row).has_value());
  cache.clear();
  EXPECT_FALSE(cache.get(row).has_value());
  // clear() also resets the hit/miss counters: only the post-clear miss
  // remains.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace willump::serving
