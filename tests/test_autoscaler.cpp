// Deterministic unit matrix for the replica-autoscaling decision logic
// (serving/autoscaler.hpp). AutoscalePolicy is pure — it consumes a
// LoadController snapshot and an injected clock — so every hysteresis edge
// is pinned here without threads or timing: the scale-up streak threshold,
// the scale-down lower-bound rule, the cooldown, the min/max clamps, and
// the cold-start guard (no resize before min_observations). The PR-6
// synthetic-clock LoadController tests are the style template; the
// oscillation property sweep and the engine-level drain tests live in
// tests/test_serving_engine.cpp.

#include "serving/autoscaler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>

#include "common/stats.hpp"
#include "serving/load_control.hpp"

namespace willump::serving {
namespace {

using std::chrono::steady_clock;
using std::chrono::milliseconds;

/// Synthetic estimator state: a model with per-row service time
/// `service_s`, offered `qps` rows/s, judged against `deadline_s` at
/// `target`, with `rows` observed (the CI sample size) over `batches`
/// batches (the cold-start guard's input).
LoadSnapshot snap(double service_s, double qps, double deadline_s,
                  std::size_t rows = 5000, std::size_t batches = 100,
                  double target = 0.99) {
  LoadSnapshot s;
  s.service_seconds_per_row = service_s;
  s.arrival_qps = qps;
  s.deadline_seconds = deadline_s;
  s.rows = rows;
  s.batches = batches;
  s.target_attainment = target;
  return s;
}

/// 2000 rows/s against a 1 ms/row model: one replica is 2x saturated
/// (attainment 0), three replicas pass the target with room to spare.
LoadSnapshot overloaded() { return snap(1e-3, 2000.0, 0.01); }

/// 100 rows/s against a 0.1 ms/row model: one replica is 1% utilized and
/// predicted attainment is ~1.0 with a zero-width CI.
LoadSnapshot idle() { return snap(1e-4, 100.0, 0.05); }

AutoscaleConfig config() {
  AutoscaleConfig cfg;
  cfg.enabled = true;
  cfg.min_replicas = 1;
  cfg.max_replicas = 8;
  cfg.scale_up_streak = 3;
  cfg.cooldown_micros = 100'000.0;
  cfg.min_observations = 5;
  return cfg;
}

const steady_clock::time_point kT0{};  // synthetic clock origin

TEST(AutoscalePolicy, SteadyStateAttainmentMatchesLoadController) {
  // The snapshot-based model the policy evaluates must agree with the live
  // LoadController's steady_state_attainment at every replica count —
  // that equivalence is what makes "what would one fewer replica predict"
  // a legitimate question to ask of a snapshot.
  LoadControlConfig lc_cfg;
  lc_cfg.ewma_alpha = 0.2;
  LoadController lc(lc_cfg, /*deadline_micros=*/10'000.0);
  auto t = kT0;
  for (int i = 0; i < 40; ++i) {
    t += milliseconds(1);  // synthetic 1000 qps arrival clock
    lc.on_arrival(t);
    lc.on_batch(8, 8 * 5e-4);  // 0.5 ms per row
  }
  const LoadSnapshot s = lc.snapshot();
  EXPECT_GT(s.service_seconds_per_row, 0.0);
  EXPECT_GT(s.arrival_qps, 0.0);
  EXPECT_EQ(s.batches, 40u);
  EXPECT_EQ(s.rows, 320u);
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(steady_state_attainment(s, k),
                     lc.steady_state_attainment(k))
        << "replicas=" << k;
  }
}

TEST(AutoscalePolicy, ColdStartGuardHoldsBeforeMinObservations) {
  AutoscalePolicy policy(config());
  // Even a hopelessly overloaded snapshot must not resize while the
  // estimators are cold — and cold evaluations must not bank scale-up
  // evidence for later.
  LoadSnapshot cold = overloaded();
  cold.batches = config().min_observations - 1;
  auto t = kT0;
  for (int i = 0; i < 10; ++i) {
    t += milliseconds(20);
    EXPECT_EQ(policy.evaluate(cold, 1, t), AutoscaleAction::kHold);
  }
  EXPECT_EQ(policy.failing_streak(), 0u);

  // Unmeasured estimators (no service time / no arrivals) are equally cold
  // regardless of the batch count.
  EXPECT_EQ(policy.evaluate(snap(0.0, 2000.0, 0.01), 1, t),
            AutoscaleAction::kHold);
  EXPECT_EQ(policy.evaluate(snap(1e-3, 0.0, 0.01), 1, t),
            AutoscaleAction::kHold);

  // Once warm, the streak starts from zero: the 3rd warm failing
  // evaluation (not the 13th overall) fires the grow.
  t += milliseconds(20);
  EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kHold);
  t += milliseconds(20);
  EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kHold);
  t += milliseconds(20);
  EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kGrow);
}

TEST(AutoscalePolicy, ScaleUpRequiresConsecutiveFailingEvaluations) {
  AutoscalePolicy policy(config());
  auto t = kT0;
  // Two failing evaluations are evidence, not action.
  EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kHold);
  EXPECT_EQ(policy.failing_streak(), 1u);
  t += milliseconds(20);
  EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kHold);
  EXPECT_EQ(policy.failing_streak(), 2u);
  // A single passing evaluation resets the streak: transient blips never
  // accumulate into a resize.
  t += milliseconds(20);
  EXPECT_EQ(policy.evaluate(idle(), 1, t), AutoscaleAction::kHold);
  EXPECT_EQ(policy.failing_streak(), 0u);
  // Three consecutive failures fire exactly one grow.
  for (int i = 0; i < 2; ++i) {
    t += milliseconds(20);
    EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kHold);
  }
  t += milliseconds(20);
  EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kGrow);
  EXPECT_EQ(policy.failing_streak(), 0u);  // consumed by the resize
}

TEST(AutoscalePolicy, ScaleDownRequiresConfidentPassAtOneFewer) {
  // Idle at 3 replicas: attainment at 2 replicas is ~1.0 with a tight CI,
  // so the lower bound clears the target and the shrink fires on the
  // first evaluation — scale-down needs no streak, only confidence.
  AutoscalePolicy shrinker(config());
  EXPECT_EQ(shrinker.evaluate(idle(), 3, kT0), AutoscaleAction::kShrink);

  // Same load shape but a marginal one-fewer prediction: ~0.985 attainment
  // at 1 replica sits below a 0.99 target, so its CI lower bound can never
  // clear the target and the policy holds — the uncertain band is sticky.
  AutoscalePolicy holder(config());
  // service 1 ms/row at 500 qps: rho(1) = 0.5, sojourn 2 ms; a 8.4 ms
  // deadline gives attainment ~0.985 at 1 replica and ~0.999+ at 2.
  const LoadSnapshot marginal = snap(1e-3, 500.0, 8.4e-3);
  const double att1 = steady_state_attainment(marginal, 1);
  ASSERT_LT(att1, 0.99);
  ASSERT_GT(att1, 0.95);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(holder.evaluate(marginal, 2, kT0 + milliseconds(20 * i)),
              AutoscaleAction::kHold);
  }
}

TEST(AutoscalePolicy, UncertainBandAccumulatesNoEvidence) {
  // Attainment ~0.97 against a 0.99 target, but only 100 observed rows:
  // the CI upper bound (~1.0) still covers the target, so the evaluation
  // is not a *confident* failure and the streak must stay at zero — the
  // statistical criterion, not the point estimate, gates the controller.
  const LoadSnapshot noisy = snap(1e-3, 500.0, 7e-3, /*rows=*/100);
  const double att = steady_state_attainment(noisy, 1);
  ASSERT_LT(att, 0.99);
  ASSERT_GT(att + common::binomial_ci95_half_width(att, 100), 0.99);
  AutoscalePolicy policy(config());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.evaluate(noisy, 1, kT0 + milliseconds(20 * i)),
              AutoscaleAction::kHold);
  }
  EXPECT_EQ(policy.failing_streak(), 0u);
}

TEST(AutoscalePolicy, CooldownDefersActionNotEvidence) {
  AutoscalePolicy policy(config());
  auto t = kT0;
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kHold);
    t += milliseconds(10);
  }
  EXPECT_EQ(policy.evaluate(overloaded(), 1, t), AutoscaleAction::kGrow);
  const auto resize_time = t;
  // Inside the 100 ms cooldown every decision is a hold, however loud the
  // overload signal — but the failing streak keeps accumulating.
  while (t < resize_time + milliseconds(90)) {
    t += milliseconds(10);
    EXPECT_EQ(policy.evaluate(overloaded(), 2, t), AutoscaleAction::kHold);
  }
  EXPECT_GE(policy.failing_streak(), config().scale_up_streak);
  // First evaluation past the cooldown: the banked streak fires at once.
  t = resize_time + milliseconds(101);
  EXPECT_EQ(policy.evaluate(overloaded(), 2, t), AutoscaleAction::kGrow);

  // An idle model inside the cooldown is likewise deferred, not shrunk.
  AutoscalePolicy down(config());
  EXPECT_EQ(down.evaluate(idle(), 4, kT0), AutoscaleAction::kShrink);
  EXPECT_EQ(down.evaluate(idle(), 3, kT0 + milliseconds(50)),
            AutoscaleAction::kHold);
  EXPECT_EQ(down.evaluate(idle(), 3, kT0 + milliseconds(101)),
            AutoscaleAction::kShrink);
}

TEST(AutoscalePolicy, MinMaxClampsBoundEveryDecision) {
  AutoscaleConfig cfg = config();
  cfg.min_replicas = 2;
  cfg.max_replicas = 3;

  // At the max, a model saturated even at 3 replicas (rho = 5/3) holds
  // forever — and keeps accumulating its evidence.
  const LoadSnapshot crushed = snap(1e-3, 5000.0, 0.01);
  ASSERT_DOUBLE_EQ(steady_state_attainment(crushed, 3), 0.0);
  AutoscalePolicy at_max(cfg);
  auto t = kT0;
  for (int i = 0; i < 10; ++i) {
    t += milliseconds(20);
    EXPECT_EQ(at_max.evaluate(crushed, 3, t), AutoscaleAction::kHold);
  }
  EXPECT_GE(at_max.failing_streak(), cfg.scale_up_streak);

  // At the min, an idle model holds forever.
  AutoscalePolicy at_min(cfg);
  for (int i = 0; i < 10; ++i) {
    t += milliseconds(20);
    EXPECT_EQ(at_min.evaluate(idle(), 2, t), AutoscaleAction::kHold);
  }

  // One slot of headroom on each side still works.
  AutoscalePolicy grow(cfg);
  t = kT0;
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(grow.evaluate(overloaded(), 2, t), AutoscaleAction::kHold);
    t += milliseconds(20);
  }
  EXPECT_EQ(grow.evaluate(overloaded(), 2, t), AutoscaleAction::kGrow);
  AutoscalePolicy shrink(cfg);
  EXPECT_EQ(shrink.evaluate(idle(), 3, kT0), AutoscaleAction::kShrink);
}

TEST(AutoscalePolicy, SaturatedAttainmentIsZeroAndHealthyIsOne) {
  // The snapshot attainment model's edges: rho >= 1 predicts zero
  // attainment (the queue diverges), a near-idle group predicts ~1, and
  // attainment is monotone in the replica count — the property the
  // shrink rule's "one fewer" probe relies on.
  const LoadSnapshot s = overloaded();  // rho(1) = 2.0
  EXPECT_DOUBLE_EQ(steady_state_attainment(s, 1), 0.0);
  EXPECT_DOUBLE_EQ(steady_state_attainment(s, 2), 0.0);  // rho = 1 exactly
  EXPECT_GT(steady_state_attainment(s, 3), 0.99);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 8; ++k) {
    const double att = steady_state_attainment(s, k);
    EXPECT_GE(att, prev) << "attainment must be monotone in replicas";
    prev = att;
  }
  EXPECT_GT(steady_state_attainment(idle(), 1), 0.999);
}

}  // namespace
}  // namespace willump::serving
