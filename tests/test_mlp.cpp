#include "models/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "models/metrics.hpp"

namespace willump::models {
namespace {

TEST(Mlp, FitsNonlinearRegression) {
  common::Rng rng(1);
  const std::size_t n = 1500;
  data::DenseMatrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.next_double() * 2.0 - 1.0;
    x(i, 1) = rng.next_double() * 2.0 - 1.0;
    y[i] = std::abs(x(i, 0)) + 0.5 * x(i, 1);
  }
  MlpConfig cfg;
  cfg.hidden = 24;
  cfg.epochs = 30;
  Mlp m(cfg);
  m.fit(data::FeatureMatrix(x), y);
  EXPECT_GT(r2(m.predict(data::FeatureMatrix(x)), y), 0.85);
}

TEST(Mlp, SparseInputLearns) {
  common::Rng rng(2);
  const std::size_t n = 1200;
  const std::int32_t dim = 50;
  data::CsrMatrix x(dim);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    data::SparseVector row(dim);
    const auto a = static_cast<std::int32_t>(rng.next_below(25));
    const auto b = static_cast<std::int32_t>(25 + rng.next_below(25));
    row.push_back(a, 1.0);
    row.push_back(b, 1.0);
    x.append_row(row);
    y[i] = (a < 12 ? 1.0 : -1.0) + (b < 37 ? 0.5 : -0.5);
  }
  MlpConfig cfg;
  cfg.epochs = 20;
  Mlp m(cfg);
  m.fit(data::FeatureMatrix(x), y);
  EXPECT_GT(r2(m.predict(data::FeatureMatrix(x)), y), 0.8);
}

TEST(Mlp, ClassificationOutputsProbabilities) {
  common::Rng rng(3);
  const std::size_t n = 600;
  data::DenseMatrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.next_gaussian();
    x(i, 1) = rng.next_gaussian();
    y[i] = x(i, 0) + x(i, 1) > 0.0 ? 1.0 : 0.0;
  }
  MlpConfig cfg;
  cfg.classification = true;
  cfg.epochs = 15;
  Mlp m(cfg);
  m.fit(data::FeatureMatrix(x), y);
  const auto p = m.predict(data::FeatureMatrix(x));
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_GT(accuracy(p, y), 0.9);
}

TEST(Mlp, NoNativeImportances) {
  Mlp m;
  EXPECT_TRUE(m.feature_importances().empty());
}

TEST(Mlp, DeterministicTraining) {
  common::Rng rng(4);
  const std::size_t n = 300;
  data::DenseMatrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.next_gaussian();
    y[i] = x(i, 0);
  }
  Mlp a, b;
  a.fit(data::FeatureMatrix(x), y);
  b.fit(data::FeatureMatrix(x), y);
  const auto pa = a.predict(data::FeatureMatrix(x));
  const auto pb = b.predict(data::FeatureMatrix(x));
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

TEST(Mlp, CloneUntrainedSameFamily) {
  MlpConfig cfg;
  cfg.classification = true;
  Mlp m(cfg);
  auto c = m.clone_untrained();
  EXPECT_EQ(c->name(), "mlp");
  EXPECT_TRUE(c->is_classifier());
}

}  // namespace
}  // namespace willump::models
