#include <gtest/gtest.h>

#include "data/matrix.hpp"
#include "data/vector.hpp"

namespace willump::data {
namespace {

TEST(DenseVector, ConcatAppends) {
  DenseVector a({1.0, 2.0});
  const DenseVector b({3.0});
  a.concat(b);
  ASSERT_EQ(a.dim(), 3u);
  EXPECT_DOUBLE_EQ(a[2], 3.0);
}

TEST(SparseVector, AtAndNnz) {
  SparseVector v(10);
  v.push_back(2, 1.5);
  v.push_back(7, -2.0);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.at(2), 1.5);
  EXPECT_DOUBLE_EQ(v.at(3), 0.0);
  EXPECT_DOUBLE_EQ(v.at(7), -2.0);
}

TEST(SparseVector, ConcatShiftsIndices) {
  SparseVector a(4);
  a.push_back(1, 1.0);
  SparseVector b(3);
  b.push_back(0, 2.0);
  a.concat(b);
  EXPECT_EQ(a.dim(), 7);
  EXPECT_DOUBLE_EQ(a.at(4), 2.0);
}

TEST(SparseVector, L2NormAndScale) {
  SparseVector v(5);
  v.push_back(0, 3.0);
  v.push_back(4, 4.0);
  EXPECT_DOUBLE_EQ(v.l2_norm(), 5.0);
  v.scale(0.5);
  EXPECT_DOUBLE_EQ(v.at(0), 1.5);
}

TEST(Dot, SparseDense) {
  SparseVector x(4);
  x.push_back(1, 2.0);
  x.push_back(3, -1.0);
  const std::vector<double> w{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(dot(x, w), 2.0 * 20.0 - 40.0);
}

TEST(DenseMatrix, FromRowsAndAccess) {
  const auto m = DenseMatrix::from_rows(
      {DenseVector({1.0, 2.0}), DenseVector({3.0, 4.0})});
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.column(1)[0], 2.0);
}

TEST(DenseMatrix, FromRowsRejectsRagged) {
  EXPECT_THROW(DenseMatrix::from_rows(
                   {DenseVector({1.0}), DenseVector({1.0, 2.0})}),
               std::invalid_argument);
}

TEST(DenseMatrix, SelectRows) {
  const auto m = DenseMatrix::from_rows(
      {DenseVector({1.0}), DenseVector({2.0}), DenseVector({3.0})});
  const std::vector<std::size_t> idx{2, 0};
  const auto s = m.select_rows(idx);
  ASSERT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
}

TEST(DenseMatrix, HconcatMismatchThrows) {
  DenseMatrix a(2, 1), b(3, 1);
  EXPECT_THROW(DenseMatrix::hconcat(a, b), std::invalid_argument);
}

TEST(CsrMatrix, AppendAndRowView) {
  CsrMatrix m(5);
  SparseVector r0(5);
  r0.push_back(1, 1.0);
  m.append_row(r0);
  m.append_row(SparseVector(5));  // empty row
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.row(0).nnz(), 1u);
  EXPECT_EQ(m.row(1).nnz(), 0u);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(CsrMatrix, ToDenseRoundTrip) {
  CsrMatrix m(3);
  SparseVector r(3);
  r.push_back(0, 1.0);
  r.push_back(2, 2.0);
  m.append_row(r);
  const auto d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 2.0);
}

TEST(CsrMatrix, HconcatShiftsColumns) {
  CsrMatrix a(2), b(3);
  SparseVector ra(2);
  ra.push_back(1, 1.0);
  a.append_row(ra);
  SparseVector rb(3);
  rb.push_back(0, 2.0);
  b.append_row(rb);
  const auto c = CsrMatrix::hconcat(a, b);
  EXPECT_EQ(c.cols(), 5);
  EXPECT_DOUBLE_EQ(c.row_vector(0).at(1), 1.0);
  EXPECT_DOUBLE_EQ(c.row_vector(0).at(2), 2.0);
}

TEST(CsrMatrix, SelectRows) {
  CsrMatrix m(2);
  for (int i = 0; i < 3; ++i) {
    SparseVector r(2);
    r.push_back(0, static_cast<double>(i));
    m.append_row(r);
  }
  const std::vector<std::size_t> idx{2, 1};
  const auto s = m.select_rows(idx);
  EXPECT_DOUBLE_EQ(s.row_vector(0).at(0), 2.0);
  EXPECT_DOUBLE_EQ(s.row_vector(1).at(0), 1.0);
}

TEST(FeatureMatrix, MixedHconcatPromotesToSparse) {
  DenseMatrix d(1, 2);
  d(0, 0) = 1.0;
  d(0, 1) = 0.0;
  CsrMatrix s(2);
  SparseVector r(2);
  r.push_back(1, 3.0);
  s.append_row(r);
  const auto fm = FeatureMatrix::hconcat(FeatureMatrix(d), FeatureMatrix(s));
  EXPECT_TRUE(fm.is_sparse());
  EXPECT_EQ(fm.cols(), 4u);
  EXPECT_DOUBLE_EQ(fm.sparse().row_vector(0).at(0), 1.0);
  EXPECT_DOUBLE_EQ(fm.sparse().row_vector(0).at(3), 3.0);
}

TEST(FeatureMatrix, HconcatAllEmptyListIsEmpty) {
  const auto fm = FeatureMatrix::hconcat_all({});
  EXPECT_EQ(fm.rows(), 0u);
  EXPECT_EQ(fm.cols(), 0u);
}

TEST(FeatureMatrix, DenseToCsrSkipsZeros) {
  DenseMatrix d(1, 3);
  d(0, 1) = 5.0;
  const auto csr = FeatureMatrix(d).to_csr();
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_DOUBLE_EQ(csr.row_vector(0).at(1), 5.0);
}

}  // namespace
}  // namespace willump::data
