// Reject-path hardening: corrupt artifacts — truncated at any offset,
// bit-flipped anywhere, wrong magic/version/kind — must surface as typed
// SerializeErrors, never as a crash, UB, hang, or a silently different
// pipeline. The corpus covers every serializable layer: raw ops, models,
// cascade bundles, and whole pipeline artifacts.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "models/gbdt.hpp"
#include "models/linear.hpp"
#include "models/mlp.hpp"
#include "ops/concat.hpp"
#include "ops/encoders.hpp"
#include "ops/scale.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"
#include "serialize/artifact.hpp"
#include "serialize/model_registry.hpp"
#include "serialize/op_registry.hpp"
#include "test_support.hpp"

namespace willump {
namespace {

using serialize::ErrorCode;
using serialize::SerializeError;

using Bytes = std::vector<std::uint8_t>;

// --- corpus builders ------------------------------------------------------

Bytes pipeline_artifact() {
  static const Bytes bytes =
      serialize::pipeline_to_bytes(testing::shared_toxic_optimized().pipeline);
  return bytes;
}

Bytes cascade_artifact() {
  auto& f = testing::shared_toxic();
  static const Bytes bytes = serialize::cascade_bundle_to_bytes(
      {f.cascade, f.compiled->analysis().block_cols,
       f.compiled->analysis().col_begin, f.cascade.stats.cost_seconds});
  return bytes;
}

std::vector<ops::OperatorPtr> op_corpus() {
  std::vector<ops::OperatorPtr> ops;
  ops.push_back(std::make_shared<ops::ConcatOp>());
  ops.push_back(std::make_shared<ops::LowercaseOp>());
  ops.push_back(std::make_shared<ops::StripPunctOp>());
  ops.push_back(std::make_shared<ops::StringStatsOp>());
  ops.push_back(std::make_shared<ops::OneHotHashOp>(64, 7, "oh"));
  ops.push_back(std::make_shared<ops::NumericColumnsOp>("num"));
  ops.push_back(std::make_shared<ops::BucketizeOp>(std::vector<double>{0, 1, 2}));
  ops.push_back(std::make_shared<ops::ColumnMathOp>(ops::ColumnMathOp::Kind::Div));
  ops.push_back(std::make_shared<ops::ScaleOp>(std::vector<double>{1, 2},
                                               std::vector<double>{0, 0}));
  ops.push_back(std::make_shared<ops::KeywordCountOp>(
      std::vector<std::string>{"bad", "worse"}));
  ops::TfIdfConfig tfcfg;
  tfcfg.min_df = 1;
  ops.push_back(std::make_shared<ops::TfIdfOp>(
      std::make_shared<ops::TfIdfModel>(ops::TfIdfModel::fit(
          data::StringColumn{"a b c", "b c d", "c d e"}, tfcfg))));
  return ops;
}

std::vector<std::shared_ptr<models::Model>> model_corpus() {
  // Tiny deterministic training set.
  data::DenseMatrix x(64, 3);
  std::vector<double> y(64);
  for (std::size_t i = 0; i < 64; ++i) {
    x(i, 0) = static_cast<double>(i % 7) - 3.0;
    x(i, 1) = static_cast<double>((i * 5) % 11);
    x(i, 2) = static_cast<double>(i) / 64.0;
    y[i] = x(i, 0) > 0.0 ? 1.0 : 0.0;
  }
  const data::FeatureMatrix fx(x);

  std::vector<std::shared_ptr<models::Model>> models;
  models.push_back(std::make_shared<models::LogisticRegression>());
  models.push_back(std::make_shared<models::LinearRegression>());
  models::GbdtConfig gb;
  gb.n_trees = 4;
  gb.permutation_rows = 0;
  models.push_back(std::make_shared<models::Gbdt>(gb));
  models::MlpConfig mlp;
  mlp.hidden = 4;
  mlp.epochs = 2;
  models.push_back(std::make_shared<models::Mlp>(mlp));
  for (auto& m : models) m->fit(fx, y);
  return models;
}

// --- mutation helpers -----------------------------------------------------

/// Loading `bytes` must either throw SerializeError or (for mutations that
/// happen to hit redundant padding — impossible here, every payload byte is
/// CRC-covered) produce a value; it must never escape any other way.
template <typename LoadFn>
void expect_typed_rejection(const Bytes& bytes, LoadFn&& load,
                            const char* what) {
  try {
    load(bytes);
    // Reaching here means the mutation produced a still-valid artifact;
    // the only mutation-free call sites assert success separately, so flag
    // it — with CRC-covered payloads this indicates a checksum hole.
    ADD_FAILURE() << what << ": corrupt artifact was accepted";
  } catch (const SerializeError&) {
    // Typed rejection: exactly what the contract requires.
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": escaped with untyped " << e.what();
  }
}

template <typename LoadFn>
void run_truncation_corpus(const Bytes& bytes, LoadFn&& load) {
  // Every prefix for small artifacts; strided prefixes for big ones.
  const std::size_t stride = bytes.size() > 4096 ? bytes.size() / 997 : 1;
  for (std::size_t cut = 0; cut < bytes.size(); cut += stride) {
    Bytes truncated(bytes.begin(),
                    bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    expect_typed_rejection(truncated, load, "truncation");
  }
}

template <typename LoadFn>
void run_bitflip_corpus(const Bytes& bytes, LoadFn&& load) {
  const std::size_t stride = bytes.size() > 4096 ? bytes.size() / 997 : 1;
  for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
    for (std::uint8_t bit : {0, 3, 7}) {
      Bytes flipped = bytes;
      flipped[pos] ^= static_cast<std::uint8_t>(1u << bit);
      expect_typed_rejection(flipped, load, "bit flip");
    }
  }
}

auto load_pipeline_fn() {
  return [](const Bytes& b) { (void)serialize::pipeline_from_bytes(b); };
}

auto load_cascade_fn() {
  return [](const Bytes& b) { (void)serialize::cascade_bundle_from_bytes(b); };
}

// --- container-level rejections ------------------------------------------

TEST(SerializeReject, EmptyAndHeaderOnlyArtifacts) {
  expect_typed_rejection({}, load_pipeline_fn(), "empty");
  Bytes magic_only{'W', 'L', 'M', 'P'};
  expect_typed_rejection(magic_only, load_pipeline_fn(), "magic only");
}

TEST(SerializeReject, WrongMagicIsBadMagic) {
  Bytes bytes = pipeline_artifact();
  bytes[0] = 'X';
  try {
    serialize::pipeline_from_bytes(bytes);
    FAIL() << "accepted foreign bytes";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::BadMagic);
  }
}

TEST(SerializeReject, FutureVersionIsUnsupportedVersion) {
  Bytes bytes = pipeline_artifact();
  bytes[4] = static_cast<std::uint8_t>(serialize::kFormatVersion + 1);
  try {
    serialize::pipeline_from_bytes(bytes);
    FAIL() << "accepted a future format version";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::UnsupportedVersion);
  }
}

TEST(SerializeReject, KindConfusionIsWrongKind) {
  // A valid cascade bundle is not a pipeline and vice versa.
  try {
    serialize::pipeline_from_bytes(cascade_artifact());
    FAIL() << "accepted a cascade bundle as a pipeline";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::WrongKind);
  }
  try {
    serialize::cascade_bundle_from_bytes(pipeline_artifact());
    FAIL() << "accepted a pipeline as a cascade bundle";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::WrongKind);
  }
}

TEST(SerializeReject, MissingFileIsIoError) {
  try {
    serialize::load_pipeline("/nonexistent/dir/nope.wlmp");
    FAIL() << "loaded a missing file";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::IoError);
  }
}

// --- fuzz-ish corpora per serializable type -------------------------------

TEST(SerializeReject, PipelineTruncationCorpus) {
  run_truncation_corpus(pipeline_artifact(), load_pipeline_fn());
}

TEST(SerializeReject, PipelineBitflipCorpus) {
  run_bitflip_corpus(pipeline_artifact(), load_pipeline_fn());
}

// The default artifact above exercises the v4 compressed sections; the v3
// legacy layout must reject just as hard under the same reader.
Bytes pipeline_artifact_v3() {
  static const Bytes bytes = serialize::pipeline_to_bytes(
      testing::shared_toxic_optimized().pipeline, 3);
  return bytes;
}

TEST(SerializeReject, V3PipelineTruncationCorpus) {
  run_truncation_corpus(pipeline_artifact_v3(), load_pipeline_fn());
}

TEST(SerializeReject, V3PipelineBitflipCorpus) {
  run_bitflip_corpus(pipeline_artifact_v3(), load_pipeline_fn());
}

TEST(SerializeReject, CascadeBundleTruncationCorpus) {
  run_truncation_corpus(cascade_artifact(), load_cascade_fn());
}

TEST(SerializeReject, CascadeBundleBitflipCorpus) {
  run_bitflip_corpus(cascade_artifact(), load_cascade_fn());
}

TEST(SerializeReject, OpPayloadTruncationCorpus) {
  // Raw op payloads sit below the checksummed container; a truncated
  // payload must still fail typed (bounds-checked reads), not crash.
  const serialize::OpLoadContext ctx;
  for (const auto& op : op_corpus()) {
    serialize::Writer w;
    serialize::save_op(w, *op);
    const Bytes bytes(w.bytes().begin(), w.bytes().end());
    // Sanity: the untruncated payload loads.
    serialize::Reader ok(bytes);
    EXPECT_EQ(serialize::load_op(ok, ctx)->name(), op->name());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      Bytes truncated(bytes.begin(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      serialize::Reader r(truncated);
      EXPECT_THROW((void)serialize::load_op(r, ctx), SerializeError)
          << op->name() << " cut at " << cut;
    }
  }
}

TEST(SerializeReject, ModelPayloadTruncationCorpus) {
  for (const auto& model : model_corpus()) {
    serialize::Writer w;
    serialize::save_model(w, *model);
    const Bytes bytes(w.bytes().begin(), w.bytes().end());
    serialize::Reader ok(bytes);
    EXPECT_EQ(serialize::load_model(ok)->name(), model->name());
    const std::size_t stride = bytes.size() > 4096 ? 37 : 1;
    for (std::size_t cut = 0; cut < bytes.size(); cut += stride) {
      Bytes truncated(bytes.begin(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      serialize::Reader r(truncated);
      EXPECT_THROW((void)serialize::load_model(r), SerializeError)
          << model->name() << " cut at " << cut;
    }
  }
}

TEST(SerializeReject, UnknownTagsAreTyped) {
  serialize::Writer w;
  w.str("no_such_op");
  serialize::Reader r(w.bytes());
  const serialize::OpLoadContext ctx;
  try {
    (void)serialize::load_op(r, ctx);
    FAIL() << "unknown op tag accepted";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::UnknownTypeTag);
  }
  serialize::Writer wm;
  wm.str("no_such_model");
  serialize::Reader rm(wm.bytes());
  try {
    (void)serialize::load_model(rm);
    FAIL() << "unknown model tag accepted";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::UnknownTypeTag);
  }
}

TEST(SerializeReject, LookupWithoutTableSectionIsMissingSection) {
  serialize::Writer w;
  w.str("table_lookup");
  w.str("ghost_table");
  w.f64(0.0);
  w.f64(0.0);
  serialize::Reader r(w.bytes());
  const serialize::OpLoadContext ctx;  // no tables bound
  try {
    (void)serialize::load_op(r, ctx);
    FAIL() << "lookup op resolved a table that is not in the artifact";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::MissingSection);
  }
}

// --- v4 codec primitive rejections ---------------------------------------
// Below the container CRCs, every codec payload self-validates: malformed
// varints, out-of-range dictionary state, and decoded-side checksum
// mismatches must all surface typed.

TEST(SerializeReject, OverlongVarintIsCorruptData) {
  // Eleven continuation bytes: longer than any u64 encoding.
  Bytes overlong(11, 0x80);
  serialize::Reader r(overlong);
  try {
    (void)r.varint();
    FAIL() << "overlong varint accepted";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::CorruptData);
  }
  // Ten bytes whose final payload bits overflow the 64-bit range.
  Bytes overflow(9, 0x80);
  overflow.push_back(0x02);
  serialize::Reader r2(overflow);
  try {
    (void)r2.varint();
    FAIL() << "overflowing varint accepted";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::CorruptData);
  }
}

TEST(SerializeReject, DictionaryCodecRejectsMalformedState) {
  const auto decode = [](const serialize::Writer& w) {
    serialize::Reader r(w.bytes());
    (void)r.doubles();
  };
  {
    serialize::Writer w;  // unknown codec mode byte
    w.varint(16);
    w.u8(2);
    EXPECT_THROW(decode(w), SerializeError);
  }
  {
    serialize::Writer w;  // empty dictionary
    w.varint(16);
    w.u8(1);
    w.varint(0);
    EXPECT_THROW(decode(w), SerializeError);
  }
  {
    serialize::Writer w;  // index past the dictionary
    w.varint(16);
    w.u8(1);
    w.varint(1);
    w.f64(1.5);
    w.varint(5);
    EXPECT_THROW(decode(w), SerializeError);
  }
}

TEST(SerializeReject, DictionaryCodecCrcCoversDecodedPayload) {
  // A repetitive vector takes the dictionary encoding; flipping any payload
  // byte (dictionary entry or index stream) must fail the decoded-side CRC
  // or a range check — never decode to different doubles.
  std::vector<double> xs(64);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i % 4);
  }
  serialize::Writer w;
  w.doubles(xs);
  const Bytes bytes(w.bytes().begin(), w.bytes().end());
  ASSERT_EQ(bytes[1], 1) << "expected the dictionary encoding";
  {
    serialize::Reader ok(bytes);
    EXPECT_EQ(ok.doubles(), xs);
  }
  for (std::size_t pos = 2; pos < bytes.size(); ++pos) {
    Bytes flipped = bytes;
    flipped[pos] ^= 0x10;
    serialize::Reader r(flipped);
    try {
      const std::vector<double> got = r.doubles();
      EXPECT_NE(got, xs) << "flip at " << pos << " was a no-op";
      ADD_FAILURE() << "flip at " << pos << " decoded without a typed error";
    } catch (const SerializeError&) {
      // Typed rejection (ChecksumMismatch / CorruptData / Truncated).
    }
  }
}

TEST(SerializeReject, DeltaKeysCrcCoversDecodedPayload) {
  std::vector<std::int64_t> keys;
  for (std::int64_t k = -5; k < 60; ++k) keys.push_back(k * 3);
  serialize::Writer w;
  w.i64s_delta(keys);
  const Bytes bytes(w.bytes().begin(), w.bytes().end());
  {
    serialize::Reader ok(bytes);
    EXPECT_EQ(ok.i64s_delta(), keys);
  }
  for (std::size_t pos = 1; pos < bytes.size(); ++pos) {
    Bytes flipped = bytes;
    flipped[pos] ^= 0x08;
    serialize::Reader r(flipped);
    try {
      const std::vector<std::int64_t> got = r.i64s_delta();
      EXPECT_NE(got, keys) << "flip at " << pos << " was a no-op";
      ADD_FAILURE() << "flip at " << pos << " decoded without a typed error";
    } catch (const SerializeError&) {
    }
  }
}

TEST(SerializeReject, DeltaWriterRefusesUnsortedKeys) {
  serialize::Writer w;
  const std::int64_t keys[] = {3, 2, 1};
  EXPECT_THROW(w.i64s_delta(keys), std::logic_error);
}

TEST(SerializeReject, GiantLengthPrefixDoesNotAllocate) {
  // A length prefix of ~2^63 must be rejected by the remaining-bytes guard
  // before any allocation is attempted.
  serialize::Writer w;
  w.u64(0x7FFFFFFFFFFFFFFFull);
  serialize::Reader r(w.bytes());
  EXPECT_THROW((void)r.doubles(), SerializeError);
  serialize::Reader r2(w.bytes());
  EXPECT_THROW((void)r2.str(), SerializeError);
}

}  // namespace
}  // namespace willump
