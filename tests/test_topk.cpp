#include "core/topk.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/stats.hpp"
#include "models/metrics.hpp"
#include "test_support.hpp"

namespace willump::core {
namespace {

/// Shared fixture: a small Credit workload (regression, so top-K is the
/// only approximation that applies) with remote tables — the paper's
/// Table 4 setup, whose lookup-dominated cost structure the filter model
/// exploits — and a trained filter model; see tests/test_support.hpp.
willump::testing::ExecutorFixture& fixture() {
  return willump::testing::shared_credit_remote();
}

TEST(TopKPipeline, SubsetSizeRule) {
  auto& f = fixture();
  TopKConfig cfg;  // ck=10, min 5%
  TopKPipeline p(f.compiled, f.cascade, cfg);
  // ck*K dominates: 10*20=200 > 5% of 1000 = 50.
  EXPECT_EQ(p.subset_size(20, 1000), 200u);
  // 5% floor dominates: 10*2=20 < 50.
  EXPECT_EQ(p.subset_size(2, 1000), 50u);
  // Clamped to N.
  EXPECT_EQ(p.subset_size(500, 1000), 1000u);
  // Never below K itself.
  TopKConfig tiny;
  tiny.ck = 0.5;
  tiny.min_subset_frac = 0.0;
  TopKPipeline q(f.compiled, f.cascade, tiny);
  EXPECT_EQ(q.subset_size(30, 1000), 30u);
}

TEST(TopKPipeline, ReturnsKDistinctIndices) {
  auto& f = fixture();
  TopKPipeline p(f.compiled, f.cascade, TopKConfig{});
  const auto top = p.top_k(f.wl.test.inputs, 50);
  ASSERT_EQ(top.size(), 50u);
  std::unordered_set<std::size_t> distinct(top.begin(), top.end());
  EXPECT_EQ(distinct.size(), 50u);
  for (std::size_t i : top) {
    EXPECT_LT(i, f.wl.test.inputs.num_rows());
  }
}

TEST(TopKPipeline, RankedByFullModelScore) {
  auto& f = fixture();
  TopKPipeline p(f.compiled, f.cascade, TopKConfig{});
  const auto top = p.top_k(f.wl.test.inputs, 30);
  const auto full_scores =
      f.cascade.full_model->predict(f.compiled->compute_matrix(f.wl.test.inputs));
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(full_scores[top[i - 1]], full_scores[top[i]] - 1e-12);
  }
}

TEST(TopKPipeline, HighPrecisionVsExactTopK) {
  auto& f = fixture();
  TopKPipeline p(f.compiled, f.cascade, TopKConfig{});
  const auto approx = p.top_k(f.wl.test.inputs, 50);
  const auto full_scores =
      f.cascade.full_model->predict(f.compiled->compute_matrix(f.wl.test.inputs));
  const auto exact = models::top_k_indices(full_scores, 50);
  // Precision@K is a binomial proportion over K trials (each returned item
  // is either in the exact top-K or not). Accept the approximation when its
  // shortfall from the exact query's precision (1.0 by construction) is not
  // statistically significant — the paper's §6.3 acceptance rule, as in
  // Optimizer.PredictFullIgnoresCascades — instead of a hand-tuned bound.
  const double precision = models::precision_at_k(approx, exact);
  EXPECT_TRUE(common::accuracy_within_ci95(1.0, precision, 50))
      << "precision@50 = " << precision;
  // Average value of the approximate top-K is close to the true top-K's.
  const double av_approx = models::average_value(approx, full_scores);
  const double av_exact = models::average_value(exact, full_scores);
  EXPECT_GT(av_approx, av_exact - 0.02);
}

TEST(TopKPipeline, LargerSubsetNeverLessAccurate) {
  auto& f = fixture();
  const auto full_scores =
      f.cascade.full_model->predict(f.compiled->compute_matrix(f.wl.test.inputs));
  const auto exact = models::top_k_indices(full_scores, 50);

  double prev_precision = -1.0;
  for (double frac : {0.02, 0.10, 1.0}) {
    TopKConfig cfg;
    cfg.ck = 0.0;
    cfg.min_subset_frac = frac;
    TopKPipeline p(f.compiled, f.cascade, cfg);
    const auto approx = p.top_k(f.wl.test.inputs, 50);
    const double prec = models::precision_at_k(approx, exact);
    EXPECT_GE(prec, prev_precision - 0.05);  // allow tiny non-monotonic noise
    prev_precision = prec;
  }
  // Subset == whole batch reproduces the exact top-K.
  EXPECT_DOUBLE_EQ(prev_precision, 1.0);
}

TEST(TopKPipeline, StatsReportSubsetSize) {
  auto& f = fixture();
  TopKPipeline p(f.compiled, f.cascade, TopKConfig{});
  TopKRunStats stats;
  (void)p.top_k(f.wl.test.inputs, 10, {}, &stats);
  EXPECT_EQ(stats.batch_size, f.wl.test.inputs.num_rows());
  EXPECT_EQ(stats.subset_size, p.subset_size(10, stats.batch_size));
}

TEST(TopKPipeline, NoFilterFallsBackToFullModel) {
  auto& f = fixture();
  TrainedCascade no_filter;
  no_filter.full_model = f.cascade.full_model;
  TopKPipeline p(f.compiled, no_filter, TopKConfig{});
  EXPECT_FALSE(p.has_filter());
  const auto top = p.top_k(f.wl.test.inputs, 25);
  const auto full_scores =
      f.cascade.full_model->predict(f.compiled->compute_matrix(f.wl.test.inputs));
  const auto exact = models::top_k_indices(full_scores, 25);
  EXPECT_EQ(top, exact);
}

TEST(TopKPipeline, WorksOnClassificationWorkloadToo) {
  auto& t = willump::testing::shared_toxic();
  ASSERT_TRUE(t.cascade.enabled());
  TopKPipeline p(t.compiled, t.cascade, TopKConfig{});
  const auto top = p.top_k(t.wl.test.inputs, 20);
  EXPECT_EQ(top.size(), 20u);
}

}  // namespace
}  // namespace willump::core
