#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "runtime/boxed.hpp"
#include "runtime/profiler.hpp"
#include "runtime/thread_pool.hpp"

namespace willump::runtime {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, CallingThreadParticipates) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.run_all({[&counter] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("boom"); });
  tasks.push_back([] {});
  tasks.push_back([] {});
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> counter{0};
  pool.run_all({[&counter] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, EmptyTaskListIsNoop) {
  ThreadPool pool(2);
  pool.run_all({});
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i) tasks.push_back([&counter] { ++counter; });
    pool.run_all(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(Boxed, IntRoundTrip) {
  const data::Column c(data::IntColumn{7, 8});
  const auto b = boxed::box_row(c, 1);
  const auto back = boxed::unbox_to_column(b, data::ColumnType::Int);
  EXPECT_EQ(back.ints()[0], 8);
}

TEST(Boxed, StringRoundTripCopies) {
  const data::Column c(data::StringColumn{"hello"});
  const auto b = boxed::box_row(c, 0);
  const auto back = boxed::unbox_to_column(b, data::ColumnType::String);
  EXPECT_EQ(back.strings()[0], "hello");
}

TEST(Boxed, DenseFeatureRowRoundTrip) {
  data::DenseMatrix m(2, 3);
  m(1, 0) = 1.5;
  m(1, 2) = -2.5;
  const auto b = boxed::box_feature_row(data::FeatureMatrix(m), 1);
  const auto back = boxed::unbox_to_features(b, false, 3);
  EXPECT_DOUBLE_EQ(back.dense()(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(back.dense()(0, 2), -2.5);
}

TEST(Boxed, SparseFeatureRowRoundTrip) {
  data::CsrMatrix m(10);
  data::SparseVector r(10);
  r.push_back(3, 0.5);
  r.push_back(9, 1.5);
  m.append_row(r);
  const auto b = boxed::box_feature_row(data::FeatureMatrix(m), 0);
  const auto back = boxed::unbox_to_features(b, true, 10);
  EXPECT_DOUBLE_EQ(back.sparse().row_vector(0).at(3), 0.5);
  EXPECT_DOUBLE_EQ(back.sparse().row_vector(0).at(9), 1.5);
}

TEST(Boxed, NamespaceLookup) {
  boxed::Namespace ns;
  ns.set("x", boxed::make_int(42));
  EXPECT_TRUE(ns.has("x"));
  EXPECT_EQ(std::get<std::int64_t>(ns.get("x")->payload), 42);
  EXPECT_THROW(ns.get("missing"), std::out_of_range);
}

TEST(Profiler, AccumulatesPerNode) {
  Profiler p;
  p.record(3, 0.5);
  p.record(3, 0.25);
  p.record(7, 1.0);
  EXPECT_DOUBLE_EQ(p.total_seconds(3), 0.75);
  EXPECT_EQ(p.calls(3), 2u);
  EXPECT_DOUBLE_EQ(p.total_seconds(99), 0.0);
  EXPECT_EQ(p.totals().size(), 2u);
  p.clear();
  EXPECT_DOUBLE_EQ(p.total_seconds(3), 0.0);
}

}  // namespace
}  // namespace willump::runtime
