#include "core/feature_cache.hpp"

#include <gtest/gtest.h>

#include "core/executors.hpp"
#include "ops/concat.hpp"
#include "ops/lookup.hpp"

namespace willump::core {
namespace {

struct LookupFixture {
  Graph g;
  std::shared_ptr<store::TableClient> user_client;
  std::shared_ptr<store::TableClient> item_client;

  LookupFixture() {
    auto users = std::make_shared<store::FeatureTable>("users", 2);
    auto items = std::make_shared<store::FeatureTable>("items", 3);
    for (std::int64_t k = 0; k < 50; ++k) {
      users->put(k, data::DenseVector({static_cast<double>(k), 1.0}));
      items->put(k, data::DenseVector({0.0, static_cast<double>(k), 2.0}));
    }
    user_client = std::make_shared<store::TableClient>(users, store::NetworkModel{});
    item_client = std::make_shared<store::TableClient>(items, store::NetworkModel{});

    const int user = g.add_source("user", data::ColumnType::Int);
    const int item = g.add_source("item", data::ColumnType::Int);
    const int uf = g.add_transform(
        "uf", std::make_shared<ops::TableLookupOp>(user_client), {user});
    const int itf = g.add_transform(
        "if", std::make_shared<ops::TableLookupOp>(item_client), {item});
    const int cat = g.add_transform("cat", std::make_shared<ops::ConcatOp>(), {uf, itf});
    g.set_output(cat);
  }

  data::Batch batch(std::initializer_list<std::int64_t> users,
                    std::initializer_list<std::int64_t> items) const {
    data::Batch b;
    b.add("user", data::Column(data::IntColumn(users)));
    b.add("item", data::Column(data::IntColumn(items)));
    return b;
  }
};

TEST(FeatureCache, KeyDependsOnlyOnGeneratorSources) {
  LookupFixture f;
  const auto a = analyze_ifvs(f.g);
  const auto b1 = f.batch({1, 1}, {5, 9});
  // The user generator's key ignores the item column.
  EXPECT_EQ(cache_key_of_row(b1, f.g, a.generators[0], 0),
            cache_key_of_row(b1, f.g, a.generators[0], 1));
  // The item generator's key differs.
  EXPECT_NE(cache_key_of_row(b1, f.g, a.generators[1], 0),
            cache_key_of_row(b1, f.g, a.generators[1], 1));
}

TEST(FeatureCache, CachedExecutionMatchesUncached) {
  LookupFixture f;
  CompiledExecutor ex(f.g, analyze_ifvs(f.g));
  FeatureCacheBank bank(2, 0);
  const auto batch = f.batch({1, 2, 1, 3}, {7, 7, 8, 9});

  const auto plain = ex.compute_matrix(batch);
  ExecOptions opts;
  opts.cache = &bank;
  const auto cached1 = ex.compute_matrix(batch, opts);
  const auto cached2 = ex.compute_matrix(batch, opts);  // all hits

  const auto dp = plain.dense();
  const auto d1 = cached1.dense();
  const auto d2 = cached2.dense();
  for (std::size_t r = 0; r < dp.rows(); ++r) {
    for (std::size_t c = 0; c < dp.cols(); ++c) {
      ASSERT_DOUBLE_EQ(d1(r, c), dp(r, c));
      ASSERT_DOUBLE_EQ(d2(r, c), dp(r, c));
    }
  }
}

TEST(FeatureCache, HitsAccumulateAcrossBatches) {
  LookupFixture f;
  CompiledExecutor ex(f.g, analyze_ifvs(f.g));
  FeatureCacheBank bank(2, 0);
  ExecOptions opts;
  opts.cache = &bank;

  (void)ex.compute_matrix(f.batch({1, 2}, {7, 8}), opts);
  EXPECT_EQ(bank.total_hits(), 0u);
  EXPECT_EQ(bank.total_misses(), 4u);

  (void)ex.compute_matrix(f.batch({1, 2}, {7, 9}), opts);
  EXPECT_EQ(bank.total_hits(), 3u);  // user 1, user 2, item 7
  EXPECT_EQ(bank.total_misses(), 5u);
}

TEST(FeatureCache, ReducesRemoteKeysFetched) {
  LookupFixture f;
  f.user_client->set_network({.rtt_micros = 5.0, .per_key_micros = 0.1});
  f.item_client->set_network({.rtt_micros = 5.0, .per_key_micros = 0.1});
  CompiledExecutor ex(f.g, analyze_ifvs(f.g));
  FeatureCacheBank bank(2, 0);
  ExecOptions opts;
  opts.cache = &bank;

  // Heavily repeated keys: only the unique ones should be fetched.
  (void)ex.compute_matrix(f.batch({1, 1, 1, 2, 2, 1}, {7, 7, 7, 7, 8, 7}), opts);
  EXPECT_EQ(f.user_client->stats().keys_fetched.load(), 2u);  // users 1, 2
  EXPECT_EQ(f.item_client->stats().keys_fetched.load(), 2u);  // items 7, 8

  // Without the cache every row hits the store.
  f.user_client->set_network({.rtt_micros = 5.0, .per_key_micros = 0.1});
  (void)ex.compute_matrix(f.batch({1, 1, 1, 2, 2, 1}, {7, 7, 7, 7, 8, 7}), {});
  EXPECT_EQ(f.user_client->stats().keys_fetched.load(), 6u);
}

TEST(FeatureCache, BoundedCapacityEvicts) {
  LookupFixture f;
  CompiledExecutor ex(f.g, analyze_ifvs(f.g));
  FeatureCacheBank bank(2, 2);  // room for 2 rows per generator
  ExecOptions opts;
  opts.cache = &bank;
  (void)ex.compute_matrix(f.batch({1, 2, 3}, {7, 8, 9}), opts);
  EXPECT_LE(bank.cache(0).size(), 2u);
  EXPECT_GT(bank.cache(0).evictions(), 0u);
}

TEST(FeatureCache, MaskedGeneratorsBypassCache) {
  LookupFixture f;
  CompiledExecutor ex(f.g, analyze_ifvs(f.g));
  ex.probe_layout(f.batch({1}, {1}));
  FeatureCacheBank bank(2, 0);
  ExecOptions opts;
  opts.cache = &bank;
  opts.fg_mask = {true, false};
  (void)ex.compute_blocks(f.batch({1, 2}, {7, 8}), opts);
  EXPECT_GT(bank.cache(0).misses(), 0u);
  EXPECT_EQ(bank.cache(1).misses() + bank.cache(1).hits(), 0u);
}

TEST(FeatureCacheBank, StatsAndClear) {
  FeatureCacheBank bank(3, 4);
  EXPECT_EQ(bank.num_caches(), 3u);
  bank.cache(0).put(1, data::DenseVector({1.0}));
  (void)bank.cache(0).get(1);
  (void)bank.cache(1).get(2);
  EXPECT_EQ(bank.total_hits(), 1u);
  EXPECT_EQ(bank.total_misses(), 1u);
  EXPECT_DOUBLE_EQ(bank.hit_rate(), 0.5);
  bank.clear();
  EXPECT_EQ(bank.total_hits(), 0u);
}

}  // namespace
}  // namespace willump::core
