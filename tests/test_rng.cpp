#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace willump::common {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto x0 = a.next_u64();
  const auto x1 = a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), x0);
  EXPECT_EQ(a.next_u64(), x1);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(42);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += r.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, PermutationIsValid) {
  Rng r(3);
  const auto p = r.permutation(100);
  ASSERT_EQ(p.size(), 100u);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, BernoulliRate) {
  Rng r(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.next_bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(ZipfSampler, RankZeroMostPopular) {
  Rng r(1);
  ZipfSampler z(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(r)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(ZipfSampler, CoversSupport) {
  Rng r(2);
  ZipfSampler z(5, 0.5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(z.sample(r));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ZipfSampler, HigherExponentMoreSkew) {
  Rng r1(4), r2(4);
  ZipfSampler mild(1000, 0.5), heavy(1000, 1.5);
  int mild_top = 0, heavy_top = 0;
  for (int i = 0; i < 10000; ++i) {
    if (mild.sample(r1) < 10) ++mild_top;
    if (heavy.sample(r2) < 10) ++heavy_top;
  }
  EXPECT_GT(heavy_top, mild_top * 2);
}

}  // namespace
}  // namespace willump::common
